"""JSONL trace export/import round-trip, filtering, summaries."""

import io

import pytest

from repro.obs.tracefile import (
    event_from_dict,
    event_to_dict,
    export_trace_jsonl,
    filter_events,
    import_trace_jsonl,
    iter_trace_jsonl,
    summarize_events,
)
from repro.sim.trace import Trace


def sample_trace() -> Trace:
    trace = Trace()
    trace.record(0.0, "msg_send", "v0", message="UIM(1)", hops=("v0", "v1"))
    trace.record(1.5, "msg_recv", "v1", message="UIM(1)")
    trace.record(2.0, "rule_change", "v1", flow=7, next_hop="v2")
    trace.record(9.25, "update_done", "controller", flow=7)
    return trace


def test_round_trip_through_file(tmp_path):
    trace = sample_trace()
    path = tmp_path / "trace.jsonl"
    count = export_trace_jsonl(trace, str(path))
    assert count == 4
    rebuilt = import_trace_jsonl(str(path))
    assert len(rebuilt) == len(trace)
    # Tuples are normalised to lists pre-export, so a second round trip
    # is byte-identical.
    second = tmp_path / "trace2.jsonl"
    export_trace_jsonl(rebuilt, str(second))
    assert path.read_text() == second.read_text()


def test_round_trip_preserves_fields():
    trace = sample_trace()
    buffer = io.StringIO()
    export_trace_jsonl(trace, buffer)
    buffer.seek(0)
    events = list(iter_trace_jsonl(buffer))
    assert [e.time for e in events] == [e.time for e in trace]
    assert [e.kind for e in events] == [e.kind for e in trace]
    assert [e.node for e in events] == [e.node for e in trace]
    assert events[0].detail["hops"] == ["v0", "v1"]
    assert events[2].detail == {"flow": 7, "next_hop": "v2"}


def test_imported_trace_index_works():
    buffer = io.StringIO()
    export_trace_jsonl(sample_trace(), buffer)
    buffer.seek(0)
    rebuilt = import_trace_jsonl(buffer)
    assert rebuilt.count_of_kind("msg_send") == 1
    assert rebuilt.last("update_done").node == "controller"


def test_non_json_detail_values_are_stringified():
    class Opaque:
        def __repr__(self):
            return "Opaque()"

    trace = Trace()
    trace.record(1.0, "k", "n", payload=Opaque())
    doc = event_to_dict(trace.events[0])
    assert doc["detail"]["payload"] == "Opaque()"
    event = event_from_dict(doc)
    assert event.detail["payload"] == "Opaque()"


def test_bad_line_reports_line_number(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"time": 1.0, "kind": "k", "node": "n", "detail": {}}\nnot json\n')
    with pytest.raises(ValueError, match="line 2"):
        list(iter_trace_jsonl(str(path)))


def test_filter_by_kind_node_and_window():
    events = sample_trace().events
    assert len(filter_events(events, kinds=["msg_send", "msg_recv"])) == 2
    assert [e.node for e in filter_events(events, nodes=["v1"])] == ["v1", "v1"]
    assert len(filter_events(events, t0=1.0, t1=2.0)) == 2
    combined = filter_events(events, kinds=["rule_change"], nodes=["v1"], t0=0.0)
    assert len(combined) == 1 and combined[0].kind == "rule_change"
    assert filter_events(events) == list(events)


def test_summarize_events():
    report = summarize_events(sample_trace().events)
    assert report["events"] == 4
    assert report["t_first_ms"] == 0.0
    assert report["t_last_ms"] == 9.25
    assert report["span_ms"] == 9.25
    assert report["by_kind"]["msg_send"] == 1
    assert report["by_node"]["v1"] == 2


def test_summarize_empty():
    report = summarize_events([])
    assert report["events"] == 0
    assert report["span_ms"] is None


# -- gzip transparency and streaming ------------------------------------------


def test_gzip_round_trip(tmp_path):
    import gzip

    trace = sample_trace()
    path = tmp_path / "trace.jsonl.gz"
    count = export_trace_jsonl(trace, str(path))
    assert count == 4
    # Really gzipped on disk.
    with gzip.open(str(path), "rt", encoding="utf-8") as handle:
        assert handle.readline().startswith("{")
    events = list(iter_trace_jsonl(str(path)))
    assert [e.time for e in events] == [e.time for e in trace]
    rebuilt = import_trace_jsonl(str(path))
    assert len(rebuilt) == 4


def test_iter_filter_events_is_lazy_and_matches_filter_events():
    from repro.obs.tracefile import iter_filter_events

    events = sample_trace().events
    lazy = iter_filter_events(events, kinds=["msg_send", "msg_recv"])
    assert iter(lazy) is lazy          # generator, not a list
    assert list(lazy) == filter_events(events, kinds=["msg_send", "msg_recv"])
    assert list(
        iter_filter_events(events, nodes=["v1"], t0=1.0, t1=2.0)
    ) == filter_events(events, nodes=["v1"], t0=1.0, t1=2.0)
