"""Pipeline static analyzer: toy bad programs + the real P4UpdateProgram."""

from repro.analysis.pipecheck import analyze_pipeline


class FakeRegisterFile:
    def __init__(self, names):
        self._names = list(names)

    def names(self):
        return list(self._names)


class FakeTable:
    def __init__(self, default_action=None):
        self.default_action = default_action


def rules_of(findings):
    return {f.rule for f in findings}


# -- registers ------------------------------------------------------------------


class ReadNeverWritten:
    def __init__(self):
        self.registers = FakeRegisterFile(["egress_port"])
        self.tables = {}

    def ingress(self, ctx, pkt):
        return self.registers["egress_port"].read(0)


def test_register_never_written():
    findings = analyze_pipeline(ReadNeverWritten())
    assert rules_of(findings) == {"register-never-written"}
    assert "egress_port" in findings[0].message


class ReadBeforeWrite:
    def __init__(self):
        self.registers = FakeRegisterFile(["seen"])
        self.tables = {}

    def ingress(self, ctx, pkt):
        return self.registers["seen"].read(0)

    def egress(self, ctx, pkt):
        self.registers["seen"].write(0, 1)


def test_register_read_before_write():
    findings = analyze_pipeline(ReadBeforeWrite())
    assert rules_of(findings) == {"register-read-before-write"}


class WriteThenReadAcrossStages:
    def __init__(self):
        self.registers = FakeRegisterFile(["seen"])
        self.tables = {}

    def ingress(self, ctx, pkt):
        self.registers["seen"].write(0, 1)

    def egress(self, ctx, pkt):
        return self.registers["seen"].read(0)


def test_write_then_read_is_clean():
    assert analyze_pipeline(WriteThenReadAcrossStages()) == []


class ControlPlaneWriter:
    """Stage reads; a non-stage method (runtime API) writes."""

    def __init__(self):
        self.registers = FakeRegisterFile(["version"])
        self.tables = {}

    def ingress(self, ctx, pkt):
        return self.registers["version"].read(0)

    def store_version(self, value):
        self.registers["version"].write(0, value)


def test_control_plane_write_satisfies_reads():
    assert analyze_pipeline(ControlPlaneWriter()) == []


class AgentWriter:
    """Stage reads; only the attached switch agent writes."""

    def __init__(self, agent):
        self.registers = FakeRegisterFile(["tag"])
        self.tables = {}
        self.agent = agent

    def ingress(self, ctx, pkt):
        return self.registers["tag"].read(0)


class TagAgent:
    def __init__(self):
        self.program = None

    def flip_tag(self):
        self.program.registers["tag"].write(0, 1)


def test_agent_write_satisfies_reads():
    agent = TagAgent()
    program = AgentWriter(agent)
    agent.program = program
    assert analyze_pipeline(program) == []
    assert rules_of(analyze_pipeline(program, include_agent=False)) == {
        "register-never-written"
    }


class HelperWriter:
    """The write happens in a helper the stage calls — reachability."""

    def __init__(self):
        self.registers = FakeRegisterFile(["count"])
        self.tables = {}

    def ingress(self, ctx, pkt):
        self._bump()
        return self.registers["count"].read(0)

    def _bump(self):
        regs = self.registers
        regs["count"].write(0, 1)


def test_helper_reachability_and_alias_tracking():
    assert analyze_pipeline(HelperWriter()) == []


class UndeclaredRegister:
    def __init__(self):
        self.registers = FakeRegisterFile(["real"])
        self.tables = {}

    def ingress(self, ctx, pkt):
        self.registers["real"].write(0, 1)
        return self.registers["tpyo"].read(0)


def test_undeclared_register():
    findings = analyze_pipeline(UndeclaredRegister())
    assert "register-undeclared" in rules_of(findings)
    assert any("tpyo" in f.message for f in findings)


# -- tables ---------------------------------------------------------------------


class NoDefaultTable:
    def __init__(self):
        self.registers = FakeRegisterFile([])
        self.tables = {"fwd": FakeTable(default_action=None)}

    def ingress(self, ctx, pkt):
        return None


def test_table_missing_default():
    findings = analyze_pipeline(NoDefaultTable())
    assert rules_of(findings) == {"table-missing-default"}


def test_table_with_default_ok():
    program = NoDefaultTable()
    program.tables = {"fwd": FakeTable(default_action="drop")}
    assert analyze_pipeline(program) == []


# -- resubmit -------------------------------------------------------------------


class UnboundedResubmitter:
    def __init__(self):
        self.registers = FakeRegisterFile([])
        self.tables = {}

    def ingress(self, ctx, pkt):
        ctx.resubmit()


def test_unbounded_resubmit_flagged_without_cap():
    findings = analyze_pipeline(UnboundedResubmitter())
    assert rules_of(findings) == {"unbounded-resubmit"}


def test_resubmit_ok_with_runtime_cap():
    assert analyze_pipeline(UnboundedResubmitter(), max_resubmits=100) == []


class SelfBoundedResubmitter:
    def __init__(self):
        self.registers = FakeRegisterFile([])
        self.tables = {}

    def ingress(self, ctx, pkt):
        if pkt.resubmit_count < 8:
            ctx.resubmit()


def test_resubmit_ok_when_program_checks_count():
    assert analyze_pipeline(SelfBoundedResubmitter()) == []


# -- the real deployed program ----------------------------------------------------


def test_real_p4update_program_is_clean():
    from repro.harness.build import build_p4update_network
    from repro.params import SimParams
    from repro.topo import fig1_topology

    params = SimParams(seed=0)
    deployment = build_p4update_network(fig1_topology(), params=params)
    program = deployment.switches["v0"].program
    findings = analyze_pipeline(program, max_resubmits=params.max_resubmits)
    assert findings == [], "\n".join(f.format() for f in findings)


def test_real_program_resubmit_needs_declared_cap():
    from repro.harness.build import build_p4update_network
    from repro.params import SimParams
    from repro.topo import fig1_topology

    deployment = build_p4update_network(fig1_topology(), params=SimParams(seed=0))
    program = deployment.switches["v0"].program
    findings = analyze_pipeline(program, max_resubmits=None)
    assert rules_of(findings) == {"unbounded-resubmit"}
