"""Seeded adversarial plan-pair generator for the interference analyzer.

Property-test fuel for :mod:`repro.analysis.interference`: from one
integer seed, build batches of two plans that either **inject** a
conflict of a known kind (the analyzer must flag it) or are provably
**disjoint** (node sets, flows and capacity headroom all independent —
the analyzer must stay silent).  The generator randomises the
incidental surface (node names, flow ids, sizes, capacity slack) while
pinning the conflict geometry, so a detector regression cannot hide
behind one lucky example.

Every case is deterministic in the seed: node names come from a
shuffled alphabet drawn from ``numpy``'s ``default_rng`` seeded with
``[seed, case_index, _ADVGEN_STREAM]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.analysis.interference import (
    BatchPolicies,
    InterferenceReport,
    detect_interference,
)
from repro.analysis.plan import PlanInstall, UpdatePlan
from repro.core.messages import UpdateType

#: RNG stream tag, disjoint from the serve/sweep streams.
_ADVGEN_STREAM = 0xADF6

#: Kinds the conflict generator knows how to inject.
CONFLICT_KINDS = (
    "version-slot-race",
    "transient-loop",
    "transient-blackhole",
    "link-overcommit",
    "cross-plan-deadlock",
)


def plan_from_paths(
    flow_id: int,
    old_path: Sequence[str],
    new_path: Sequence[str],
    flow_size: float = 1.0,
    version: int = 2,
    prior_version: int = 1,
) -> UpdatePlan:
    """Synthesize a well-formed SL plan moving ``flow_id`` between
    two explicit paths.

    Installs cover the new path with paper-correct distance labels
    (egress = 0) and notify edges running distance ``d`` to ``d+1`` —
    the same shape :func:`repro.analysis.plan.plan_from_prepared`
    produces, without needing a controller.
    """
    nodes = list(new_path)
    last = len(nodes) - 1
    installs = tuple(
        PlanInstall(
            node=node,
            version=version,
            distance=last - position,
            is_flow_egress=position == last,
            is_ingress=position == 0,
        )
        for position, node in enumerate(nodes)
    )
    notify_edges = tuple(
        (nodes[position + 1], nodes[position])
        for position in range(last)
    )
    return UpdatePlan(
        flow_id=flow_id,
        version=version,
        prior_version=prior_version,
        update_type=UpdateType.SINGLE,
        installs=installs,
        notify_edges=notify_edges,
        old_path=tuple(old_path),
        new_path=tuple(new_path),
        flow_size=flow_size,
    )


@dataclass(frozen=True)
class AdversarialCase:
    """One generated batch plus the analysis inputs it expects."""

    name: str
    #: Finding kind the injected conflict must produce ("" = disjoint,
    #: the analyzer must report nothing at all).
    expect_kind: str
    plans: tuple[UpdatePlan, ...]
    capacities: dict[tuple[str, str], float] = field(default_factory=dict)
    congestion_aware: bool = True
    policies: BatchPolicies = field(default_factory=BatchPolicies)

    def analyze(self) -> InterferenceReport:
        return detect_interference(
            self.plans,
            self.policies,
            self.capacities,
            congestion_aware=self.congestion_aware,
            label=self.name,
        )

    def flagged(self) -> bool:
        """Did the analyzer report the injected kind?"""
        report = self.analyze()
        if not self.expect_kind:
            return not report.findings
        return any(f.kind == self.expect_kind for f in report.findings)


class _Names:
    """Deterministic fresh node names: a shuffled two-letter alphabet."""

    def __init__(self, rng: np.random.Generator) -> None:
        letters = "abcdefghijklmnopqrstuvwxyz"
        pool = [a + b for a in letters for b in letters]
        order = rng.permutation(len(pool))
        self._pool = [pool[i] for i in order]
        self._next = 0

    def take(self, count: int) -> list[str]:
        names = self._pool[self._next:self._next + count]
        self._next += count
        if len(names) < count:
            raise RuntimeError("name pool exhausted")
        return names


def _case_rng(seed: int, index: int) -> np.random.Generator:
    return np.random.default_rng([seed, index, _ADVGEN_STREAM])


def _size(rng: np.random.Generator) -> float:
    # Two-decimal sizes keep capacity arithmetic exactly representable
    # enough that the analyzer's epsilon never decides a case.
    return round(float(rng.uniform(0.5, 1.5)), 2)


def _flow(rng: np.random.Generator) -> int:
    return int(rng.integers(1, 2**31 - 1))


def _slot_race_case(name: str, rng: np.random.Generator) -> AdversarialCase:
    """Same flow updated twice, overlapping switches, no serialization."""
    names = _Names(rng)
    a, b, c, d, e = names.take(5)
    flow = _flow(rng)
    plans = (
        plan_from_paths(flow, (a, b, c), (a, d, c), version=2),
        plan_from_paths(flow, (a, d, c), (a, e, c), version=3,
                        prior_version=2),
    )
    return AdversarialCase(
        name=name,
        expect_kind="version-slot-race",
        plans=plans,
        policies=BatchPolicies(same_flow=False),
    )


def _loop_case(name: str, rng: np.random.Generator) -> AdversarialCase:
    """Two same-flow plans whose merged next-hop relation cycles."""
    names = _Names(rng)
    i, u, v, e = names.take(4)
    flow = _flow(rng)
    plans = (
        # Plan 0 routes u -> v; plan 1 routes v -> u.  With the pair
        # unordered an interleaving activates both rules at once.
        plan_from_paths(flow, (i, v, e), (i, u, v, e), version=2),
        plan_from_paths(flow, (i, u, v, e), (i, v, u, e), version=3,
                        prior_version=2),
    )
    return AdversarialCase(
        name=name,
        expect_kind="transient-loop",
        plans=plans,
        policies=BatchPolicies(same_flow=False),
    )


def _blackhole_case(name: str, rng: np.random.Generator) -> AdversarialCase:
    """Same flow, both new paths cross one shared non-ingress switch."""
    names = _Names(rng)
    i1, i2, m, e1, e2 = names.take(5)
    flow = _flow(rng)
    plans = (
        plan_from_paths(flow, (i1, e1), (i1, m, e1), version=2),
        plan_from_paths(flow, (i2, e2), (i2, m, e2), version=3,
                        prior_version=2),
    )
    return AdversarialCase(
        name=name,
        expect_kind="transient-blackhole",
        plans=plans,
        policies=BatchPolicies(same_flow=False),
    )


def _overcommit_case(name: str, rng: np.random.Generator) -> AdversarialCase:
    """A leaver and an enterer race over one capacity-tight edge.

    Sized so the batch endpoints fit (initial and final load both at
    most the capacity) but the worst interleaving instant does not —
    exactly the transient the admission gate exists to catch.
    """
    names = _Names(rng)
    u, v, x, y, p, q = names.take(6)
    size_a = _size(rng)
    size_b = _size(rng)
    cap = round(max(size_a, size_b) + 0.25, 2)
    plans = (
        # Plan 0 leaves edge (u, v); plan 1 enters it.
        plan_from_paths(_flow(rng), (u, v, x), (u, y, x),
                        flow_size=size_a, version=2),
        plan_from_paths(_flow(rng), (p, q, v), (p, u, v),
                        flow_size=size_b, version=2),
    )
    return AdversarialCase(
        name=name,
        expect_kind="link-overcommit",
        plans=plans,
        capacities={(u, v): cap},
        congestion_aware=False,
        policies=BatchPolicies(same_flow=True),
    )


def _deadlock_case(name: str, rng: np.random.Generator) -> AdversarialCase:
    """Two movers swapping edges, each waiting on the capacity the
    other still holds (the §7.4 scheduler's wait-for cycle)."""
    names = _Names(rng)
    u, v, x, y = names.take(4)
    size_a = _size(rng)
    size_b = _size(rng)
    caps = {
        (u, v): round(max(size_a, size_b) + 0.25, 2),
        (x, y): round(max(size_a, size_b) + 0.25, 2),
    }
    plans = (
        # Plan 0 moves off (u, v) onto (x, y); plan 1 the reverse.
        plan_from_paths(_flow(rng), (u, v), (x, y),
                        flow_size=size_a, version=2),
        plan_from_paths(_flow(rng), (x, y), (u, v),
                        flow_size=size_b, version=2),
    )
    return AdversarialCase(
        name=name,
        expect_kind="cross-plan-deadlock",
        plans=plans,
        capacities=caps,
        congestion_aware=True,
        policies=BatchPolicies(same_flow=True),
    )


_INJECTORS = {
    "version-slot-race": _slot_race_case,
    "transient-loop": _loop_case,
    "transient-blackhole": _blackhole_case,
    "link-overcommit": _overcommit_case,
    "cross-plan-deadlock": _deadlock_case,
}


def generate_conflict_cases(
    seed: int,
    count: int = 10,
    kinds: Optional[Sequence[str]] = None,
) -> list[AdversarialCase]:
    """``count`` conflicting pairs cycling through the injected kinds."""
    chosen = tuple(kinds) if kinds is not None else CONFLICT_KINDS
    unknown = set(chosen) - set(_INJECTORS)
    if unknown:
        raise ValueError(f"unknown conflict kinds: {sorted(unknown)}")
    cases = []
    for index in range(count):
        kind = chosen[index % len(chosen)]
        rng = _case_rng(seed, index)
        cases.append(
            _INJECTORS[kind](f"conflict[{index}]:{kind}", rng)
        )
    return cases


def generate_disjoint_pairs(
    seed: int, count: int = 10
) -> list[AdversarialCase]:
    """``count`` pairs sharing nothing: distinct flows, disjoint node
    sets, every touched edge with slack capacity.  Any finding on one
    of these is a false positive by construction."""
    cases = []
    for index in range(count):
        rng = _case_rng(seed, 10_000 + index)
        names = _Names(rng)
        a = names.take(4)
        b = names.take(4)
        size_a, size_b = _size(rng), _size(rng)
        plans = (
            plan_from_paths(_flow(rng), (a[0], a[1], a[3]),
                            (a[0], a[2], a[3]), flow_size=size_a,
                            version=2),
            plan_from_paths(_flow(rng), (b[0], b[1], b[3]),
                            (b[0], b[2], b[3]), flow_size=size_b,
                            version=2),
        )
        capacities: dict[tuple[str, str], float] = {}
        for plan in plans:
            for path in (plan.old_path, plan.new_path):
                for edge in zip(path, path[1:]):
                    capacities[edge] = round(size_a + size_b + 1.0, 2)
        cases.append(
            AdversarialCase(
                name=f"disjoint[{index}]",
                expect_kind="",
                plans=plans,
                capacities=capacities,
                congestion_aware=False,
                policies=BatchPolicies(same_flow=True),
            )
        )
    return cases
