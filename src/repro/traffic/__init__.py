"""Traffic generation: flows, paths, and the gravity traffic model."""

from repro.traffic.flows import Flow, FlowSet
from repro.traffic.gravity import gravity_matrix, gravity_flow_sizes
from repro.traffic.paths import k_shortest_paths, second_shortest_path

__all__ = [
    "Flow",
    "FlowSet",
    "gravity_matrix",
    "gravity_flow_sizes",
    "k_shortest_paths",
    "second_shortest_path",
]
