"""Unit tests for the BMv2-style JSON export."""

import json

import pytest

from repro.core.dataplane import P4UpdateProgram
from repro.core.messages import PROBE_HEADER, UNM_HEADER
from repro.core.registers import TABLE1_MAPPING
from repro.p4.compile import (
    ConfigError,
    diff_configs,
    export_json,
    export_program,
    load_skeleton,
)
from repro.p4.pipeline import PipelineProgram
from repro.p4.tables import MatchKind, Table


def small_program():
    program = PipelineProgram()
    program.registers.define("counters", 8, 32)
    program.define_table(
        Table("fwd", ["dst"], [MatchKind.LPM], default_action="drop")
    )
    program.set_clone_session(3, 3)
    return program


def test_export_contains_declarations():
    config = export_program(small_program(), name="demo")
    assert config["program"] == "demo"
    assert config["register_arrays"] == [
        {"name": "counters", "size": 8, "bitwidth": 32}
    ]
    table = config["pipelines"][0]["tables"][0]
    assert table["key"] == [{"field": "dst", "match_type": "lpm"}]
    assert config["clone_sessions"] == [{"session": 3, "port": 3}]


def test_export_json_stable():
    a = export_json(small_program())
    b = export_json(small_program())
    assert a == b
    json.loads(a)       # valid JSON


def test_p4update_program_exports_table1_registers():
    """The exported config shows every Table 1 register (UIB)."""
    program = P4UpdateProgram(max_flows=32)
    config = export_program(
        program, name="p4update",
        header_types={"unm": UNM_HEADER, "probe": PROBE_HEADER},
    )
    exported = {reg["name"] for reg in config["register_arrays"]}
    for our_name in TABLE1_MAPPING.values():
        assert our_name in exported
    header_names = {h["name"] for h in config["header_types"]}
    assert {"unm", "probe"} <= header_names


def test_roundtrip_skeleton():
    config = export_program(small_program())
    skeleton = load_skeleton(config)
    assert "counters" in skeleton.registers
    assert skeleton.registers["counters"].size == 8
    assert "fwd" in skeleton.tables
    assert skeleton.tables["fwd"].match_kinds == (MatchKind.LPM,)
    assert skeleton.clone_sessions == {3: 3}
    # Re-export matches the original (fixpoint).
    assert export_program(skeleton) == export_program(small_program())


def test_load_rejects_unknown_version():
    with pytest.raises(ConfigError):
        load_skeleton({"format_version": 99})


def test_diff_detects_changes():
    old = export_program(small_program())
    modified = small_program()
    modified.registers.define("extra", 4, 16)
    modified.define_table(Table("acl", ["src"], [MatchKind.TERNARY]))
    new = export_program(modified)
    changes = diff_configs(old, new)
    assert "register added: extra" in changes
    assert "table added: acl" in changes
    assert diff_configs(old, old) == []


def test_diff_detects_resize_and_removal():
    old = export_program(small_program())
    other = PipelineProgram()
    other.registers.define("counters", 16, 32)     # resized
    new = export_program(other)
    changes = diff_configs(old, new)
    assert any("resized" in c for c in changes)
    assert "table removed: fwd" in changes
