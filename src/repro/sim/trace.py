"""Time-stamped event tracing.

Every forwarding-state change, message send/receive and verification
outcome is appended to a :class:`Trace`.  The consistency checker
replays traces to assert the paper's invariants at every instant, and
the Fig. 2 bench extracts per-node packet-receive series from them.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence at a simulated time."""

    time: float
    kind: str
    node: str
    detail: dict

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.time:9.3f} ms {self.kind} @{self.node} {self.detail}>"


# Canonical event kinds used across the codebase.  Modules may add
# their own, but these are the ones the checker and benches rely on.
KIND_RULE_CHANGE = "rule_change"        # forwarding rule updated
KIND_MSG_SEND = "msg_send"
KIND_MSG_RECV = "msg_recv"
KIND_MSG_DROP = "msg_drop"
KIND_VERIFY_OK = "verify_ok"
KIND_VERIFY_FAIL = "verify_fail"
KIND_PACKET_RECV = "packet_recv"        # data packet seen at a node
KIND_PACKET_LOST = "packet_lost"        # TTL expiry or blackhole
KIND_PACKET_DELIVERED = "packet_delivered"
KIND_UPDATE_DONE = "update_done"        # controller saw UFM
KIND_CAPACITY = "capacity"              # link reservation change
KIND_SCHED = "sched"                    # congestion scheduler decision
# Topology-level failure events and recovery (repro.chaos).
KIND_UPDATE_ABORTED = "update_aborted"  # pending update rolled back
KIND_FLOW_PARKED = "flow_parked"        # no alternate path; structured report
KIND_LINK_DOWN = "link_down"
KIND_LINK_UP = "link_up"
KIND_SWITCH_CRASH = "switch_crash"
KIND_SWITCH_RESTART = "switch_restart"
KIND_CONTROLLER_DOWN = "controller_down"
KIND_CONTROLLER_UP = "controller_up"
# Update-request service lifecycle (repro.serve).
KIND_REQUEST_SUBMITTED = "request_submitted"
KIND_REQUEST_SHED = "request_shed"          # rejected or parked at admission
KIND_REQUEST_DISPATCHED = "request_dispatched"
KIND_REQUEST_DONE = "request_done"          # terminal outcome reached


class Trace:
    """Append-only event log with a per-kind index.

    ``of_kind``/``last`` answer from the index instead of scanning the
    whole log — benches replay traces repeatedly, so those lookups are
    on the measurement path.

    ``max_events`` bounds memory for very large runs: when positive,
    the log becomes a ring keeping only the newest ``max_events``
    events; everything older is discarded and counted in
    ``dropped_events``.  Subscribers still see every event (live
    checking is unaffected), only retention changes.  The default
    (``0``) keeps the historical unbounded behaviour.
    """

    def __init__(self, max_events: int = 0) -> None:
        self.max_events = int(max_events)
        self.events: list[TraceEvent] = []
        self.dropped_events = 0
        # Absolute position of events[0] (non-zero once the ring drops).
        self._base = 0
        self._subscribers: list[Callable[[TraceEvent], None]] = []
        # kind -> absolute positions, each list ascending; stale (dropped)
        # positions are pruned lazily on lookup.
        self._by_kind: dict[str, list[int]] = {}

    def record(self, time: float, kind: str, node: str, **detail: Any) -> TraceEvent:
        event = TraceEvent(time=time, kind=kind, node=node, detail=detail)
        self._by_kind.setdefault(kind, []).append(self._base + len(self.events))
        self.events.append(event)
        if self.max_events > 0 and len(self.events) > self.max_events:
            overflow = len(self.events) - self.max_events
            del self.events[:overflow]
            self._base += overflow
            self.dropped_events += overflow
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def _live(self, kind: str) -> list[int]:
        """The kind's retained positions, pruning dropped ones."""
        positions = self._by_kind.get(kind)
        if not positions:
            return []
        if positions[0] < self._base:
            cut = bisect_left(positions, self._base)
            del positions[:cut]
        return positions

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Invoke ``callback`` for every future event (live checking)."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TraceEvent], None]) -> bool:
        """Stop notifying ``callback``; True when it was subscribed.

        Removes one registration per call (mirroring ``subscribe``);
        unknown callbacks are ignored rather than raising, so teardown
        paths can unsubscribe unconditionally.
        """
        try:
            self._subscribers.remove(callback)
            return True
        except ValueError:
            return False

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        if len(kinds) == 1:
            positions: list[int] = self._live(kinds[0])
        else:
            merged: list[int] = []
            for kind in sorted(set(kinds)):
                merged.extend(self._live(kind))
            positions = sorted(merged)
        return [self.events[i - self._base] for i in positions]

    def count_of_kind(self, kind: str) -> int:
        return len(self._live(kind))

    def at_node(self, node: str) -> list[TraceEvent]:
        return [e for e in self.events if e.node == node]

    def between(self, start: float, end: float) -> list[TraceEvent]:
        return [e for e in self.events if start <= e.time <= end]

    def last(self, kind: str) -> Optional[TraceEvent]:
        positions = self._live(kind)
        if not positions:
            return None
        return self.events[positions[-1] - self._base]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
