#!/usr/bin/env python3
"""WAN traffic engineering — rerouting a near-capacity B4 workload.

Generates a gravity-model workload on Google's B4 topology (one flow
per site, sizes scaled so the hottest link sits at 90 % utilisation),
then moves every flow from its shortest path to its 2nd-shortest path
at once.  The §7.4 data-plane scheduler orders the moves so that no
link ever exceeds its capacity — verified live at every rule change.

Run:  python examples/wan_multiflow_reroute.py
"""

import numpy as np

from repro.consistency import LiveChecker
from repro.harness.build import build_p4update_network
from repro.harness.scenarios import multi_flow_scenario
from repro.params import SimParams
from repro.topo import b4_topology


def main() -> None:
    topo = b4_topology()
    scenario = multi_flow_scenario(topo, np.random.default_rng(7))
    print(f"topology: B4 ({topo.num_nodes()} sites, {topo.num_edges()} links)")
    print(f"workload: {len(scenario.flows)} flows, gravity-model sizes")
    hottest = max(
        load / topo.capacity(a, b)
        for (a, b), load in __import__("repro.traffic.flows", fromlist=["FlowSet"])
        .FlowSet(scenario.flows)
        .link_load("old", directed=True)
        .items()
    )
    print(f"hottest link utilisation before the update: {hottest:.0%}\n")

    deployment = build_p4update_network(topo, params=SimParams(seed=7))
    checker = LiveChecker(deployment.forwarding_state, deployment.network.trace)
    for flow in scenario.flows:
        deployment.install_flow(flow)

    for flow in scenario.flows:
        deployment.controller.update_flow(flow.flow_id, list(flow.new_path))
    deployment.run()

    done = sum(
        deployment.controller.update_complete(f.flow_id) for f in scenario.flows
    )
    durations = [
        deployment.controller.update_duration(f.flow_id)
        for f in scenario.flows
        if deployment.controller.update_duration(f.flow_id) is not None
    ]
    deferrals = sum(
        sw.program.stats["capacity_deferrals"]
        for sw in deployment.switches.values()
    )
    print(f"flows updated:        {done}/{len(scenario.flows)}")
    print(f"slowest flow update:  {max(durations):.0f} ms")
    print(f"scheduler deferrals:  {deferrals} "
          f"(moves that waited for capacity to free)")
    print(f"congestion-free at every instant: {checker.ok}")
    for flow in scenario.flows[:5]:
        walk, outcome = deployment.forwarding_state.walk(flow.flow_id)
        print(f"  {flow.src:>12s} -> {flow.dst:<12s} now via "
              f"{' -> '.join(walk[1:-1]) or '(direct)'} [{outcome}]")


if __name__ == "__main__":
    main()
