"""Chaos test: a realistic multi-flow WAN update under a hostile
network — random drops, delays and duplicates on both planes — with
the §11 recovery machinery enabled.  Consistency must hold throughout
and the updates must still complete.
"""

import numpy as np
import pytest

from repro.consistency import LiveChecker
from repro.harness.build import build_p4update_network
from repro.harness.scenarios import multi_flow_scenario
from repro.params import SimParams
from repro.sim.faults import FaultModel
from repro.topo import b4_topology


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_multi_flow_update_survives_chaos(seed):
    scenario = multi_flow_scenario(b4_topology(), np.random.default_rng(seed))
    params = SimParams(
        seed=seed,
        controller_update_timeout_ms=800.0,
        max_sim_time_ms=120_000.0,
    )
    dep = build_p4update_network(scenario.topology, params=params)
    dep.network.fault_model = FaultModel(
        rng=np.random.default_rng(seed ^ 0xC4405),
        drop_prob=0.05,
        delay_prob=0.2,
        delay_ms=30.0,
        duplicate_prob=0.1,
        selector=lambda m: hasattr(m, "has_valid") and not m.has_valid("probe"),
    )
    dep.network.control_fault_model = FaultModel(
        rng=np.random.default_rng(seed ^ 0x51AB),
        delay_prob=0.3,
        delay_ms=50.0,
        duplicate_prob=0.1,
    )
    for switch in dep.switches.values():
        switch.unm_timeout_ms = 400.0
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)

    for flow in scenario.flows:
        dep.install_flow(flow)
    for flow in scenario.flows:
        dep.controller.update_flow(flow.flow_id, list(flow.new_path))
    dep.run()

    assert checker.ok, checker.violations[:3]
    done = sum(dep.controller.update_complete(f.flow_id) for f in scenario.flows)
    assert done == len(scenario.flows), (
        f"only {done}/{len(scenario.flows)} flows completed under chaos"
    )
    # Every flow must end on its intended new path.
    for flow in scenario.flows:
        walk, outcome = dep.forwarding_state.walk(flow.flow_id)
        assert outcome == "delivered"
        assert walk == flow.new_path, (flow.src, flow.dst)
