"""Additional message-level tests: cleanup packets, tag-flip message,
and UIM field coverage for the newer extensions."""

import pytest

from repro.core.messages import (
    CLEANUP_HEADER,
    TagFlip,
    UIM,
    UpdateType,
    make_cleanup,
    make_probe,
)


def test_cleanup_packet_fields():
    packet = make_cleanup(flow_id=9, version=4)
    header = packet.header("cleanup")
    assert header["flow_id"] == 9
    assert header["version"] == 4
    assert packet.has_valid("cleanup")


def test_cleanup_header_widths():
    fields = {f.name: f.bits for f in CLEANUP_HEADER.fields.values()}
    assert fields == {"flow_id": 16, "version": 16}


def test_probe_two_phase_fields_default_untagged():
    probe = make_probe(flow_id=1, seq=2)
    header = probe.header("probe")
    assert header["tagged"] == 0
    assert header["tag"] == 0


def test_tagflip_describe_and_payload():
    flip = TagFlip(target="s1", flow_id=3, version=5, tag=1,
                   new_path=("a", "b", "c"))
    assert flip.target == "s1"
    assert "tag=1" in flip.describe()
    assert flip.new_path == ("a", "b", "c")


def test_uim_extension_fields_default_off():
    uim = UIM(
        target="s", flow_id=1, version=2, new_distance=3, egress_port=4,
        flow_size=1.0, update_type=UpdateType.SINGLE, child_port=None,
    )
    assert uim.stage_tag is None
    assert uim.piggyback == ()
    assert uim.child_ports == ()
    assert not uim.is_gateway


def test_uim_is_frozen():
    uim = UIM(
        target="s", flow_id=1, version=2, new_distance=3, egress_port=4,
        flow_size=1.0, update_type=UpdateType.SINGLE, child_port=None,
    )
    with pytest.raises(AttributeError):
        uim.version = 9
