"""Property-based tests for traffic generation and path computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topo import ring_topology
from repro.traffic.flows import Flow, FlowSet, flow_hash
from repro.traffic.gravity import gravity_flow_sizes, gravity_matrix
from repro.traffic.paths import k_shortest_paths


@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=2, max_value=12))
@settings(max_examples=50, deadline=None)
def test_gravity_matrix_is_symmetric_in_structure(seed, n):
    """Every ordered pair gets positive traffic; T_ij * T_ji relate via
    the same weights (T_ij == T_ji for the symmetric gravity model)."""
    rng = np.random.default_rng(seed)
    nodes = [f"n{i}" for i in range(n)]
    matrix = gravity_matrix(nodes, rng, total_traffic=10.0)
    for i in nodes:
        for j in nodes:
            if i == j:
                continue
            assert matrix[(i, j)] > 0
            assert matrix[(i, j)] == pytest.approx(matrix[(j, i)])


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=50, deadline=None)
def test_gravity_sizes_nonnegative_with_requested_mean(seed):
    rng = np.random.default_rng(seed)
    pairs = [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"), ("a", "c")]
    sizes = gravity_flow_sizes(pairs, rng, mean_size=2.0)
    assert all(s >= 0 for s in sizes)
    assert np.mean(sizes) == pytest.approx(2.0)


@given(
    st.integers(min_value=4, max_value=12),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50, deadline=None)
def test_k_shortest_paths_sorted_simple_and_distinct(n, k):
    topo = ring_topology(n, latency_ms=1.0)
    paths = k_shortest_paths(topo, "n0", f"n{n // 2}", k)
    assert 1 <= len(paths) <= k
    latencies = [topo.path_latency(p) for p in paths]
    assert latencies == sorted(latencies)
    for path in paths:
        assert len(set(path)) == len(path), "paths must be simple"
    assert len({tuple(p) for p in paths}) == len(paths), "paths distinct"


@given(st.text(min_size=1, max_size=8), st.text(min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_flow_hash_in_range(src, dst):
    assert 0 <= flow_hash(src, dst) < (1 << 16)
    assert 0 <= flow_hash(src, dst, space=97) < 97


@given(st.lists(
    st.tuples(st.sampled_from("abcdef"), st.sampled_from("abcdef"), st.floats(0.1, 5.0)),
    min_size=1, max_size=10,
))
@settings(max_examples=100, deadline=None)
def test_flowset_directed_load_bounded_by_undirected(entries):
    flows = FlowSet()
    for src, dst, size in entries:
        if src == dst:
            continue
        flow = Flow(
            flow_id=len(flows._flows) + 1, src=src, dst=dst, size=size,
            old_path=[src, dst],
        )
        flows.add(flow)
    undirected = flows.link_load("old", directed=False)
    directed = flows.link_load("old", directed=True)
    for (a, b), load in directed.items():
        assert load <= undirected[frozenset((a, b))] + 1e-9
