"""The seeded adversarial plan-pair generator.

The satellite contract: every injected conflict is flagged by the
analyzer with the injected kind, and provably disjoint pairs produce
zero findings — across many seeds, so a detector regression cannot
hide behind one lucky example.
"""

import pytest

from repro.analysis.advgen import (
    CONFLICT_KINDS,
    generate_conflict_cases,
    generate_disjoint_pairs,
    plan_from_paths,
)
from repro.analysis.plan import verify_plan


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_every_injected_conflict_is_flagged(seed):
    for case in generate_conflict_cases(seed, count=15):
        report = case.analyze()
        kinds = {f.kind for f in report.findings}
        assert case.expect_kind in kinds, (
            f"{case.name}: expected {case.expect_kind}, got {sorted(kinds)}"
        )


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_disjoint_pairs_produce_zero_findings(seed):
    for case in generate_disjoint_pairs(seed, count=15):
        report = case.analyze()
        assert report.findings == [], (
            f"{case.name}: false positive(s) "
            f"{[f.kind for f in report.findings]}"
        )


def test_all_kinds_covered_per_cycle():
    cases = generate_conflict_cases(3, count=len(CONFLICT_KINDS))
    assert {c.expect_kind for c in cases} == set(CONFLICT_KINDS)


def test_generation_is_deterministic_in_the_seed():
    first = [c.analyze().signature()
             for c in generate_conflict_cases(5, count=10)]
    second = [c.analyze().signature()
              for c in generate_conflict_cases(5, count=10)]
    other = [c.analyze().signature()
             for c in generate_conflict_cases(6, count=10)]
    assert first == second
    assert first != other


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        generate_conflict_cases(0, count=1, kinds=["nope"])


def test_synthetic_plans_pass_the_per_plan_verifier():
    # The generator injects *inter*-plan hazards only; each plan on
    # its own must be a valid Alg. 1/2 update, or the batch analysis
    # would be exercising malformed inputs.
    for case in generate_conflict_cases(1, count=10):
        for plan in case.plans:
            assert verify_plan(plan).violations == []
    plan = plan_from_paths(1, ("a", "b", "c"), ("a", "d", "c"))
    assert verify_plan(plan).violations == []
