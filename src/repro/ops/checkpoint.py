"""Sha256-signed on-disk checkpoints for operations sessions.

A checkpoint directory holds one pickle per checkpoint index plus a
``checkpoints.json`` manifest and a small ``status.json``::

    ckpts/
      checkpoint_000001.pkl     # {"meta", "globals", "session"}
      checkpoint_000002.pkl
      checkpoints.json          # manifest: sha256 + sim time per index
      status.json               # latest index, sim time, spec name

Each pickle is the full session object graph (engine event queue,
switch registers, NIB/Flow-DB, orchestrator and admission queues, RNG
generators, obs counters) plus the registered module-level counters
from :mod:`repro.sim.snapshot`.  The manifest records the SHA-256 of
every checkpoint's bytes; :func:`load_checkpoint` refuses to restore a
file whose digest does not match (a truncated or hand-edited file
fails loudly, never silently diverges).

All writes are atomic (``tmp`` + ``os.replace``), so a session killed
*during* a checkpoint write leaves the previous checkpoint set intact.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from typing import TYPE_CHECKING, Any, Optional

from repro.sim.snapshot import capture_global_state, restore_global_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ops.session import OpsSession

#: Bumped whenever the checkpoint payload layout changes; a mismatch
#: on load is an error (old checkpoints do not silently restore).
CHECKPOINT_FORMAT = 1

_MANIFEST = "checkpoints.json"
_STATUS = "status.json"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, found, or safely restored."""


class StopSession(Exception):
    """Raised by a sink to halt the engine right after a checkpoint
    (the ``--stop-after-checkpoint`` kill point the resume CI job
    exercises)."""

    def __init__(self, index: int) -> None:
        self.index = index
        super().__init__(f"session stopped after checkpoint {index}")


def _checkpoint_name(index: int) -> str:
    return f"checkpoint_{index:06d}.pkl"


def _atomic_write(path: str, data: bytes) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


def _atomic_write_json(path: str, doc: dict) -> None:
    _atomic_write(
        path, (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode("utf-8")
    )


def read_manifest(directory: str) -> dict:
    path = os.path.join(directory, _MANIFEST)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint manifest at {path!r}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable manifest {path!r}: {exc}") from None


def write_checkpoint(directory: str, session: "OpsSession", index: int) -> dict:
    """Persist one checkpoint; returns its manifest entry."""
    os.makedirs(directory, exist_ok=True)
    meta = {
        "format": CHECKPOINT_FORMAT,
        "name": session.spec.name,
        "spec_hash": session.spec.spec_hash(),
        "index": index,
        "sim_time_ms": float(session.engine.now),
    }
    blob = pickle.dumps(
        {"meta": meta, "globals": capture_global_state(), "session": session}
    )
    digest = hashlib.sha256(blob).hexdigest()
    filename = _checkpoint_name(index)
    _atomic_write(os.path.join(directory, filename), blob)

    entry = {
        "index": index,
        "file": filename,
        "sha256": digest,
        "sim_time_ms": meta["sim_time_ms"],
    }
    try:
        manifest = read_manifest(directory)
    except CheckpointError:
        manifest = {
            "format": CHECKPOINT_FORMAT,
            "name": session.spec.name,
            "spec_hash": meta["spec_hash"],
            "checkpoints": [],
        }
    if manifest.get("spec_hash") != meta["spec_hash"]:
        raise CheckpointError(
            f"checkpoint dir {directory!r} belongs to a different spec "
            f"(manifest spec_hash {manifest.get('spec_hash')!r})"
        )
    manifest["checkpoints"] = [
        e for e in manifest["checkpoints"] if int(e["index"]) != index
    ] + [entry]
    manifest["checkpoints"].sort(key=lambda e: int(e["index"]))
    _atomic_write_json(os.path.join(directory, _MANIFEST), manifest)
    _atomic_write_json(
        os.path.join(directory, _STATUS),
        {
            "name": session.spec.name,
            "latest_index": index,
            "sim_time_ms": meta["sim_time_ms"],
            "checkpoints": len(manifest["checkpoints"]),
        },
    )
    return entry


def load_checkpoint(
    directory: str, index: Optional[int] = None
) -> "OpsSession":
    """Verify, unpickle and **restore** a checkpoint.

    Restores the registered module-level counters as a side effect and
    returns the session, positioned exactly where the checkpoint was
    taken — ``session.run()`` continues byte-identically.  ``index``
    defaults to the latest checkpoint in the manifest."""
    manifest = read_manifest(directory)
    entries = {int(e["index"]): e for e in manifest.get("checkpoints", [])}
    if not entries:
        raise CheckpointError(f"checkpoint dir {directory!r} is empty")
    if index is None:
        index = max(entries)
    entry = entries.get(int(index))
    if entry is None:
        raise CheckpointError(
            f"no checkpoint with index {index} in {directory!r} "
            f"(have {sorted(entries)})"
        )
    path = os.path.join(directory, entry["file"])
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise CheckpointError(f"unreadable checkpoint {path!r}: {exc}") from None
    digest = hashlib.sha256(blob).hexdigest()
    if digest != entry["sha256"]:
        raise CheckpointError(
            f"checkpoint {path!r} is corrupt: sha256 {digest} does not "
            f"match the manifest ({entry['sha256']})"
        )
    payload = pickle.loads(blob)
    meta = payload["meta"]
    if meta.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path!r} has format {meta.get('format')!r}; "
            f"this build reads format {CHECKPOINT_FORMAT}"
        )
    restore_global_state(payload["globals"])
    session = payload["session"]
    session.resumed_from = int(index)
    return session


class CheckpointSink:
    """The runtime writer a CLI attaches to ``session._sink``.

    Never pickled with the session (``OpsSession.__getstate__`` drops
    it), so checkpoint bytes are identical whether or not a sink was
    attached — the byte-identity contract's load-bearing detail."""

    def __init__(
        self,
        directory: str,
        stop_after: Optional[int] = None,
        verbose: bool = False,
    ) -> None:
        self.directory = directory
        self.stop_after = stop_after
        self.verbose = verbose
        self.written: list[dict] = []

    def __call__(self, session: "OpsSession", index: int) -> None:
        entry = write_checkpoint(self.directory, session, index)
        self.written.append(entry)
        if self.verbose:
            print(
                f"checkpoint {index} at t={entry['sim_time_ms']:.1f} ms "
                f"-> {entry['file']} ({entry['sha256'][:16]})"
            )
        if self.stop_after is not None and index >= self.stop_after:
            raise StopSession(index)


def checkpoint_status(directory: str) -> dict:
    """The ``status.json`` view, recomputed from the manifest."""
    manifest = read_manifest(directory)
    entries = sorted(
        manifest.get("checkpoints", []), key=lambda e: int(e["index"])
    )
    latest: Optional[dict[str, Any]] = entries[-1] if entries else None
    return {
        "name": manifest.get("name"),
        "spec_hash": manifest.get("spec_hash"),
        "checkpoints": len(entries),
        "latest_index": int(latest["index"]) if latest else None,
        "sim_time_ms": float(latest["sim_time_ms"]) if latest else None,
        "entries": entries,
    }
