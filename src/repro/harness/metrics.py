"""Metrics helpers for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def cdf_points(samples: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as sorted (value, probability) points."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def improvement(baseline: Sequence[float], candidate: Sequence[float]) -> float:
    """Mean relative improvement of candidate over baseline, in percent.

    Positive = candidate is faster (smaller values).  Matches the
    paper's "-28.6 %" style of reporting.
    """
    base = float(np.mean(baseline))
    cand = float(np.mean(candidate))
    if base == 0:
        raise ValueError("baseline mean is zero")
    return (base - cand) / base * 100.0


@dataclass(frozen=True)
class Summary:
    """Distribution summary for one series of update times."""

    mean: float
    median: float
    p10: float
    p90: float
    minimum: float
    maximum: float
    n: int

    def row(self, label: str) -> str:
        return (
            f"{label:<28s} n={self.n:3d}  mean={self.mean:9.2f}  "
            f"median={self.median:9.2f}  p10={self.p10:9.2f}  "
            f"p90={self.p90:9.2f}  min={self.minimum:9.2f}  max={self.maximum:9.2f}"
        )


def summarize(samples: Sequence[float]) -> Summary:
    if not samples:
        raise ValueError("no samples")
    arr = np.asarray(samples, dtype=float)
    return Summary(
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p10=float(np.percentile(arr, 10)),
        p90=float(np.percentile(arr, 90)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        n=len(arr),
    )
