"""Unit tests for the deployment builders."""

import pytest

from repro.harness.build import assign_ports, build_p4update_network
from repro.harness.baselines_build import (
    build_central_network,
    build_ezsegway_network,
)
from repro.params import SimParams
from repro.topo import b4_topology, fattree_topology, ring_topology
from repro.traffic.flows import Flow


def test_assign_ports_deterministic_and_dense():
    topo = ring_topology(5)
    ports = assign_ports(topo)
    assert ports == assign_ports(topo)
    for node in topo.nodes:
        local = sorted(p for (n, _), p in ports.items() if n == node)
        assert local == list(range(1, len(topo.neighbors(node)) + 1))


def test_build_places_controller_at_centroid_when_unset():
    topo = b4_topology()
    assert topo.controller is None
    dep = build_p4update_network(topo, params=SimParams(seed=0))
    assert topo.controller is not None
    assert dep.network.controller_name == "controller"


def test_build_respects_preplaced_controller():
    topo = ring_topology(5)
    topo.set_controller("n2")
    build_p4update_network(topo, params=SimParams(seed=0))
    assert topo.controller == "n2"


def test_control_channels_for_every_switch():
    topo = b4_topology()
    dep = build_p4update_network(topo, params=SimParams(seed=0))
    assert set(dep.network.control_channels) == set(topo.nodes)
    # WAN: channel latency equals the shortest-path latency.
    for name in topo.nodes:
        expected = topo.control_latency(name)
        assert dep.network.control_channels[name].latency_ms == pytest.approx(expected)


def test_fattree_control_latency_sampled_from_distribution():
    topo = fattree_topology(4)
    params = SimParams(seed=0)
    dep = build_p4update_network(topo, params=params)
    latencies = [c.latency_ms for c in dep.network.control_channels.values()]
    # Sampled per switch: spread, and all above the floor.
    assert len(set(round(l, 6) for l in latencies)) > 1
    assert min(latencies) >= 0.5


def test_install_flow_requires_initial_path():
    topo = ring_topology(5)
    dep = build_p4update_network(topo, params=SimParams(seed=0))
    with pytest.raises(ValueError):
        dep.install_flow(Flow(flow_id=1, src="n0", dst="n2", size=1.0))


def test_install_flow_registers_everywhere():
    topo = ring_topology(5)
    dep = build_p4update_network(topo, params=SimParams(seed=0))
    flow = Flow.between("n0", "n2", size=2.5, old_path=["n0", "n1", "n2"])
    dep.install_flow(flow)
    assert dep.forwarding_state.walk(flow.flow_id)[1] == "delivered"
    assert flow.flow_id in dep.controller.flow_db
    assert dep.switches["n1"].program.flow_size_of(flow.flow_id) == 2.5


def test_per_switch_rngs_are_independent():
    topo = ring_topology(5)
    dep = build_p4update_network(topo, params=SimParams(seed=0))
    draws = {
        name: switch.rng.random() for name, switch in dep.switches.items()
    }
    assert len(set(draws.values())) == len(draws)


def test_all_three_builders_share_port_layout():
    topo = ring_topology(5)
    p4 = build_p4update_network(topo, params=SimParams(seed=0))
    ez = build_ezsegway_network(ring_topology(5), params=SimParams(seed=0))
    central = build_central_network(ring_topology(5), params=SimParams(seed=0))
    for net in (p4.network, ez.network, central.network):
        assert net.port_towards("n0", "n1") == p4.network.port_towards("n0", "n1")
