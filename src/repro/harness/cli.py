"""Command-line interface: ``p4update-repro <command>``.

Commands regenerate individual experiments without pytest:

* ``fig2`` — the §4.1 inconsistent-update demonstration;
* ``fig4`` — the §4.2 fast-forward CDF;
* ``fig7 <scenario>`` — one Fig. 7 cell (a-f);
* ``fig8`` — the control-plane preparation ratios;
* ``demo`` — a quick single-flow update walk-through with tracing;
* ``obs`` — observability tooling: export an instrumented demo run as
  a JSONL trace, then ``filter``/``summary`` over any exported trace;
* ``analyze`` — static verification: the sim-purity linter, the
  update-plan verifier and the pipeline analyzer
  (:mod:`repro.analysis`);
* ``chaos`` — robustness: run declarative fault-injection campaigns
  and assert consistency + determinism (:mod:`repro.chaos`);
* ``sweep`` — fleet orchestration: expand a declarative sweep spec
  into shards and execute them across worker processes with crash
  isolation, resume and a consolidated manifest (:mod:`repro.sweep`);
* ``fuzz`` — coverage-guided scenario fuzzing: seeded campaigns
  sharded through the sweep fleet, automatic shrinking, a committed
  regression corpus with replay (:mod:`repro.fuzz`);
* ``serve`` — the tenant-facing concurrent update-request service:
  admission control, dependency-aware orchestration and SLO metrics
  over the verified update path (:mod:`repro.serve`);
* ``ops`` — live operations sessions over a running service: tenant
  migration, rolling switch drains, capacity rebalancing, and signed
  checkpoint/resume of the full simulator state (:mod:`repro.ops`).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.harness.fig_experiments import FIG7_SCENARIOS


def cmd_fig2(args) -> int:
    from repro.harness.fig_experiments import run_fig2
    from repro.params import SimParams

    for system in ("ezsegway", "p4update"):
        result = run_fig2(system, params=SimParams(seed=args.seed))
        delivered = len({o.seq for o in result.delivered_at_v4})
        print(
            f"{system:10s} probes={result.probes_sent:4d} "
            f"looped_seqs={len(result.duplicates_at_v1):3d} "
            f"ttl_losses={result.ttl_losses:3d} delivered={delivered:4d}"
        )
    return 0


def cmd_fig4(args) -> int:
    from repro.harness.fig_experiments import run_fig4
    from repro.harness.metrics import summarize
    from repro.params import SimParams

    times = {"p4update": [], "ezsegway": []}
    for seed in range(args.runs):
        params = SimParams(seed=seed).with_dionysus_install_delay()
        for system in times:
            times[system].append(run_fig4(system, params=params).u3_completion_ms)
    for system, samples in times.items():
        print(summarize(samples).row(system))
    speedup = np.mean(times["ezsegway"]) / np.mean(times["p4update"])
    print(f"speedup: {speedup:.1f}x (paper: about 4x)")
    return 0


def cmd_fig7(args) -> int:
    from repro.harness.fig_experiments import (
        FIG7_SYSTEMS,
        fig7_paired_times,
        fig7_sweep_spec,
    )
    from repro.harness.metrics import summarize
    from repro.sweep.executor import run_sweep
    from repro.sweep.merge import attach_shard_keys

    spec = fig7_sweep_spec(args.scenario, runs=args.runs, seed=args.seed)
    run = run_sweep(spec, workers=args.workers, cache_dir=args.cache_dir,
                    resume=args.resume)
    for failure in run.failures:
        print(
            f"SHARD FAILURE {failure['shard_id']}: "
            f"{failure['error_type']}: {failure['message']}",
            file=sys.stderr,
        )
    times, skipped = fig7_paired_times(attach_shard_keys(spec, run.shard_docs))
    for system in FIG7_SYSTEMS:
        print(summarize(times[system]).row(system))
    print(f"skipped scenarios: {skipped}")
    return 0 if run.ok else 1


def cmd_fig8(args) -> int:
    from repro.harness.prep import FIG8_LABELS, fig8_sweep_spec
    from repro.sweep.executor import run_sweep
    from repro.sweep.merge import aggregate_prep, attach_shard_keys

    spec = fig8_sweep_spec(
        updates=args.updates, count_updates=args.count_updates, seed=args.seed
    )
    run = run_sweep(spec, workers=args.workers, cache_dir=args.cache_dir,
                    resume=args.resume)
    for failure in run.failures:
        print(
            f"SHARD FAILURE {failure['shard_id']}: "
            f"{failure['error_type']}: {failure['message']}",
            file=sys.stderr,
        )
    aggregates = aggregate_prep(attach_shard_keys(spec, run.shard_docs))
    print(f"deterministic operation counts ({args.count_updates} updates)")
    for topology, row in aggregates["topologies"].items():
        label = FIG8_LABELS.get(topology, topology)
        print(f"{label:22s} p4={row['p4update_ops']:8d} "
              f"ez={row['ez_ops']:8d} ez+cong={row['ez_congestion_ops']:9d}  "
              f"ratio_a={row['ratio_a']:5.2f}  ratio_b={row['ratio_b']:7.4f}")
    print("fig8a ratio < 1.0:  "
          + ("PASS" if aggregates["ratio_a_below_one"] else "FAIL")
          + "   (paper: 0.68-0.73)")
    print("fig8b ratio < 0.2:  "
          + ("PASS" if aggregates["ratio_b_below_fifth"] else "FAIL")
          + "   (paper: 0.002-0.02)")
    ok = (
        run.ok
        and aggregates["ratio_a_below_one"]
        and aggregates["ratio_b_below_fifth"]
    )
    return 0 if ok else 1


def cmd_run(args) -> int:
    from repro.harness.spec import run_spec_file

    result = run_spec_file(args.spec)
    print(f"system:     {result.system}")
    print(f"completed:  {result.completed}")
    print(f"consistent: {result.consistency_ok} ({result.violations} violations)")
    print(f"update time: {result.total_update_time_ms:.1f} ms (slowest flow)")
    for flow_id, duration in sorted(result.per_flow_ms.items()):
        print(f"  flow {flow_id}: {duration:.1f} ms")
    return 0 if result.completed and result.consistency_ok else 1


def cmd_demo(args) -> int:
    from repro.consistency import LiveChecker
    from repro.core.messages import UpdateType
    from repro.harness.build import build_p4update_network
    from repro.params import SimParams
    from repro.topo import fig1_topology
    from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
    from repro.traffic.flows import Flow

    topo = fig1_topology()
    deployment = build_p4update_network(topo, params=SimParams(seed=args.seed))
    checker = LiveChecker(deployment.forwarding_state, deployment.network.trace)
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    deployment.install_flow(flow)
    deployment.controller.update_flow(
        flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL
    )
    deployment.run()
    print(f"update complete: {deployment.controller.update_complete(flow.flow_id)}")
    print(f"consistent at every instant: {checker.ok}")
    for event in deployment.network.trace.of_kind("rule_change"):
        print(f"  {event.time:8.2f} ms  {event.node} -> {event.detail.get('next_hop')}")
    return 0


def _demo_deployment(seed: int, obs):
    """Build + run the Fig. 1 DL walk-through under ``obs``."""
    from repro.core.messages import UpdateType
    from repro.harness.build import build_p4update_network
    from repro.params import SimParams
    from repro.topo import fig1_topology
    from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
    from repro.traffic.flows import Flow

    deployment = build_p4update_network(
        fig1_topology(), params=SimParams(seed=seed), obs=obs
    )
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    deployment.install_flow(flow)
    with obs.spans.span("experiment", system="p4update", topology="fig1", flows=1):
        with obs.spans.span("uim_fanout"):
            deployment.controller.update_flow(
                flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL
            )
        with obs.spans.span("run_to_quiescence"):
            deployment.run()
    return deployment, flow


def cmd_obs(args) -> int:
    import json

    from repro.obs import (
        export_trace_jsonl,
        iter_filter_events,
        iter_trace_jsonl,
        make_obs,
        summarize_events,
    )

    if args.obs_command == "export":
        obs = make_obs(profile=args.profile)
        deployment, flow = _demo_deployment(args.seed, obs)
        count = export_trace_jsonl(deployment.network.trace, args.out)
        print(f"wrote {count} events to {args.out}")
        done = deployment.controller.update_complete(flow.flow_id)
        print(f"update complete: {done}")
        snapshot = obs.snapshot()
        print("metrics:")
        for name, series in sorted(snapshot["metrics"].items()):
            total = sum(
                entry.get("value", entry.get("count", 0)) for entry in series
            )
            print(f"  {name:<28s} series={len(series):3d} total={total:g}")
        print("spans:")
        for root in obs.spans.roots:
            _print_span(root, indent=1)
        if args.profile and obs.profiler is not None:
            print(obs.profiler.format_report())
        return 0

    if args.obs_command in ("requests", "critical-path", "perfetto"):
        return _cmd_obs_causal(args)

    # ``filter`` and ``summary`` stream through iter_trace_jsonl: one
    # event in memory at a time, so arbitrarily large traces (plain or
    # .jsonl.gz) process in constant space.
    if args.obs_command == "filter":
        try:
            selected = iter_filter_events(
                iter_trace_jsonl(args.trace),
                kinds=args.kind or None, nodes=args.node or None,
                t0=args.t0, t1=args.t1,
            )
            if args.out == "-":
                from repro.obs import event_to_dict

                for event in selected:
                    print(json.dumps(event_to_dict(event), sort_keys=True))
            else:
                count = export_trace_jsonl(selected, args.out)
                print(f"wrote {count} events to {args.out}")
        except OSError as exc:
            print(f"error: cannot read trace {args.trace!r}: {exc}",
                  file=sys.stderr)
            return 1
        return 0

    if args.obs_command == "summary":
        try:
            report = summarize_events(iter_trace_jsonl(args.trace))
        except OSError as exc:
            print(f"error: cannot read trace {args.trace!r}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"events:  {report['events']}")
        if report["events"]:
            print(f"first:   {report['t_first_ms']:.3f} ms")
            print(f"last:    {report['t_last_ms']:.3f} ms")
            print(f"span:    {report['span_ms']:.3f} ms")
        print("by kind:")
        for kind, count in sorted(report["by_kind"].items()):
            print(f"  {kind:<20s} {count}")
        print("by node:")
        for node, count in sorted(report["by_node"].items()):
            print(f"  {node:<20s} {count}")
        return 0

    raise ValueError(f"unknown obs command {args.obs_command!r}")


def _cmd_obs_causal(args) -> int:
    """The causal-DAG subcommands over a TRACE_*.causal.jsonl[.gz]
    sidecar (written by ``serve run --causal``)."""
    import json

    from repro.obs import critical_path, iter_causal_jsonl, perfetto_trace

    def _dags():
        return iter_causal_jsonl(args.causal)

    try:
        if args.obs_command == "requests":
            print(f"{'shard':<14s} {'req':>4s} {'flow':>4s} "
                  f"{'outcome':<12s} {'e2e ms':>10s}  top segments")
            for dag in _dags():
                top = sorted(
                    (
                        (seg, dur)
                        for seg, dur in dag["segments"].items()
                        if dur > 0.0
                    ),
                    key=lambda kv: -kv[1],
                )[:3]
                breakdown = "  ".join(
                    f"{seg}={dur:.3f}" for seg, dur in top
                ) or "-"
                print(f"{str(dag.get('shard_id', '-')):<14s} "
                      f"{dag['request_id']:>4d} {dag['flow_id']:>4d} "
                      f"{str(dag.get('outcome')):<12s} "
                      f"{dag['e2e_ms']:>10.3f}  {breakdown}")
            return 0

        if args.obs_command == "critical-path":
            for dag in _dags():
                if dag["request_id"] != args.request:
                    continue
                if args.seed is not None and dag.get("seed") != args.seed:
                    continue
                report = critical_path(dag)
                print(f"request {report['request_id']} "
                      f"(flow {report['flow_id']}, {report['outcome']}): "
                      f"{report['e2e_ms']:.3f} ms end-to-end")
                for step in report["steps"]:
                    print(f"  {step['t0']:>10.3f} -> {step['t1']:>10.3f} ms "
                          f"{step['segment']:<17s} {step['dur_ms']:>9.3f} ms  "
                          f"{step['from']} -> {step['to']} @{step['node']}")
                print("attribution:")
                for segment, total in report["segment_totals"].items():
                    if total > 0.0:
                        print(f"  {segment:<17s} {total:>9.3f} ms")
                return 0
            print(f"error: no request {args.request} in {args.causal!r}",
                  file=sys.stderr)
            return 1

        if args.obs_command == "perfetto":
            doc = perfetto_trace(_dags())
            with open(args.out, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
            print(f"wrote {len(doc['traceEvents'])} trace events to "
                  f"{args.out} (open in ui.perfetto.dev)")
            return 0
    except BrokenPipeError:
        raise                     # main() exits quietly on closed pipes
    except (OSError, ValueError) as exc:
        print(f"error: cannot read causal file {args.causal!r}: {exc}",
              file=sys.stderr)
        return 1
    raise ValueError(f"unknown obs command {args.obs_command!r}")


def _print_span(span, indent: int = 0) -> None:
    pad = "  " * indent
    sim = f"{span.sim_ms:.3f}" if span.sim_ms is not None else "-"
    print(f"{pad}{span.name}: sim={sim} ms wall={span.wall_ms:.3f} ms")
    for child in span.children:
        _print_span(child, indent + 1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="p4update-repro",
        description="Regenerate the P4Update (CoNEXT'21) experiments.",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("fig2", help="§4.1 inconsistent-update demo")
    p4 = sub.add_parser("fig4", help="§4.2 fast-forward CDF")
    p4.add_argument("--runs", type=int, default=30)
    p7 = sub.add_parser("fig7", help="one Fig. 7 cell (sweep-executed)")
    p7.add_argument("scenario", choices=sorted(FIG7_SCENARIOS))
    p7.add_argument("--runs", type=int, default=15)
    p7.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the cell's (system x seed) grid",
    )
    p7.add_argument("--resume", action="store_true",
                    help="reuse cached shards from an interrupted run")
    p7.add_argument("--cache-dir", default=None,
                    help="shard cache root (default .sweep_cache)")
    p8 = sub.add_parser(
        "fig8", help="control-plane preparation ratios (sweep-executed)"
    )
    p8.add_argument(
        "--workers", type=int, default=1,
        help="worker processes, one shard per WAN topology",
    )
    p8.add_argument("--resume", action="store_true",
                    help="reuse cached shards from an interrupted run")
    p8.add_argument("--cache-dir", default=None,
                    help="shard cache root (default .sweep_cache)")
    p8.add_argument("--updates", type=int, default=1000,
                    help="updates per wall-clock timing loop")
    p8.add_argument("--count-updates", type=int, default=50,
                    help="updates per deterministic operation count")
    sub.add_parser("demo", help="traced Fig. 1 DL update walk-through")
    prun = sub.add_parser("run", help="execute a JSON experiment spec")
    prun.add_argument("spec", help="path to the spec file")
    pobs = sub.add_parser(
        "obs",
        help="observability: trace export / filter / summary, "
             "causal requests / critical-path / perfetto",
    )
    obs_sub = pobs.add_subparsers(dest="obs_command", required=True)
    pexp = obs_sub.add_parser(
        "export", help="run the instrumented Fig. 1 demo and export its trace"
    )
    pexp.add_argument("--out", default="TRACE.jsonl", help="output JSONL path")
    pexp.add_argument(
        "--profile", action="store_true",
        help="also profile wall-clock time per engine callback",
    )
    pfil = obs_sub.add_parser("filter", help="filter an exported JSONL trace")
    pfil.add_argument("trace", help="path to a JSONL trace")
    pfil.add_argument("--kind", action="append", help="keep this event kind (repeatable)")
    pfil.add_argument("--node", action="append", help="keep this node (repeatable)")
    pfil.add_argument("--t0", type=float, default=None, help="keep events at/after this ms")
    pfil.add_argument("--t1", type=float, default=None, help="keep events at/before this ms")
    pfil.add_argument("--out", default="-", help="output path, or - for stdout")
    psum = obs_sub.add_parser("summary", help="summarize an exported JSONL trace")
    psum.add_argument("trace", help="path to a JSONL trace")
    preq = obs_sub.add_parser(
        "requests",
        help="per-request latency attribution table from a causal sidecar",
    )
    preq.add_argument(
        "causal", help="path to a TRACE_*.causal.jsonl[.gz] sidecar"
    )
    pcp = obs_sub.add_parser(
        "critical-path", help="critical path of one request's causal DAG"
    )
    pcp.add_argument(
        "causal", help="path to a TRACE_*.causal.jsonl[.gz] sidecar"
    )
    pcp.add_argument(
        "--request", type=int, required=True, help="request id to extract"
    )
    pcp.add_argument(
        "--seed", type=int, default=None,
        help="disambiguate across seeded replicas (default: first match)",
    )
    pperf = obs_sub.add_parser(
        "perfetto",
        help="export request DAGs as Chrome trace-event JSON (ui.perfetto.dev)",
    )
    pperf.add_argument(
        "causal", help="path to a TRACE_*.causal.jsonl[.gz] sidecar"
    )
    pperf.add_argument(
        "--out", default="TRACE_perfetto.json", help="output JSON path"
    )
    from repro.analysis.cli import add_analyze_parser, cmd_analyze
    from repro.chaos.cli import add_chaos_parser, cmd_chaos
    from repro.fuzz.cli import add_fuzz_parser, cmd_fuzz
    from repro.ops.cli import add_ops_parser, cmd_ops
    from repro.serve.cli import add_serve_parser, cmd_serve
    from repro.sweep.cli import add_sweep_parser, cmd_sweep

    add_analyze_parser(sub)
    add_chaos_parser(sub)
    add_fuzz_parser(sub)
    add_ops_parser(sub)
    add_serve_parser(sub)
    add_sweep_parser(sub)
    args = parser.parse_args(argv)
    handler = {
        "fig2": cmd_fig2,
        "fig4": cmd_fig4,
        "fig7": cmd_fig7,
        "fig8": cmd_fig8,
        "demo": cmd_demo,
        "run": cmd_run,
        "obs": cmd_obs,
        "analyze": cmd_analyze,
        "chaos": cmd_chaos,
        "fuzz": cmd_fuzz,
        "ops": cmd_ops,
        "serve": cmd_serve,
        "sweep": cmd_sweep,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pipe (e.g. ``| head``) closed early; exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
