"""Per-request causal tracing with critical-path latency attribution.

The serve layer (``repro.serve``) reports end-to-end SLO percentiles,
but a percentile cannot say *where* a slow request spent its time: in
the admission queue, blocked behind a same-flow/footprint conflict,
waiting out control-plane retransmissions under chaos, or in data-plane
verification.  The :class:`CausalTracker` threads a ``request_id``
context from admission through the orchestrator, the controller's
prepare/push path, reliable-control retries and the per-switch
verification events, recording a causal DAG of typed edges per request
— every timestamp on the **simulated** clock.

Attribution model
-----------------

At any simulated instant a live request is in exactly one *segment*
state (:data:`SEGMENTS`).  Every causal event appends one timeline
edge ``prev_event -> new_event`` labelled with the segment the request
occupied during that interval.  Because the edges tile the request's
lifetime with no gaps or overlaps, the per-segment duration sums
telescope to exactly the end-to-end latency — the invariant the
``trace-smoke`` CI job asserts on every request.  Durations accumulate
as exact :class:`fractions.Fraction` values (event times are binary
floats, hence exact rationals), so the only residual is the final
float conversion: well under the 1e-9 ms acceptance bound.

Zero-overhead contract: the tracker hangs off ``ObsContext.causal``
(``None`` on :data:`~repro.obs.context.NULL_OBS`), every hook site
guards with one attribute read, and the tracker never touches the sim
clock, the RNG streams or the :class:`~repro.sim.trace.Trace` — a
causal-traced run's trace signature is byte-identical to an untraced
run (asserted by ``tests/serve/test_causal_service.py``).
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Iterable, Iterator, Optional

#: The fixed attribution schema: every simulated millisecond of a
#: request's life lands in exactly one of these buckets.
SEGMENTS = (
    "queue_wait",         # admission queue / token bucket / in-flight cap
    "conflict_wait",      # blocked behind a same-flow or footprint conflict
    "prepare",            # controller queueing + prepare service time
    "control_rtt",        # controller <-> switch message travel (UIM out, UFM back)
    "retry_backoff",      # waiting out a lost message until a retransmit/retrigger
    "dataplane_verify",   # per-switch install + local verification chain
    "recovery",           # failure recovery owns the flow (abort/park/reroute)
)

#: Wait-states a queued request can occupy (subset of SEGMENTS).
WAIT_STATES = ("queue_wait", "conflict_wait", "recovery")

_ORCH = "orchestrator"


class _Track:
    """Mutable per-request tracking state (internal)."""

    __slots__ = (
        "request_id", "flow_id", "state", "last_t", "pushed", "done",
        "outcome", "version", "events", "edges", "segments",
    )

    def __init__(self, request_id: int, flow_id: int, t: float) -> None:
        self.request_id = request_id
        self.flow_id = flow_id
        self.state = "queue_wait"
        self.last_t = t
        self.pushed = False
        self.done = False
        self.outcome: Optional[str] = None
        self.version: Optional[int] = None
        self.events: list[dict[str, Any]] = []
        self.edges: list[dict[str, Any]] = []
        self.segments: dict[str, Fraction] = {s: Fraction(0) for s in SEGMENTS}


class CausalTracker:
    """Records one causal DAG per update request.

    All methods are cheap bookkeeping on plain python state; none of
    them schedules events, samples RNGs or records trace events, so a
    tracked run is bit-identical to an untracked one in simulated time.
    """

    def __init__(self) -> None:
        self._tracks: dict[int, _Track] = {}
        self._by_flow: dict[int, int] = {}

    # -- request lifecycle --------------------------------------------------

    def submit(self, request_id: int, flow_id: int, t: float) -> None:
        track = _Track(request_id, flow_id, t)
        self._tracks[request_id] = track
        track.events.append(
            {"id": 0, "t": t, "kind": "submitted", "node": _ORCH}
        )

    def mark(
        self,
        request_id: int,
        t: float,
        kind: str,
        node: str,
        state: Optional[str] = None,
        close_as: Optional[str] = None,
        **detail: Any,
    ) -> None:
        """Append one causal event, closing the open interval.

        The interval ``[last_event, t]`` is attributed to ``close_as``
        (default: the request's current segment state); afterwards the
        state becomes ``state`` when given.
        """
        track = self._tracks.get(request_id)
        if track is None or track.done:
            return
        self._append(track, t, kind, node, close_as, detail)
        if state is not None:
            track.state = state

    def set_state(self, request_id: int, t: float, state: str) -> None:
        """Reclassify the wait state; records an edge only on change."""
        track = self._tracks.get(request_id)
        if track is None or track.done or track.state == state:
            return
        self._append(
            track, t, "wait", _ORCH, None, {"from": track.state, "to": state}
        )
        track.state = state

    def pushed(self, request_id: int, t: float, node: str,
               version: Optional[int]) -> None:
        """The prepared update entered the control channel."""
        track = self._tracks.get(request_id)
        if track is None or track.done:
            return
        self._append(track, t, "pushed", node, None, {"version": version})
        track.state = "control_rtt"
        track.pushed = True
        track.version = version

    def finish(self, request_id: int, t: float, outcome: str) -> None:
        """Terminal outcome reached; closes the tail interval.

        * ``completed`` — a tail still in ``control_rtt`` or
          ``dataplane_verify`` closes as ``control_rtt`` (the UFM
          return leg to the controller plus the completion callback);
        * ``aborted`` / ``flow_parked`` — the tail is failure handling:
          ``recovery``;
        * anything else closes as the current state.
        """
        track = self._tracks.get(request_id)
        if track is None or track.done:
            return
        if outcome in ("aborted", "flow_parked"):
            close_as = "recovery"
        elif outcome == "completed" and track.state in (
            "control_rtt", "dataplane_verify"
        ):
            close_as = "control_rtt"
        else:
            close_as = track.state
        self._append(track, t, "done", _ORCH, close_as, {"outcome": outcome})
        track.done = True
        track.outcome = outcome

    # -- flow routing (control/data plane hooks) ----------------------------

    def bind_flow(self, flow_id: int, request_id: int) -> None:
        """While a request is in flight its flow routes events to it
        (at most one in-flight request per flow, by construction)."""
        self._by_flow[flow_id] = request_id

    def unbind_flow(self, flow_id: int) -> None:
        self._by_flow.pop(flow_id, None)

    def flow_event(
        self, flow_id: Any, t: float, kind: str, node: str, **detail: Any
    ) -> None:
        """Route a flow-tagged trace event to its in-flight request.

        Only meaningful after the push (pre-push events for the flow —
        e.g. recovery writes — belong to the chaos layer, not to this
        request).  ``update_done`` closes as ``control_rtt`` (the UFM
        just landed back at the controller); abort/park events switch
        the request into ``recovery``; everything else is data-plane
        install/verify work.
        """
        request_id = self._by_flow.get(flow_id)  # type: ignore[arg-type]
        if request_id is None:
            return
        track = self._tracks.get(request_id)
        if track is None or track.done or not track.pushed:
            return
        if kind == "update_done":
            close_as: Optional[str] = "control_rtt"
            state = "control_rtt"
        elif kind in ("update_aborted", "flow_parked"):
            close_as = None
            state = "recovery"
        else:
            close_as = None
            state = "dataplane_verify"
        self._append(track, t, kind, node, close_as, detail)
        track.state = state

    def retry(
        self, flow_id: Any, t: float, kind: str, node: str, **detail: Any
    ) -> None:
        """A retransmission / §11 re-trigger fired for the flow.

        The idle gap since the last event is what the retry waited out
        — it closes as ``retry_backoff``; the resent message then
        travels as ``control_rtt``.
        """
        request_id = self._by_flow.get(flow_id)  # type: ignore[arg-type]
        if request_id is None:
            return
        track = self._tracks.get(request_id)
        if track is None or track.done or not track.pushed:
            return
        close_as = (
            "retry_backoff"
            if track.state in ("control_rtt", "dataplane_verify")
            else None
        )
        self._append(track, t, kind, node, close_as, detail)
        track.state = "control_rtt"

    # -- internals ----------------------------------------------------------

    def _append(
        self,
        track: _Track,
        t: float,
        kind: str,
        node: str,
        close_as: Optional[str],
        detail: dict[str, Any],
    ) -> None:
        segment = close_as if close_as is not None else track.state
        duration = Fraction(t) - Fraction(track.last_t)
        track.segments[segment] += duration
        eid = len(track.events)
        event: dict[str, Any] = {"id": eid, "t": t, "kind": kind, "node": node}
        if detail:
            event.update(detail)
        track.events.append(event)
        track.edges.append(
            {
                "src": eid - 1,
                "dst": eid,
                "segment": segment,
                "dur_ms": float(duration),
            }
        )
        track.last_t = t

    # -- exports ------------------------------------------------------------

    def attribution_rows(self) -> list[dict[str, Any]]:
        """Compact per-request attribution (sorted by request id)."""
        rows = []
        for request_id in sorted(self._tracks):
            track = self._tracks[request_id]
            segments = {s: float(track.segments[s]) for s in SEGMENTS}
            rows.append(
                {
                    "request_id": track.request_id,
                    "flow_id": track.flow_id,
                    "outcome": track.outcome,
                    "e2e_ms": float(sum(track.segments.values())),
                    "segments": segments,
                }
            )
        return rows

    def dags(self) -> list[dict[str, Any]]:
        """Full causal DAGs (events + typed edges), sorted by request."""
        docs = []
        for request_id in sorted(self._tracks):
            track = self._tracks[request_id]
            segments = {s: float(track.segments[s]) for s in SEGMENTS}
            e2e = float(sum(track.segments.values()))
            docs.append(
                {
                    "request_id": track.request_id,
                    "flow_id": track.flow_id,
                    "outcome": track.outcome,
                    "version": track.version,
                    "e2e_ms": e2e,
                    "segments": segments,
                    "events": list(track.events),
                    "edges": list(track.edges),
                }
            )
        return docs


# -- critical path ------------------------------------------------------------


def critical_path(dag: dict) -> dict[str, Any]:
    """Extract the critical path of one request DAG.

    Walks back from the terminal event, at each node choosing the
    incoming edge whose source event is latest (ties: largest event
    id).  On the timeline DAGs the tracker records this is the full
    event chain; the extractor stays general so additional non-timeline
    edge types keep working.
    """
    events = {e["id"]: e for e in dag["events"]}
    incoming: dict[int, list[dict]] = {}
    for edge in dag["edges"]:
        incoming.setdefault(edge["dst"], []).append(edge)
    terminal = max(events) if events else 0
    steps: list[dict[str, Any]] = []
    cursor = terminal
    while cursor in incoming:
        edge = max(
            incoming[cursor],
            key=lambda e: (events[e["src"]]["t"], e["src"]),
        )
        src, dst = events[edge["src"]], events[edge["dst"]]
        steps.append(
            {
                "t0": src["t"],
                "t1": dst["t"],
                "segment": edge["segment"],
                "dur_ms": edge["dur_ms"],
                "from": src["kind"],
                "to": dst["kind"],
                "node": dst["node"],
            }
        )
        cursor = edge["src"]
    steps.reverse()
    totals = {s: 0.0 for s in SEGMENTS}
    for step in steps:
        totals[step["segment"]] += step["dur_ms"]
    return {
        "request_id": dag["request_id"],
        "flow_id": dag["flow_id"],
        "outcome": dag.get("outcome"),
        "e2e_ms": dag.get("e2e_ms"),
        "steps": steps,
        "segment_totals": totals,
    }


# -- aggregation --------------------------------------------------------------


def nearest_rank(values: list[float], pct: int) -> Optional[float]:
    """Nearest-rank percentile — pure python, no float surprises."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without floats
    return ordered[rank - 1]


def summarize_attribution(rows: Iterable[dict]) -> dict[str, Any]:
    """Deterministic fleet summary of per-request attribution rows.

    Worker-count independent by construction: the rows are pure
    simulated-time facts, and nearest-rank percentiles over the merged
    row set do not depend on which shard contributed which row.
    """
    rows = list(rows)
    doc: dict[str, Any] = {"requests": len(rows)}
    e2e = [float(r["e2e_ms"]) for r in rows]
    doc["e2e_ms"] = _series(e2e)
    segments: dict[str, Any] = {}
    for segment in SEGMENTS:
        segments[segment] = _series(
            [float(r["segments"][segment]) for r in rows]
        )
    doc["segments"] = segments
    doc["residual_max_ms"] = max(
        (
            abs(sum(r["segments"][s] for s in SEGMENTS) - float(r["e2e_ms"]))
            for r in rows
        ),
        default=0.0,
    )
    return doc


def _series(values: list[float]) -> dict[str, Any]:
    return {
        "count": len(values),
        "p50": nearest_rank(values, 50),
        "p90": nearest_rank(values, 90),
        "p99": nearest_rank(values, 99),
        "max": max(values) if values else None,
        "total": sum(values),
    }


# -- Perfetto / Chrome trace export -------------------------------------------


def perfetto_trace(dags: Iterable[dict]) -> dict[str, Any]:
    """Chrome trace-event JSON viewable in ``ui.perfetto.dev``.

    One thread per request (tid = request id); every attribution
    interval becomes a complete slice (``ph: "X"``) named after its
    segment, and every causal event an instant (``ph: "i"``).  All
    timestamps convert simulated ms -> trace µs.
    """
    trace_events: list[dict[str, Any]] = [
        {
            "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
            "args": {"name": "repro.serve requests"},
        }
    ]
    for dag in dags:
        tid = int(dag["request_id"])
        label = (
            f"request {dag['request_id']} "
            f"(flow {dag['flow_id']}, {dag.get('outcome')})"
        )
        trace_events.append(
            {
                "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
                "args": {"name": label},
            }
        )
        events = {e["id"]: e for e in dag["events"]}
        for edge in dag["edges"]:
            if edge["dur_ms"] <= 0.0:
                continue
            src = events[edge["src"]]
            trace_events.append(
                {
                    "ph": "X",
                    "name": edge["segment"],
                    "cat": "attribution",
                    "pid": 0,
                    "tid": tid,
                    "ts": src["t"] * 1000.0,
                    "dur": edge["dur_ms"] * 1000.0,
                    "args": {
                        "from": src["kind"],
                        "to": events[edge["dst"]]["kind"],
                    },
                }
            )
        for event in dag["events"]:
            args = {
                k: v for k, v in event.items()
                if k not in ("id", "t", "kind", "node")
            }
            args["node"] = event["node"]
            trace_events.append(
                {
                    "ph": "i",
                    "name": event["kind"],
                    "cat": "causal",
                    "s": "t",
                    "pid": 0,
                    "tid": tid,
                    "ts": event["t"] * 1000.0,
                    "args": args,
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# -- sidecar persistence ------------------------------------------------------


def write_causal_jsonl(dags: Iterable[dict], path_or_file: Any) -> int:
    """One request DAG per JSONL line (``.gz`` paths gzip on the fly)."""
    from repro.obs.tracefile import _open

    handle, owned = _open(path_or_file, "w")
    count = 0
    try:
        for dag in dags:
            handle.write(json.dumps(dag, sort_keys=True))
            handle.write("\n")
            count += 1
    finally:
        if owned:
            handle.close()
    return count


def iter_causal_jsonl(path_or_file: Any) -> Iterator[dict]:
    """Stream request DAGs back from a sidecar file."""
    from repro.obs.tracefile import _open

    handle, owned = _open(path_or_file, "r")
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"bad causal line {lineno}: {exc}"
                ) from exc
            if not isinstance(doc, dict):
                raise ValueError(f"bad causal line {lineno}: not an object")
            yield doc
    finally:
        if owned:
            handle.close()
