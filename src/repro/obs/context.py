"""The observability context: one handle carrying metrics + spans
(+ optionally an engine profiler) through every layer.

Design contract:

* every node/network/scheduler holds an ``obs`` reference, defaulting
  to the module-level :data:`NULL_OBS` singleton;
* instrumented hot paths guard with ``if self.obs.enabled:`` so the
  disabled mode costs one attribute read per site and allocates
  nothing (the no-op registry returns shared singleton instruments);
* observability NEVER touches simulated time or the RNG streams — a
  run with obs on and obs off produces the bit-identical simulated
  trace (asserted by ``tests/obs/test_determinism_obs.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.profiler import EngineProfiler
from repro.obs.registry import MetricsRegistry, NullRegistry
from repro.obs.spans import NullSpanTracker, SpanTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.causal import CausalTracker


class EngineClock:
    """Picklable ``() -> engine.now`` callable.

    ``bind_engine`` used to install a lambda closing over the engine;
    ops-session checkpoints pickle the whole object graph, and lambdas
    cannot be pickled, so the clock is a tiny class instead."""

    __slots__ = ("engine",)

    def __init__(self, engine) -> None:
        self.engine = engine

    def __call__(self) -> float:
        return float(self.engine.now)


class ObsContext:
    """Bundle of a metrics registry, a span tracker, an optional
    engine profiler and an optional per-request causal tracker,
    shared by every layer of one run."""

    __slots__ = ("metrics", "spans", "profiler", "causal")

    def __init__(
        self,
        metrics: MetricsRegistry,
        spans: SpanTracker,
        profiler: Optional[EngineProfiler] = None,
        causal: Optional["CausalTracker"] = None,
    ) -> None:
        self.metrics = metrics
        self.spans = spans
        self.profiler = profiler
        # Per-request causal tracing (repro.obs.causal).  Hook sites
        # guard with ``if self.obs.causal is not None:`` — one slot
        # read on the disabled path, same contract as ``enabled``.
        self.causal = causal

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled

    def bind_engine(self, engine) -> None:
        """Point the span tracker's simulated clock at ``engine`` and
        install the profiler (if any).  No-op when disabled."""
        if not self.enabled:
            return
        self.spans.sim_clock = EngineClock(engine)
        if self.profiler is not None:
            engine.set_profiler(self.profiler)

    def count(self, name: str, amount: float = 1.0, **labels) -> None:
        """Convenience: increment a labeled counter (guarded)."""
        if self.metrics.enabled:
            self.metrics.counter(name, **labels).inc(amount)

    def observe(self, name: str, value: float, **labels) -> None:
        """Convenience: record a labeled histogram sample (guarded)."""
        if self.metrics.enabled:
            self.metrics.histogram(name, **labels).observe(value)

    def gauge_set(self, name: str, value: float, **labels) -> None:
        """Convenience: set a labeled gauge (guarded)."""
        if self.metrics.enabled:
            self.metrics.gauge(name, **labels).set(value)

    def snapshot(self) -> dict:
        """Everything this context captured, JSON-safe."""
        out = {"metrics": self.metrics.snapshot(), "spans": self.spans.tree()}
        if self.profiler is not None:
            out["profile"] = self.profiler.report(top=25)
        return out

    def coverage_keys(self) -> list[str]:
        """Names of every metric this run actually moved.

        The fuzzer's coverage signal (:mod:`repro.fuzz.coverage`):
        a counter/gauge with a nonzero value or a histogram with
        samples counts as "touched".  Sorted, so callers get a
        deterministic view regardless of recording order."""
        if not self.enabled:
            return []
        touched = set()
        for name, series in self.metrics.snapshot().items():
            for row in series:
                kind = row.get("type")
                if kind in ("counter", "gauge"):
                    if float(row.get("value", 0.0)) != 0.0:
                        touched.add(name)
                elif int(row.get("count", 0)) > 0:
                    touched.add(name)
        return sorted(touched)


def make_obs(profile: bool = False, causal: bool = False) -> ObsContext:
    """A fresh enabled context (optionally with engine profiling
    and/or per-request causal tracing)."""
    tracker = None
    if causal:
        from repro.obs.causal import CausalTracker

        tracker = CausalTracker()
    return ObsContext(
        MetricsRegistry(),
        SpanTracker(),
        EngineProfiler() if profile else None,
        causal=tracker,
    )


#: Shared disabled context — the default ``obs`` everywhere.
NULL_OBS = ObsContext(NullRegistry(), NullSpanTracker())
