"""Property-based tests for the §7.4 scheduler and segmentation.

Invariants:
* reservations never go negative and never exceed capacity;
* committed + transit bookkeeping is conserved across arbitrary
  operation sequences;
* segmentation partitions the new path, and the forward/backward
  classification agrees with an independent cycle check.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import CongestionScheduler
from repro.core.segmentation import compute_gateways, compute_segments


# -- scheduler invariants ----------------------------------------------------------

@st.composite
def scheduler_ops(draw):
    n_ports = draw(st.integers(min_value=2, max_value=4))
    n_flows = draw(st.integers(min_value=1, max_value=5))
    capacity = draw(st.floats(min_value=5.0, max_value=20.0))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["occupy", "try_move", "commit", "abort", "release"]),
                st.integers(min_value=0, max_value=n_flows - 1),
                st.integers(min_value=1, max_value=n_ports),
                st.floats(min_value=0.5, max_value=8.0),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return n_ports, capacity, ops


@given(scheduler_ops())
@settings(max_examples=200, deadline=None)
def test_scheduler_reservations_bounded(case):
    n_ports, capacity, ops = case
    sched = CongestionScheduler()
    for port in range(1, n_ports + 1):
        sched.set_port_capacity(port, capacity)
    occupied: dict[int, float] = {}
    for op, flow, port, size in ops:
        if op == "occupy":
            # Only occupy within capacity (the controller's guarantee).
            budget = sched.port_budget(port)
            if budget.remaining >= size and flow not in occupied:
                sched.occupy(flow, port, size)
                occupied[flow] = size
        elif op == "try_move":
            if flow in occupied:
                sched.try_move(flow, port, occupied[flow])
        elif op == "commit":
            sched.commit_move(flow)
        elif op == "abort":
            sched.abort_move(flow)
        elif op == "release":
            sched.release(flow)
            occupied.pop(flow, None)
        # Invariants after every operation:
        for p in range(1, n_ports + 1):
            budget = sched.port_budget(p)
            assert budget.reserved >= -1e-9, f"negative reservation on {p}"
            assert budget.reserved <= budget.capacity + 1e-9, (
                f"over-reservation on port {p}: {budget.reserved} > {budget.capacity}"
            )


@given(scheduler_ops())
@settings(max_examples=200, deadline=None)
def test_scheduler_full_release_drains_everything(case):
    n_ports, capacity, ops = case
    sched = CongestionScheduler()
    for port in range(1, n_ports + 1):
        sched.set_port_capacity(port, capacity)
    flows = set()
    for op, flow, port, size in ops:
        flows.add(flow)
        if op == "occupy":
            if sched.port_budget(port).remaining >= size:
                sched.occupy(flow, port, size)
        elif op == "try_move":
            sched.try_move(flow, port, size)
        elif op == "commit":
            sched.commit_move(flow)
        elif op == "abort":
            sched.abort_move(flow)
        elif op == "release":
            sched.release(flow)
    for flow in flows:
        sched.release(flow)
    for port in range(1, n_ports + 1):
        assert sched.port_budget(port).reserved == pytest.approx(0.0, abs=1e-9)


# -- segmentation properties -----------------------------------------------------------


@st.composite
def path_pair(draw):
    """Random old/new simple paths over a shared node universe with
    shared endpoints."""
    n = draw(st.integers(min_value=4, max_value=10))
    universe = [f"x{i}" for i in range(n)]
    src, dst = universe[0], universe[1]
    middle = universe[2:]
    old_mid = draw(st.lists(st.sampled_from(middle), unique=True, max_size=len(middle)))
    new_mid = draw(st.lists(st.sampled_from(middle), unique=True, max_size=len(middle)))
    old = [src] + old_mid + [dst]
    new = [src] + new_mid + [dst]
    return old, new


@given(path_pair())
@settings(max_examples=300, deadline=None)
def test_segments_partition_the_new_path(pair):
    old, new = pair
    segments = compute_segments(old, new)
    # Chained: each segment starts where the previous ended.
    reconstructed = list(segments[0].nodes)
    for segment in segments[1:]:
        assert reconstructed[-1] == segment.nodes[0]
        reconstructed.extend(segment.nodes[1:])
    assert reconstructed == new


@given(path_pair())
@settings(max_examples=300, deadline=None)
def test_segment_boundaries_are_exactly_the_gateways(pair):
    old, new = pair
    segments = compute_segments(old, new)
    gateways = compute_gateways(old, new)
    boundary_nodes = [segments[0].nodes[0]] + [s.nodes[-1] for s in segments]
    assert boundary_nodes == gateways


@given(path_pair())
@settings(max_examples=300, deadline=None)
def test_segment_interiors_are_off_the_old_path(pair):
    old, new = pair
    for segment in compute_segments(old, new):
        for node in segment.interior:
            assert node not in set(old)


def _creates_cycle(old, segment):
    """Independent check: does flipping the segment's ingress gateway
    onto the segment, with all other old rules in place, cycle?"""
    nxt = {a: b for a, b in zip(old, old[1:]) if a != segment.nodes[0]}
    for a, b in zip(segment.nodes, segment.nodes[1:]):
        nxt[a] = b
    node, seen = segment.nodes[0], set()
    while node in nxt:
        if node in seen:
            return True
        seen.add(node)
        node = nxt[node]
    return node in seen


@given(path_pair())
@settings(max_examples=300, deadline=None)
def test_backward_classification_matches_cycle_check(pair):
    """§3.2's distance rule == 'flipping early would loop'."""
    old, new = pair
    for segment in compute_segments(old, new):
        assert (not segment.forward) == _creates_cycle(old, segment), (
            old, new, segment
        )
