"""The ``chaos`` CLI subcommand: run / validate fault campaigns.

Wired into :mod:`repro.harness.cli`; kept here so the harness stays a
thin argument-parsing layer.

* ``chaos run <spec.json> [--runs N]`` — execute a campaign N times
  with the same seed and assert (a) zero consistency violations on
  every run, (b) every flow either completed or parked with a report,
  and (c) bit-identical event-trace signatures across runs (the
  determinism contract).  Exits 1 when any of the three fails.
* ``chaos validate <spec.json>`` — load and echo a campaign without
  running it; exits 1 on schema errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.campaign import FaultCampaign


def cmd_chaos(args: argparse.Namespace) -> int:
    handler = {
        "run": _cmd_run,
        "validate": _cmd_validate,
    }[args.chaos_command]
    return handler(args)


def _load(path: str) -> Optional["FaultCampaign"]:
    from repro.chaos.campaign import load_campaign_file

    try:
        return load_campaign_file(path)
    except (OSError, ValueError, TypeError, KeyError) as exc:
        print(f"error: cannot load campaign {path!r}: {exc}", file=sys.stderr)
        return None


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.chaos.runner import CampaignResult, run_campaign
    from repro.obs import make_obs

    campaign = _load(args.spec)
    if campaign is None:
        return 1
    if campaign.description:
        print(f"# {campaign.description}")

    results: list[CampaignResult] = []
    for i in range(args.runs):
        result = run_campaign(
            campaign,
            obs=make_obs() if args.obs else None,
            emit_manifest=args.manifest and i == 0,
            out_dir=args.out_dir,
        )
        results.append(result)
        print(f"run {i + 1}/{args.runs}: {result.summary()}")

    ok = True
    for result in results:
        if not result.consistent:
            ok = False
            for violation in result.violations:
                print(
                    f"VIOLATION t={violation['time']:.3f} "
                    f"{violation['kind']} flow={violation['flow_id']}: "
                    f"{violation['detail']}"
                )
        if not result.completed:
            ok = False
            stuck = result.flows_total - result.flows_completed - result.flows_parked
            print(f"INCOMPLETE: {stuck} flow(s) neither completed nor parked")
    signatures = {result.trace_signature for result in results}
    if len(signatures) > 1:
        ok = False
        print(f"NON-DETERMINISTIC: {len(signatures)} distinct trace signatures")
    for report in results[0].parked_reports:
        print(
            f"parked flow {report['flow_id']} at {report['time_ms']:.1f} ms: "
            f"{report['reason']} (failed edges: {report['failed_edges']})"
        )
    print("OK" if ok else "FAILED")
    return 0 if ok else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    campaign = _load(args.spec)
    if campaign is None:
        return 1
    print(campaign.to_json())
    return 0


def add_chaos_parser(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "chaos", help="robustness: run fault-injection campaigns"
    )
    chaos_sub = parser.add_subparsers(dest="chaos_command", required=True)
    prun = chaos_sub.add_parser(
        "run", help="execute a campaign and assert invariants + determinism"
    )
    prun.add_argument("spec", help="path to a campaign JSON file")
    prun.add_argument(
        "--runs", type=int, default=2,
        help="same-seed repetitions for the determinism check (default 2)",
    )
    prun.add_argument(
        "--obs", action="store_true",
        help="instrument runs with live metrics (fault/retry/recovery counters)",
    )
    prun.add_argument(
        "--manifest", action="store_true",
        help="write a BENCH_-style manifest for the first run",
    )
    prun.add_argument(
        "--out-dir", default=None,
        help="directory for the manifest (default: benchmarks/baselines)",
    )
    pval = chaos_sub.add_parser("validate", help="load and echo a campaign spec")
    pval.add_argument("spec", help="path to a campaign JSON file")
