"""Baselines the paper compares against (§9.1 "Previous Work"):

* :mod:`repro.baselines.central` — centralized dependency-graph
  updates in rounds (Mahajan & Wattenhofer / Dionysus style, [57]);
* :mod:`repro.baselines.ezsegway` — decentralized updates with
  in_loop / not_in_loop segments and GoodToMove coordination ([63]),
  re-implemented the way the P4Update authors describe their port of
  it ("the update order within each segment is encoded into the
  egress of each segment").
"""

from repro.baselines.central import CentralController, CentralSwitch
from repro.baselines.ezsegway import (
    EzSegwayController,
    EzSegwaySwitch,
    prepare_ez_update,
)

__all__ = [
    "CentralController",
    "CentralSwitch",
    "EzSegwayController",
    "EzSegwaySwitch",
    "prepare_ez_update",
]
