"""Integration tests for congestion-freedom (§7.4, App. A.2) at the
full-protocol level."""


from repro.consistency import LiveChecker
from repro.core.messages import UpdateType
from repro.harness.build import build_p4update_network
from repro.params import DelayDistribution, SimParams
from repro.topo.graph import Topology
from repro.traffic.flows import Flow


def fast_params(seed=0):
    return SimParams(
        seed=seed,
        pipeline_delay=DelayDistribution.constant(0.1),
        rule_install_delay=DelayDistribution.constant(1.0),
        controller_service=DelayDistribution.constant(0.2),
        controller_background_util=0.0,
        unm_generation_delay=DelayDistribution.constant(0.5),
    )


def diamond(capacity_b=10.0) -> Topology:
    """s -> {a, b, c} -> t, with s-b capacity-constrained."""
    topo = Topology("diamond")
    for node in ("s", "a", "b", "c", "t"):
        topo.add_node(node)
    for mid in ("a", "b", "c"):
        cap = capacity_b if mid == "b" else 100.0
        topo.add_edge("s", mid, latency_ms=1.0, capacity=cap)
        topo.add_edge(mid, "t", latency_ms=1.0, capacity=100.0)
    topo.set_controller("s")
    return topo


def two_flows(size1=6.0, size2=6.0):
    f1 = Flow.between("s", "t", size=size1, old_path=["s", "a", "t"])
    f2 = Flow(flow_id=f1.flow_id + 1, src="s", dst="t", size=size2,
              old_path=["s", "b", "t"])
    return f1, f2


def test_dependent_moves_resolve_in_order():
    """f1 wants onto s-b which only frees once f2 moved to s-c: the
    data-plane scheduler must defer f1, then admit it."""
    topo = diamond(capacity_b=10.0)
    dep = build_p4update_network(topo, params=fast_params())
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    f1, f2 = two_flows()
    dep.install_flow(f1)
    dep.install_flow(f2)
    dep.controller.update_flow(f1.flow_id, ["s", "b", "t"], UpdateType.SINGLE)
    dep.controller.update_flow(f2.flow_id, ["s", "c", "t"], UpdateType.SINGLE)
    dep.run()
    assert dep.controller.all_updates_complete()
    assert checker.ok, checker.violations
    # f1's move must have been deferred at least once.
    assert dep.switches["s"].program.stats["capacity_deferrals"] >= 1
    # Order: f1's flip at s must come after f2's.
    flips = {
        e.detail["flow"]: e.time
        for e in dep.network.trace.of_kind("rule_change")
        if e.node == "s"
    }
    assert flips[f1.flow_id] > flips[f2.flow_id]


def test_infeasible_move_never_applied():
    """With no capacity ever freeing, the flow must keep its old path
    (consistency over progress, §5-ii)."""
    topo = diamond(capacity_b=10.0)
    dep = build_p4update_network(topo, params=fast_params())
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    f1, f2 = two_flows(size1=6.0, size2=6.0)
    dep.install_flow(f1)
    dep.install_flow(f2)
    # Only f1 moves; f2 stays on s-b: 6+6 > 10 is never feasible.
    dep.controller.update_flow(f1.flow_id, ["s", "b", "t"], UpdateType.SINGLE)
    dep.run(until=15_000.0)
    assert checker.ok, checker.violations
    assert not dep.controller.update_complete(f1.flow_id)
    walk, outcome = dep.forwarding_state.walk(f1.flow_id)
    assert outcome == "delivered" and walk == ["s", "a", "t"]


def test_same_link_move_is_free():
    """A version bump that keeps the egress link never needs capacity."""
    topo = diamond(capacity_b=6.0)
    dep = build_p4update_network(topo, params=fast_params())
    f2 = Flow.between("s", "t", size=6.0, old_path=["s", "b", "t"])
    dep.install_flow(f2)
    # Re-push the same path: link s-b is exactly full with this flow,
    # but moving onto one's own link must not self-block (§A.2).
    dep.controller.update_flow(f2.flow_id, ["s", "b", "t"], UpdateType.SINGLE)
    dep.run()
    assert dep.controller.update_complete(f2.flow_id)


def test_congestion_unaware_mode_skips_checks():
    topo = diamond(capacity_b=1.0)      # far too small
    dep = build_p4update_network(topo, params=fast_params())
    dep.set_congestion_aware(False)
    f1, _ = two_flows(size1=6.0)
    dep.install_flow(f1)
    dep.controller.update_flow(f1.flow_id, ["s", "b", "t"], UpdateType.SINGLE)
    dep.run()
    assert dep.controller.update_complete(f1.flow_id), (
        "without congestion awareness the move must go through"
    )


def test_flow_size_change_rejected_with_alarm():
    """App. A.2: 'the flow size stays identical ... else discard'."""
    topo = diamond()
    dep = build_p4update_network(topo, params=fast_params())
    f1, _ = two_flows()
    dep.install_flow(f1)
    prepared = dep.controller.prepare_update(
        f1.flow_id, ["s", "b", "t"], UpdateType.SINGLE
    )
    # Tamper with the advertised size of one UIM.
    from dataclasses import replace as dc_replace

    tampered = [dc_replace(uim, flow_size=uim.flow_size * 3) for uim in prepared.uims]
    for uim in tampered:
        dep.controller.send_control(uim)
    dep.run(until=5_000.0)
    assert any("size" in a.reason for a in dep.controller.alarms)
    walk, outcome = dep.forwarding_state.walk(f1.flow_id)
    assert outcome == "delivered" and walk == ["s", "a", "t"], (
        "the tampered update must not have been applied"
    )


def test_high_priority_flow_moves_first_end_to_end():
    """§7.4 priorities at protocol level: a blocked flow raises the
    priority of the flow it waits for; once capacity frees, the chain
    completes."""
    topo = Topology("chain3")
    for node in ("s", "a", "b", "c", "t"):
        topo.add_node(node)
    topo.add_edge("s", "a", latency_ms=1.0, capacity=100.0)
    topo.add_edge("s", "b", latency_ms=1.0, capacity=10.0)
    topo.add_edge("s", "c", latency_ms=1.0, capacity=10.0)
    for mid in ("a", "b", "c"):
        topo.add_edge(mid, "t", latency_ms=1.0, capacity=100.0)
    topo.set_controller("s")
    dep = build_p4update_network(topo, params=fast_params())
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    f1 = Flow.between("s", "t", size=7.0, old_path=["s", "a", "t"])
    f2 = Flow(flow_id=f1.flow_id + 1, src="s", dst="t", size=7.0,
              old_path=["s", "b", "t"])
    f3 = Flow(flow_id=f1.flow_id + 2, src="s", dst="t", size=7.0,
              old_path=["s", "c", "t"])
    for flow in (f1, f2, f3):
        dep.install_flow(flow)
    # f1 -> b (blocked by f2), f2 -> c (blocked by f3), f3 -> a (free).
    dep.controller.update_flow(f1.flow_id, ["s", "b", "t"], UpdateType.SINGLE)
    dep.controller.update_flow(f2.flow_id, ["s", "c", "t"], UpdateType.SINGLE)
    dep.controller.update_flow(f3.flow_id, ["s", "a", "t"], UpdateType.SINGLE)
    dep.run()
    assert dep.controller.all_updates_complete()
    assert checker.ok, checker.violations
