"""SessionSpec validation: unknown fields, topology checks, limits."""

import json

import pytest

from repro.chaos.campaign import SpecTopologyError
from repro.ops.spec import (
    OP_KINDS,
    SessionSpecError,
    load_session_spec,
    load_session_spec_file,
)

SERVE = {
    "name": "bg",
    "topology": "fig1",
    "seed": 3,
    "flows": 3,
    "requests": 6,
    "mode": "open",
    "arrival_rate_per_s": 50.0,
    "horizon_ms": 10000.0,
}


def _spec_doc(**overrides):
    doc = {
        "name": "s",
        "serve": dict(SERVE),
        "timeline": [{"at_ms": 100.0, "op": "rebalance", "max_moves": 2}],
    }
    doc.update(overrides)
    return doc


def test_minimal_spec_loads():
    spec = load_session_spec(_spec_doc())
    assert spec.name == "s"
    assert spec.tenants == 4
    assert spec.checkpoint_every_ms == 0.0
    assert [e["op"] for e in spec.timeline] == ["rebalance"]


def test_op_kinds_catalogue():
    assert OP_KINDS == (
        "migrate_tenant", "drain_switch", "undrain_switch", "rebalance"
    )


def test_unknown_top_level_field_rejected():
    with pytest.raises(SessionSpecError, match="unknown session spec field"):
        load_session_spec(_spec_doc(surprise=1))


def test_unknown_timeline_field_rejected():
    doc = _spec_doc(
        timeline=[{"at_ms": 1.0, "op": "rebalance", "bogus": True}]
    )
    with pytest.raises(SessionSpecError, match="unknown field"):
        load_session_spec(doc)


def test_unknown_op_rejected():
    doc = _spec_doc(timeline=[{"at_ms": 1.0, "op": "explode"}])
    with pytest.raises(SessionSpecError, match="unknown op"):
        load_session_spec(doc)


def test_causal_serve_rejected():
    doc = _spec_doc(serve=dict(SERVE, causal=True))
    with pytest.raises(SessionSpecError, match="causal"):
        load_session_spec(doc)


def test_unknown_switch_is_structured_topology_error():
    doc = _spec_doc(
        timeline=[{"at_ms": 1.0, "op": "drain_switch", "switch": "nowhere"}]
    )
    with pytest.raises(SpecTopologyError) as excinfo:
        load_session_spec(doc)
    # Structured: the error names the topology and each bad reference.
    assert excinfo.value.topology == "fig1"
    assert any("nowhere" in p for p in excinfo.value.problems)


def test_unknown_avoid_node_is_structured_topology_error():
    doc = _spec_doc(
        timeline=[
            {"at_ms": 1.0, "op": "migrate_tenant", "tenant": 0,
             "avoid": ["atlantis"]}
        ]
    )
    with pytest.raises(SpecTopologyError) as excinfo:
        load_session_spec(doc)
    assert any("atlantis" in p for p in excinfo.value.problems)


def test_embedded_serve_events_validated_against_topology():
    doc = _spec_doc(
        serve=dict(
            SERVE,
            events=[{"time_ms": 10.0, "kind": "link_down",
                     "node_a": "ghost", "node_b": "town"}],
        )
    )
    with pytest.raises(SpecTopologyError):
        load_session_spec(doc)


def test_tenant_out_of_range_rejected():
    doc = _spec_doc(
        tenants=2,
        timeline=[{"at_ms": 1.0, "op": "migrate_tenant", "tenant": 2}],
    )
    with pytest.raises(SessionSpecError, match="tenant"):
        load_session_spec(doc)


def test_negative_checkpoint_cadence_rejected():
    with pytest.raises(SessionSpecError, match="checkpoint_every_ms"):
        load_session_spec(_spec_doc(checkpoint_every_ms=-1.0))


def test_spec_hash_is_canonical_and_stable():
    a = load_session_spec(_spec_doc())
    b = load_session_spec(_spec_doc())
    assert a.spec_hash() == b.spec_hash()
    assert a.spec_hash() != load_session_spec(_spec_doc(tenants=5)).spec_hash()


def test_to_dict_round_trips():
    spec = load_session_spec(_spec_doc(checkpoint_every_ms=500.0))
    again = load_session_spec(json.loads(json.dumps(spec.to_dict())))
    assert again.spec_hash() == spec.spec_hash()


def test_example_spec_loads(tmp_path):
    spec = load_session_spec_file("examples/ops_drain.json")
    assert spec.name == "drain-smoke"
    assert spec.checkpoint_every_ms > 0
    assert {e["op"] for e in spec.timeline} <= set(OP_KINDS)
