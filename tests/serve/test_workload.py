"""Flow population and arrival-stream properties."""

import itertools

import numpy as np
import pytest

from repro.chaos.runner import TOPOLOGIES
from repro.serve.workload import (
    build_flow_population,
    closed_loop_pick,
    flow_weights,
    open_loop_arrivals,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


def test_population_flows_are_reroutable_and_distinct():
    topo = TOPOLOGIES["b4"]()
    population = build_flow_population(topo, 8, _rng())
    assert len(population) == 8
    assert len({f.flow_id for f in population}) == 8
    for service_flow in population:
        assert service_flow.primary != service_flow.alternate
        assert service_flow.primary[0] == service_flow.src
        assert service_flow.primary[-1] == service_flow.dst
        assert service_flow.alternate[0] == service_flow.src
        assert service_flow.alternate[-1] == service_flow.dst
        assert service_flow.size > 0


def test_population_same_seed_identical():
    topo = TOPOLOGIES["b4"]()
    p1 = build_flow_population(topo, 8, _rng(42))
    p2 = build_flow_population(topo, 8, _rng(42))
    assert p1 == p2


def test_population_different_seed_differs():
    topo = TOPOLOGIES["b4"]()
    p1 = build_flow_population(topo, 8, _rng(1))
    p2 = build_flow_population(topo, 8, _rng(2))
    assert p1 != p2


def test_population_too_small_topology_raises():
    topo = TOPOLOGIES["fig1"]()
    with pytest.raises(ValueError, match="reroutable flows"):
        build_flow_population(topo, 1000, _rng())


def test_flow_weights_normalised():
    topo = TOPOLOGIES["b4"]()
    population = build_flow_population(topo, 8, _rng())
    weights = flow_weights(population)
    assert weights.shape == (8,)
    assert float(weights.sum()) == pytest.approx(1.0)
    assert all(w > 0 for w in weights)


def test_open_loop_arrivals_lazy_and_seeded():
    topo = TOPOLOGIES["b4"]()
    population = build_flow_population(topo, 8, _rng())
    # The stream is a generator: asking for a million arrivals costs
    # nothing until consumed, and consuming a prefix is O(prefix).
    stream = open_loop_arrivals(_rng(7), population, 100.0, 1_000_000)
    head = list(itertools.islice(stream, 50))
    assert len(head) == 50
    again = list(
        itertools.islice(
            open_loop_arrivals(_rng(7), population, 100.0, 1_000_000), 50
        )
    )
    assert head == again
    for gap_ms, index in head:
        assert gap_ms >= 0
        assert 0 <= index < len(population)
    gaps = [g for g, _ in head]
    assert np.mean(gaps) == pytest.approx(10.0, rel=0.6)  # 100/s -> ~10ms


def test_open_loop_arrivals_respects_limit():
    topo = TOPOLOGIES["b4"]()
    population = build_flow_population(topo, 4, _rng())
    assert len(list(open_loop_arrivals(_rng(), population, 50.0, 17))) == 17


def test_open_loop_arrivals_rejects_zero_rate():
    topo = TOPOLOGIES["b4"]()
    population = build_flow_population(topo, 4, _rng())
    with pytest.raises(ValueError):
        next(open_loop_arrivals(_rng(), population, 0.0, 1))


def test_closed_loop_pick_in_range_and_seeded():
    topo = TOPOLOGIES["b4"]()
    population = build_flow_population(topo, 8, _rng())
    weights = flow_weights(population)
    picks = [closed_loop_pick(_rng(3), population, weights) for _ in range(5)]
    assert len(set(picks)) == 1  # fresh same-seed rng -> same pick
    assert all(0 <= p < len(population) for p in picks)
