"""The ``chaos`` CLI subcommand: run / validate fault campaigns.

Wired into :mod:`repro.harness.cli`; kept here so the harness stays a
thin argument-parsing layer.

* ``chaos run <spec.json> [--runs N]`` — execute a campaign N times
  with the same seed and assert (a) zero consistency violations on
  every run, (b) every flow either completed or parked with a report,
  and (c) bit-identical event-trace signatures across runs (the
  determinism contract).  Exits 1 when any of the three fails.
* ``chaos validate <spec.json>`` — load and echo a campaign without
  running it; exits 1 on schema errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.campaign import FaultCampaign


def cmd_chaos(args: argparse.Namespace) -> int:
    handler = {
        "run": _cmd_run,
        "validate": _cmd_validate,
    }[args.chaos_command]
    return handler(args)


def _load(path: str) -> Optional["FaultCampaign"]:
    from repro.chaos.campaign import (
        SpecTopologyError,
        load_campaign_file,
        validate_events_against_topology,
    )

    try:
        campaign = load_campaign_file(path)
        validate_events_against_topology(
            campaign.events, campaign.topology, context="events"
        )
        return campaign
    except SpecTopologyError as exc:
        print(
            f"error: campaign {path!r}: unknown node reference(s) "
            f"for topology {exc.topology!r}:",
            file=sys.stderr,
        )
        for problem in exc.problems:
            print(f"  - {problem}", file=sys.stderr)
        return None
    except (OSError, ValueError, TypeError, KeyError) as exc:
        print(f"error: cannot load campaign {path!r}: {exc}", file=sys.stderr)
        return None


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.sweep.executor import run_sweep
    from repro.sweep.spec import load_sweep_spec

    campaign = _load(args.spec)
    if campaign is None:
        return 1
    if campaign.description:
        print(f"# {campaign.description}")

    # The N same-seed repetitions are a chaos-kind sweep fleet: each
    # run is one shard, executed in a worker process (or inline with
    # --workers 1, the serial path the runner always had).
    spec = load_sweep_spec({
        "name": f"chaos-{campaign.name}",
        "kind": "chaos",
        "seed": campaign.seed,
        "campaign": campaign.to_dict(),
        "runs": args.runs,
        "obs": args.obs,
    })
    run = run_sweep(
        spec, workers=args.workers, cache_dir=args.cache_dir,
    )
    for failure in run.failures:
        print(
            f"SHARD FAILURE {failure['shard_id']} "
            f"({failure['attempts']} attempt(s)): "
            f"{failure['error_type']}: {failure['message']}",
            file=sys.stderr,
        )
    docs = sorted(run.shard_docs, key=lambda d: int(d["index"]))
    for doc in docs:
        results = doc["results"]
        status = "CONSISTENT" if results["consistent"] else "VIOLATIONS"
        print(
            f"run {doc['index'] + 1}/{args.runs}: {campaign.name}: "
            f"{results['flows_completed']}/{results['flows_total']} flows "
            f"completed, {results['flows_parked']} parked, "
            f"{len(results['violations'])} violations [{status}], "
            f"signature {results['trace_signature'][:16]}"
        )

    ok = run.ok
    for doc in docs:
        results = doc["results"]
        if not results["consistent"]:
            ok = False
            for violation in results["violations"]:
                print(
                    f"VIOLATION t={violation['time']:.3f} "
                    f"{violation['kind']} flow={violation['flow_id']}: "
                    f"{violation['detail']}"
                )
        if not results["completed"]:
            ok = False
            stuck = (results["flows_total"] - results["flows_completed"]
                     - results["flows_parked"])
            print(f"INCOMPLETE: {stuck} flow(s) neither completed nor parked")
    signatures = {doc["results"]["trace_signature"] for doc in docs}
    if len(signatures) > 1:
        ok = False
        print(f"NON-DETERMINISTIC: {len(signatures)} distinct trace signatures")
    if docs:
        for report in docs[0]["results"]["parked_reports"]:
            print(
                f"parked flow {report['flow_id']} at {report['time_ms']:.1f} ms: "
                f"{report['reason']} (failed edges: {report['failed_edges']})"
            )
        if args.manifest:
            from repro.obs.manifest import write_manifest

            path = write_manifest(
                f"chaos_{campaign.name}",
                params=campaign.to_dict(),
                results=docs[0]["results"],
                seed=campaign.seed,
                out_dir=args.out_dir,
            )
            print(f"wrote {path}")
    print("OK" if ok else "FAILED")
    return 0 if ok else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    campaign = _load(args.spec)
    if campaign is None:
        return 1
    print(campaign.to_json())
    return 0


def add_chaos_parser(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "chaos", help="robustness: run fault-injection campaigns"
    )
    chaos_sub = parser.add_subparsers(dest="chaos_command", required=True)
    prun = chaos_sub.add_parser(
        "run", help="execute a campaign and assert invariants + determinism"
    )
    prun.add_argument("spec", help="path to a campaign JSON file")
    prun.add_argument(
        "--runs", type=int, default=2,
        help="same-seed repetitions for the determinism check (default 2)",
    )
    prun.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the repetitions (default 1: serial)",
    )
    prun.add_argument(
        "--cache-dir", default=None,
        help="sweep shard-cache root (default .sweep_cache)",
    )
    prun.add_argument(
        "--obs", action="store_true",
        help="instrument runs with live metrics (fault/retry/recovery counters)",
    )
    prun.add_argument(
        "--manifest", action="store_true",
        help="write a BENCH_-style manifest for the first run",
    )
    prun.add_argument(
        "--out-dir", default=None,
        help="directory for the manifest (default: benchmarks/baselines)",
    )
    pval = chaos_sub.add_parser("validate", help="load and echo a campaign spec")
    pval.add_argument("spec", help="path to a campaign JSON file")
