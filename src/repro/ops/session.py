"""Live operations sessions: a serve run overlaid with an ops timeline.

:func:`build_session` constructs an :class:`OpsSession` — a fully
picklable object graph owning the deployment, flow population,
orchestrator, consistency checker, arrival-driving state and the
operations timeline.  Everything the engine will ever call back into
is a bound method of an object inside that graph (no closures, no
generators), which is what makes rolling checkpoints possible: a
checkpoint is ``pickle.dumps`` of the session plus the registered
module-level counters (:mod:`repro.sim.snapshot`), and a resumed
session continues **byte-identically** to an uninterrupted run.

Operations execute as **rolling per-flow moves** through the existing
verified prepare/push pipeline (Alg. 1/2): each op moves one flow at a
time, waiting on the controller's completion callback before the next,
retrying on the simulated clock when a flow is busy with a tenant
update or chaos recovery.  A drain additionally installs its switch
into the orchestrator's avoid set so background tenant churn never
re-routes *onto* a draining switch, and re-scans for transit flows
until the switch is clean (or the stragglers are recorded — a failure
mid-drain parks or reroutes the affected flow, never strands the
drain loop itself).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

import networkx as nx
import numpy as np

from repro.analysis.interference import footprint_from_paths
from repro.chaos.campaign import TopoEvent
from repro.chaos.runner import TOPOLOGIES, _apply_topo_event, trace_signature
from repro.consistency.checker import LiveChecker
from repro.harness.build import build_p4update_network
from repro.obs.context import NULL_OBS, ObsContext
from repro.ops.spec import SessionSpec
from repro.params import SimParams
from repro.serve.model import OUTCOME_COMPLETED, OUTCOMES
from repro.serve.orchestrator import ServiceOrchestrator
from repro.serve.service import (
    _ARRIVAL_STREAM,
    _FLOW_STREAM,
    _summary,
    apply_link_capacity,
    link_capacities,
)
from repro.serve.workload import (
    build_flow_population,
    closed_loop_pick,
    flow_weights,
)
from repro.sim.reset import reset_global_state

#: Simulated delay before re-probing a busy flow (ms).
_RETRY_MS = 10.0
#: Give up moving one flow after this many busy/abort retries.
_MAX_MOVE_RETRIES = 200
#: A drain re-scans for transit flows at most this many times.
_MAX_DRAIN_ROUNDS = 8

#: Per-move terminal outcomes.
MOVE_MOVED = "moved"          # committed on the target path
MOVE_NOOP = "noop"            # already on the target path
MOVE_SKIPPED = "skipped"      # flow gone or parked before the move
MOVE_PARKED = "parked"        # recovery parked the flow mid-move
MOVE_NO_PATH = "no_path"      # avoidance disconnects the endpoints
MOVE_STRANDED = "stranded"    # retry budget exhausted
MOVE_UNFINISHED = "unfinished"  # still in flight at the horizon

#: Per-op terminal statuses.
OP_COMPLETED = "completed"
OP_UNFINISHED = "unfinished"      # horizon expired mid-op
OP_NOT_STARTED = "not_started"    # start time beyond the horizon


@dataclass
class _OpState:
    """Mutable execution state of one timeline entry."""

    index: int
    entry: dict
    status: str = "pending"
    started_ms: Optional[float] = None
    finished_ms: Optional[float] = None
    rounds: int = 0
    moves: list = field(default_factory=list)
    cursor: int = 0
    detail: dict = field(default_factory=dict)

    @property
    def active_move(self) -> Optional[dict]:
        if self.status == "running" and self.cursor < len(self.moves):
            return self.moves[self.cursor]
        return None

    def to_record(self) -> dict:
        return {
            "index": self.index,
            "op": self.entry["op"],
            "at_ms": float(self.entry["at_ms"]),
            "status": self.status,
            "started_ms": self.started_ms,
            "finished_ms": self.finished_ms,
            "rounds": self.rounds,
            "moves": [dict(m) for m in self.moves],
            "detail": dict(self.detail),
        }


@dataclass
class OpsResult:
    """Everything one session produced (JSON-safe via to_results)."""

    spec: SessionSpec
    records: list[dict]
    ops: list[dict]
    violations: list[dict]
    outcome_counts: dict[str, int]
    slo: dict[str, Any]
    peak_in_flight: int
    sim_time_ms: float
    events_processed: int
    trace_sig: str
    invariants_ok: bool
    trace_dropped: int
    path_cache: dict[str, float]
    resumed_from: Optional[int] = None

    @property
    def consistent(self) -> bool:
        return not self.violations

    @property
    def completed(self) -> int:
        return self.outcome_counts.get(OUTCOME_COMPLETED, 0)

    def signature(self) -> str:
        """SHA-256 over the deterministic payload: per-request records,
        per-operation records and consistency checks."""
        blob = json.dumps(
            {
                "records": self.records,
                "ops": self.ops,
                "violations": self.violations,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def ops_summary(self) -> dict[str, Any]:
        by_status: dict[str, int] = {}
        by_outcome: dict[str, int] = {}
        drains_clean = True
        for op in self.ops:
            by_status[op["status"]] = by_status.get(op["status"], 0) + 1
            for move in op["moves"]:
                outcome = move["outcome"]
                by_outcome[outcome] = by_outcome.get(outcome, 0) + 1
            if op["op"] == "drain_switch" and op["status"] == OP_COMPLETED:
                if op["detail"].get("transit_at_end", 0) != 0:
                    drains_clean = False
        return {
            "ops_total": len(self.ops),
            "ops_by_status": dict(sorted(by_status.items())),
            "moves_total": sum(len(op["moves"]) for op in self.ops),
            "moves_by_outcome": dict(sorted(by_outcome.items())),
            "drains_clean": drains_clean,
        }

    def to_results(self) -> dict[str, Any]:
        serve = self.spec.serve_spec()
        return {
            "name": self.spec.name,
            "topology": serve.topology,
            "seed": serve.seed,
            "requests": len(self.records),
            "outcomes": dict(sorted(self.outcome_counts.items())),
            "completed": self.completed,
            "consistent": self.consistent,
            "violations": self.violations,
            "invariants_ok": self.invariants_ok,
            "peak_in_flight": self.peak_in_flight,
            "slo": self.slo,
            "ops": self.ops,
            "ops_summary": self.ops_summary(),
            "path_cache": self.path_cache,
            "sim_time_ms": self.sim_time_ms,
            "events_processed": self.events_processed,
            "signature": self.signature(),
            "trace_signature": self.trace_sig,
            "trace_dropped_events": self.trace_dropped,
            "records": self.records,
        }


class OpsSession:
    """One live session: background churn + scheduled operations.

    Built by :func:`build_session`; every engine callback is a bound
    method of this object or of something it owns, so the whole graph
    pickles (the checkpoint contract)."""

    def __init__(
        self,
        spec: SessionSpec,
        serve: Any,
        deployment: Any,
        population: list,
        checker: LiveChecker,
        orchestrator: ServiceOrchestrator,
        arrival_rng: np.random.Generator,
        obs: ObsContext,
    ) -> None:
        self.spec = spec
        self.serve = serve
        self.deployment = deployment
        self.engine = deployment.network.engine
        self.controller = deployment.controller
        self.topo = deployment.topology
        self.population = population
        self.flows = {f.flow_id: f for f in population}
        self.checker = checker
        self.orchestrator = orchestrator
        self.obs = obs
        # Workload-driving state (the run_service closures, unrolled
        # into picklable attributes + bound methods).
        self.arrival_rng = arrival_rng
        self._weights = flow_weights(population)
        self._indices = np.arange(len(population))
        self._arrivals_left = serve.requests
        self._issued = 0
        # Operations state.
        self.op_states = [
            _OpState(index=i, entry=dict(entry))
            for i, entry in enumerate(spec.timeline)
        ]
        self.draining: set[str] = set()
        self._move_owner: dict[int, int] = {}   # flow_id -> op index
        # Tenant partition: population order modulo the tenant count.
        self._tenant_of = {
            f.flow_id: i % spec.tenants for i, f in enumerate(population)
        }
        # Checkpointing.  ``checkpoint_index`` is the last tick that
        # ran; ``_sink`` is the runtime-only writer — never pickled, so
        # checkpoint bytes are independent of where (or whether) they
        # were written.
        self.checkpoint_index = 0
        self.resumed_from: Optional[int] = None
        self._sink: Optional[Any] = None
        self.controller.update_listeners.append(self._on_update_event)

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_sink"] = None
        return state

    # -- construction-time scheduling --------------------------------------

    def wire(self) -> None:
        """Schedule the workload, the timeline and checkpoint ticks.

        Called once at build time (never on resume: the restored engine
        queue already contains everything below)."""
        if self.serve.mode == "open":
            self._next_arrival()
        else:
            self.orchestrator.on_terminal = self._client_on_terminal
            for _ in range(min(self.serve.clients, self.serve.requests)):
                self._client_submit()
        for state in self.op_states:
            at_ms = float(state.entry["at_ms"])
            if at_ms <= self.serve.horizon_ms:
                self.engine.schedule_at(at_ms, self._start_op, state.index)
        interval = self.spec.checkpoint_every_ms
        if interval > 0 and interval <= self.serve.horizon_ms:
            self.engine.schedule_at(interval, self._checkpoint_tick, 1)

    # -- workload (mirrors run_service, with bound methods) ------------------

    def _next_arrival(self) -> None:
        if self._arrivals_left <= 0:
            return
        self._arrivals_left -= 1
        gap = float(
            self.arrival_rng.exponential(1000.0 / self.serve.arrival_rate_per_s)
        )
        index = int(self.arrival_rng.choice(self._indices, p=self._weights))
        self.engine.schedule(gap, self._submit_open, index)

    def _submit_open(self, index: int) -> None:
        self.orchestrator.submit(self.population[index].flow_id)
        self._issued += 1
        self._next_arrival()

    def _client_submit(self) -> None:
        if self._issued >= self.serve.requests:
            return
        self._issued += 1
        index = closed_loop_pick(self.arrival_rng, self.population, self._weights)
        self.orchestrator.submit(self.population[index].flow_id)

    def _client_on_terminal(self, _request: Any) -> None:
        if self._issued < self.serve.requests:
            self.engine.schedule(self.serve.think_time_ms, self._client_submit)

    # -- checkpoint ticks ----------------------------------------------------

    def _checkpoint_tick(self, index: int) -> None:
        # The next tick is scheduled *before* capture so the snapshot
        # contains it — a resumed session keeps checkpointing on the
        # same cadence without re-wiring anything.
        next_time = (index + 1) * self.spec.checkpoint_every_ms
        if next_time <= self.serve.horizon_ms:
            self.engine.schedule_at(next_time, self._checkpoint_tick, index + 1)
        self.checkpoint_index = index
        if self._sink is not None:
            self._sink(self, index)

    # -- operations ----------------------------------------------------------

    def _avoid_set(self, extra: tuple = ()) -> frozenset[str]:
        return frozenset(self.draining) | frozenset(extra)

    def _transit_flows(self, switch: str) -> list[int]:
        """Flows currently transiting (interior hop) ``switch``.

        Endpoint flows cannot be evacuated and do not count — a drain's
        goal is zero *transit* flows."""
        out = []
        for flow_id in sorted(self.controller.flow_db):
            record = self.controller.flow_db[flow_id]
            if record.parked:
                continue
            if switch in record.current_path[1:-1]:
                out.append(flow_id)
        return out

    def _start_op(self, op_index: int) -> None:
        state = self.op_states[op_index]
        state.status = "running"
        state.started_ms = self.engine.now
        op = state.entry["op"]
        if self.obs.enabled:
            self.obs.count("ops_started", op=op)
        if op == "drain_switch":
            switch = state.entry["switch"]
            self.draining.add(switch)
            self.orchestrator.avoid_nodes = set(self.draining)
            transit = self._transit_flows(switch)
            state.detail["switch"] = switch
            state.detail["transit_at_start"] = len(transit)
            state.rounds = 1
            self._drain_gauge(switch, len(transit))
            state.moves.extend(self._drain_moves(transit))
            self._advance_op(op_index)
        elif op == "undrain_switch":
            switch = state.entry["switch"]
            self.draining.discard(switch)
            self.orchestrator.avoid_nodes = set(self.draining)
            state.detail["switch"] = switch
            self._finish_op(state)
            # Requests held off the switch may dispatch now.
            self.orchestrator.pump()
        elif op == "migrate_tenant":
            tenant = int(state.entry["tenant"])
            avoid = tuple(state.entry.get("avoid", ()))
            state.detail["tenant"] = tenant
            state.detail["avoid"] = list(avoid)
            for flow_id in sorted(self.flows):
                if self._tenant_of[flow_id] == tenant:
                    state.moves.append(self._move(flow_id, avoid=avoid))
            self._advance_op(op_index)
        else:  # rebalance
            max_moves = int(state.entry.get("max_moves", 4))
            planned, overcommitted = self._plan_rebalance(max_moves)
            state.detail["overcommitted_edges"] = overcommitted
            state.moves.extend(planned)
            self._advance_op(op_index)

    def _move(
        self,
        flow_id: int,
        target: Optional[list[str]] = None,
        avoid: tuple = (),
    ) -> dict:
        """A fresh move descriptor.  ``target`` pins an explicit path
        (rebalance); otherwise the path is recomputed at try time from
        ``avoid`` plus whatever is draining then."""
        return {
            "flow": flow_id,
            "target": list(target) if target is not None else None,
            "avoid": list(avoid),
            "scheduled_ms": self.engine.now,
            "pushed_ms": None,
            "completed_ms": None,
            "version": None,
            "retries": 0,
            "outcome": None,
        }

    def _drain_moves(self, transit: list[int]) -> list[dict]:
        return [self._move(flow_id) for flow_id in transit]

    def _drain_gauge(self, switch: str, transit: int) -> None:
        if self.obs.enabled:
            self.obs.gauge_set(
                "ops_drain_transit_flows", float(transit), switch=switch
            )

    def _advance_op(self, op_index: int) -> None:
        """Run the op's next pending move, or finish the op."""
        state = self.op_states[op_index]
        if state.status != "running":
            return
        while state.cursor < len(state.moves):
            move = state.moves[state.cursor]
            if move["outcome"] is not None:
                state.cursor += 1
                continue
            self._try_move(op_index)
            return
        self._op_queue_drained(op_index)

    def _op_queue_drained(self, op_index: int) -> None:
        state = self.op_states[op_index]
        if state.entry["op"] == "drain_switch":
            switch = state.entry["switch"]
            transit = self._transit_flows(switch)
            self._drain_gauge(switch, len(transit))
            if transit and state.rounds < _MAX_DRAIN_ROUNDS:
                # Chaos recovery (or an in-flight tenant update that
                # landed mid-drain) put new flows across the switch:
                # another rolling round.
                state.rounds += 1
                state.moves.extend(self._drain_moves(transit))
                self._advance_op(op_index)
                return
            state.detail["transit_at_end"] = len(transit)
            state.detail["stranded_flows"] = transit
        self._finish_op(state)

    def _finish_op(self, state: _OpState) -> None:
        state.status = OP_COMPLETED
        state.finished_ms = self.engine.now
        if self.obs.enabled:
            self.obs.count("ops_finished", op=state.entry["op"])
            if state.started_ms is not None:
                self.obs.observe(
                    "ops_op_ms", self.engine.now - state.started_ms,
                    op=state.entry["op"],
                )

    def _try_move(self, op_index: int) -> None:
        state = self.op_states[op_index]
        move = state.active_move
        if move is None:
            self._advance_op(op_index)
            return
        flow_id = move["flow"]
        record = self.controller.flow_db.get(flow_id)
        if record is None or record.parked:
            self._end_move(op_index, move, MOVE_SKIPPED)
            return
        target = move["target"]
        if target is None:
            flow = self.flows.get(flow_id)
            src = record.current_path[0]
            dst = record.current_path[-1]
            if flow is not None:
                src, dst = flow.src, flow.dst
            try:
                target = self.topo.shortest_path_avoiding(
                    src, dst, self._avoid_set(tuple(move["avoid"]))
                )
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                self._end_move(op_index, move, MOVE_NO_PATH)
                return
        if list(record.current_path) == list(target):
            self._end_move(op_index, move, MOVE_NOOP)
            return
        busy = (
            flow_id in self.orchestrator.in_flight
            or record.pending_version is not None
        )
        if busy:
            move["retries"] += 1
            if move["retries"] > _MAX_MOVE_RETRIES:
                self._end_move(op_index, move, MOVE_STRANDED)
                return
            self.engine.schedule(_RETRY_MS, self._try_move, op_index)
            return
        # The controller is single-threaded: same queueing + service
        # delay as an orchestrator dispatch before preparation runs.
        delay = (
            self.controller.control_queue_delay()
            + self.controller.control_service_time()
        )
        self.engine.schedule(delay, self._push_move, op_index, list(target))

    def _push_move(self, op_index: int, target: list[str]) -> None:
        state = self.op_states[op_index]
        move = state.active_move
        if move is None:
            self._advance_op(op_index)
            return
        flow_id = move["flow"]
        record = self.controller.flow_db.get(flow_id)
        if record is None or record.parked:
            self._end_move(op_index, move, MOVE_SKIPPED)
            return
        if (
            flow_id in self.orchestrator.in_flight
            or record.pending_version is not None
        ):
            # Grabbed between probe and push — back to the retry loop.
            move["retries"] += 1
            if move["retries"] > _MAX_MOVE_RETRIES:
                self._end_move(op_index, move, MOVE_STRANDED)
                return
            self.engine.schedule(_RETRY_MS, self._try_move, op_index)
            return
        prepared = self.controller.prepare_update(flow_id, list(target))
        move["version"] = prepared.version
        move["pushed_ms"] = self.engine.now
        move["target"] = list(target)
        self._move_owner[flow_id] = op_index
        self.controller.push_update(prepared)

    def _end_move(self, op_index: int, move: dict, outcome: str) -> None:
        move["outcome"] = outcome
        move["completed_ms"] = self.engine.now
        self._move_owner.pop(move["flow"], None)
        state = self.op_states[op_index]
        if self.obs.enabled:
            self.obs.count("ops_moves", op=state.entry["op"], outcome=outcome)
            if outcome == MOVE_MOVED and move["pushed_ms"] is not None:
                self.obs.observe(
                    "ops_move_ms",
                    self.engine.now - move["scheduled_ms"],
                    op=state.entry["op"],
                )
        self._advance_op(op_index)

    # -- controller completion callbacks -------------------------------------

    def _on_update_event(
        self, event: str, flow_id: int, version: Optional[int]
    ) -> None:
        op_index = self._move_owner.get(flow_id)
        if op_index is None:
            return
        state = self.op_states[op_index]
        move = state.active_move
        if move is None or move["flow"] != flow_id:
            return
        if event == "completed":
            if version == move["version"]:
                self._end_move(op_index, move, MOVE_MOVED)
        elif event == "aborted":
            if version == move["version"]:
                # Chaos rolled the move back — recompute and retry.
                self._move_owner.pop(flow_id, None)
                move["version"] = None
                move["pushed_ms"] = None
                move["retries"] += 1
                if move["retries"] > _MAX_MOVE_RETRIES:
                    self._end_move(op_index, move, MOVE_STRANDED)
                    return
                self.engine.schedule(_RETRY_MS, self._try_move, op_index)
        elif event == "parked":
            self._end_move(op_index, move, MOVE_PARKED)
        # "reissued": recovery re-driving its own reroute — wait.

    # -- run / finalize -------------------------------------------------------

    def run(self) -> None:
        """Advance the session to its horizon (build or resume)."""
        self.deployment.run(until=self.serve.horizon_ms)

    def finalize(self) -> OpsResult:
        """Horizon reached: close the books and build the result."""
        self.orchestrator.on_terminal = None
        self.orchestrator.finalize()
        for state in self.op_states:
            if state.status == "running":
                state.status = OP_UNFINISHED
            elif state.status == "pending":
                state.status = OP_NOT_STARTED
            for move in state.moves:
                if move["outcome"] is None:
                    # Still waiting on the pipeline (or a pending
                    # retry) when the horizon expired.
                    move["outcome"] = MOVE_UNFINISHED

        records = sorted(
            (r.to_record() for r in self.orchestrator.requests),
            key=lambda r: r["request_id"],
        )
        outcome_counts: dict[str, int] = {}
        for record in records:
            outcome = record["outcome"]
            outcome_counts[outcome] = outcome_counts.get(outcome, 0) + 1

        completed = [r for r in records if r["outcome"] == OUTCOME_COMPLETED]
        moved = [
            m
            for state in self.op_states
            for m in state.moves
            if m["outcome"] == MOVE_MOVED and m["pushed_ms"] is not None
        ]
        slo = {
            "e2e_ms": _summary(
                [r["completed_ms"] - r["submitted_ms"] for r in completed]
            ),
            "move_wait_ms": _summary(
                [m["pushed_ms"] - m["scheduled_ms"] for m in moved]
            ),
            "move_install_ms": _summary(
                [m["completed_ms"] - m["pushed_ms"] for m in moved]
            ),
            "move_e2e_ms": _summary(
                [m["completed_ms"] - m["scheduled_ms"] for m in moved]
            ),
        }
        violations = [
            {
                "time": v.time,
                "kind": v.kind,
                "flow_id": v.flow_id,
                "detail": v.detail,
            }
            for v in self.checker.violations
        ]
        invariants_ok = all(
            r["outcome"] in OUTCOMES and r["completed_ms"] is not None
            for r in records
        )
        return OpsResult(
            spec=self.spec,
            records=records,
            ops=[state.to_record() for state in self.op_states],
            violations=violations,
            outcome_counts=outcome_counts,
            slo=slo,
            peak_in_flight=self.orchestrator.peak_in_flight,
            sim_time_ms=self.engine.now,
            events_processed=self.engine.processed_events,
            trace_sig=trace_signature(self.deployment.network.trace),
            invariants_ok=invariants_ok,
            trace_dropped=self.deployment.network.trace.dropped_events,
            path_cache=self.topo.path_cache_stats(),
            resumed_from=self.resumed_from,
        )

    # -- rebalance planning ---------------------------------------------------

    def _edge_loads(self) -> dict[tuple[str, str], float]:
        loads: dict[tuple[str, str], float] = {}
        for flow_id in sorted(self.controller.flow_db):
            record = self.controller.flow_db[flow_id]
            if record.parked:
                continue
            path = record.current_path
            size = float(record.flow.size)
            for a, b in zip(path, path[1:]):
                loads[(a, b)] = loads.get((a, b), 0.0) + size
        return loads

    def _plan_rebalance(
        self, max_moves: int
    ) -> tuple[list[dict], list[list[str]]]:
        """Deterministic greedy plan: shed the largest flows from
        overcommitted directed edges onto their other serve path,
        accepting a move only when its capacity footprint (the
        interference analyzer's deltas) relieves the hot edge without
        overcommitting any other edge."""
        capacities = link_capacities(self.topo)
        loads = self._edge_loads()
        overcommitted = sorted(
            edge
            for edge, load in loads.items()
            if load > capacities.get(edge, float("inf"))
        )
        planned: list[dict] = []
        moved: set[int] = set()
        for edge in overcommitted:
            if len(planned) >= max_moves:
                break
            candidates = []
            for flow_id in sorted(self.controller.flow_db):
                if flow_id in moved or flow_id not in self.flows:
                    continue
                record = self.controller.flow_db[flow_id]
                if record.parked:
                    continue
                path = record.current_path
                if edge in zip(path, path[1:]):
                    candidates.append(
                        (-float(record.flow.size), flow_id)
                    )
            for _, flow_id in sorted(candidates):
                if len(planned) >= max_moves:
                    break
                if loads.get(edge, 0.0) <= capacities.get(edge, float("inf")):
                    break
                record = self.controller.flow_db[flow_id]
                flow = self.flows[flow_id]
                current = tuple(record.current_path)
                target = (
                    flow.alternate if current == flow.primary else flow.primary
                )
                if tuple(target) == current:
                    continue
                deltas = footprint_from_paths(
                    flow_id, current, tuple(target), float(record.flow.size)
                ).capacity_deltas()
                if deltas.get(edge, 0.0) >= 0.0:
                    continue  # does not relieve the hot edge
                if any(
                    delta > 0.0
                    and loads.get(e, 0.0) + delta
                    > capacities.get(e, float("inf"))
                    for e, delta in deltas.items()
                ):
                    continue  # would overcommit somewhere else
                for e, delta in deltas.items():
                    loads[e] = loads.get(e, 0.0) + delta
                moved.add(flow_id)
                planned.append(self._move(flow_id, target=list(target)))
        return planned, [list(edge) for edge in overcommitted]


def build_session(
    spec: SessionSpec, obs: Optional[ObsContext] = None
) -> OpsSession:
    """Construct a fresh, fully wired session (mirrors
    :func:`repro.serve.service.run_service` construction exactly, so
    the background churn of a session with an empty timeline matches a
    plain serve run of the embedded spec)."""
    reset_global_state()
    obs = obs if obs is not None else NULL_OBS
    serve = spec.serve_spec()
    topo = TOPOLOGIES[serve.topology]()
    apply_link_capacity(topo, serve.link_capacity)
    params = SimParams(seed=serve.seed)
    if serve.params:
        params = dataclasses.replace(params, **dict(serve.params))
    deployment = build_p4update_network(topo, params=params, obs=obs)
    deployment.set_congestion_aware(serve.congestion_aware)
    engine = deployment.network.engine

    flow_rng = np.random.default_rng([serve.seed, _FLOW_STREAM])
    population = build_flow_population(
        topo, serve.flows, flow_rng, mean_size=serve.mean_flow_size
    )
    for service_flow in population:
        deployment.install_flow(service_flow.to_flow())

    checker = LiveChecker(deployment.forwarding_state, deployment.network.trace)
    orchestrator = ServiceOrchestrator(
        serve, deployment, population, obs=obs,
        capacities=link_capacities(topo),
    )

    if serve.events:
        deployment.network.enable_chaos()
        for event_doc in serve.events:
            event = TopoEvent(**dict(event_doc))
            engine.schedule_at(
                event.time_ms, _apply_topo_event, deployment, event
            )

    arrival_rng = np.random.default_rng([serve.seed, _ARRIVAL_STREAM])
    session = OpsSession(
        spec=spec,
        serve=serve,
        deployment=deployment,
        population=population,
        checker=checker,
        orchestrator=orchestrator,
        arrival_rng=arrival_rng,
        obs=obs,
    )
    session.wire()
    return session


def run_session(
    spec: SessionSpec, obs: Optional[ObsContext] = None
) -> OpsResult:
    """Build, run to the horizon and finalize — the one-shot path used
    by sweep shards and the fuzz oracle (no checkpointing)."""
    session = build_session(spec, obs=obs)
    session.run()
    return session.finalize()
