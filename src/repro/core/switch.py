"""The P4Update switch agent.

Ties the :class:`~repro.core.dataplane.P4UpdateProgram` to the event
simulator: it receives UIMs over the control channel, performs the
timed rule installs the pipeline requests, originates UNMs (first
layer at the flow egress, second layer at segment-egress gateways) and
converts ingress-side completions and verification alarms into UFMs.

The agent also mirrors every applied rule into the shared
:class:`~repro.consistency.state.ForwardingState` and the trace, which
is what the consistency checker and the benches observe.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.consistency.state import ForwardingState
from repro.core.dataplane import P4UpdateProgram
from repro.core.messages import (
    FRM,
    UFM,
    UIM,
    ControlAck,
    PortStatus,
    Sequenced,
    TagFlip,
    UNMFields,
    UpdateType,
    make_cleanup,
)
from repro.p4.pipeline import CpuPunt, Pipeline
from repro.p4.switch import RuntimeAPI
from repro.core.registers import LOCAL_DELIVER_PORT, NO_PORT
from repro.core.verification import Decision, NodeFlowState, Verdict, apply_sl_state
from repro.p4.packet import Packet
from repro.p4.switch import P4Switch
from repro.params import SimParams
from repro.sim.trace import (
    KIND_PACKET_DELIVERED,
    KIND_PACKET_LOST,
    KIND_PACKET_RECV,
    KIND_RULE_CHANGE,
    KIND_VERIFY_FAIL,
)


class P4UpdateSwitch(P4Switch):
    """One P4Update-capable switch."""

    def __init__(
        self,
        name: str,
        params: Optional[SimParams] = None,
        rng: Optional[np.random.Generator] = None,
        max_flows: int = 4096,
        forwarding_state: Optional[ForwardingState] = None,
    ) -> None:
        program = P4UpdateProgram(max_flows=max_flows)
        super().__init__(name, program, params=params, rng=rng)
        self.program: P4UpdateProgram = program
        program.agent = self
        self.forwarding_state = forwarding_state
        self.on_punt = self._handle_punt
        self._max_flows = max_flows
        # flow_id -> version currently being installed (supersession
        # guard for fast-forward: a newer admitted install wins).
        self._installing: dict[int, int] = {}
        self.alarms: list[UFM] = []
        self.installs_completed = 0
        # §11 failure handling: when set (>0 ms), a switch that holds a
        # pending UIM but sees no UNM within the window alerts the
        # controller so the update can be re-triggered.
        self.unm_timeout_ms: float = 0.0
        # §11 compact updates: remaining piggybacked UIMs to forward
        # upstream on this flow-version's UNM, keyed (flow, version).
        self._piggyback: dict[tuple[int, int], tuple] = {}
        # Reliable control delivery (repro.chaos): sequence numbers of
        # Sequenced envelopes already processed, for receiver-side
        # dedup.  Survives crashes — the dedup window models sequence
        # state kept by the (restarting) switch agent, and keeping it
        # prevents a replayed retransmission from double-applying.
        self._seen_control_seqs: set[int] = set()

    # -- wiring -------------------------------------------------------------

    def configure_ports(self) -> None:
        """Identity clone sessions for every attached port and port
        capacities from link attributes.  Call after links are added."""
        if self.network is None:
            raise RuntimeError("attach the switch to a network first")
        for link in self.network.links:
            if self.name not in (link.node_a, link.node_b):
                continue
            port = link.port_a if link.node_a == self.name else link.port_b
            self.runtime.set_clone_session(port, port)
            self.program.scheduler.set_port_capacity(port, link.capacity)

    # -- initial deployment ------------------------------------------------------

    def install_initial_flow(
        self, flow_id: int, distance: int, egress_port: int, size: float
    ) -> None:
        """Bootstrap version-1 state (initial deployment, no timing)."""
        state = apply_sl_state(version=1, distance=distance)
        self.program.write_state(flow_id, state)
        self.program.set_current_port(flow_id, egress_port)
        self.program.set_flow_size(flow_id, size)
        if egress_port != LOCAL_DELIVER_PORT:
            self.program.scheduler.occupy(flow_id, egress_port, size)
        self._mirror_rule(flow_id, egress_port, record=False)

    # -- control plane messages -----------------------------------------------------

    def handle_control(self, message: Any, sender: str) -> None:
        if isinstance(message, Sequenced):
            # Reliable delivery (repro.chaos): always ack, process the
            # inner message at most once.  Dedup here makes duplicated
            # and retransmitted control messages safe end-to-end.
            self.send_control(ControlAck(seq=message.seq, reporter=self.name))
            if message.seq in self._seen_control_seqs:
                if self.obs.enabled:
                    self.obs.metrics.counter(
                        "duplicate_control_suppressed", node=self.name
                    ).inc()
                return
            self._seen_control_seqs.add(message.seq)
            message = message.inner
        if isinstance(message, UIM):
            self._process_uim(message)
        elif isinstance(message, TagFlip):
            self._process_tag_flip(message)

    # -- topology failures (repro.chaos) ------------------------------------

    def handle_port_status(self, port: int, up: bool) -> None:
        """A local link changed state: report it to the controller.

        This is the paper's §11 "port-down FRM" — the NIB learns about
        link failures from the adjacent switches' reports."""
        if self.network is None:
            return
        peer = self.network.neighbor_on_port(self.name, port)
        self.send_control(
            PortStatus(reporter=self.name, peer=peer, port=port, up=up)
        )

    def on_crash(self, preserve_state: bool) -> None:
        """Called by the network when this switch crashes.

        ``preserve_state=False`` models a power-cycle: the pipeline
        program (all UIB registers, pending UIMs, scheduler
        reservations) is rebuilt from scratch and the ground-truth
        forwarding rules held at this node are removed.  With
        ``preserve_state=True`` the data-plane state survives and the
        switch resumes where it left off after a restart."""
        if preserve_state:
            return
        if self.forwarding_state is not None:
            for flow_id in self.forwarding_state.flow_ids():
                if self.forwarding_state.next_hop(flow_id, self.name) is None:
                    continue
                self.forwarding_state.set_rule(flow_id, self.name, None)
                if self.network is not None:
                    self.network.trace.record(
                        self.now, KIND_RULE_CHANGE, self.name,
                        flow=flow_id, next_hop=None, port=None, crash=True,
                    )
        program = P4UpdateProgram(max_flows=self._max_flows)
        program.agent = self
        program.congestion_aware = self.program.congestion_aware
        self.program = program
        self.pipeline = Pipeline(program)
        self.runtime = RuntimeAPI(program)
        self._pipeline_busy_until = 0.0
        self._installing.clear()
        self._piggyback.clear()
        if self.network is not None:
            self.configure_ports()
        if self.obs.enabled:
            self.program.scheduler.attach_obs(self.obs, self.name)

    def on_restart(self) -> None:
        """Called by the network when the switch comes back up."""

    def _process_tag_flip(self, flip: TagFlip) -> None:
        """§11 2PC: atomically start stamping the new tag.

        The register write is a single data-plane update; from this
        instant every packet of the flow follows the new-tag rules
        end-to-end (per-packet consistency).  The ground-truth mirror
        records the whole path switch at this one instant, which is
        exactly the 2PC semantics the checker should see.
        """
        idx = self.program.flow_index.index_of(flip.flow_id)
        self.program.registers["ingress_tag"].write(idx, flip.tag)
        if self.forwarding_state is not None and flip.new_path:
            path = list(flip.new_path)
            for a, b in zip(path, path[1:]):
                self.forwarding_state.set_rule(flip.flow_id, a, b)
            if self.network is not None:
                for a, b in zip(path, path[1:]):
                    self.network.trace.record(
                        self.now, KIND_RULE_CHANGE, a,
                        flow=flip.flow_id, next_hop=b, two_phase_flip=True,
                    )
        self.send_control(
            UFM(
                flow_id=flip.flow_id,
                version=flip.version,
                reporter=self.name,
                status="success",
                reason="tag_flipped",
            )
        )

    def _process_uim(self, uim: UIM) -> None:
        program = self.program
        state = program.state_of(uim.flow_id)
        if uim.version == state.new_version and (
            uim.is_flow_egress or uim.is_segment_egress
        ):
            # §11 re-trigger: the controller resent the UIM after a
            # reported UNM loss — regenerate the notification.
            wait = self.params.unm_generation_delay.sample(self.rng)
            if uim.is_flow_egress:
                unm = program.build_unm(uim.flow_id, layer=1, update_type=uim.update_type)
                self.engine.schedule(wait, self._emit_unm_for, unm, uim)
            else:
                unm = program.build_unm(uim.flow_id, layer=2, update_type=uim.update_type)
                self.engine.schedule(wait, self._emit_unm_for, unm, uim)
            return
        if uim.version <= state.new_version:
            self._send_alarm(
                uim.flow_id, uim.version,
                f"UIM version {uim.version} not newer than applied {state.new_version}",
            )
            return
        if program.flow_index.known(uim.flow_id):
            known_size = program.flow_size_of(uim.flow_id)
            if known_size > 0 and abs(known_size - uim.flow_size) > 1e-9:
                # App. A.2: the flow size must stay identical; discard.
                self._send_alarm(
                    uim.flow_id, uim.version,
                    f"flow size changed {known_size} -> {uim.flow_size}",
                )
                return
        if uim.version <= program.pending_version(uim.flow_id):
            if (
                uim.version == program.pending_version(uim.flow_id)
                and uim.update_type is UpdateType.DUAL
                and uim.is_segment_egress
            ):
                # §11 re-trigger at a segment egress that has not yet
                # applied: regenerate the second-layer UNM.
                wait = self.params.unm_generation_delay.sample(self.rng)
                self.engine.schedule(wait, self._originate_pending_unm, uim)
            return  # duplicate / older than the pending indication
        program.store_uim(uim)
        if program.flow_size_of(uim.flow_id) == 0:
            program.set_flow_size(uim.flow_id, uim.flow_size)
        if uim.piggyback:
            self._piggyback[(uim.flow_id, uim.version)] = tuple(uim.piggyback)
        if self.unm_timeout_ms > 0 and not uim.is_flow_egress:
            self.engine.schedule(self.unm_timeout_ms, self._check_unm_timeout, uim, 0)

        if uim.is_flow_egress:
            # §7.1: the egress node applies the new configuration
            # directly, then notifies its child.
            decision = Decision(
                verdict=Verdict.UPDATE,
                new_state=self._egress_state(uim),
                branch="egress",
            )
            self.schedule_install(uim, decision, unm_layer=1)
        elif uim.update_type is UpdateType.DUAL and uim.is_segment_egress:
            # Segment-egress gateway: originate the second-layer UNM,
            # carrying pending-new + applied-old state.  Origination
            # clones an ongoing packet of the flow (§8), so it waits
            # for the next one to pass.
            wait = self.params.unm_generation_delay.sample(self.rng)
            self.engine.schedule(wait, self._originate_pending_unm, uim)

    def _originate_pending_unm(self, uim: UIM) -> None:
        if self.program.state_of(uim.flow_id).new_version >= uim.version:
            return  # already updated meanwhile; the chain is running
        unm = self.program.build_pending_unm(uim, layer=2)
        self._emit_unm_for(unm, uim)

    def _egress_state(self, uim: UIM) -> NodeFlowState:
        previous = self.program.state_of(uim.flow_id)
        if uim.update_type is UpdateType.DUAL:
            return NodeFlowState(
                new_version=uim.version,
                new_distance=0,
                old_version=uim.version - 1,
                old_distance=previous.old_distance,
                counter=0,
                update_type=UpdateType.DUAL,
            )
        return apply_sl_state(uim.version, 0)

    def installing_version(self, flow_id: int) -> int:
        """Version currently being installed for the flow (0 if none)."""
        return self._installing.get(flow_id, 0)

    # -- timed rule installation ----------------------------------------------------------

    def schedule_install(self, uim: UIM, decision: Decision, unm_layer: int) -> None:
        """Install the new rule after the rule-install delay.

        Called by the pipeline on an admitted UPDATE and by the agent
        itself for the egress apply.  A newer version supersedes any
        in-flight install of an older one (fast-forward, §4.2).
        """
        current = self._installing.get(uim.flow_id, 0)
        if uim.version <= current:
            return
        self._installing[uim.flow_id] = uim.version
        if self.program.current_port(uim.flow_id) == uim.egress_port:
            # Version/distance registers change but the forwarding rule
            # does not (e.g. the egress node): a register write, not a
            # table install.
            delay = self.params.pipeline_delay.sample(self.rng)
        else:
            delay = self.params.rule_install_delay.sample(self.rng)
        self.engine.schedule(
            delay, self._complete_install, uim, decision, unm_layer
        )

    def _complete_install(self, uim: UIM, decision: Decision, unm_layer: int) -> None:
        # Superseded installs must not abort the newer admission's
        # reservation — try_move already rolled back the older transit
        # when the newer target was admitted.
        if self._installing.get(uim.flow_id, 0) != uim.version:
            return  # superseded by a newer update
        state = self.program.state_of(uim.flow_id)
        if state.new_version >= uim.version:
            return  # already at this or a newer version
        assert decision.new_state is not None
        if uim.stage_tag is not None:
            # §11 2-phase commit: stage the rule under the new tag; the
            # live (old-tag) forwarding is untouched until the ingress
            # flips, so no cleanup and no capacity hand-over here.
            idx = self.program.flow_index.index_of(uim.flow_id)
            tag_array = "port_tag1" if uim.stage_tag else "port_tag0"
            self.program.registers[tag_array].write(idx, uim.egress_port)
            self.program.registers["two_phase"].write(idx, 1)
            self.program.write_state(uim.flow_id, decision.new_state)
            self.installs_completed += 1
            if self.network is not None:
                self.network.trace.record(
                    self.now, "rule_staged", self.name,
                    flow=uim.flow_id, tag=uim.stage_tag, port=uim.egress_port,
                )
            if uim.is_ingress and unm_layer == 1:
                self._send_ufm_success(uim)
            elif not (decision.branch == "gateway" and unm_layer == 2):
                unm = self.program.build_unm(
                    uim.flow_id, layer=unm_layer, update_type=uim.update_type
                )
                if decision.branch == "egress":
                    wait = self.params.unm_generation_delay.sample(self.rng)
                    self.engine.schedule(wait, self._emit_unm_for, unm, uim)
                else:
                    self._emit_unm_for(unm, uim)
            return
        old_port = self.program.current_port(uim.flow_id)
        self.program.write_state(uim.flow_id, decision.new_state)
        self.program.set_current_port(uim.flow_id, uim.egress_port)
        if self.program.congestion_aware and uim.egress_port != LOCAL_DELIVER_PORT:
            # Traffic has moved: release the old link's reservation.
            self.program.scheduler.commit_move(uim.flow_id)
        self.installs_completed += 1
        if self.obs.enabled:
            self.obs.metrics.counter("rule_installs", node=self.name).inc()
        self._mirror_rule(uim.flow_id, uim.egress_port, record=True)
        if old_port not in (NO_PORT, LOCAL_DELIVER_PORT) and old_port != uim.egress_port:
            # §11 rule cleanup: tell the abandoned old parent that no
            # further packets will arrive on this link.
            self.send(old_port, make_cleanup(uim.flow_id, uim.version))

        # Coordination after the install (paper §7.2, §8).
        if uim.is_ingress and unm_layer == 1:
            self._send_ufm_success(uim)
        elif uim.is_ingress:
            # Updated via a second-layer UNM; the first-layer UNM will
            # still arrive and trigger the UFM via pass-on handling.
            pass
        elif not (decision.branch == "gateway" and unm_layer == 2):
            # Second-layer UNMs stop at gateways (§8); everything else
            # keeps propagating upstream.  The flow egress *originates*
            # its UNM by cloning an ongoing packet (wait for one);
            # downstream forwarders clone the received UNM (no wait).
            unm = self.program.build_unm(
                uim.flow_id, layer=unm_layer, update_type=uim.update_type
            )
            if decision.branch == "egress":
                wait = self.params.unm_generation_delay.sample(self.rng)
                self.engine.schedule(wait, self._emit_unm_for, unm, uim)
            else:
                self._emit_unm_for(unm, uim)

    def _mirror_rule(self, flow_id: int, egress_port: int, record: bool) -> None:
        next_hop: Optional[str] = None
        if egress_port not in (LOCAL_DELIVER_PORT, NO_PORT) and self.network is not None:
            next_hop = self.network.neighbor_on_port(self.name, egress_port)
        if self.forwarding_state is not None and next_hop is not None:
            self.forwarding_state.set_rule(flow_id, self.name, next_hop)
        if record and self.network is not None:
            self.network.trace.record(
                self.now, KIND_RULE_CHANGE, self.name,
                flow=flow_id, next_hop=next_hop, port=egress_port,
            )

    # -- UNM / UFM emission -------------------------------------------------------------------

    def adopt_piggyback(self, packet: Packet, unm: UNMFields) -> None:
        """§11 compact updates: pop this node's UIM from the UNM's
        header stack and process it as if delivered by the controller."""
        stack = packet.meta.get("uim_stack") or ()
        if not stack:
            return
        mine = stack[0]
        if mine.target != self.name or mine.version != unm.new_version:
            return
        self._piggyback[(mine.flow_id, mine.version)] = tuple(stack[1:])
        packet.meta["uim_stack"] = ()
        already = max(
            self.program.state_of(mine.flow_id).new_version,
            self.program.pending_version(mine.flow_id),
        )
        if already >= mine.version:
            return  # duplicate delivery on a later notification
        self._process_uim(mine)

    def _emit_unm(self, unm: UNMFields, port: Optional[int]) -> None:
        if port is None or port == NO_PORT:
            return
        packet = unm.to_packet()
        stack = self._piggyback.get((unm.flow_id, unm.new_version))
        if stack:
            packet.meta["uim_stack"] = stack
        self.send(port, packet)

    def _emit_unm_for(self, unm: UNMFields, uim: UIM) -> None:
        """Send the UNM towards the update's child(ren): a single child
        for path updates, every tree child for §11 destination trees."""
        if uim.child_ports:
            for port in uim.child_ports:
                self._emit_unm(unm, port)
        else:
            self._emit_unm(unm, uim.child_port)

    def _send_ufm_success(self, uim: UIM) -> None:
        self.send_control(
            UFM(
                flow_id=uim.flow_id,
                version=uim.version,
                reporter=self.name,
                status="success",
            )
        )

    def _send_alarm(self, flow_id: int, version: int, reason: str) -> None:
        ufm = UFM(
            flow_id=flow_id, version=version, reporter=self.name,
            status="alarm", reason=reason,
        )
        self.alarms.append(ufm)
        if self.obs.enabled:
            self.obs.metrics.counter("verification_fail", node=self.name).inc()
        if self.network is not None:
            self.network.trace.record(
                self.now, KIND_VERIFY_FAIL, self.name,
                flow=flow_id, reason=reason,
            )
            self.send_control(ufm)

    # -- punt handling (CPU port) -----------------------------------------------------------------

    def _handle_punt(self, _switch: P4Switch, punt: CpuPunt) -> None:
        reason: str = punt.reason
        if reason == "frm":
            header = punt.packet.header("probe")
            self.send_control(
                FRM(
                    flow_id=header["flow_id"],
                    src=self.name,
                    dst="?",
                    reporter=self.name,
                )
            )
        elif reason == "ufm_success":
            unm = UNMFields.from_packet(punt.packet)
            self.send_control(
                UFM(
                    flow_id=unm.flow_id,
                    version=unm.new_version,
                    reporter=self.name,
                    status="success",
                )
            )
        elif reason.startswith("alarm:"):
            _, verdict, detail = reason.split(":", 2)
            unm = UNMFields.from_packet(punt.packet)
            self._send_alarm(unm.flow_id, unm.new_version, f"{verdict}: {detail}")

    # How many times the §11 watchdog re-arms before giving up.
    MAX_WATCHDOG_CHECKS = 20

    def _check_unm_timeout(self, uim: UIM, checks: int) -> None:
        """§11: "the gateway nodes would periodically monitor the
        arrival of UNM" — no notification within the window means it
        was lost; alert the controller and keep watching."""
        state = self.program.state_of(uim.flow_id)
        if state.new_version >= uim.version:
            return  # the update arrived after all
        if self.program.pending_version(uim.flow_id) > uim.version:
            return  # superseded by a newer update
        self.send_control(
            UFM(
                flow_id=uim.flow_id,
                version=uim.version,
                reporter=self.name,
                status="alarm",
                reason="unm_timeout",
            )
        )
        if checks + 1 < self.MAX_WATCHDOG_CHECKS:
            self.engine.schedule(
                self.unm_timeout_ms, self._check_unm_timeout, uim, checks + 1
            )

    def note_rule_removed(self, flow_id: int) -> None:
        """Mirror a cleanup-driven rule removal into the ground truth."""
        if self.forwarding_state is not None:
            self.forwarding_state.set_rule(flow_id, self.name, None)
        if self.network is not None:
            self.network.trace.record(
                self.now, KIND_RULE_CHANGE, self.name,
                flow=flow_id, next_hop=None, port=None, cleanup=True,
            )

    # -- probe observation hooks (used by Fig. 2) ----------------------------------------------------

    def note_probe_seen(self, flow_id: int, packet: Packet) -> None:
        packet.meta.setdefault("hops", []).append(self.name)
        if self.network is not None:
            self.network.trace.record(
                self.now, KIND_PACKET_RECV, self.name,
                flow=flow_id, seq=packet.header("probe")["seq"], ttl=packet.ttl,
            )

    def note_probe_delivered(self, flow_id: int, packet: Packet) -> None:
        if self.network is not None:
            self.network.trace.record(
                self.now, KIND_PACKET_DELIVERED, self.name,
                flow=flow_id, seq=packet.header("probe")["seq"],
            )

    def note_probe_ttl_expired(self, flow_id: int, packet: Packet) -> None:
        if self.network is not None:
            self.network.trace.record(
                self.now, KIND_PACKET_LOST, self.name,
                flow=flow_id, seq=packet.header("probe")["seq"], reason="ttl",
            )
