"""Tests for waypoint-traversal checking (§12 future work) and its
interaction with the 2PC update mode."""

import pytest

from repro.consistency.state import ForwardingState
from repro.consistency.waypoint import (
    WaypointPolicy,
    check_packet_waypoints,
    check_state_waypoints,
    paths_satisfy,
)


def test_policy_requires_waypoints():
    with pytest.raises(ValueError):
        WaypointPolicy.require(1)
    policy = WaypointPolicy.require(1, "fw")
    assert policy.waypoints == frozenset({"fw"})


def test_static_check_passes_through_waypoint():
    state = ForwardingState()
    state.register_flow(1, "a", "d", size=1.0)
    state.set_rule(1, "a", "fw")
    state.set_rule(1, "fw", "c")
    state.set_rule(1, "c", "d")
    policy = WaypointPolicy.require(1, "fw")
    assert check_state_waypoints(state, [policy]) == []


def test_static_check_flags_bypass():
    state = ForwardingState()
    state.register_flow(1, "a", "d", size=1.0)
    state.set_rule(1, "a", "c")
    state.set_rule(1, "c", "d")
    policy = WaypointPolicy.require(1, "fw")
    violations = check_state_waypoints(state, [policy])
    assert len(violations) == 1
    assert violations[0].missing == frozenset({"fw"})


def test_static_check_ignores_undeliverable():
    state = ForwardingState()
    state.register_flow(1, "a", "d", size=1.0)
    state.set_rule(1, "a", "c")          # blackhole at c
    policy = WaypointPolicy.require(1, "fw")
    assert check_state_waypoints(state, [policy]) == []


def test_packet_check():
    policy = WaypointPolicy.require(1, "fw")
    logs = [(0, ["a", "fw", "d"]), (1, ["a", "c", "d"]), (2, ["a", "fw", "d"])]
    violations = check_packet_waypoints(logs, policy)
    assert [v.packet_seq for v in violations] == [1]


def test_paths_satisfy():
    policy = WaypointPolicy.require(1, "fw")
    assert paths_satisfy(policy, ["a", "fw", "d"], ["a", "x", "fw", "d"])
    assert not paths_satisfy(policy, ["a", "fw", "d"], ["a", "d"])


def test_two_phase_preserves_waypoint_per_packet():
    """End to end: both paths contain the waypoint; under a 2PC update
    every delivered packet traverses it, even mid-update."""
    from repro.harness.build import build_p4update_network
    from repro.harness.probes import ProbeSource
    from repro.params import DelayDistribution, SimParams
    from repro.traffic.flows import Flow

    # Ring of 8: both n0->n4 arcs exist; waypoint must be on both
    # paths, so use the shared egress-neighbour trick: waypoint = n3
    # only lies on one arc — instead demand the egress-adjacent node
    # of each direction... simplest honest setup: a 6-node topology
    # where old and new share the waypoint.
    from repro.topo.graph import Topology

    topo = Topology("wp")
    for node in ("s", "fw", "a", "b", "t"):
        topo.add_node(node)
    topo.add_edge("s", "fw", latency_ms=1.0)
    topo.add_edge("fw", "a", latency_ms=1.0)
    topo.add_edge("fw", "b", latency_ms=1.0)
    topo.add_edge("a", "t", latency_ms=1.0)
    topo.add_edge("b", "t", latency_ms=1.0)
    topo.set_controller("s")

    params = SimParams(
        seed=0,
        pipeline_delay=DelayDistribution.constant(0.1),
        rule_install_delay=DelayDistribution.constant(5.0),
        controller_service=DelayDistribution.constant(0.2),
        controller_background_util=0.0,
        unm_generation_delay=DelayDistribution.constant(0.5),
    )
    dep = build_p4update_network(topo, params=params)
    old = ["s", "fw", "a", "t"]
    new = ["s", "fw", "b", "t"]
    flow = Flow.between("s", "t", size=1.0, old_path=old)
    dep.install_flow(flow)

    logs = []
    original = dep.switches["t"].note_probe_delivered

    def record(flow_id, packet, _orig=original):
        logs.append((packet.header("probe")["seq"], list(packet.meta.get("hops", []))))
        _orig(flow_id, packet)

    dep.switches["t"].note_probe_delivered = record
    source = ProbeSource(dep, flow.flow_id, "s", rate_pps=400.0)
    source.start(at=1.0, stop_at=150.0)
    dep.network.engine.schedule(20.0, dep.controller.two_phase_update, flow.flow_id, new)
    dep.run(until=400.0)

    policy = WaypointPolicy.require(flow.flow_id, "fw")
    assert paths_satisfy(policy, old, new)
    assert logs, "probes must have been delivered"
    assert check_packet_waypoints(logs, policy) == []
