"""Figure 2 — §4.1 'Risk Inconsistencies, Update Quickly?'.

Regenerates the packet series of Fig. 2b (receives at v1) and Fig. 2c
(deliveries at v4) for ez-Segway and P4Update under the out-of-order
update scenario: configuration (c) deployed while (b)'s control
messages are delayed in flight.

Paper's result: ez-Segway traps packets in the {v1, v2, v3} loop until
(b) arrives and loses packets to TTL expiry; P4Update receives every
packet exactly once at v1 and delivers every packet at v4.
"""

from benchutils import emit_manifest, print_header

from repro.harness.fig_experiments import run_fig2
from repro.params import SimParams


def run_both(seed: int = 0):
    params = SimParams(seed=seed)
    return {
        "ezsegway": run_fig2("ezsegway", params=params),
        "p4update": run_fig2("p4update", params=params),
    }


def test_fig2(benchmark):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    ez, p4 = results["ezsegway"], results["p4update"]

    print_header("Fig. 2 — inconsistent updates: (c) deployed while (b) is delayed")
    for name, r in results.items():
        delivered = len({o.seq for o in r.delivered_at_v4})
        print(
            f"{name:10s} probes={r.probes_sent:4d}  "
            f"looped_seqs_at_v1={len(r.duplicates_at_v1):3d}  "
            f"loop_window={r.loop_window_ms:7.1f} ms  "
            f"ttl_losses={r.ttl_losses:3d}  delivered_at_v4={delivered:4d}"
        )
    print()
    print("paper: ez-Segway -> packets trapped in loop v1,v2,v3 during the window,")
    print("       losses after 21 laps (TTL 64); P4Update -> every packet exactly once.")

    # Shape assertions (Fig. 2b).
    assert ez.duplicates_at_v1, "ez-Segway must show looped packets at v1"
    assert ez.loop_window_ms > 0
    assert p4.duplicates_at_v1 == {}, "P4Update must never deliver a seq twice at v1"
    # Shape assertions (Fig. 2c).
    assert ez.ttl_losses > 0, "ez-Segway must lose packets to TTL expiry"
    assert p4.ttl_losses == 0
    assert len({o.seq for o in p4.delivered_at_v4}) == p4.probes_sent
    assert len({o.seq for o in ez.delivered_at_v4}) < ez.probes_sent
    # P4Update's verification must have rejected the stale update
    # without any consistency violation.
    assert p4.consistency_violations == 0
    assert ez.consistency_violations > 0

    from repro.harness.scenarios import single_flow_scenario
    from repro.topo import fig1_topology

    import numpy as np
    from benchutils import instrumented_obs

    obs = instrumented_obs(
        "p4update",
        single_flow_scenario(fig1_topology(), np.random.default_rng(0)),
        SimParams(seed=0),
    )
    emit_manifest(
        "fig2_inconsistency",
        params={"seed": 0},
        results={
            name: {
                "probes_sent": r.probes_sent,
                "looped_seqs_at_v1": len(r.duplicates_at_v1),
                "loop_window_ms": r.loop_window_ms,
                "ttl_losses": r.ttl_losses,
                "delivered_at_v4": len({o.seq for o in r.delivered_at_v4}),
                "consistency_violations": r.consistency_violations,
            }
            for name, r in results.items()
        },
        seed=0,
        obs=obs,
    )
