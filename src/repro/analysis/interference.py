"""Static inter-plan interference analysis.

P4Update's consistency argument (Alg. 1/2) is *per update*: each
switch locally verifies the order of one flow's install chain.  The
service orchestrator, however, dispatches many prepared plans
concurrently and relies on dynamic serialization (same-flow,
shared-footprint, ``max_in_flight``) to keep concurrent updates from
interleaving badly.  This module proves — or refutes — that a *batch*
of plans cannot interleave into a consistency violation, before a
single UIM is sent:

1. :func:`footprint_of` extracts each plan's read/write footprint:
   the pending-version register slots it writes (one per (switch,
   flow)), the table entries it installs, and its directed-edge
   capacity deltas (edges entered / left / kept).
2. :func:`build_happens_before` composes every plan's internal
   dependency DAG (the Alg. 1/2 enable order) with the orchestrator's
   serialization policies into one static happens-before order over
   all install/verify operations in the batch.
3. :func:`detect_interference` enumerates unordered plan pairs and
   classifies them into typed findings — ``version-slot-race``,
   ``transient-loop``, ``transient-blackhole``, ``link-overcommit``
   and ``cross-plan-deadlock`` — each carrying a concrete interleaving
   counterexample (an execution prefix, step by step, ending in the
   bad state).

The capacity detectors are mode-aware: with the §7.4 data-plane
scheduler active (``congestion_aware=True``) a transient overcommit
cannot occur — the scheduler defers the move instead, so the hazard
surfaces as a *cross-plan deadlock* (two unordered plans each holding
old+new capacity the other needs).  With the scheduler off, the same
unordered capacity deltas surface as a *link overcommit*.  Findings
are only ever emitted for hazards created by interleaving: a final
state that overcommits a link under every serialization is the batch's
intent, not an interference bug, and is deliberately not reported.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping, Optional, Sequence

from repro.analysis.findings import Finding
from repro.analysis.plan import UpdatePlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.spec import ServeSpec

#: The typed finding kinds, in severity order (loops first: they drop
#: packets into a cycle *and* exhaust link capacity while doing so).
INTERFERENCE_KINDS = (
    "transient-loop",
    "transient-blackhole",
    "version-slot-race",
    "link-overcommit",
    "cross-plan-deadlock",
)

#: Tolerance for capacity comparisons (mirrors the live checker).
_CAP_EPS = 1e-9


# -- footprints ---------------------------------------------------------------


def _path_edges(path: Sequence[str]) -> tuple[tuple[str, str], ...]:
    return tuple(zip(path, path[1:]))


@dataclass(frozen=True)
class PlanFootprint:
    """What one plan reads and writes, seen by the rest of the batch.

    ``version_slots`` are the pending-version register slots the plan
    writes — one per (switch, flow) pair, the resource same-flow
    serialization protects.  ``table_entries`` are the forwarding
    entries installed, keyed (switch, flow, version).  The edge sets
    drive the capacity analysis: ``enter_edges`` gain the flow's load,
    ``leave_edges`` shed it, ``stay_edges`` carry it throughout.
    """

    flow_id: int
    version: int
    flow_size: float
    switches: frozenset[str]
    version_slots: tuple[tuple[str, int], ...]
    table_entries: tuple[tuple[str, int, int], ...]
    old_edges: tuple[tuple[str, str], ...]
    new_edges: tuple[tuple[str, str], ...]

    @property
    def enter_edges(self) -> frozenset[tuple[str, str]]:
        return frozenset(self.new_edges) - frozenset(self.old_edges)

    @property
    def leave_edges(self) -> frozenset[tuple[str, str]]:
        return frozenset(self.old_edges) - frozenset(self.new_edges)

    @property
    def stay_edges(self) -> frozenset[tuple[str, str]]:
        return frozenset(self.old_edges) & frozenset(self.new_edges)

    @property
    def touched_edges(self) -> frozenset[tuple[str, str]]:
        """Edges that may carry this flow at *some* instant mid-update."""
        return frozenset(self.old_edges) | frozenset(self.new_edges)

    def capacity_deltas(self) -> dict[tuple[str, str], float]:
        """Directed-edge load change once the plan completes."""
        deltas: dict[tuple[str, str], float] = {}
        for edge in sorted(self.enter_edges):
            deltas[edge] = deltas.get(edge, 0.0) + self.flow_size
        for edge in sorted(self.leave_edges):
            deltas[edge] = deltas.get(edge, 0.0) - self.flow_size
        return deltas


def footprint_of(plan: UpdatePlan) -> PlanFootprint:
    """Extract the read/write footprint of one prepared plan."""
    switches = frozenset(install.node for install in plan.installs)
    return PlanFootprint(
        flow_id=plan.flow_id,
        version=plan.version,
        flow_size=plan.flow_size,
        switches=switches,
        version_slots=tuple(
            (node, plan.flow_id) for node in sorted(switches)
        ),
        table_entries=tuple(
            (install.node, plan.flow_id, install.version)
            for install in plan.installs
        ),
        old_edges=_path_edges(plan.old_path),
        new_edges=_path_edges(plan.new_path),
    )


def footprint_from_paths(
    flow_id: int,
    old_path: Sequence[str],
    new_path: Sequence[str],
    flow_size: float,
    version: int = 0,
) -> PlanFootprint:
    """Footprint for a not-yet-prepared update (the admission gate
    sees the target paths before ``prepare_update`` runs)."""
    switches = frozenset(new_path)
    return PlanFootprint(
        flow_id=flow_id,
        version=version,
        flow_size=flow_size,
        switches=switches,
        version_slots=tuple((node, flow_id) for node in sorted(switches)),
        table_entries=tuple(
            (node, flow_id, version) for node in sorted(switches)
        ),
        old_edges=_path_edges(old_path),
        new_edges=_path_edges(new_path),
    )


# -- happens-before -----------------------------------------------------------


@dataclass(frozen=True)
class BatchPolicies:
    """The orchestrator serialization policies, as static order.

    ``same_flow`` and ``shared_switch`` order conflicting plan pairs
    by batch (submission) position, exactly as the orchestrator's
    in-flight tracking does.  ``max_in_flight=1`` is a total order.
    A cap greater than one bounds concurrency without ordering any
    *specific* pair, so it soundly contributes no edges.
    ``extra_order`` carries injected (earlier, later) plan-index pairs
    — the ``static_interference=serialize`` gate's output.
    """

    same_flow: bool = False
    shared_switch: bool = False
    max_in_flight: int = 0
    extra_order: tuple[tuple[int, int], ...] = ()

    def to_dict(self) -> dict:
        return {
            "same_flow": self.same_flow,
            "shared_switch": self.shared_switch,
            "max_in_flight": self.max_in_flight,
            "extra_order": [list(pair) for pair in self.extra_order],
        }


@dataclass(frozen=True)
class PlanOp:
    """One operation in the batch-wide order."""

    plan: int       # batch index of the owning plan
    node: str
    action: str     # "install" | "verify"

    def describe(self) -> str:
        return f"plan#{self.plan}:{self.action}@{self.node}"


@dataclass
class HappensBefore:
    """The composed static order over every operation in a batch."""

    plans: list[UpdatePlan]
    footprints: list[PlanFootprint]
    policies: BatchPolicies
    ops: tuple[PlanOp, ...]
    #: Intra-plan enable edges (a happens before b), op granularity.
    op_edges: tuple[tuple[PlanOp, PlanOp], ...]
    #: Transitively closed plan-level order: (i, j) = i fully precedes j.
    plan_before: frozenset[tuple[int, int]]
    #: Per-plan op-level reachability (intra-plan order).
    _op_before: dict[int, frozenset[tuple[str, str]]] = field(
        default_factory=dict
    )

    def ordered(self, i: int, j: int) -> bool:
        """Is the pair of plans (i, j) ordered either way?"""
        return (i, j) in self.plan_before or (j, i) in self.plan_before

    def op_ordered(self, a: PlanOp, b: PlanOp) -> bool:
        if a.plan != b.plan:
            return self.ordered(a.plan, b.plan)
        if a.node == b.node:
            # install enables verify on the same node.
            return a.action != b.action
        reach = self._op_before.get(a.plan, frozenset())
        return (a.node, b.node) in reach or (b.node, a.node) in reach

    def unordered_plan_pairs(self) -> Iterator[tuple[int, int]]:
        for i in range(len(self.plans)):
            for j in range(i + 1, len(self.plans)):
                if not self.ordered(i, j):
                    yield (i, j)


def _transitive_pairs(
    count: int, edges: set[tuple[int, int]]
) -> frozenset[tuple[int, int]]:
    adjacency: dict[int, set[int]] = {i: set() for i in range(count)}
    for a, b in edges:
        if 0 <= a < count and 0 <= b < count:
            adjacency[a].add(b)
    closed: set[tuple[int, int]] = set()
    for start in range(count):
        frontier = list(adjacency[start])
        seen: set[int] = set()
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            closed.add((start, node))
            frontier.extend(adjacency[node])
    return frozenset(closed)


def _plan_node_order(plan: UpdatePlan) -> frozenset[tuple[str, str]]:
    """Intra-plan (earlier, later) node pairs from the enable edges."""
    nodes = sorted({install.node for install in plan.installs})
    index = {node: i for i, node in enumerate(nodes)}
    edges = {
        (index[a], index[b])
        for a, b in plan.notify_edges
        if a in index and b in index
    }
    edges.update(
        (index[prerequisite], index[waiter])
        for waiter, prerequisite in plan.dependencies
        if waiter in index and prerequisite in index
    )
    closed = _transitive_pairs(len(nodes), edges)
    return frozenset((nodes[a], nodes[b]) for a, b in closed)


def build_happens_before(
    plans: Sequence[UpdatePlan],
    policies: Optional[BatchPolicies] = None,
    footprints: Optional[Sequence[PlanFootprint]] = None,
) -> HappensBefore:
    """Compose intra-plan DAGs with the serialization policies.

    Plans are taken in batch order — the orchestrator's submission
    order — and every policy that serializes a conflicting pair orders
    the earlier plan fully before the later one.
    """
    policies = policies if policies is not None else BatchPolicies()
    prints = (
        list(footprints)
        if footprints is not None
        else [footprint_of(plan) for plan in plans]
    )

    ops: list[PlanOp] = []
    op_edges: list[tuple[PlanOp, PlanOp]] = []
    for index, plan in enumerate(plans):
        installs = {
            install.node: PlanOp(index, install.node, "install")
            for install in plan.installs
        }
        verifies = {
            node: PlanOp(index, node, "verify") for node in installs
        }
        for node in sorted(installs):
            ops.append(installs[node])
            ops.append(verifies[node])
            op_edges.append((installs[node], verifies[node]))
        for a, b in plan.notify_edges:
            if a in verifies and b in installs:
                op_edges.append((verifies[a], installs[b]))
        for waiter, prerequisite in plan.dependencies:
            if prerequisite in verifies and waiter in installs:
                op_edges.append((verifies[prerequisite], installs[waiter]))

    pair_edges: set[tuple[int, int]] = set()
    for i in range(len(plans)):
        for j in range(i + 1, len(plans)):
            if policies.same_flow and prints[i].flow_id == prints[j].flow_id:
                pair_edges.add((i, j))
            elif policies.shared_switch and (
                prints[i].switches & prints[j].switches
            ):
                pair_edges.add((i, j))
            elif policies.max_in_flight == 1:
                pair_edges.add((i, j))
    pair_edges.update(policies.extra_order)

    hb = HappensBefore(
        plans=list(plans),
        footprints=prints,
        policies=policies,
        ops=tuple(ops),
        op_edges=tuple(op_edges),
        plan_before=_transitive_pairs(len(plans), pair_edges),
    )
    for index, plan in enumerate(plans):
        hb._op_before[index] = _plan_node_order(plan)
    return hb


# -- findings -----------------------------------------------------------------


@dataclass(frozen=True)
class InterferenceFinding:
    """One typed interference hazard between plans of a batch.

    ``counterexample`` is a concrete interleaving: an ordered list of
    execution steps, consistent with the happens-before order, whose
    final step states the violated property.
    """

    kind: str
    message: str
    subject: str                   # the contended resource
    plans: tuple[int, ...]         # batch indices involved
    flows: tuple[int, ...]
    counterexample: tuple[str, ...]
    #: (earlier, later) plan-index pairs that would silence this
    #: finding — what the ``serialize`` gate injects.  Direction
    #: matters: a leaver must complete before an enterer dispatches.
    suggested_order: tuple[tuple[int, int], ...] = ()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "message": self.message,
            "subject": self.subject,
            "plans": list(self.plans),
            "flows": list(self.flows),
            "counterexample": list(self.counterexample),
            "suggested_order": [list(pair) for pair in self.suggested_order],
        }

    def format(self) -> str:
        lines = [f"{self.kind} [{self.subject}]: {self.message}"]
        lines.extend(f"    {i + 1}. {step}"
                     for i, step in enumerate(self.counterexample))
        return "\n".join(lines)


@dataclass
class InterferenceReport:
    """Outcome of analyzing one batch."""

    label: str
    plan_count: int
    policies: BatchPolicies
    congestion_aware: bool
    findings: list[InterferenceFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "plans": self.plan_count,
            "policies": self.policies.to_dict(),
            "congestion_aware": self.congestion_aware,
            "findings": [f.to_dict() for f in self.findings],
        }

    def signature(self) -> str:
        """SHA-256 over the canonical findings JSON."""
        blob = json.dumps(
            [f.to_dict() for f in self.findings],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_findings(self) -> list[Finding]:
        """Project into the shared static-analysis finding schema."""
        out = []
        for index, finding in enumerate(self.findings):
            out.append(
                Finding(
                    rule=f"interference-{finding.kind}",
                    message=f"[{finding.subject}] {finding.message}",
                    path=self.label,
                    line=index + 1,
                )
            )
        return out

    def describe(self) -> str:
        head = (
            f"batch {self.label!r}: {self.plan_count} plan(s), "
            f"{len(self.findings)} finding(s)"
        )
        if self.ok:
            return f"{head}: OK"
        return "\n".join([head] + [f.format() for f in self.findings])


# -- detectors ----------------------------------------------------------------


def _plan_tag(index: int, plan: UpdatePlan) -> str:
    return f"plan#{index}(flow {plan.flow_id}, v{plan.version})"


def _install_order(plan: UpdatePlan) -> list[str]:
    """A valid execution order of the plan's installs: distance
    ascending (egress first), exactly the Alg. 1/2 enable chain."""
    return [
        install.node
        for install in sorted(
            plan.installs, key=lambda i: (i.distance, i.node)
        )
    ]


def _next_hops(path: Sequence[str]) -> dict[str, str]:
    return {a: b for a, b in zip(path, path[1:])}


def _same_flow_pair_findings(
    i: int,
    j: int,
    plans: Sequence[UpdatePlan],
    prints: Sequence[PlanFootprint],
) -> list[InterferenceFinding]:
    """Hazards between two unordered plans updating the *same* flow."""
    p, q = plans[i], plans[j]
    fp, fq = prints[i], prints[j]
    out: list[InterferenceFinding] = []
    tag_p, tag_q = _plan_tag(i, p), _plan_tag(j, q)

    # Write-write on the pending-version register slot.
    shared_slots = sorted(set(fp.version_slots) & set(fq.version_slots))
    if shared_slots:
        node, flow = shared_slots[0]
        steps = [
            f"{tag_p}: install at {node} — slot ({node}, flow {flow}) "
            f"now pends v{p.version}",
            f"{tag_q}: install at {node} — overwrites the slot with "
            f"v{q.version} while {tag_p}'s verification is in flight",
            f"{tag_p}'s UNM for v{p.version} reaches {node}: the slot "
            f"holds v{q.version}, the ack chain stalls",
        ]
        out.append(
            InterferenceFinding(
                kind="version-slot-race",
                message=(
                    f"{tag_p} and {tag_q} both write the pending-version "
                    f"register slot at {len(shared_slots)} switch(es) "
                    f"({', '.join(sorted(n for n, _ in shared_slots))}) "
                    f"with no order between them"
                ),
                subject=f"slot({node},flow{flow})",
                plans=(i, j),
                flows=(p.flow_id,),
                counterexample=tuple(steps),
                suggested_order=((i, j),),
            )
        )

    # Transient loop: a cycle in the merged forwarding relation (any
    # rule either plan may activate, plus the not-yet-removed old
    # rules).
    union: dict[str, dict[str, str]] = {}
    providers = (
        (f"{tag_p} old rule", _next_hops(p.old_path)),
        (f"{tag_p} new rule", _next_hops(p.new_path)),
        (f"{tag_q} old rule", _next_hops(q.old_path)),
        (f"{tag_q} new rule", _next_hops(q.new_path)),
    )
    for provider, hops in providers:
        for node, nxt in hops.items():
            union.setdefault(node, {})[nxt] = provider
    cycle = _edge_cycle(union)
    if cycle is not None:
        steps = []
        for a, b in zip(cycle, cycle[1:]):
            steps.append(
                f"activate {union[a][b]} at {a}: forwards {a} -> {b}"
            )
        steps.append(
            "a packet of flow "
            f"{p.flow_id} entering the cycle loops forever: "
            + " -> ".join(cycle)
        )
        out.append(
            InterferenceFinding(
                kind="transient-loop",
                message=(
                    f"the merged forwarding relation of {tag_p} and "
                    f"{tag_q} contains a cycle; with the pair unordered, "
                    f"an interleaving can activate every edge of it at "
                    f"once"
                ),
                subject="cycle(" + ",".join(cycle[:-1]) + ")",
                plans=(i, j),
                flows=(p.flow_id,),
                counterexample=tuple(steps),
                suggested_order=((i, j),),
            )
        )

    # Transient blackhole: both new paths visit a shared switch beyond
    # the ingress; whichever plan writes it last pins the slot to its
    # version, and packets stamped with the other version are dropped
    # there (Alg. 1/2 match on the exact version).
    shared = [
        node
        for node in q.new_path
        if node in set(p.new_path) and node != (
            p.new_path[0] if p.new_path else None
        )
    ]
    if shared and p.new_path and q.new_path:
        victim = shared[0]
        order_q = _install_order(q)
        prefix_q = order_q[: order_q.index(victim) + 1] if (
            victim in order_q
        ) else [victim]
        steps = [
            f"{tag_p}: install at {node}"
            for node in _install_order(p)
        ]
        steps.append(
            f"packets of flow {p.flow_id} now enter at "
            f"{p.new_path[0]} stamped v{p.version}"
        )
        steps.extend(f"{tag_q}: install at {node}" for node in prefix_q)
        steps.append(
            f"a v{p.version} packet reaches {victim}, which now only "
            f"matches v{q.version}: dropped (blackhole)"
        )
        out.append(
            InterferenceFinding(
                kind="transient-blackhole",
                message=(
                    f"{tag_p} and {tag_q} are unordered and their new "
                    f"paths share switch {victim}: the last writer pins "
                    f"the version there and strands the other plan's "
                    f"packets"
                ),
                subject=f"switch({victim})",
                plans=(i, j),
                flows=(p.flow_id,),
                counterexample=tuple(steps),
                suggested_order=((i, j),),
            )
        )
    return out


def _edge_cycle(
    union: Mapping[str, Mapping[str, str]]
) -> Optional[list[str]]:
    """First cycle in the merged relation, as ``[n1, ..., nk, n1]``."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in union}
    for start in sorted(union):
        if color[start] != WHITE:
            continue
        stack: list[tuple[str, int]] = [(start, 0)]
        path: list[str] = []
        while stack:
            node, child_index = stack[-1]
            if child_index == 0:
                color[node] = GREY
                path.append(node)
            children = sorted(union.get(node, ()))
            if child_index < len(children):
                stack[-1] = (node, child_index + 1)
                child = children[child_index]
                if color.get(child, BLACK) == GREY:
                    loop_start = path.index(child)
                    return path[loop_start:] + [child]
                if color.get(child, BLACK) == WHITE:
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return None


def _capacity_findings(
    plans: Sequence[UpdatePlan],
    prints: Sequence[PlanFootprint],
    hb: HappensBefore,
    capacities: Mapping[tuple[str, str], float],
    congestion_aware: bool,
) -> list[InterferenceFinding]:
    """Link-overcommit / cross-plan-deadlock over unordered deltas.

    Per directed edge the batch partitions into enterers, leavers and
    stayers.  The committed final load is every serialization's
    endpoint, so only *transient* excess — a leaver's load still
    present while an unordered enterer's load arrives — is a finding.
    """
    by_edge: dict[tuple[str, str], dict[str, list[int]]] = {}
    for index, fp in enumerate(prints):
        for edge in fp.enter_edges:
            by_edge.setdefault(edge, {}).setdefault("enter", []).append(index)
        for edge in fp.leave_edges:
            by_edge.setdefault(edge, {}).setdefault("leave", []).append(index)
        for edge in fp.stay_edges:
            by_edge.setdefault(edge, {}).setdefault("stay", []).append(index)

    out: list[InterferenceFinding] = []
    waits: dict[int, dict[int, tuple[str, str]]] = {}
    for edge in sorted(by_edge):
        cap = capacities.get(edge)
        if cap is None or cap <= 0:
            continue
        groups = by_edge[edge]
        enterers = groups.get("enter", [])
        leavers = groups.get("leave", [])
        stay_load = sum(prints[s].flow_size for s in groups.get("stay", []))
        final_load = stay_load + sum(prints[n].flow_size for n in enterers)
        initial_load = stay_load + sum(
            prints[lv].flow_size for lv in leavers
        )
        if final_load > cap + _CAP_EPS or initial_load > cap + _CAP_EPS:
            # The endpoint itself overcommits: not an interleaving
            # hazard, every serialization shares it.  Skip.
            continue
        # A leaver's load coexists with an enterer's unless the leaver
        # is serialized strictly *before* it — the old rule carries
        # load until the leaver's own install removes it.
        racy = [
            (lv, n)
            for lv in leavers
            for n in enterers
            if (lv, n) not in hb.plan_before
        ]
        if not racy:
            continue
        racing_leavers = sorted({lv for lv, _ in racy})
        worst = final_load + sum(
            prints[lv].flow_size for lv in racing_leavers
        )
        if worst <= cap + _CAP_EPS:
            continue
        if congestion_aware:
            # §7.4 scheduler: the enterer's move defers until the
            # leaver departs — record the wait-for edge; deadlock
            # detection below decides whether that is fatal.
            for lv, n in racy:
                must_wait = (
                    stay_load
                    + prints[lv].flow_size
                    + prints[n].flow_size
                    > cap + _CAP_EPS
                )
                if must_wait:
                    waits.setdefault(n, {}).setdefault(lv, edge)
            continue
        a, b = edge
        pair_bits = ", ".join(
            f"plan#{lv} (leaving) vs plan#{n} (entering)"
            for lv, n in racy
        )
        steps = []
        for n in sorted({n for _, n in racy}):
            steps.append(
                f"{_plan_tag(n, plans[n])}: install at {a} — flow "
                f"{plans[n].flow_id} now loads {a}->{b} "
                f"(+{prints[n].flow_size:g})"
            )
        for lv in racing_leavers:
            steps.append(
                f"{_plan_tag(lv, plans[lv])} has not yet removed flow "
                f"{plans[lv].flow_id} from {a}->{b} "
                f"(still +{prints[lv].flow_size:g})"
            )
        steps.append(
            f"edge {a}->{b} carries {worst:g} > capacity {cap:g} "
            f"(committed final load would be {final_load:g})"
        )
        out.append(
            InterferenceFinding(
                kind="link-overcommit",
                message=(
                    f"unordered capacity deltas on {a}->{b}: {pair_bits}; "
                    f"an interleaving carries {worst:g} over capacity "
                    f"{cap:g} with the congestion scheduler disabled"
                ),
                subject=f"edge({a}->{b})",
                plans=tuple(sorted({x for pair in racy for x in pair})),
                flows=tuple(
                    sorted(
                        {plans[x].flow_id for pair in racy for x in pair}
                    )
                ),
                counterexample=tuple(steps),
                suggested_order=tuple(sorted(set(racy))),
            )
        )

    if congestion_aware and waits:
        out.extend(_deadlock_findings(plans, prints, waits, capacities))
    return out


def _deadlock_findings(
    plans: Sequence[UpdatePlan],
    prints: Sequence[PlanFootprint],
    waits: dict[int, dict[int, tuple[str, str]]],
    capacities: Mapping[tuple[str, str], float],
) -> list[InterferenceFinding]:
    """Cycles in the scheduler wait-for graph among unordered plans."""
    out: list[InterferenceFinding] = []
    seen_cycles: set[tuple[int, ...]] = set()
    adjacency = {p: sorted(targets) for p, targets in waits.items()}
    for start in sorted(adjacency):
        cycle = _int_cycle(adjacency, start)
        if cycle is None:
            continue
        canonical = tuple(sorted(cycle[:-1]))
        if canonical in seen_cycles:
            continue
        seen_cycles.add(canonical)
        steps = []
        for p, q in zip(cycle, cycle[1:]):
            a, b = waits[p][q]
            cap = capacities.get((a, b), 0.0)
            steps.append(
                f"{_plan_tag(p, plans[p])} holds its old path and waits "
                f"to move onto {a}->{b}: the move needs "
                f"{prints[p].flow_size:g} but "
                f"{_plan_tag(q, plans[q])} still holds "
                f"{prints[q].flow_size:g} of capacity {cap:g} there"
            )
        steps.append(
            "every plan on the cycle holds capacity another needs: no "
            "try_move can ever commit (scheduler deadlock)"
        )
        out.append(
            InterferenceFinding(
                kind="cross-plan-deadlock",
                message=(
                    "the §7.4 congestion scheduler's wait-for relation "
                    "cycles through "
                    + " -> ".join(f"plan#{p}" for p in cycle)
                    + " with no serialization ordering the plans"
                ),
                subject=(
                    "waitcycle("
                    + ",".join(str(p) for p in canonical)
                    + ")"
                ),
                plans=canonical,
                flows=tuple(sorted({plans[p].flow_id for p in canonical})),
                counterexample=tuple(steps),
                # Breaking any one wait edge breaks the cycle: run the
                # waited-on leaver strictly before its enterer.
                suggested_order=((cycle[1], cycle[0]),),
            )
        )
    return out


def _int_cycle(
    adjacency: Mapping[int, Sequence[int]], start: int
) -> Optional[list[int]]:
    stack: list[tuple[int, int]] = [(start, 0)]
    path: list[int] = []
    on_path: set[int] = set()
    visited: set[int] = set()
    while stack:
        node, child_index = stack[-1]
        if child_index == 0:
            path.append(node)
            on_path.add(node)
            visited.add(node)
        children = list(adjacency.get(node, ()))
        if child_index < len(children):
            stack[-1] = (node, child_index + 1)
            child = children[child_index]
            if child in on_path:
                loop_start = path.index(child)
                return path[loop_start:] + [child]
            if child not in visited:
                stack.append((child, 0))
        else:
            stack.pop()
            path.pop()
            on_path.discard(node)
    return None


def detect_interference(
    plans: Sequence[UpdatePlan],
    policies: Optional[BatchPolicies] = None,
    capacities: Optional[Mapping[tuple[str, str], float]] = None,
    congestion_aware: bool = True,
    label: str = "batch",
) -> InterferenceReport:
    """Run every interference detector over one batch of plans."""
    policies = policies if policies is not None else BatchPolicies()
    prints = [footprint_of(plan) for plan in plans]
    hb = build_happens_before(plans, policies, prints)
    findings: list[InterferenceFinding] = []

    for i, j in hb.unordered_plan_pairs():
        if prints[i].flow_id == prints[j].flow_id:
            findings.extend(_same_flow_pair_findings(i, j, plans, prints))

    if capacities:
        findings.extend(
            _capacity_findings(
                plans, prints, hb, capacities, congestion_aware
            )
        )

    findings.sort(key=lambda f: (f.kind, f.subject, f.plans))
    return InterferenceReport(
        label=label,
        plan_count=len(plans),
        policies=policies,
        congestion_aware=congestion_aware,
        findings=findings,
    )


def serialization_edges(
    plans: Sequence[UpdatePlan],
    policies: Optional[BatchPolicies] = None,
    capacities: Optional[Mapping[tuple[str, str], float]] = None,
    congestion_aware: bool = True,
) -> tuple[tuple[int, int], ...]:
    """The ordering edges that silence every finding of the batch.

    Iteratively re-analyzes with the offending pairs ordered by batch
    position until the report is clean — the static counterpart of the
    ``static_interference=serialize`` gate.
    """
    policies = policies if policies is not None else BatchPolicies()
    injected: list[tuple[int, int]] = []
    for _ in range(len(plans) * len(plans) + 1):
        trial = BatchPolicies(
            same_flow=policies.same_flow,
            shared_switch=policies.shared_switch,
            max_in_flight=policies.max_in_flight,
            extra_order=policies.extra_order + tuple(injected),
        )
        report = detect_interference(
            plans, trial, capacities, congestion_aware
        )
        if report.ok:
            break
        hb = build_happens_before(plans, trial)
        added = False
        for finding in report.findings:
            for earlier, later in finding.suggested_order:
                # Never inject an edge contradicting the existing
                # order — that would collapse the partial order into
                # a cycle and mask real findings.
                if (later, earlier) in hb.plan_before:
                    continue
                if (earlier, later) not in injected:
                    injected.append((earlier, later))
                    added = True
                    break
            if added:
                break
        if not added:
            break
    return tuple(injected)


# -- gate-side pairwise check -------------------------------------------------


def pair_conflicts(
    candidate: PlanFootprint,
    in_flight: PlanFootprint,
    capacities: Optional[Mapping[tuple[str, str], float]] = None,
) -> list[dict]:
    """Dispatch-time conflicts between a candidate and one in-flight
    update (the admission gate's unit of work).

    Pure reads over the two footprints — no RNG, no clock — so gating
    never perturbs a conflict-free run.  Same-flow slot races are
    reported for completeness (the orchestrator already serializes
    those structurally); capacity conflicts flag any shared directed
    edge whose worst-instant load exceeds capacity while both updates
    are mid-flight.
    """
    conflicts: list[dict] = []
    if candidate.flow_id == in_flight.flow_id:
        conflicts.append(
            {
                "kind": "version-slot-race",
                "subject": f"flow({candidate.flow_id})",
                "flows": [candidate.flow_id],
            }
        )
    if capacities:
        for edge in sorted(
            candidate.touched_edges & in_flight.touched_edges
        ):
            cap = capacities.get(edge)
            if cap is None or cap <= 0:
                continue
            # Worst instant mid-flight: both loads present.  Only a
            # conflict when it is the *interleaving* that overcommits —
            # the pair's initial and final states must both fit (a
            # steady state over capacity is not a dispatch hazard, and
            # waiting would not cure it).
            worst = candidate.flow_size + in_flight.flow_size
            final = sum(
                fp.flow_size
                for fp in (candidate, in_flight)
                if edge in frozenset(fp.new_edges)
            )
            initial = sum(
                fp.flow_size
                for fp in (candidate, in_flight)
                if edge in frozenset(fp.old_edges)
            )
            if (
                worst > cap + _CAP_EPS
                and final <= cap + _CAP_EPS
                and initial <= cap + _CAP_EPS
            ):
                a, b = edge
                conflicts.append(
                    {
                        "kind": "link-overcommit",
                        "subject": f"edge({a}->{b})",
                        "flows": sorted(
                            {candidate.flow_id, in_flight.flow_id}
                        ),
                        "worst_load": worst,
                        "capacity": cap,
                    }
                )
    return conflicts


# -- batch builders -----------------------------------------------------------


def batch_from_serve_spec(
    spec: "ServeSpec",
) -> tuple[list[UpdatePlan], BatchPolicies, dict[tuple[str, str], float]]:
    """The static batch a serve spec implies: one primary-to-alternate
    plan per flow of the seeded population, analyzed under the spec's
    serialization policies and the topology's link capacities.

    Builds the same deployment and flow population ``run_service``
    would (same seed streams), prepares each flow's first toggle, and
    lifts the prepared updates into the static model — no simulation
    runs.
    """
    import dataclasses

    import numpy as np

    from repro.analysis.plan import plan_from_prepared
    from repro.chaos.runner import TOPOLOGIES
    from repro.harness.build import build_p4update_network
    from repro.params import SimParams
    from repro.serve.service import _FLOW_STREAM, apply_link_capacity
    from repro.serve.workload import build_flow_population
    from repro.sim.reset import reset_global_state

    reset_global_state()
    topo = TOPOLOGIES[spec.topology]()
    apply_link_capacity(topo, spec.link_capacity)
    params = SimParams(seed=spec.seed)
    if spec.params:
        params = dataclasses.replace(params, **dict(spec.params))
    deployment = build_p4update_network(topo, params=params)
    flow_rng = np.random.default_rng([spec.seed, _FLOW_STREAM])
    population = build_flow_population(
        topo, spec.flows, flow_rng, mean_size=spec.mean_flow_size
    )
    plans: list[UpdatePlan] = []
    for service_flow in population:
        deployment.install_flow(service_flow.to_flow())
    for service_flow in population:
        record = deployment.controller.record_of(service_flow.flow_id)
        prior = record.version
        prepared = deployment.controller.prepare_update(
            service_flow.flow_id, list(service_flow.alternate)
        )
        plans.append(plan_from_prepared(prepared, prior_version=prior))
    capacities: dict[tuple[str, str], float] = {}
    for a, b in topo.graph.edges:
        cap = float(topo.graph.edges[a, b]["capacity"])
        capacities[(a, b)] = cap
        capacities[(b, a)] = cap
    policies = BatchPolicies(
        same_flow=True,
        shared_switch=(spec.switch_conflict == "serialize"),
        max_in_flight=spec.max_in_flight,
    )
    return plans, policies, capacities


def analyze_serve_spec(spec: "ServeSpec") -> InterferenceReport:
    """End-to-end: serve spec in, interference report out."""
    plans, policies, capacities = batch_from_serve_spec(spec)
    return detect_interference(
        plans,
        policies,
        capacities,
        congestion_aware=spec.congestion_aware,
        label=spec.name,
    )
