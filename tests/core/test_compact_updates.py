"""Tests for §11 compact updates (piggybacked UIMs on the UNM)."""


from repro.consistency import LiveChecker
from repro.core.messages import UpdateType
from repro.harness.analysis import count_messages
from repro.harness.build import build_p4update_network
from repro.params import DelayDistribution, SimParams
from repro.topo import fig1_topology, ring_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
from repro.traffic.flows import Flow


def fast_params(seed=0):
    return SimParams(
        seed=seed,
        pipeline_delay=DelayDistribution.constant(0.1),
        rule_install_delay=DelayDistribution.constant(1.0),
        controller_service=DelayDistribution.constant(0.2),
        controller_background_util=0.0,
        unm_generation_delay=DelayDistribution.constant(0.5),
    )


def fig1_deployment():
    topo = fig1_topology()
    dep = build_p4update_network(topo, params=fast_params())
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    return dep, flow


def test_compact_sl_update_completes():
    topo = ring_topology(6, latency_ms=1.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params())
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between("n0", "n3", size=1.0, old_path=["n0", "n1", "n2", "n3"])
    dep.install_flow(flow)
    prepared = dep.controller.compact_update(
        flow.flow_id, ["n0", "n5", "n4", "n3"], UpdateType.SINGLE
    )
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    assert checker.ok, checker.violations
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == ["n0", "n5", "n4", "n3"]
    # SL compact: one single UIM to the egress carries everything.
    assert len(prepared.uims) == 1
    assert prepared.uims[0].target == "n3"
    assert len(prepared.uims[0].piggyback) == 3


def test_compact_dl_sends_uims_to_exactly_the_paper_nodes():
    """§11: 'send out messages ... e.g., only to v7, v4, v2 in Fig. 1'."""
    dep, flow = fig1_deployment()
    prepared = dep.controller.compact_update(
        flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL
    )
    targets = {uim.target for uim in prepared.uims}
    assert targets == {"v7", "v4", "v2"}
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == list(FIG1_NEW_PATH)


def test_compact_dl_is_consistent():
    dep, flow = fig1_deployment()
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    dep.controller.compact_update(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    assert checker.ok, checker.violations
    assert dep.controller.alarms == []


def test_compact_reduces_control_messages():
    def run(compact):
        dep, flow = fig1_deployment()
        if compact:
            dep.controller.compact_update(
                flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL
            )
        else:
            dep.controller.update_flow(
                flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL
            )
        dep.run()
        assert dep.controller.update_complete(flow.flow_id)
        return count_messages(dep.network.trace)

    full = run(compact=False)
    compact = run(compact=True)
    assert compact.by_type["UIM"] == 3
    assert full.by_type["UIM"] == len(FIG1_NEW_PATH)
    assert compact.control_plane < full.control_plane


def test_compact_retains_parallelism():
    """Compact DL must not serialize: the forward segments still update
    concurrently (interior installs before the backward gateway)."""
    dep, flow = fig1_deployment()
    dep.controller.compact_update(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    changes = {
        e.node: e.time
        for e in dep.network.trace.of_kind("rule_change")
        if e.detail.get("flow") == flow.flow_id
    }
    assert changes["v1"] < changes["v2"], "segment {v0,v1,v2} ran in parallel"
    assert changes["v2"] > changes["v4"], "backward gateway still ordered"
