"""Request/result model for the update service.

An :class:`UpdateRequest` walks a fixed lifecycle::

    submitted -> admitted -> dispatched -> pushed -> terminal

with timestamps (simulated ms) recorded at each edge.  Exactly one
terminal outcome is ever assigned — :meth:`UpdateRequest.finish`
raises on a second assignment, which is the invariant the serve-smoke
CI job asserts ("no admitted request is both completed and aborted").
"""

from __future__ import annotations

from typing import Any, Optional

#: Terminal outcomes a request can reach.
OUTCOME_COMPLETED = "completed"      # update committed (UFM at controller)
OUTCOME_REJECTED = "rejected"        # shed at admission (queue full)
OUTCOME_MERGED = "merged"            # superseded by a newer same-flow request
OUTCOME_ABORTED = "aborted"          # chaos rolled the pending update back
OUTCOME_FLOW_PARKED = "flow_parked"  # no alternate path after a failure
OUTCOME_UNFINISHED = "unfinished"    # horizon expired first

OUTCOMES = (
    OUTCOME_COMPLETED,
    OUTCOME_REJECTED,
    OUTCOME_MERGED,
    OUTCOME_ABORTED,
    OUTCOME_FLOW_PARKED,
    OUTCOME_UNFINISHED,
)


class UpdateRequest:
    """One tenant request to reroute a flow."""

    __slots__ = (
        "request_id",
        "flow_id",
        "submitted_ms",
        "admitted_ms",
        "queue_depth_at_admit",
        "dispatched_ms",
        "pushed_ms",
        "last_install_ms",
        "completed_ms",
        "version",
        "outcome",
    )

    def __init__(self, request_id: int, flow_id: int, submitted_ms: float) -> None:
        self.request_id = request_id
        self.flow_id = flow_id
        self.submitted_ms = submitted_ms
        self.admitted_ms: Optional[float] = None
        # Main-queue occupancy observed at the admission instant (cross-
        # checks queue_wait attribution against the serve_queue_depth
        # gauge); None for requests shed before admission.
        self.queue_depth_at_admit: Optional[int] = None
        self.dispatched_ms: Optional[float] = None
        self.pushed_ms: Optional[float] = None
        self.last_install_ms: Optional[float] = None
        self.completed_ms: Optional[float] = None
        self.version: Optional[int] = None
        self.outcome: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.outcome is not None

    def finish(self, outcome: str, now: float) -> None:
        """Assign the terminal outcome — exactly once, ever."""
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}")
        if self.outcome is not None:
            raise RuntimeError(
                f"request {self.request_id} (flow {self.flow_id}) already "
                f"finished as {self.outcome!r}; refusing second terminal "
                f"outcome {outcome!r}"
            )
        self.outcome = outcome
        self.completed_ms = now

    def to_record(self) -> dict[str, Any]:
        """JSON-safe record for manifests and signatures."""
        return {
            "request_id": self.request_id,
            "flow_id": self.flow_id,
            "submitted_ms": self.submitted_ms,
            "admitted_ms": self.admitted_ms,
            "queue_depth_at_admit": self.queue_depth_at_admit,
            "dispatched_ms": self.dispatched_ms,
            "pushed_ms": self.pushed_ms,
            "last_install_ms": self.last_install_ms,
            "completed_ms": self.completed_ms,
            "version": self.version,
            "outcome": self.outcome,
        }
