"""Deterministic discrete-event simulator.

This package replaces the Mininet emulation of the original artifact.
Time is simulated (milliseconds, float); every run with the same seed is
bit-for-bit reproducible.
"""

from repro.sim.engine import Engine, Event
from repro.sim.node import Node
from repro.sim.links import Link, ControlChannel
from repro.sim.network import Network
from repro.sim.trace import Trace, TraceEvent
from repro.sim.faults import FaultModel, FaultAction
from repro.sim.reset import (
    register_global_reset,
    registered_resets,
    reset_global_state,
)
from repro.sim.snapshot import (
    capture_global_state,
    register_global_snapshot,
    registered_snapshots,
    restore_global_state,
)

__all__ = [
    "Engine",
    "Event",
    "Node",
    "Link",
    "ControlChannel",
    "Network",
    "Trace",
    "TraceEvent",
    "FaultModel",
    "FaultAction",
    "register_global_reset",
    "registered_resets",
    "reset_global_state",
    "capture_global_state",
    "register_global_snapshot",
    "registered_snapshots",
    "restore_global_state",
]
