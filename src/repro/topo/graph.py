"""The :class:`Topology` abstraction.

A thin, validated wrapper over an undirected :class:`networkx.Graph`
that carries everything the harness needs: per-link latency and
capacity, optional site coordinates, and controller placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import networkx as nx

from repro.topo.latency import geo_latency_ms

DEFAULT_CAPACITY = 100.0


@dataclass(frozen=True)
class EdgeSpec:
    """One undirected edge with its attributes."""

    a: str
    b: str
    latency_ms: float
    capacity: float


class Topology:
    """Named, validated network topology.

    Parameters
    ----------
    name:
        Identifier used in traces and benchmark rows.
    coordinates:
        Optional mapping node -> (lat, lon); when present, edges added
        with ``latency_ms=None`` get geographic latency.
    """

    def __init__(
        self,
        name: str,
        coordinates: Optional[dict[str, tuple[float, float]]] = None,
    ) -> None:
        self.name = name
        self.graph = nx.Graph()
        self.coordinates = dict(coordinates or {})
        self.controller: Optional[str] = None

    # -- construction ------------------------------------------------------

    def add_node(self, node: str, lat: Optional[float] = None, lon: Optional[float] = None) -> None:
        self.graph.add_node(node)
        if lat is not None and lon is not None:
            self.coordinates[node] = (lat, lon)

    def add_edge(
        self,
        a: str,
        b: str,
        latency_ms: Optional[float] = None,
        capacity: float = DEFAULT_CAPACITY,
    ) -> None:
        if a == b:
            raise ValueError(f"self-loop on {a!r}")
        if latency_ms is None:
            latency_ms = self._geo_latency(a, b)
        if latency_ms <= 0:
            raise ValueError(f"non-positive latency on edge ({a!r}, {b!r})")
        self.graph.add_edge(a, b, latency_ms=latency_ms, capacity=capacity)

    def _geo_latency(self, a: str, b: str) -> float:
        try:
            (lat1, lon1), (lat2, lon2) = self.coordinates[a], self.coordinates[b]
        except KeyError as exc:
            raise ValueError(
                f"edge ({a!r}, {b!r}) needs latency_ms or coordinates"
            ) from exc
        return geo_latency_ms(lat1, lon1, lat2, lon2)

    @classmethod
    def from_edges(
        cls,
        name: str,
        edges: Iterable[tuple],
        coordinates: Optional[dict[str, tuple[float, float]]] = None,
        default_latency_ms: Optional[float] = None,
        capacity: float = DEFAULT_CAPACITY,
    ) -> "Topology":
        """Build from ``(a, b)`` or ``(a, b, latency_ms)`` tuples."""
        topo = cls(name, coordinates=coordinates)
        for node in coordinates or {}:
            topo.add_node(node)
        for edge in edges:
            if len(edge) == 2:
                a, b = edge
                latency = default_latency_ms
            else:
                a, b, latency = edge
            topo.add_edge(a, b, latency_ms=latency, capacity=capacity)
        return topo

    # -- queries ---------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return list(self.graph.nodes)

    @property
    def edges(self) -> list[EdgeSpec]:
        return [
            EdgeSpec(a, b, data["latency_ms"], data["capacity"])
            for a, b, data in self.graph.edges(data=True)
        ]

    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def latency(self, a: str, b: str) -> float:
        return self.graph.edges[a, b]["latency_ms"]

    def capacity(self, a: str, b: str) -> float:
        return self.graph.edges[a, b]["capacity"]

    def neighbors(self, node: str) -> list[str]:
        return list(self.graph.neighbors(node))

    def is_connected(self) -> bool:
        return self.graph.number_of_nodes() > 0 and nx.is_connected(self.graph)

    def validate(self) -> None:
        """Raise ValueError when the topology is unusable."""
        if not self.is_connected():
            raise ValueError(f"topology {self.name!r} is not connected")

    # -- latency-weighted paths ---------------------------------------------------

    def shortest_path(self, src: str, dst: str) -> list[str]:
        return nx.shortest_path(self.graph, src, dst, weight="latency_ms")

    def path_latency(self, path: list[str]) -> float:
        return sum(self.latency(a, b) for a, b in zip(path, path[1:]))

    def control_latency(self, switch: str, controller: Optional[str] = None) -> float:
        """Latency of the shortest path from the controller to ``switch``."""
        controller = controller or self.controller
        if controller is None:
            raise ValueError("no controller placed")
        if switch == controller:
            return 0.05  # local loopback floor
        return nx.shortest_path_length(
            self.graph, controller, switch, weight="latency_ms"
        )

    # -- controller placement --------------------------------------------------------

    def place_controller_at_centroid(self) -> str:
        """Place the controller at the node minimising worst-case
        control latency (the paper's centroid rule, §9.1)."""
        lengths = dict(
            nx.all_pairs_dijkstra_path_length(self.graph, weight="latency_ms")
        )
        best = min(self.graph.nodes, key=lambda n: (max(lengths[n].values()), n))
        self.controller = best
        return best

    def set_controller(self, node: str) -> None:
        if node not in self.graph:
            raise ValueError(f"unknown node {node!r}")
        self.controller = node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topology {self.name!r} n={self.num_nodes()} m={self.num_edges()} "
            f"controller={self.controller!r}>"
        )
