"""The ``analyze`` CLI subcommands, driven through the real main()."""

import pytest

from repro.harness.cli import main


def test_analyze_lint_default_paths_clean(capsys):
    assert main(["analyze", "lint"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_analyze_lint_flags_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert main(["analyze", "lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "wall-clock" in out
    assert "1 finding(s)" in out


def test_analyze_lint_select_rule(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\nfor x in {1, 2}:\n    pass\n")
    assert main(["analyze", "lint", "--select", "set-iteration", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "set-iteration" in out
    assert "wall-clock" not in out


def test_analyze_lint_unknown_rule(capsys):
    assert main(["analyze", "lint", "--select", "nope", "x.py"]) == 2
    assert "unknown rule" in capsys.readouterr().out


def test_analyze_lint_show_suppressed(tmp_path, capsys):
    source = "import time\nt = time.time()  # repro: ignore[wall-clock]\n"
    path = tmp_path / "ok.py"
    path.write_text(source)
    assert main(["analyze", "lint", "--show-suppressed", str(path)]) == 0
    out = capsys.readouterr().out
    assert "1 suppressed" in out
    assert "wall-clock" in out


def test_analyze_plan_quick(capsys):
    assert main(["analyze", "plan", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "fig1 single" in out
    assert "rejected" in out
    assert "counterexample path:" in out
    assert "no failure(s)" in out


def test_analyze_pipeline(capsys):
    assert main(["analyze", "pipeline"]) == 0
    out = capsys.readouterr().out
    assert "P4UpdateProgram" in out
    assert "0 finding(s)" in out


def test_analyze_pipeline_without_cap(capsys):
    assert main(["analyze", "pipeline", "--no-runtime-cap"]) == 1
    out = capsys.readouterr().out
    assert "unbounded-resubmit" in out


def test_analyze_requires_subcommand():
    with pytest.raises(SystemExit):
        main(["analyze"])
