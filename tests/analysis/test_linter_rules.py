"""Every built-in sim-purity rule: positive hit + suppression."""

import textwrap

import pytest

from repro.analysis import lint_source
from repro.analysis.linter import (
    LintContext,
    default_rules,
    lint_paths,
    rule_names,
    suppressions,
)


def lint(code, **kwargs):
    return lint_source(textwrap.dedent(code), path="mod.py", **kwargs)


def rules_hit(code, **kwargs):
    return {f.rule for f in lint(code, **kwargs)}


# -- wall-clock ---------------------------------------------------------------


def test_wall_clock_direct_call():
    findings = lint("""
        import time
        def stamp():
            return time.time()
    """)
    assert [f.rule for f in findings] == ["wall-clock"]
    assert findings[0].line == 4


def test_wall_clock_aliased_module():
    assert rules_hit("""
        import time as clock
        t = clock.perf_counter()
    """) == {"wall-clock"}


def test_wall_clock_from_import():
    assert rules_hit("""
        from time import perf_counter
        t = perf_counter()
    """) == {"wall-clock"}


def test_wall_clock_datetime_now():
    assert rules_hit("""
        import datetime
        stamp = datetime.datetime.now()
    """) == {"wall-clock"}


def test_wall_clock_suppressed():
    findings = lint("""
        import time
        t = time.time()  # repro: ignore[wall-clock] profiler needs wall time
    """)
    assert findings == []


def test_wall_clock_sleep_not_flagged():
    # Sleeping is a scheduling sin (blocking-in-service), not a
    # determinism sin: the wall-clock rule must leave it alone.
    assert rules_hit("""
        import time
        time.sleep(1)
    """) == {"blocking-in-service"}


# -- unseeded-random -----------------------------------------------------------


def test_unseeded_stdlib_random():
    assert rules_hit("""
        import random
        x = random.random()
        y = random.shuffle([1, 2])
    """) == {"unseeded-random"}


def test_unseeded_numpy_global_state():
    assert rules_hit("""
        import numpy as np
        x = np.random.rand(3)
    """) == {"unseeded-random"}


def test_seeded_numpy_generator_ok():
    assert rules_hit("""
        import numpy as np
        rng = np.random.default_rng(0)
        x = rng.integers(0, 10)
    """) == set()


def test_unseeded_random_suppressed():
    findings = lint("""
        import random
        x = random.random()  # repro: ignore[unseeded-random]
    """)
    assert findings == []


# -- set-iteration -------------------------------------------------------------


def test_set_literal_iteration():
    assert rules_hit("""
        for item in {"a", "b"}:
            print(item)
    """) == {"set-iteration"}


def test_set_call_iteration():
    assert rules_hit("""
        def f(xs):
            return [x for x in set(xs)]
    """) == {"set-iteration"}


def test_set_union_iteration():
    assert rules_hit("""
        def f(a, b):
            for x in set(a) | set(b):
                yield x
    """) == {"set-iteration"}


def test_sorted_set_ok():
    assert rules_hit("""
        def f(xs):
            for x in sorted(set(xs)):
                yield x
    """) == set()


def test_set_iteration_suppressed():
    findings = lint("""
        def f(xs):
            for x in set(xs):  # repro: ignore[set-iteration] order irrelevant
                xs.discard(x)
    """)
    assert findings == []


# -- mutable-default -----------------------------------------------------------


def test_mutable_default_literal():
    assert rules_hit("""
        def f(items=[]):
            return items
    """) == {"mutable-default"}


def test_mutable_default_call():
    assert rules_hit("""
        def f(*, seen=set()):
            return seen
    """) == {"mutable-default"}


def test_none_default_ok():
    assert rules_hit("""
        def f(items=None):
            return items or []
    """) == set()


def test_mutable_default_suppressed():
    findings = lint("""
        def f(items=[]):  # repro: ignore[mutable-default]
            return items
    """)
    assert findings == []


# -- unguarded-obs -------------------------------------------------------------


def test_unguarded_obs_metric():
    assert rules_hit("""
        def record(self):
            self.obs.metrics.counter("packets", node=self.name).inc()
    """) == {"unguarded-obs"}


def test_guarded_obs_metric_ok():
    assert rules_hit("""
        def record(self):
            if self.obs.enabled:
                self.obs.metrics.counter("packets", node=self.name).inc()
    """) == set()


def test_guard_clause_obs_ok():
    # The scheduler.attach_obs shape: early return, then bare calls.
    assert rules_hit("""
        def attach(obs, name):
            if not obs.enabled:
                return
            obs.metrics.counter("admitted", node=name).inc()
    """) == set()


def test_unguarded_obs_suppressed():
    findings = lint("""
        def record(obs):
            obs.metrics.gauge("depth").set(1)  # repro: ignore[unguarded-obs]
    """)
    assert findings == []


# -- framework behaviour --------------------------------------------------------


def test_ignore_all_suppresses_everything():
    findings = lint("""
        import time
        t = time.time()  # repro: ignore[all]
    """)
    assert findings == []


def test_include_suppressed_marks_findings():
    findings = lint(
        """
        import time
        t = time.time()  # repro: ignore[wall-clock]
        """,
        include_suppressed=True,
    )
    assert len(findings) == 1
    assert findings[0].suppressed


def test_suppression_is_per_line():
    findings = lint("""
        import time
        a = time.time()  # repro: ignore[wall-clock]
        b = time.time()
    """)
    assert [f.rule for f in findings] == ["wall-clock"]
    assert findings[0].line == 4


def test_suppression_comment_parsing():
    table = suppressions(
        "x = 1  # repro: ignore[wall-clock, set-iteration]\ny = 2\n"
    )
    assert table == {1: {"wall-clock", "set-iteration"}}


def test_rule_names_catalogue():
    assert rule_names() == [
        "blocking-in-service",
        "fuzz-nondeterminism",
        "mutable-default",
        "set-iteration",
        "unguarded-obs",
        "unseeded-random",
        "wall-clock",
    ]


# -- blocking-in-service ------------------------------------------------------


def test_blocking_sleep_flagged():
    findings = lint("""
        import time
        def backoff():
            time.sleep(0.5)
    """)
    assert [f.rule for f in findings] == ["blocking-in-service"]
    assert findings[0].line == 4


def test_blocking_aliased_sleep_flagged():
    assert rules_hit("""
        from time import sleep
        sleep(1)
    """) == {"blocking-in-service"}


def test_blocking_timed_queue_get_flagged():
    assert rules_hit("""
        def drain(q):
            return q.get(timeout=2.0)
    """) == {"blocking-in-service"}


def test_blocking_timed_join_and_wait_flagged():
    assert rules_hit("""
        def settle(worker, event):
            worker.join(timeout=1.0)
            event.wait(timeout=0.1)
    """) == {"blocking-in-service"}


def test_blocking_untimed_attrs_not_flagged():
    # Without timeout= these are plain method names (dict.get,
    # str.join...) — flagging them would drown the signal.
    assert rules_hit("""
        def ok(d, parts, fut):
            d.get("key")
            ", ".join(parts)
            return fut.result()
    """) == set()


def test_blocking_suppressed():
    findings = lint("""
        import time
        time.sleep(0.1)  # repro: ignore[blocking-in-service] retry backoff
    """)
    assert findings == []


def test_finding_format():
    findings = lint("""
        import time
        t = time.time()
    """)
    text = findings[0].format()
    assert text.startswith("mod.py:3:")
    assert "wall-clock" in text


def test_alias_resolution():
    ctx = LintContext("m.py", "import numpy as np\n")
    assert ctx.aliases["np"] == "numpy"


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n")
    (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
    sub = tmp_path / "__pycache__"
    sub.mkdir()
    (sub / "skipme.py").write_text("import time\nt = time.time()\n")
    findings = lint_paths([str(tmp_path)])
    assert [f.rule for f in findings] == ["wall-clock"]
    assert findings[0].path.endswith("bad.py")


def test_lint_paths_syntax_error_handler(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    seen = []
    lint_paths([str(tmp_path)], on_error=lambda p, e: seen.append(p))
    assert len(seen) == 1
    with pytest.raises(SyntaxError):
        lint_paths([str(tmp_path)])


def test_repo_sim_core_obs_p4_lint_clean():
    """The acceptance criterion: the linted packages carry no
    unsuppressed findings."""
    from repro.analysis.cli import default_lint_paths

    findings = lint_paths(default_lint_paths(), default_rules())
    assert findings == [], "\n".join(f.format() for f in findings)


# -- stale suppressions -------------------------------------------------------


def test_stale_suppression_reported_as_own_finding_kind():
    findings = lint("""
        x = 1  # repro: ignore[wall-clock] nothing to silence here
    """)
    assert [f.rule for f in findings] == ["stale-suppression"]
    assert "ignore[wall-clock]" in findings[0].message


def test_live_suppression_not_stale():
    findings = lint("""
        import time
        t = time.time()  # repro: ignore[wall-clock]
    """)
    assert findings == []


def test_mixed_live_and_stale_names_on_one_line():
    findings = lint("""
        import time
        t = time.time()  # repro: ignore[wall-clock, set-iteration]
    """)
    assert [f.rule for f in findings] == ["stale-suppression"]
    assert "ignore[set-iteration]" in findings[0].message


def test_stale_ignore_all_flagged_only_on_full_runs():
    code = """
        x = 1  # repro: ignore[all]
    """
    assert [f.rule for f in lint(code)] == ["stale-suppression"]
    # A --select subset cannot prove the other rules silent.
    subset = [r for r in default_rules() if r.name == "wall-clock"]
    assert lint(code, rules=subset) == []


def test_subset_run_does_not_judge_unselected_rules():
    subset = [r for r in default_rules() if r.name == "wall-clock"]
    findings = lint(
        """
        x = 1  # repro: ignore[set-iteration]
        """,
        rules=subset,
    )
    assert findings == []


def test_docstring_suppression_examples_not_stale():
    findings = lint('''
        def helper():
            """Suppress like::

                t = time.time()  # repro: ignore[wall-clock] profiler
            """
            return 1
    ''')
    assert findings == []


def test_check_stale_opt_out():
    findings = lint(
        """
        x = 1  # repro: ignore[wall-clock]
        """,
        check_stale=False,
    )
    assert findings == []


# -- fuzz-nondeterminism ------------------------------------------------------


def test_fuzz_rule_fires_only_under_fuzz_paths():
    code = """
        import time
        t = time.time()
    """
    inside = lint_source(
        textwrap.dedent(code), path="src/repro/fuzz/gen.py"
    )
    outside = lint_source(
        textwrap.dedent(code), path="src/repro/serve/service.py"
    )
    assert {f.rule for f in inside} == {"wall-clock", "fuzz-nondeterminism"}
    assert {f.rule for f in outside} == {"wall-clock"}
    fuzz_finding = next(
        f for f in inside if f.rule == "fuzz-nondeterminism"
    )
    assert fuzz_finding.message.startswith("[wall-clock]")


def test_fuzz_rule_covers_unseeded_rng_and_set_iteration():
    code = """
        import numpy as np

        def pick(options):
            np.random.shuffle(options)
            for item in set(options):
                yield item
    """
    findings = lint_source(
        textwrap.dedent(code), path="src/repro/fuzz/gen.py"
    )
    fuzz = [f for f in findings if f.rule == "fuzz-nondeterminism"]
    assert {f.message.split("]")[0] + "]" for f in fuzz} == {
        "[unseeded-random]", "[set-iteration]",
    }


def test_fuzz_rule_registered():
    assert "fuzz-nondeterminism" in rule_names()


def test_fuzz_package_passes_its_own_lint():
    import os

    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    findings = lint_paths([os.path.join(root, "fuzz")])
    assert findings == [], [
        f"{f.path}:{f.line} {f.rule} {f.message}" for f in findings
    ]
