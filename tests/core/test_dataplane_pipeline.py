"""Unit tests for the P4Update pipeline program at the packet level —
the §8 mechanisms exercised directly, without a controller."""


from repro.core.dataplane import P4UpdateProgram
from repro.core.messages import UIM, UNMFields, UpdateType, make_cleanup, make_probe
from repro.core.registers import LOCAL_DELIVER_PORT, NO_PORT
from repro.core.verification import apply_sl_state
from repro.p4.pipeline import Pipeline


def uim_for(node_distance=2, version=2, egress_port=4, child_port=7, **kwargs):
    return UIM(
        target="s", flow_id=5, version=version, new_distance=node_distance,
        egress_port=egress_port, flow_size=1.0,
        update_type=UpdateType.SINGLE, child_port=child_port, **kwargs,
    )


def unm_for(version=2, distance=1, layer=1, update_type=UpdateType.SINGLE):
    return UNMFields(
        flow_id=5, layer=layer, update_type=update_type,
        new_version=version, new_distance=distance,
        old_version=version - 1, old_distance=0,
    )


def fresh_program():
    program = P4UpdateProgram(max_flows=16)
    program.set_clone_session(7, 7)
    return program


def installed_program(distance=3, port=2):
    program = fresh_program()
    program.write_state(5, apply_sl_state(1, distance))
    program.set_current_port(5, port)
    program.set_flow_size(5, 1.0)
    return program


# -- probe forwarding -------------------------------------------------------

def test_probe_forwarded_by_register():
    program = installed_program(port=2)
    result = Pipeline(program).process(make_probe(5, seq=0), in_port=1)
    assert result.egress_port == 2


def test_probe_for_unknown_flow_punts_frm():
    program = fresh_program()
    result = Pipeline(program).process(make_probe(99, seq=0), in_port=1)
    assert result.dropped
    assert [p.reason for p in result.punts] == ["frm"]


def test_probe_delivered_at_egress():
    program = installed_program(port=LOCAL_DELIVER_PORT)
    result = Pipeline(program).process(make_probe(5, seq=1), in_port=1)
    assert result.dropped                       # consumed locally
    assert program.stats["probes_delivered"] == 1


def test_probe_ttl_expiry():
    program = installed_program(port=2)
    result = Pipeline(program).process(make_probe(5, seq=0, ttl=1), in_port=1)
    assert result.dropped
    assert program.stats["probes_ttl_expired"] == 1


def test_probe_ttl_decrements():
    program = installed_program(port=2)
    probe = make_probe(5, seq=0, ttl=10)
    Pipeline(program).process(probe, in_port=1)
    assert probe.ttl == 9


# -- UNM handling --------------------------------------------------------------

def test_unm_without_uim_resubmits():
    """§8: 'If the UNM arrives earlier, it needs to wait for UIM' via
    packet resubmission."""
    program = installed_program()
    result = Pipeline(program).process(unm_for().to_packet(), in_port=1)
    assert result.resubmit
    assert program.stats["unm_waits"] == 1


def test_unm_with_uim_requests_install():
    program = installed_program(distance=3)
    program.store_uim(uim_for(node_distance=2))
    requests = []

    class AgentStub:
        def installing_version(self, flow_id):
            return 0

        def schedule_install(self, uim, decision, unm_layer):
            requests.append((uim.version, decision.verdict.value, unm_layer))

        def note_probe_seen(self, *a):
            pass

    program.agent = AgentStub()
    result = Pipeline(program).process(unm_for(distance=1).to_packet(), in_port=1)
    assert result.dropped
    assert requests == [(2, "update", 1)]


def test_outdated_unm_punts_alarm():
    program = installed_program()
    program.store_uim(uim_for(version=3, node_distance=2))
    result = Pipeline(program).process(
        unm_for(version=2, distance=1).to_packet(), in_port=1
    )
    assert result.dropped
    assert any(p.reason.startswith("alarm:drop_outdated") for p in result.punts)
    assert program.stats["unm_rejects"] == 1


def test_distance_error_punts_alarm():
    program = installed_program()
    program.store_uim(uim_for(version=2, node_distance=2))
    result = Pipeline(program).process(
        unm_for(version=2, distance=5).to_packet(), in_port=1
    )
    assert any(p.reason.startswith("alarm:drop_distance") for p in result.punts)


# -- cleanup handling ---------------------------------------------------------------

def test_cleanup_removes_stale_rule_and_propagates():
    program = installed_program(port=2)      # applied version 1
    result = Pipeline(program).process(make_cleanup(5, version=2), in_port=1)
    assert result.egress_port == 2, "cleanup continues along the old rule"
    assert program.current_port(5) == NO_PORT
    assert not program.state_of(5).has_flow()


def test_cleanup_stops_at_current_version():
    program = installed_program(port=2)
    program.write_state(5, apply_sl_state(2, 3))     # already at v2
    result = Pipeline(program).process(make_cleanup(5, version=2), in_port=1)
    assert result.dropped
    assert program.current_port(5) == 2


def test_cleanup_stops_at_pending_uim():
    program = installed_program(port=2)
    program.store_uim(uim_for(version=2))
    result = Pipeline(program).process(make_cleanup(5, version=2), in_port=1)
    assert result.dropped
    assert program.current_port(5) == 2


def test_duplicate_cleanup_harmless():
    program = installed_program(port=2)
    pipeline = Pipeline(program)
    pipeline.process(make_cleanup(5, version=2), in_port=1)
    result = pipeline.process(make_cleanup(5, version=2), in_port=1)
    assert result.dropped                      # no port to continue on


# -- unknown packets --------------------------------------------------------------------

def test_unparsable_packet_dropped():
    from repro.p4.packet import Packet

    program = fresh_program()
    result = Pipeline(program).process(Packet(payload="junk"), in_port=1)
    assert result.dropped
