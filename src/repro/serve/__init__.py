"""repro.serve — tenant-facing concurrent update-request service.

Layers an admission queue (bounded depth, token bucket, shed
policies) and a dependency-aware orchestrator (per-flow version-slot
serialization, optional shared-switch serialization, merge of queued
same-flow requests) on top of the verified prepare/push update path,
with SLO metrics and deterministic benchmark manifests.
"""

from repro.serve.model import UpdateRequest
from repro.serve.orchestrator import ServiceOrchestrator
from repro.serve.service import ServiceResult, run_service
from repro.serve.spec import (
    ServeSpec,
    ServeSpecError,
    load_serve_spec,
    load_serve_spec_file,
)
from repro.serve.workload import ServiceFlow, build_flow_population

__all__ = [
    "ServeSpec",
    "ServeSpecError",
    "ServiceFlow",
    "ServiceOrchestrator",
    "ServiceResult",
    "UpdateRequest",
    "build_flow_population",
    "load_serve_spec",
    "load_serve_spec_file",
    "run_service",
]
