"""Ablation — dynamic (P4Update §7.4) vs static (ez-Segway) congestion
scheduling on a contended dependency-chain workload.

Builds a chain of flows where each move frees the capacity the next
one needs (f1 waits for f2's link, f2 for f3's, ...).  P4Update's
local dynamic priorities resolve the chain as capacity actually frees;
ez-Segway additionally serializes on the precomputed static ranks.
"""

import numpy as np
from benchutils import emit_manifest, instrumented_obs, print_header

from repro.harness.experiment import run_experiment
from repro.harness.scenarios import UpdateScenario
from repro.params import SimParams
from repro.topo.graph import Topology
from repro.traffic.flows import Flow

RUNS = 10
CHAIN = 5


def chain_topology(k: int = CHAIN) -> Topology:
    """s -> {m0..mk} -> t diamond with k+1 middle rails; rail i has
    capacity for one flow at a time."""
    topo = Topology("chain")
    topo.add_node("s")
    topo.add_node("t")
    for i in range(k + 1):
        topo.add_node(f"m{i}")
        topo.add_edge("s", f"m{i}", latency_ms=1.0, capacity=10.0)
        topo.add_edge(f"m{i}", "t", latency_ms=1.0, capacity=10.0)
    topo.set_controller("s")
    return topo


def chain_scenario(k: int = CHAIN) -> UpdateScenario:
    """Flow i moves from rail i to rail i+1; rail i+1 is occupied by
    flow i+1 until it moves on — a k-deep dependency chain."""
    topo = chain_topology(k)
    flows = []
    for i in range(k):
        flow = Flow(
            flow_id=1000 + i,
            src="s", dst="t", size=7.0,
            old_path=["s", f"m{i}", "t"],
            new_path=["s", f"m{i+1}", "t"],
        )
        flows.append(flow)
    return UpdateScenario(topo, flows, f"dependency chain depth {k}")


def measure():
    rows = {}
    for system in ("p4update-sl", "ezsegway"):
        times = []
        for seed in range(RUNS):
            result = run_experiment(
                system, chain_scenario(), params=SimParams(seed=seed)
            )
            assert result.completed, (system, seed)
            assert result.consistency_ok, (system, seed)
            times.append(result.total_update_time_ms)
        rows[system] = times
    return rows


def test_dynamic_beats_static_scheduling(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    print_header("Ablation — §7.4 dynamic vs static congestion scheduling "
                 f"(dependency chain depth {CHAIN})")
    means = {s: float(np.mean(v)) for s, v in rows.items()}
    for system, mean in means.items():
        print(f"{system:14s} mean={mean:8.1f} ms")
    advantage = (means["ezsegway"] - means["p4update-sl"]) / means["ezsegway"] * 100
    print(f"\ndynamic scheduler advantage: {advantage:+.1f}%")

    assert means["p4update-sl"] < means["ezsegway"], (
        "the dynamic scheduler must resolve the chain faster"
    )

    obs = instrumented_obs("p4update-sl", chain_scenario(), SimParams(seed=0))
    emit_manifest(
        "ablation_scheduler",
        params={"runs": RUNS, "chain_depth": CHAIN},
        results={"mean_ms": means, "advantage_pct": advantage},
        seed=0,
        obs=obs,
    )
