"""The per-shard execution body — identical in-process and in a pool.

:func:`run_shard_payload` is the single entry point both execution
paths share: the serial ``--workers 1`` path calls it inline, the
:mod:`concurrent.futures` pool pickles the payload dict to a child
process.  Either way each shard:

1. calls :func:`repro.sim.reset_global_state` (fresh debug numbering,
   as if the shard ran in a brand-new interpreter);
2. builds a **fresh** obs context when instrumentation was requested
   (per-process metric registries — nothing shared, nothing racy);
3. runs the experiment / chaos campaign with seeds derived entirely
   from the payload;
4. returns a JSON-safe shard document whose ``results`` subtree
   contains only simulated-time (deterministic) values — wall-clock
   measurements are quarantined under ``wall`` so the fleet's
   aggregate signature is independent of host speed and worker count.

The bit-identity of (1)-(4) across process boundaries is asserted by
``tests/sweep/test_determinism.py``.
"""

from __future__ import annotations

import math
import os
import time
import traceback
from typing import Any, Callable, Optional

import numpy as np

from repro.sim.reset import reset_global_state

#: Scenario-stream domain separator (distinct from the params seed use).
_SCENARIO_STREAM = 0x5CE2


class InjectedShardFault(RuntimeError):
    """Raised by the test-only fault hook (see :func:`_maybe_inject`)."""


def run_shard_payload(payload: dict) -> dict:
    """Execute one shard and return its JSON-safe document."""
    reset_global_state()
    _maybe_inject(payload)
    obs = _build_obs(payload)
    started = time.perf_counter()  # repro: ignore[wall-clock] shard wall-time bookkeeping
    if payload["kind"] == "experiment":
        results = _run_experiment_shard(payload, obs)
    elif payload["kind"] == "chaos":
        results = _run_chaos_shard(payload, obs)
    elif payload["kind"] == "serve":
        results = _run_serve_shard(payload, obs)
    elif payload["kind"] == "ops":
        results = _run_ops_shard(payload, obs)
    elif payload["kind"] == "prep":
        results = _run_prep_shard(payload)
    elif payload["kind"] == "interference":
        results = _run_interference_shard(payload)
    elif payload["kind"] == "fuzz":
        results = _run_fuzz_shard(payload)
    else:
        raise ValueError(f"unknown shard kind {payload['kind']!r}")
    duration = time.perf_counter() - started  # repro: ignore[wall-clock] shard wall-time bookkeeping

    # Runner-reported wall-clock measurements are lifted out of the
    # results subtree: ``results`` must stay deterministic.
    wall: dict[str, Any] = dict(results.pop("_wall", {}))
    wall.update(duration_s=duration, pid=os.getpid())
    # Full causal DAGs (serve runs with causal tracing) ride the shard
    # document outside ``results``: deterministic but bulky, they are
    # written to a sidecar file rather than hashed into the aggregate
    # signature (the compact ``attribution`` stays inside results).
    causal = results.pop("_causal", None)
    doc: dict[str, Any] = {
        "shard_id": payload["shard_id"],
        "index": payload["index"],
        "kind": payload["kind"],
        "seed": payload.get("seed"),
        "results": _json_safe(results),
        "wall": _json_safe(wall),
    }
    if causal is not None:
        doc["causal"] = _json_safe(causal)
    if obs is not None:
        captured = obs.snapshot()
        doc["metrics"] = _json_safe(captured.get("metrics", {}))
        doc["spans"] = _json_safe(captured.get("spans", []))
        if "profile" in captured:
            doc["profile"] = _json_safe(captured["profile"])
    return doc


def worker_init() -> None:
    """Pool initializer: fresh global state for the child process.

    Each shard resets again (a worker serves many shards), but doing
    it here too keeps even shard-free children deterministic."""
    reset_global_state()


# -- shard kinds -------------------------------------------------------------


def _run_experiment_shard(payload: dict, obs: Optional[Any]) -> dict:
    from repro.harness.experiment import run_experiment
    from repro.harness.scenarios import multi_flow_scenario, single_flow_scenario
    from repro.obs.context import NULL_OBS
    from repro.params import SimParams

    seed = int(payload["seed"])
    topo = _topology(payload["topology"])
    scenario_rng = np.random.default_rng([seed, _SCENARIO_STREAM])
    try:
        if payload["scenario"] == "single":
            scenario = single_flow_scenario(topo, rng=scenario_rng)
        else:
            scenario = multi_flow_scenario(topo, rng=scenario_rng)
    except RuntimeError as exc:
        # Workload generation can legitimately fail (no feasible
        # near-capacity reroute, §9.1); same seed -> same failure, so
        # this is a deterministic *result*, not a shard crash.
        return {
            "completed": False,
            "scenario_error": str(exc),
            "flows": 0,
        }

    params = SimParams(seed=seed)
    if payload.get("params"):
        import dataclasses

        params = dataclasses.replace(params, **payload["params"])
    if payload.get("dionysus_install_delays"):
        params = params.with_dionysus_install_delay()

    result = run_experiment(
        payload["system"],
        scenario,
        params=params,
        congestion_aware=bool(payload.get("congestion_aware", True)),
        obs=obs if obs is not None else NULL_OBS,
    )
    return {
        "completed": result.completed,
        "consistency_ok": result.consistency_ok,
        "violations": result.violations,
        "alarms": result.alarms,
        "total_update_time_ms": result.total_update_time_ms,
        "per_flow_ms": {str(k): v for k, v in sorted(result.per_flow_ms.items())},
        "flows": len(scenario.flows),
        "scenario": scenario.description,
        # prep_time_s is host-side work -> wall-clock, keep it out of
        # the deterministic results subtree.
        "_wall": {"prep_time_s": result.prep_time_s},
    }


def _run_chaos_shard(payload: dict, obs: Optional[Any]) -> dict:
    from repro.chaos.campaign import load_campaign
    from repro.chaos.runner import run_campaign

    campaign = load_campaign(payload["campaign"])
    result = run_campaign(campaign, obs=obs)
    return result.to_results()


def _run_serve_shard(payload: dict, obs: Optional[Any]) -> dict:
    from repro.serve.service import run_service
    from repro.serve.spec import load_serve_spec

    serve = dict(payload["serve"])
    # The shard seed (derived from the sweep's seed axis) overrides
    # the serve spec's own seed — one spec, many seeded replicas.
    serve["seed"] = int(payload["seed"])
    spec = load_serve_spec(serve)
    result = run_service(spec, obs=obs)
    return result.to_results()


def _run_ops_shard(payload: dict, obs: Optional[Any]) -> dict:
    from repro.ops.session import run_session
    from repro.ops.spec import load_session_spec

    ops = dict(payload["ops"])
    serve = dict(ops.get("serve") or {})
    # Same seed override as serve shards: the embedded serve spec's
    # seed is replaced by the derived shard seed.
    serve["seed"] = int(payload["seed"])
    ops["serve"] = serve
    spec = load_session_spec(ops)
    result = run_session(spec, obs=obs)
    return result.to_results()


def _run_interference_shard(payload: dict) -> dict:
    from repro.analysis.interference import analyze_serve_spec
    from repro.serve.spec import load_serve_spec

    serve = dict(payload["serve"])
    # Same seed override as serve shards: the static analysis covers
    # exactly the seeded workload a serve shard would execute.
    serve["seed"] = int(payload["seed"])
    spec = load_serve_spec(serve)
    report = analyze_serve_spec(spec)
    return dict(report.to_dict(), signature=report.signature())


def _run_fuzz_shard(payload: dict) -> dict:
    from repro.fuzz.campaign import run_fuzz_shard

    # Each fuzz case resets global state and builds its own obs
    # context internally; generator/oracle exceptions come back as
    # structured crash records instead of failing the shard.
    return run_fuzz_shard(
        payload["fuzz"],
        int(payload["seed"]),
        int(payload["shard_index"]),
        int(payload["budget"]),
    )


def _run_prep_shard(payload: dict) -> dict:
    from repro.harness.prep import prep_operation_counts

    # Operation counts are deterministic work measures; any wall-clock
    # timings arrive under "_wall" and are quarantined by the caller.
    return prep_operation_counts(
        payload["topology"],
        updates=int(payload["updates"]),
        count_updates=int(payload["count_updates"]),
        seed=int(payload["seed"]),
    )


def _topology(name: str) -> Any:
    from repro.topo import (
        attmpls_topology,
        b4_topology,
        chinanet_topology,
        fattree_topology,
        fig1_topology,
        fig2_topology,
        internet2_topology,
        six_node_topology,
    )

    factories: dict[str, Callable[[], Any]] = {
        "fig1": fig1_topology,
        "fig2": fig2_topology,
        "six_node": six_node_topology,
        "b4": b4_topology,
        "internet2": internet2_topology,
        "attmpls": attmpls_topology,
        "chinanet": chinanet_topology,
        "fattree4": lambda: fattree_topology(4),
    }
    return factories[name]()


# -- helpers -----------------------------------------------------------------


def _build_obs(payload: dict) -> Optional[Any]:
    if not (payload.get("obs") or payload.get("profile")):
        return None
    from repro.obs.context import make_obs

    return make_obs(profile=bool(payload.get("profile")))


def _maybe_inject(payload: dict) -> None:
    """Test-only crash hook, threaded through ``run_sweep(inject=...)``.

    Modes: ``always`` raises on every attempt; ``once`` raises on the
    first attempt per shard (a marker file under ``marker_dir`` keeps
    cross-attempt state); ``kill`` hard-exits the worker process to
    exercise pool-crash isolation."""
    inject = payload.get("_inject")
    if not inject or payload["shard_id"] not in inject.get("shard_ids", ()):
        return
    mode = inject.get("mode", "always")
    if mode == "always":
        raise InjectedShardFault(f"injected failure in {payload['shard_id']}")
    if mode == "once":
        marker = os.path.join(
            inject["marker_dir"], f"{payload['shard_id']}.failed-once"
        )
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8") as handle:
                handle.write("injected\n")
            raise InjectedShardFault(
                f"injected one-shot failure in {payload['shard_id']}"
            )
        return
    if mode == "kill":
        os._exit(13)
    raise ValueError(f"unknown injection mode {mode!r}")


def _json_safe(obj: Any) -> Any:
    """Recursively convert to plain JSON types; non-finite floats
    become ``None`` (strict-JSON manifests, diffable everywhere)."""
    if isinstance(obj, dict):
        return {str(k): _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    if isinstance(obj, (bool, str)) or obj is None:
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        return value if math.isfinite(value) else None
    return str(obj)


def failure_record(
    shard_id: str, index: int, attempts: int, exc: BaseException
) -> dict:
    """The structured ``ShardFailure`` document (JSON-safe)."""
    tb = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return {
        "shard_id": shard_id,
        "index": index,
        "attempts": attempts,
        "error_type": type(exc).__name__,
        "message": str(exc),
        "traceback_tail": tb[-2000:],
    }
