"""Phase spans: nestable brackets over the update lifecycle.

A span records both clocks at once — the *simulated* clock (engine
milliseconds, when a simulation is bound) and the *wall* clock
(``time.perf_counter`` seconds, reported as milliseconds) — so a
manifest can show "preparation took 3.1 wall-ms" next to
"run-to-quiescence covered 812 simulated ms".

Spans nest lexically (``with tracker.span("experiment"): with
tracker.span("preparation"): ...``) and export as a tree of plain
dicts.  The :class:`NullSpanTracker` is the disabled default: its
``span`` returns a shared re-entrant no-op context manager.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass
class Span:
    """One completed (or still-open) phase bracket."""

    name: str
    wall_start: float
    sim_start: Optional[float]
    attrs: dict = field(default_factory=dict)
    wall_end: Optional[float] = None
    sim_end: Optional[float] = None
    children: list["Span"] = field(default_factory=list)

    @property
    def wall_ms(self) -> Optional[float]:
        if self.wall_end is None:
            return None
        return (self.wall_end - self.wall_start) * 1000.0

    @property
    def sim_ms(self) -> Optional[float]:
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "wall_ms": self.wall_ms,
            "sim_start_ms": self.sim_start,
            "sim_end_ms": self.sim_end,
            "sim_ms": self.sim_ms,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class _SpanContext:
    """Context manager closing one span on exit."""

    __slots__ = ("_tracker", "_span")

    def __init__(self, tracker: "SpanTracker", span: Span) -> None:
        self._tracker = tracker
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracker._close(self._span)


class SpanTracker:
    """Collects a forest of spans for one run."""

    enabled = True

    def __init__(
        self,
        sim_clock: Optional[Callable[[], float]] = None,
        wall_clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.sim_clock = sim_clock
        self.wall_clock = wall_clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a nested span; close it by leaving the ``with`` block."""
        span = Span(
            name=name,
            wall_start=self.wall_clock(),
            sim_start=self.sim_clock() if self.sim_clock else None,
            attrs=attrs,
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        while self._stack:
            top = self._stack.pop()
            top.wall_end = self.wall_clock()
            top.sim_end = self.sim_clock() if self.sim_clock else None
            if top is span:
                break

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def tree(self) -> list[dict]:
        """The completed span forest as JSON-safe dicts."""
        return [root.to_dict() for root in self.roots]


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullSpanTracker(SpanTracker):
    """Disabled tracker: span() is a shared no-op context manager."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **attrs) -> _NullSpanContext:  # type: ignore[override]
        return _NULL_SPAN_CONTEXT

    def tree(self) -> list[dict]:
        return []
