"""Bit-identity of shard execution across process boundaries.

The fleet contract: the same shard payload produces the same
deterministic ``results`` subtree whether it runs inline (``--workers
1``), twice in one process, or in pool worker processes — wall-clock
material is quarantined under ``wall`` and never signed.
"""

import json

from repro.sweep.executor import run_sweep
from repro.sweep.merge import results_signature, shard_deterministic_view
from repro.sweep.spec import load_sweep_spec
from repro.sweep.worker import run_shard_payload

TINY = {
    "name": "tiny",
    "systems": ["p4update-sl", "p4update-dl"],
    "topologies": ["fig1"],
    "scenarios": ["single"],
    "seeds": 2,
}


def test_same_payload_twice_in_process_is_bit_identical():
    shard = load_sweep_spec(TINY).expand()[0]
    first = run_shard_payload(dict(shard.payload))
    second = run_shard_payload(dict(shard.payload))
    assert first["results"] == second["results"]
    view = shard_deterministic_view(first)
    assert json.dumps(view, sort_keys=True) == json.dumps(
        shard_deterministic_view(second), sort_keys=True
    )


def test_results_subtree_is_wall_free():
    shard = load_sweep_spec(TINY).expand()[0]
    doc = run_shard_payload(dict(shard.payload))
    assert "duration_s" in doc["wall"]
    assert "pid" in doc["wall"]
    assert "prep_time_s" in doc["wall"]
    flat = json.dumps(doc["results"])
    assert "duration_s" not in flat and "prep_time_s" not in flat


def test_serial_and_pool_signatures_match(tmp_path):
    """The acceptance core: worker count never changes the fleet's
    deterministic aggregate signature."""
    spec = load_sweep_spec(TINY)
    serial = run_sweep(spec, workers=1, cache_dir=str(tmp_path / "serial"))
    pooled = run_sweep(spec, workers=2, cache_dir=str(tmp_path / "pooled"))
    assert serial.ok and pooled.ok
    assert serial.signature() == pooled.signature()
    # Shard-by-shard bit-identity, not just an aggregate accident.
    for a, b in zip(serial.shard_docs, pooled.shard_docs):
        assert shard_deterministic_view(a) == shard_deterministic_view(b)
    # Signature survives a rebuild from the documents alone.
    assert results_signature(pooled.shard_docs) == serial.signature()


def test_signature_ignores_wall_but_not_results():
    spec = load_sweep_spec(TINY)
    docs = [run_shard_payload(dict(s.payload)) for s in spec.expand()]
    base = results_signature(docs)
    mutated_wall = [dict(d, wall={"duration_s": 1e9}) for d in docs]
    assert results_signature(mutated_wall) == base
    mutated_results = [dict(d) for d in docs]
    mutated_results[0] = dict(
        mutated_results[0],
        results=dict(mutated_results[0]["results"], violations=99),
    )
    assert results_signature(mutated_results) != base
