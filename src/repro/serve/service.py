"""End-to-end service runs: spec in, deterministic result out.

:func:`run_service` builds a deployment for the spec topology,
installs the flow population, wires the orchestrator, live consistency
checking and optional chaos events, then drives the request workload
to the horizon on the simulated clock.  The returned
:class:`ServiceResult` carries per-request records, SLO summaries and
a content signature; everything in :meth:`ServiceResult.to_results`
is simulated-time only, so the same spec + seed is bit-identical
regardless of host, worker count or wall-clock speed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.chaos.campaign import TopoEvent
from repro.chaos.runner import TOPOLOGIES, _apply_topo_event, trace_signature
from repro.consistency.checker import LiveChecker
from repro.harness.build import build_p4update_network
from repro.obs.causal import CausalTracker, summarize_attribution
from repro.obs.context import NULL_OBS, ObsContext
from repro.obs.registry import NullRegistry
from repro.obs.spans import NullSpanTracker
from repro.params import SimParams
from repro.serve.model import OUTCOME_COMPLETED, OUTCOMES
from repro.serve.orchestrator import ServiceOrchestrator
from repro.serve.spec import ServeSpec
from repro.serve.workload import (
    build_flow_population,
    closed_loop_pick,
    flow_weights,
    open_loop_arrivals,
)
from repro.sim.reset import reset_global_state

#: RNG domain separators (distinct from every other stream in the repo).
_FLOW_STREAM = 0x5EF1
_ARRIVAL_STREAM = 0x5EA2

#: SLO percentiles reported per latency series.
_PERCENTILES = (50, 90, 99)


def apply_link_capacity(topo: Any, link_capacity: float) -> None:
    """Override every link's capacity in place (0 keeps defaults).

    Shared by :func:`run_service` and the static analyzer's
    ``batch_from_serve_spec`` so both sides see the same constraints.
    """
    if link_capacity <= 0:
        return
    for a, b in topo.graph.edges:
        topo.graph.edges[a, b]["capacity"] = float(link_capacity)


def link_capacities(topo: Any) -> dict[tuple[str, str], float]:
    """Directed capacity map for the admission gate (links are
    symmetric in every repo topology, so both directions get the
    undirected edge's capacity)."""
    capacities: dict[tuple[str, str], float] = {}
    for a, b in topo.graph.edges:
        cap = float(topo.graph.edges[a, b]["capacity"])
        capacities[(a, b)] = cap
        capacities[(b, a)] = cap
    return capacities


def _percentile(values: list[float], pct: int) -> Optional[float]:
    """Nearest-rank percentile — pure python, no float surprises."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without floats
    return ordered[rank - 1]


def _summary(values: list[float]) -> dict[str, Any]:
    doc: dict[str, Any] = {"count": len(values)}
    for pct in _PERCENTILES:
        doc[f"p{pct}"] = _percentile(values, pct)
    doc["max"] = max(values) if values else None
    return doc


@dataclass
class ServiceResult:
    """Everything one service run produced (JSON-safe via to_results)."""

    spec: ServeSpec
    records: list[dict]
    violations: list[dict]
    outcome_counts: dict[str, int]
    slo: dict[str, Any]
    peak_in_flight: int
    sim_time_ms: float
    events_processed: int
    trace_sig: str
    invariants_ok: bool = True
    trace_dropped: int = 0
    # Critical-path latency attribution (spec.causal runs only):
    # deterministic per-request rows + summary, and the full causal
    # DAGs (lifted out of ``results`` by the sweep worker).
    attribution: Optional[dict] = None
    causal: Optional[list] = None
    # Admission-gate decisions (spec.static_interference != "off").
    # Omitted from results when empty so a gated-but-conflict-free run
    # stays byte-identical to a gate-off run.
    interference: list = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.violations

    @property
    def completed(self) -> int:
        return self.outcome_counts.get(OUTCOME_COMPLETED, 0)

    @property
    def makespan_ms(self) -> float:
        times = [
            r["completed_ms"]
            for r in self.records
            if r["outcome"] == OUTCOME_COMPLETED
        ]
        return max(times) if times else 0.0

    @property
    def throughput_per_s(self) -> float:
        """Committed updates per simulated second of service makespan."""
        span = self.makespan_ms
        if span <= 0:
            return 0.0
        return self.completed / (span / 1000.0)

    def signature(self) -> str:
        """SHA-256 over the deterministic payload (records + checks)."""
        blob = json.dumps(
            {"records": self.records, "violations": self.violations},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_results(self) -> dict[str, Any]:
        doc = self._base_results()
        if self.interference:
            doc["interference"] = list(self.interference)
        if self.attribution is not None:
            doc["attribution"] = self.attribution
        if self.causal is not None:
            # Leading underscore: the sweep worker lifts the DAGs out
            # of ``results`` (like ``_wall``) so they ride the shard
            # document without entering the aggregate signature.
            doc["_causal"] = self.causal
        return doc

    def _base_results(self) -> dict[str, Any]:
        return {
            "name": self.spec.name,
            "topology": self.spec.topology,
            "seed": self.spec.seed,
            "requests": len(self.records),
            "outcomes": dict(sorted(self.outcome_counts.items())),
            "completed": self.completed,
            "consistent": self.consistent,
            "violations": self.violations,
            "invariants_ok": self.invariants_ok,
            "peak_in_flight": self.peak_in_flight,
            "makespan_ms": self.makespan_ms,
            "throughput_per_s": self.throughput_per_s,
            "slo": self.slo,
            "sim_time_ms": self.sim_time_ms,
            "events_processed": self.events_processed,
            "signature": self.signature(),
            "trace_signature": self.trace_sig,
            "trace_dropped_events": self.trace_dropped,
            "records": self.records,
        }


@dataclass
class _Workload:
    """Internal: arrival-driving state shared by the callbacks."""

    issued: int = 0
    budget: int = 0
    think_ms: float = 0.0
    weights: Any = None
    rng: Any = None
    population: list = field(default_factory=list)


def run_service(
    spec: ServeSpec, obs: Optional[ObsContext] = None
) -> ServiceResult:
    """Run one complete service workload described by ``spec``."""
    reset_global_state()
    obs = obs if obs is not None else NULL_OBS
    tracker: Optional[CausalTracker] = None
    if spec.causal:
        tracker = CausalTracker()
        if obs is NULL_OBS:
            # Causal tracing without metrics: a fresh disabled-metrics
            # context carrying only the tracker (never mutate the
            # shared NULL_OBS singleton).
            obs = ObsContext(NullRegistry(), NullSpanTracker(), causal=tracker)
        else:
            obs.causal = tracker
    topo = TOPOLOGIES[spec.topology]()
    apply_link_capacity(topo, spec.link_capacity)
    params = SimParams(seed=spec.seed)
    if spec.params:
        params = dataclasses.replace(params, **dict(spec.params))
    deployment = build_p4update_network(topo, params=params, obs=obs)
    deployment.set_congestion_aware(spec.congestion_aware)
    engine = deployment.network.engine

    flow_rng = np.random.default_rng([spec.seed, _FLOW_STREAM])
    population = build_flow_population(
        topo, spec.flows, flow_rng, mean_size=spec.mean_flow_size
    )
    for service_flow in population:
        deployment.install_flow(service_flow.to_flow())

    checker = LiveChecker(
        deployment.forwarding_state, deployment.network.trace
    )
    orchestrator = ServiceOrchestrator(
        spec, deployment, population, obs=obs,
        capacities=link_capacities(topo),
    )

    if spec.events:
        deployment.network.enable_chaos()
        for event_doc in spec.events:
            event = TopoEvent(**dict(event_doc))
            engine.schedule_at(
                event.time_ms, _apply_topo_event, deployment, event
            )

    arrival_rng = np.random.default_rng([spec.seed, _ARRIVAL_STREAM])
    state = _Workload(
        budget=spec.requests,
        think_ms=spec.think_time_ms,
        weights=flow_weights(population),
        rng=arrival_rng,
        population=population,
    )

    if spec.mode == "open":
        arrivals = open_loop_arrivals(
            arrival_rng, population, spec.arrival_rate_per_s, spec.requests
        )

        def _next_arrival() -> None:
            try:
                gap_ms, index = next(arrivals)
            except StopIteration:
                return
            engine.schedule(gap_ms, _submit_open, index)

        def _submit_open(index: int) -> None:
            orchestrator.submit(population[index].flow_id)
            state.issued += 1
            _next_arrival()

        _next_arrival()
    else:  # closed loop

        def _client_submit() -> None:
            if state.issued >= state.budget:
                return
            state.issued += 1
            index = closed_loop_pick(state.rng, population, state.weights)
            orchestrator.submit(population[index].flow_id)

        def _on_terminal(_request: Any) -> None:
            if state.issued < state.budget:
                engine.schedule(state.think_ms, _client_submit)

        orchestrator.on_terminal = _on_terminal
        for _ in range(min(spec.clients, spec.requests)):
            _client_submit()

    deployment.run(until=spec.horizon_ms)
    orchestrator.on_terminal = None
    orchestrator.finalize()

    records = sorted(
        (r.to_record() for r in orchestrator.requests),
        key=lambda r: r["request_id"],
    )
    outcome_counts = {k: 0 for k in OUTCOMES}
    for record in records:
        outcome_counts[record["outcome"]] += 1
    outcome_counts = {k: v for k, v in outcome_counts.items() if v}

    completed = [r for r in records if r["outcome"] == OUTCOME_COMPLETED]
    slo = {
        "admission_wait_ms": _summary(
            [
                r["dispatched_ms"] - r["submitted_ms"]
                for r in records
                if r["dispatched_ms"] is not None
            ]
        ),
        "prepare_ms": _summary(
            [
                r["pushed_ms"] - r["dispatched_ms"]
                for r in records
                if r["pushed_ms"] is not None and r["dispatched_ms"] is not None
            ]
        ),
        "install_ms": _summary(
            [
                r["last_install_ms"] - r["pushed_ms"]
                for r in completed
                if r["last_install_ms"] is not None and r["pushed_ms"] is not None
            ]
        ),
        "verify_ms": _summary(
            [
                r["completed_ms"] - r["last_install_ms"]
                for r in completed
                if r["last_install_ms"] is not None
            ]
        ),
        "e2e_ms": _summary(
            [r["completed_ms"] - r["submitted_ms"] for r in completed]
        ),
    }

    violations = [
        {
            "time": v.time,
            "kind": v.kind,
            "flow_id": v.flow_id,
            "detail": v.detail,
        }
        for v in checker.violations
    ]
    # finish() raising on double-terminal is the primary guard; this
    # re-checks the emitted records themselves.
    invariants_ok = all(
        r["outcome"] in OUTCOMES and r["completed_ms"] is not None
        for r in records
    )

    attribution = None
    causal_dags = None
    if tracker is not None:
        rows = tracker.attribution_rows()
        attribution = {"rows": rows, "summary": summarize_attribution(rows)}
        causal_dags = tracker.dags()

    return ServiceResult(
        spec=spec,
        records=records,
        violations=violations,
        outcome_counts=outcome_counts,
        slo=slo,
        peak_in_flight=orchestrator.peak_in_flight,
        sim_time_ms=engine.now,
        events_processed=engine.processed_events,
        trace_sig=trace_signature(deployment.network.trace),
        invariants_ok=invariants_ok,
        trace_dropped=deployment.network.trace.dropped_events,
        attribution=attribution,
        causal=causal_dags,
        interference=orchestrator.interference_events,
    )
