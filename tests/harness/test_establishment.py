"""Unit tests for the uniform completion metric
(:func:`repro.harness.experiment.path_establishment_time`)."""


from repro.harness.experiment import path_establishment_time
from repro.sim.trace import KIND_RULE_CHANGE, Trace


def trace_of(events):
    trace = Trace()
    for time, node, next_hop, flow in events:
        trace.record(time, KIND_RULE_CHANGE, node, flow=flow, next_hop=next_hop)
    return trace


def test_already_established_is_zero():
    trace = Trace()
    assert path_establishment_time(trace, 1, ["a", "b"], ["a", "b"]) == 0.0


def test_simple_chain_establishes_at_last_edge():
    trace = trace_of([
        (1.0, "b", "c", 1),
        (5.0, "a", "b", 1),
    ])
    t = path_establishment_time(trace, 1, ["a", "b", "c"], ["a", "x", "c"])
    assert t == 5.0


def test_other_flows_ignored():
    trace = trace_of([
        (1.0, "a", "b", 1),
        (9.0, "a", "z", 2),       # different flow
    ])
    assert path_establishment_time(trace, 1, ["a", "b"], ["a", "c"]) == 1.0


def test_broken_then_reestablished():
    """A later change breaking the target path resets establishment."""
    trace = trace_of([
        (1.0, "a", "b", 1),
        (4.0, "a", "x", 1),       # breaks it
        (7.0, "a", "b", 1),       # restores
    ])
    assert path_establishment_time(trace, 1, ["a", "b"], ["a", "q"]) == 7.0


def test_cleanup_of_offpath_node_does_not_matter():
    trace = trace_of([
        (1.0, "a", "b", 1),
        (6.0, "z", None, 1),      # cleanup elsewhere
    ])
    assert path_establishment_time(trace, 1, ["a", "b"], ["a", "q"]) == 1.0


def test_removal_of_target_edge_breaks_it():
    trace = trace_of([
        (1.0, "a", "b", 1),
        (3.0, "a", None, 1),
    ])
    assert path_establishment_time(trace, 1, ["a", "b"], ["a", "q"]) == float("inf")


def test_initial_rules_count():
    """Edges already correct from the initial path need no event."""
    trace = trace_of([(2.0, "b", "c", 1)])
    # a->b holds from the initial path; only b->c changes.
    t = path_establishment_time(trace, 1, ["a", "b", "c"], ["a", "b", "x"])
    assert t == 2.0
