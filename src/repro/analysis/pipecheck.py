"""Static analysis of behavioural P4 pipeline programs.

Works on a live :class:`repro.p4.pipeline.PipelineProgram` instance:
runtime state (declared tables, clone sessions, an attached switch
agent) tells us what exists, and the AST of the program class tells
us how the control blocks use it.  Checks:

* ``table-missing-default`` — a declared match-action table without a
  default action silently misses (returns None) on unknown keys;
* ``register-never-written`` — a register array read somewhere in the
  pipeline but written by no method of the program (or its agent):
  every read returns the initial value, which almost always means a
  missing control-plane write path;
* ``register-read-before-write`` — a register whose only writes
  happen in a *later* pipeline stage than its reads (stage order
  parser -> ingress -> egress), with no control-plane writer: the
  first pass through the earlier stage always sees the default;
* ``unbounded-resubmit`` — stage code requests ``resubmit()`` but
  nothing bounds the recursion: the program never consults
  ``resubmit_count`` and no runtime cap (``max_resubmits``) was
  declared to the analyzer.

Method reachability is computed over ``self.<method>()`` calls
starting from the three stage entry points, so helpers like
``write_state`` called from ``ingress`` count as stage writes, while
methods only the switch agent calls count as control-plane writers.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Iterable, Optional

from repro.analysis.findings import Finding

STAGE_ORDER = ("parser", "ingress", "egress")


class _MethodFacts(ast.NodeVisitor):
    """Reads/writes/calls extracted from one method body."""

    def __init__(self) -> None:
        self.reads: set[str] = set()
        self.writes: set[str] = set()
        self.calls: set[str] = set()
        self.resubmits = False
        self.mentions_resubmit_count = False
        self._register_aliases: set[str] = set()

    # -- helpers -------------------------------------------------------------

    def _is_register_file(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "registers":
            return True
        if isinstance(node, ast.Name) and node.id in self._register_aliases:
            return True
        return False

    def _register_name(self, node: ast.expr) -> Optional[str]:
        """``<registers>["name"]`` -> "name"."""
        if not isinstance(node, ast.Subscript):
            return None
        if not self._is_register_file(node.value):
            return None
        index = node.slice
        if isinstance(index, ast.Constant) and isinstance(index.value, str):
            return index.value
        return "<dynamic>"

    # -- visitors -------------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_register_file(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._register_aliases.add(target.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            register = self._register_name(func.value)
            if register is not None and func.attr in ("read", "write", "reset"):
                if func.attr == "read":
                    self.reads.add(register)
                else:
                    self.writes.add(register)
            if func.attr == "resubmit":
                self.resubmits = True
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                self.calls.add(func.attr)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "resubmit_count":
            self.mentions_resubmit_count = True
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id == "resubmit_count":
            self.mentions_resubmit_count = True
        self.generic_visit(node)


def _class_methods(cls: type) -> dict[str, tuple[_MethodFacts, str, int]]:
    """Facts per method over the class's MRO (closest override wins)."""
    facts: dict[str, tuple[_MethodFacts, str, int]] = {}
    for klass in cls.__mro__:
        if klass is object:
            continue
        try:
            source = textwrap.dedent(inspect.getsource(klass))
            path = inspect.getsourcefile(klass) or f"<{klass.__name__}>"
            _, base_line = inspect.getsourcelines(klass)
        except (OSError, TypeError):  # pragma: no cover - builtins
            continue
        tree = ast.parse(source)
        class_node = next(
            (n for n in tree.body if isinstance(n, ast.ClassDef)), None
        )
        if class_node is None:
            continue
        for item in class_node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in facts:
                continue  # already collected from a subclass override
            visitor = _MethodFacts()
            visitor.visit(item)
            facts[item.name] = (
                visitor, path, base_line + item.lineno - 1
            )
    return facts


def _reachable(
    facts: dict[str, tuple[_MethodFacts, str, int]], entries: Iterable[str]
) -> set[str]:
    seen: set[str] = set()
    frontier = [name for name in entries if name in facts]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        for callee in sorted(facts[name][0].calls):
            if callee in facts and callee not in seen:
                frontier.append(callee)
    return seen


def analyze_pipeline(
    program: Any,
    max_resubmits: Optional[int] = None,
    include_agent: bool = True,
) -> list[Finding]:
    """Run every pipeline check over ``program``; returns findings.

    ``max_resubmits`` declares an externally enforced resubmission cap
    (e.g. :data:`repro.params.SimParams.max_resubmits`, enforced by
    the switch agent); without it, unguarded ``resubmit()`` calls are
    flagged.  With ``include_agent`` (default), the attached switch
    agent's methods count as control-plane register writers.
    """
    findings: list[Finding] = []
    cls = type(program)
    class_path = inspect.getsourcefile(cls) or f"<{cls.__name__}>"

    # -- tables -----------------------------------------------------------
    tables = getattr(program, "tables", {})
    for name in sorted(tables):
        table = tables[name]
        if table.default_action is None:
            findings.append(
                Finding(
                    rule="table-missing-default",
                    message=(
                        f"table {name!r} has no default action; lookups "
                        f"miss silently on unknown keys"
                    ),
                    path=class_path,
                    line=0,
                )
            )

    facts = _class_methods(cls)

    # Stage-reachable methods, per stage (in declared stage order).
    per_stage: dict[str, set[str]] = {
        stage: _reachable(facts, [stage]) for stage in STAGE_ORDER
    }
    stage_methods = set().union(*per_stage.values())

    # Control-plane writers: program methods nothing in the stages
    # reaches (runtime API like store_uim), plus agent methods.
    control_writes: set[str] = set()
    for name, (info, _, _) in facts.items():
        if name not in stage_methods:
            control_writes.update(info.writes)
    agent = getattr(program, "agent", None)
    if include_agent and agent is not None:
        for info, _, _ in _class_methods(type(agent)).values():
            control_writes.update(info.writes)

    def _stage_sets(kind: str) -> dict[str, set[str]]:
        out: dict[str, set[str]] = {}
        for stage in STAGE_ORDER:
            names: set[str] = set()
            for method in per_stage[stage]:
                names.update(getattr(facts[method][0], kind))
            out[stage] = names
        return out

    reads_by_stage = _stage_sets("reads")
    writes_by_stage = _stage_sets("writes")
    all_stage_writes = set().union(*writes_by_stage.values())
    all_stage_reads = set().union(*reads_by_stage.values())

    register_file = getattr(program, "registers", None)
    declared = set(register_file.names()) if register_file is not None else set()

    # -- register-never-written -----------------------------------------------
    for register in sorted(all_stage_reads - {"<dynamic>"}):
        if register in all_stage_writes or register in control_writes:
            continue
        where = sorted(
            stage for stage in STAGE_ORDER if register in reads_by_stage[stage]
        )
        findings.append(
            Finding(
                rule="register-never-written",
                message=(
                    f"register {register!r} is read in {'/'.join(where)} "
                    f"but no pipeline or control-plane code ever writes "
                    f"it; reads always return the initial value"
                ),
                path=class_path,
                line=0,
            )
        )

    # -- register-read-before-write -------------------------------------------
    for register in sorted(all_stage_reads - {"<dynamic>"}):
        if register in control_writes:
            continue
        read_stages = [
            i for i, stage in enumerate(STAGE_ORDER)
            if register in reads_by_stage[stage]
        ]
        write_stages = [
            i for i, stage in enumerate(STAGE_ORDER)
            if register in writes_by_stage[stage]
        ]
        if not write_stages:
            continue  # already reported as never-written
        if min(read_stages) < min(write_stages):
            findings.append(
                Finding(
                    rule="register-read-before-write",
                    message=(
                        f"register {register!r} is read in stage "
                        f"{STAGE_ORDER[min(read_stages)]!r} but first "
                        f"written in the later stage "
                        f"{STAGE_ORDER[min(write_stages)]!r}; the first "
                        f"pass sees the default value"
                    ),
                    path=class_path,
                    line=0,
                )
            )

    # -- unknown register names (typo guard) ----------------------------------
    if declared:
        for register in sorted(
            (all_stage_reads | all_stage_writes) - {"<dynamic>"} - declared
        ):
            findings.append(
                Finding(
                    rule="register-undeclared",
                    message=(
                        f"pipeline code accesses register {register!r} "
                        f"which the program never defines"
                    ),
                    path=class_path,
                    line=0,
                )
            )

    # -- unbounded resubmit ----------------------------------------------------
    resubmitters = sorted(
        name for name in stage_methods if facts[name][0].resubmits
    )
    if resubmitters and max_resubmits is None:
        bounded = any(
            facts[name][0].mentions_resubmit_count for name in stage_methods
        )
        if not bounded:
            _, path, line = facts[resubmitters[0]]
            findings.append(
                Finding(
                    rule="unbounded-resubmit",
                    message=(
                        f"{'/'.join(resubmitters)} request resubmit() but "
                        f"neither the program consults resubmit_count nor "
                        f"was a runtime cap (max_resubmits) declared; a "
                        f"permanently-deferred packet loops forever"
                    ),
                    path=path,
                    line=line,
                )
            )

    findings.sort(key=lambda f: (f.rule, f.message))
    return findings
