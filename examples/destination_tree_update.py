#!/usr/bin/env python3
"""Destination-based routing — updating a whole in-tree at once (§11).

In destination-based networks (plain IP forwarding), all traffic
towards one prefix shares per-switch rules: the routing state is an
in-tree rooted at the destination.  P4Update's distance labeling
applies unchanged — the UNM chain simply *branches* at every node.

This example shifts a fat-tree destination's in-tree from core0 to
core1 and prints the branching notification order.

Run:  python examples/destination_tree_update.py
"""

from repro.consistency import LiveChecker
from repro.core.desttree import DestinationTreeManager, tree_id_for
from repro.harness.build import build_p4update_network
from repro.params import SimParams
from repro.topo import fattree_topology


def main() -> None:
    topo = fattree_topology(4)
    deployment = build_p4update_network(topo, params=SimParams(seed=1))
    checker = LiveChecker(deployment.forwarding_state, deployment.network.trace)
    manager = DestinationTreeManager(deployment.controller)

    dst = "edge0_0"
    old_tree = {
        "agg0_0": dst,
        "core0": "agg0_0",
        "agg1_0": "core0", "agg2_0": "core0", "agg3_0": "core0",
        "edge1_0": "agg1_0", "edge2_0": "agg2_0", "edge3_0": "agg3_0",
    }
    manager.install_tree(dst, old_tree, size=1.0, deployment=deployment)
    print(f"destination: {dst}")
    print(f"old in-tree via core0, {len(old_tree)} switches, "
          f"leaves: edge1_0, edge2_0, edge3_0\n")

    new_tree = {
        "agg0_0": dst,
        "core1": "agg0_0",
        "agg1_0": "core1", "agg2_0": "core1", "agg3_0": "core1",
        "edge1_0": "agg1_0", "edge2_0": "agg2_0", "edge3_0": "agg3_0",
    }
    manager.update_tree(dst, new_tree)
    deployment.run()

    print(f"update complete: {manager.update_complete(dst)}")
    print(f"duration:        {manager.update_duration(dst):.1f} ms")
    print(f"consistent:      {checker.ok}\n")
    print("rule installs (root first, branches in parallel):")
    for event in deployment.network.trace.of_kind("rule_change"):
        if event.detail.get("flow") == tree_id_for(dst):
            print(f"  t={event.time:6.2f} ms  {event.node} -> "
                  f"{event.detail.get('next_hop')}")


if __name__ == "__main__":
    main()
