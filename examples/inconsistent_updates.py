#!/usr/bin/env python3
"""The §4.1 story — why local verification matters (paper Fig. 2).

The controller deploys configuration (c) while the messages of the
earlier configuration (b) are still stuck in the network.  Probe
packets stream from v0 at 125 pps with TTL 64.

* ez-Segway applies whatever arrives: the mixed state contains the
  forwarding loop v3 -> v1 -> v2 -> v3; packets circle until the
  delayed (b) finally lands, and 64-hop TTLs expire after ~21 laps.
* P4Update's switches verify version numbers and egress distances
  locally: the update applies in a provably safe order, the late (b)
  is recognised as outdated and rejected — every packet is delivered
  exactly once.

Run:  python examples/inconsistent_updates.py
"""

from repro.harness.fig_experiments import run_fig2
from repro.harness.scenarios import InconsistentUpdateScenario
from repro.params import SimParams


def main() -> None:
    scenario = InconsistentUpdateScenario()
    print("initial (a):", " -> ".join(scenario.config_a))
    print("update  (b):", " -> ".join(scenario.config_b), "   [delayed in flight]")
    print("update  (c):", " -> ".join(scenario.config_c))
    print()

    for system in ("ezsegway", "p4update"):
        result = run_fig2(system, scenario=scenario, params=SimParams(seed=1))
        delivered = {o.seq for o in result.delivered_at_v4}
        print(f"== {system} ==")
        print(f"  probes sent:            {result.probes_sent}")
        print(f"  seqs seen >1x at v1:    {len(result.duplicates_at_v1)}"
              f"   (looping packets)")
        if result.duplicates_at_v1:
            worst = max(result.duplicates_at_v1.values())
            print(f"  worst packet circled:   {worst} times")
        print(f"  loop window:            {result.loop_window_ms:.0f} ms")
        print(f"  TTL-expired losses:     {result.ttl_losses}")
        print(f"  delivered at v4:        {len(delivered)}")
        print()


if __name__ == "__main__":
    main()
