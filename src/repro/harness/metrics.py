"""Metrics helpers for the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def _require_finite(samples: Sequence[float], what: str) -> np.ndarray:
    """Convert to a float array, rejecting NaN/inf explicitly.

    Non-finite values would silently poison every derived statistic
    (``np.mean`` propagates NaN, percentile ordering with inf is
    misleading), so they are an error at the door.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size and not np.all(np.isfinite(arr)):
        bad = int(np.count_nonzero(~np.isfinite(arr)))
        raise ValueError(f"{what} contains {bad} non-finite value(s) (NaN or inf)")
    return arr


def cdf_points(samples: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as sorted (value, probability) points."""
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def improvement(baseline: Sequence[float], candidate: Sequence[float]) -> float:
    """Mean relative improvement of candidate over baseline, in percent.

    Positive = candidate is faster (smaller values).  Matches the
    paper's "-28.6 %" style of reporting.
    """
    base_arr = _require_finite(baseline, "baseline")
    cand_arr = _require_finite(candidate, "candidate")
    if base_arr.size == 0 or cand_arr.size == 0:
        raise ValueError("improvement needs non-empty baseline and candidate")
    base = float(base_arr.mean())
    cand = float(cand_arr.mean())
    if base == 0:
        raise ValueError("baseline mean is zero")
    return (base - cand) / base * 100.0


@dataclass(frozen=True)
class Summary:
    """Distribution summary for one series of update times."""

    mean: float
    median: float
    p10: float
    p90: float
    minimum: float
    maximum: float
    n: int
    p50: float = math.nan
    p99: float = math.nan
    std: float = math.nan

    def row(self, label: str) -> str:
        return (
            f"{label:<28s} n={self.n:3d}  mean={self.mean:9.2f}  "
            f"median={self.median:9.2f}  p10={self.p10:9.2f}  "
            f"p90={self.p90:9.2f}  p99={self.p99:9.2f}  "
            f"std={self.std:9.2f}  "
            f"min={self.minimum:9.2f}  max={self.maximum:9.2f}"
        )


def summarize(samples: Sequence[float]) -> Summary:
    if not len(samples):
        raise ValueError("no samples")
    arr = _require_finite(samples, "samples")
    median = float(np.median(arr))
    return Summary(
        mean=float(arr.mean()),
        median=median,
        p10=float(np.percentile(arr, 10)),
        p90=float(np.percentile(arr, 90)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        n=len(arr),
        p50=median,
        p99=float(np.percentile(arr, 99)),
        std=float(arr.std(ddof=0)),
    )
