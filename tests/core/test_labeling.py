"""Unit tests for distance labeling and version allocation (§3)."""

import pytest

from repro.core.labeling import (
    UpdateLabels,
    VersionAllocator,
    distance_labels,
    label_update,
)
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH


def test_fig1_new_path_distances():
    """Paper §3: D_n(v0)=7, D_n(v1)=6, ..., D_n(v7)=0."""
    labels = distance_labels(FIG1_NEW_PATH)
    assert labels == {
        "v0": 7, "v1": 6, "v2": 5, "v3": 4, "v4": 3, "v5": 2, "v6": 1, "v7": 0,
    }


def test_fig1_old_path_distances():
    """Paper §3: D_o(v0)=3 (the paper's '4' next to 'D0(v0)' counts the
    nodes, its own example lists segment ids 3/2/1/0 in §3.2)."""
    labels = distance_labels(FIG1_OLD_PATH)
    assert labels == {"v0": 3, "v4": 2, "v2": 1, "v7": 0}


def test_distance_labels_reject_short_path():
    with pytest.raises(ValueError):
        distance_labels(["only"])


def test_distance_labels_reject_repeated_node():
    with pytest.raises(ValueError):
        distance_labels(["a", "b", "a"])


def test_egress_distance_is_zero():
    labels = distance_labels(["x", "y", "z"])
    assert labels["z"] == 0 and labels["x"] == 2


def test_version_allocator_increments_per_flow():
    versions = VersionAllocator()
    assert versions.next_version(1) == 1
    assert versions.next_version(1) == 2
    assert versions.next_version(2) == 1
    assert versions.current(1) == 2
    assert versions.current(99) == 0


def test_version_allocator_custom_start():
    versions = VersionAllocator(start=10)
    assert versions.next_version(1) == 11


def test_label_update_bundles_everything():
    labels = label_update(5, 3, ["a", "b", "c"])
    assert isinstance(labels, UpdateLabels)
    assert labels.flow_id == 5 and labels.version == 3
    assert labels.new_path == ("a", "b", "c")
    assert labels.distances == {"a": 2, "b": 1, "c": 0}
