"""Operations session — drain/migrate/rebalance under background churn.

Runs the committed drain-smoke session (`examples/ops_drain.json`): a
B4 switch is drained and restored under open-loop tenant churn and a
mid-drain link failure, then tenant 1 migrates and the session
rebalances.  Asserts the operational contract (clean drain, zero
stranded moves, consistency) and that the revision-keyed shortest-path
cache actually pays for itself during evacuation planning.

The manifest pins the full results signature: any drift in the
scheduler, the drain planner, or the path cache is a hard gate
failure, not a perf regression.
"""

from benchutils import emit_manifest, print_header

from repro.ops.session import run_session
from repro.ops.spec import load_session_spec_file

SPEC_PATH = "examples/ops_drain.json"


def run_drain_session():
    return run_session(load_session_spec_file(SPEC_PATH))


def test_ops_drain_session(benchmark):
    result = benchmark.pedantic(run_drain_session, rounds=1, iterations=1)
    summary = result.ops_summary()
    cache = result.path_cache

    print_header("Ops session — drain + migrate + rebalance on B4 (drain-smoke)")
    print(
        f"requests={len(result.records):3d}  "
        f"ops={summary['ops_total']}  moves={summary['moves_total']}  "
        f"violations={len(result.violations)}"
    )
    for status, count in sorted(summary["ops_by_status"].items()):
        print(f"  op:{status:<12s} {count}")
    for outcome, count in sorted(summary["moves_by_outcome"].items()):
        print(f"  move:{outcome:<10s} {count}")
    print(
        f"path cache: {cache['hits']:.0f} hit(s) / "
        f"{cache['misses']:.0f} miss(es)  "
        f"hit_rate={cache['hit_rate']:.3f}"
    )
    print(f"signature: {result.signature()}")

    # Operational contract: every op completes, the drain evacuates
    # everything, nothing is stranded, consistency holds throughout.
    assert summary["ops_by_status"] == {"completed": 4}
    assert summary["moves_by_outcome"].get("stranded", 0) == 0
    assert summary["drains_clean"]
    assert result.consistent and not result.violations
    assert result.invariants_ok
    # The revision-keyed path cache must land real hits while the
    # drain/migrate/rebalance planners re-query evacuation routes.
    assert cache["hits"] > 0
    assert cache["hit_rate"] > 0.0

    emit_manifest(
        "ops_session",
        params={"spec": SPEC_PATH, "seed": 1},
        results={
            "signature": result.signature(),
            "trace_signature": result.trace_sig,
            "requests": len(result.records),
            "ops_by_status": dict(sorted(summary["ops_by_status"].items())),
            "moves_by_outcome": dict(sorted(summary["moves_by_outcome"].items())),
            "moves_total": summary["moves_total"],
            "drains_clean": summary["drains_clean"],
            "violations": len(result.violations),
            "consistent": result.consistent,
            "invariants_ok": result.invariants_ok,
            "path_cache_hits": cache["hits"],
            "path_cache_misses": cache["misses"],
            "path_cache_hit_rate": round(cache["hit_rate"], 6),
        },
        seed=1,
    )
