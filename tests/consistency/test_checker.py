"""Unit tests for the consistency checkers."""


from repro.consistency import (
    ForwardingState,
    check_blackhole_freedom,
    check_congestion_freedom,
    check_loop_freedom,
    LiveChecker,
)
from repro.consistency.checker import check_all
from repro.sim.trace import KIND_RULE_CHANGE, Trace


def delivered_state():
    state = ForwardingState()
    state.register_flow(1, "a", "c", size=2.0)
    state.set_rule(1, "a", "b")
    state.set_rule(1, "b", "c")
    return state


def test_walk_delivered():
    state = delivered_state()
    path, outcome = state.walk(1)
    assert outcome == "delivered"
    assert path == ["a", "b", "c"]


def test_walk_blackhole():
    state = ForwardingState()
    state.register_flow(1, "a", "c", size=1.0)
    state.set_rule(1, "a", "b")
    path, outcome = state.walk(1)
    assert outcome == "blackhole"
    assert path == ["a", "b"]


def test_walk_loop():
    state = ForwardingState()
    state.register_flow(1, "a", "d", size=1.0)
    state.set_rule(1, "a", "b")
    state.set_rule(1, "b", "c")
    state.set_rule(1, "c", "a")
    _, outcome = state.walk(1)
    assert outcome == "loop"


def test_rule_removal():
    state = delivered_state()
    state.set_rule(1, "b", None)
    _, outcome = state.walk(1)
    assert outcome == "blackhole"


def test_blackhole_checker_flags_flow():
    state = ForwardingState()
    state.register_flow(7, "a", "c", size=1.0)
    state.set_rule(7, "a", "b")
    result = check_blackhole_freedom(state)
    assert not result.ok
    assert result.violations[0].flow_id == 7
    assert result.violations[0].kind == "blackhole"


def test_loop_checker_flags_cycle():
    state = ForwardingState()
    state.register_flow(1, "a", "z", size=1.0)
    state.set_rule(1, "a", "b")
    state.set_rule(1, "b", "a")
    result = check_loop_freedom(state)
    assert not result.ok and result.violations[0].kind == "loop"


def test_loop_checker_ignores_unreachable_cycles():
    """A cycle among nodes the ingress never reaches is not a loop of
    this flow's forwarding graph reachable from ingress."""
    state = delivered_state()
    state.set_rule(1, "x", "y")
    state.set_rule(1, "y", "x")
    assert check_loop_freedom(state).ok


def test_congestion_ok_within_capacity():
    state = delivered_state()
    state.set_capacity("a", "b", 5.0)
    state.set_capacity("b", "c", 5.0)
    assert check_congestion_freedom(state).ok


def test_congestion_flags_overload():
    state = delivered_state()        # flow 1 size 2.0 on a-b, b-c
    state.register_flow(2, "a", "c", size=4.0)
    state.set_rule(2, "a", "b")
    state.set_rule(2, "b", "c")
    state.set_capacity("a", "b", 5.0)
    result = check_congestion_freedom(state)
    assert not result.ok
    assert "a" in result.violations[0].detail


def test_congestion_ignores_undeliverable_flows():
    state = ForwardingState()
    state.register_flow(1, "a", "c", size=100.0)
    state.set_rule(1, "a", "b")     # blackhole at b: not routed, no load
    state.set_capacity("a", "b", 1.0)
    assert check_congestion_freedom(state).ok


def test_check_all_aggregates():
    state = ForwardingState()
    state.register_flow(1, "a", "c", size=1.0)
    state.set_rule(1, "a", "b")
    result = check_all(state)
    assert not result.ok
    kinds = {v.kind for v in result.violations}
    assert "blackhole" in kinds


def test_live_checker_catches_transient_loop():
    state = ForwardingState()
    trace = Trace()
    checker = LiveChecker(state, trace)
    state.register_flow(1, "a", "c", size=1.0)
    state.set_rule(1, "a", "b")
    state.set_rule(1, "b", "c")
    trace.record(1.0, KIND_RULE_CHANGE, "b", flow=1)
    assert checker.ok
    # A transient loop appears at t=2 and is fixed at t=3: the live
    # checker must still have caught it.
    state.set_rule(1, "b", "a")
    trace.record(2.0, KIND_RULE_CHANGE, "b", flow=1)
    state.set_rule(1, "b", "c")
    trace.record(3.0, KIND_RULE_CHANGE, "b", flow=1)
    assert not checker.ok
    assert checker.violations[0].kind == "loop"
    assert checker.violations[0].time == 2.0


def test_live_checker_arms_blackhole_after_first_delivery():
    state = ForwardingState()
    trace = Trace()
    checker = LiveChecker(state, trace)
    state.register_flow(1, "a", "c", size=1.0)
    # Partial install (ingress first would be a blackhole mid-install).
    state.set_rule(1, "a", "b")
    trace.record(1.0, KIND_RULE_CHANGE, "a", flow=1)
    assert checker.ok, "fresh install must not count as blackhole"
    state.set_rule(1, "b", "c")
    trace.record(2.0, KIND_RULE_CHANGE, "b", flow=1)
    assert checker.ok
    # Losing the path after establishment is a real blackhole.
    state.set_rule(1, "b", None)
    trace.record(3.0, KIND_RULE_CHANGE, "b", flow=1)
    assert not checker.ok
    assert checker.violations[0].kind == "blackhole"


def test_live_checker_ignores_other_event_kinds():
    state = ForwardingState()
    trace = Trace()
    checker = LiveChecker(state, trace)
    state.register_flow(1, "a", "b", size=1.0)
    trace.record(1.0, "msg_send", "a")
    assert checker.ok


def test_active_edges_only_for_delivered():
    state = delivered_state()
    assert state.active_edges(1) == [("a", "b"), ("b", "c")]
    state.set_rule(1, "b", None)
    assert state.active_edges(1) == []
