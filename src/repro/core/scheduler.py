"""Data-plane congestion scheduler (paper §7.4, App. A.2).

Completely local to one switch: when a flow cannot move to outgoing
link *e* because the remaining capacity is insufficient, every flow
that desires to move *away from e* (it currently occupies *e* and has
a pending update to a different link) is raised to high priority.  A
low-priority flow may move onto *e* only when no high-priority flow is
also waiting for *e*; high-priority flows move immediately once the
capacity suffices.  Priorities are dynamic — recomputed from the flows
actually waiting, never precomputed by the controller (unlike
ez-Segway's static three-class priorities).

Moves are atomic (the 15-puzzle model of §7.4): between admission and
rule-install completion the flow holds capacity on **both** the old
and the new link.  :meth:`CongestionScheduler.try_move` reserves the
new link, :meth:`commit_move` releases the old one once traffic has
actually moved, and :meth:`abort_move` rolls back a superseded
admission (fast-forward).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.obs.context import ObsContext


class Priority(enum.IntEnum):
    LOW = 0
    HIGH = 1


@dataclass
class PortBudget:
    """Capacity bookkeeping for one outgoing port."""

    capacity: float
    reserved: float = 0.0

    @property
    def remaining(self) -> float:
        return self.capacity - self.reserved


class CongestionScheduler:
    """Per-switch scheduler deciding when a blocked flow may move."""

    def __init__(self) -> None:
        self._budgets: dict[int, PortBudget] = {}
        # flow_id -> (port, size): committed placement.
        self._held: dict[int, tuple[int, float]] = {}
        # flow_id -> (port, size): admitted but not yet committed move.
        self._transit: dict[int, tuple[int, float]] = {}
        # port -> {flow_id} waiting to move TO that port.
        self._waiting_for: dict[int, set[int]] = {}
        self._priority: dict[int, Priority] = {}
        self.deferrals = 0
        self.admissions = 0
        # Observability instruments (None unless attach_obs is called
        # with an enabled context).
        self._m_admit = None
        self._m_defer = None

    # -- configuration ----------------------------------------------------

    def attach_obs(self, obs: "ObsContext", node: str) -> None:
        """Bind admit/defer counters labeled with the owning switch."""
        if not obs.enabled:
            return
        self._m_admit = obs.metrics.counter("scheduler_admissions", node=node)
        self._m_defer = obs.metrics.counter("scheduler_deferrals", node=node)

    def set_port_capacity(self, port: int, capacity: float) -> None:
        existing = self._budgets.get(port)
        if existing is None:
            self._budgets[port] = PortBudget(capacity=capacity)
        else:
            existing.capacity = capacity

    def port_budget(self, port: int) -> PortBudget:
        budget = self._budgets.get(port)
        if budget is None:
            budget = PortBudget(capacity=float("inf"))
            self._budgets[port] = budget
        return budget

    # -- queries ------------------------------------------------------------

    def priority(self, flow_id: int) -> Priority:
        return self._priority.get(flow_id, Priority.LOW)

    def committed_port(self, flow_id: int) -> Optional[int]:
        held = self._held.get(flow_id)
        return held[0] if held is not None else None

    def in_transit(self, flow_id: int) -> bool:
        return flow_id in self._transit

    def waiting_flows(self, port: int) -> set[int]:
        return set(self._waiting_for.get(port, set()))

    # -- initial placement ------------------------------------------------------

    def occupy(self, flow_id: int, port: int, size: float) -> None:
        """Record a flow already routed out of ``port`` (initial state).

        Unconditional: the controller guaranteed initial feasibility.
        """
        self.release(flow_id)
        self.port_budget(port).reserved += size
        self._held[flow_id] = (port, size)

    def release(self, flow_id: int) -> None:
        """Drop every reservation of the flow (committed and in transit)."""
        held = self._held.pop(flow_id, None)
        if held is not None:
            port, size = held
            self.port_budget(port).reserved -= size
        self.abort_move(flow_id)

    # -- the §7.4 admission decision --------------------------------------------

    def try_move(self, flow_id: int, new_port: int, size: float) -> bool:
        """Attempt to admit a move of ``flow_id`` onto ``new_port``.

        On True the new port's capacity is reserved *in addition to*
        the committed one; call :meth:`commit_move` when the rules have
        flipped.  On False the flow is recorded as waiting for
        ``new_port`` and blocking-link priorities are raised.
        """
        held = self._held.get(flow_id)
        if held is not None and held[0] == new_port:
            # Same link as before: capacity already reserved (§A.2).
            self._clear_wait(flow_id, new_port)
            self.abort_move(flow_id)
            self.admissions += 1
            if self._m_admit is not None:
                self._m_admit.inc()
            return True

        transit = self._transit.get(flow_id)
        if transit is not None:
            if transit[0] == new_port:
                return True  # already admitted
            # A newer target supersedes the old admission.
            self.abort_move(flow_id)

        budget = self.port_budget(new_port)
        capacity_ok = budget.remaining >= size - 1e-9

        if capacity_ok and self.priority(flow_id) is Priority.LOW:
            # A low-priority flow must yield to high-priority flows
            # waiting for the same link.
            rivals = self._waiting_for.get(new_port, set()) - {flow_id}
            if any(self.priority(r) is Priority.HIGH for r in rivals):
                capacity_ok = False

        if not capacity_ok:
            self.deferrals += 1
            if self._m_defer is not None:
                self._m_defer.inc()
            self._waiting_for.setdefault(new_port, set()).add(flow_id)
            self._recompute_priorities()
            return False

        budget.reserved += size
        self._transit[flow_id] = (new_port, size)
        self._clear_wait(flow_id, new_port)
        self._priority.pop(flow_id, None)
        self.admissions += 1
        if self._m_admit is not None:
            self._m_admit.inc()
        self._recompute_priorities()
        return True

    def commit_move(self, flow_id: int) -> None:
        """Finalize an admitted move: release the old link's capacity."""
        transit = self._transit.pop(flow_id, None)
        if transit is None:
            return  # same-port move or already committed
        held = self._held.pop(flow_id, None)
        if held is not None:
            old_port, old_size = held
            self.port_budget(old_port).reserved -= old_size
        self._held[flow_id] = transit

    def abort_move(self, flow_id: int) -> None:
        """Roll back an admitted-but-uncommitted move."""
        transit = self._transit.pop(flow_id, None)
        if transit is not None:
            port, size = transit
            self.port_budget(port).reserved -= size

    # -- internals ---------------------------------------------------------------

    def _recompute_priorities(self) -> None:
        """Dynamic §7.4 priorities from the current waiting sets.

        A flow is HIGH exactly when (a) some other flow is waiting to
        move onto a port the flow currently occupies, and (b) the flow
        itself is waiting to move away to a different port.  Everything
        else is LOW.
        """
        contended = {
            port
            for port, waiters in self._waiting_for.items()
            if waiters
        }
        self._priority = {}
        for flow_id, (port, _) in self._held.items():
            if port not in contended:
                continue
            blocked_by_others = any(
                w != flow_id for w in self._waiting_for.get(port, set())
            )
            if not blocked_by_others:
                continue
            wants_out = any(
                flow_id in waiters and target != port
                for target, waiters in self._waiting_for.items()
            )
            if wants_out:
                self._priority[flow_id] = Priority.HIGH

    def _clear_wait(self, flow_id: int, port: int) -> None:
        waiters = self._waiting_for.get(port)
        if waiters is not None:
            waiters.discard(flow_id)
            if not waiters:
                del self._waiting_for[port]
