"""The P4 switch simulation node.

Couples a :class:`~repro.p4.pipeline.Pipeline` to the event simulator:
every arriving packet traverses the pipeline after a processing delay;
resubmitted packets re-enter ingress after the resubmit interval; CPU
punts travel over the control channel.

The :class:`RuntimeAPI` is the P4Runtime stand-in: the controller's
UIMs are applied through it (table entries, register writes, clone
sessions) — mirroring how the original artifact writes BMv2 state.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.p4.packet import Packet
from repro.p4.pipeline import Pipeline, PipelineProgram
from repro.p4.tables import TableEntry
from repro.params import SimParams
from repro.sim.node import Node


class RuntimeAPI:
    """Control-plane access to one switch's tables and registers."""

    def __init__(self, program: PipelineProgram) -> None:
        self._program = program

    def write_register(self, array: str, index: int, value: int) -> None:
        self._program.registers[array].write(index, value)

    def read_register(self, array: str, index: int) -> int:
        return self._program.registers[array].read(index)

    def add_table_entry(self, table: str, entry: TableEntry) -> None:
        self._program.table(table).add(entry)

    def remove_table_entry(self, table: str, key: tuple) -> bool:
        return self._program.table(table).remove(key)

    def set_clone_session(self, session: int, port: int) -> None:
        self._program.set_clone_session(session, port)


class P4Switch(Node):
    """A switch running one P4 program.

    Subclasses (or the program itself) may install:

    * ``on_punt(switch, punt)`` — called for CPU-bound packets;
    * ``on_forward(switch, packet, port)`` — observation hook used by
      probes and the consistency checker.
    """

    def __init__(
        self,
        name: str,
        program: PipelineProgram,
        params: Optional[SimParams] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name)
        self.program = program
        self.pipeline = Pipeline(program)
        self.params = params if params is not None else SimParams()
        self.rng = rng if rng is not None else self.params.rng()
        self.runtime = RuntimeAPI(program)
        self.on_punt: Optional[Callable[["P4Switch", Any], None]] = None
        self.on_forward: Optional[Callable[["P4Switch", Packet, int], None]] = None
        self.packets_processed = 0
        self.packets_dropped = 0
        self.resubmissions = 0
        # The software target has ONE pipeline: packets serialise
        # through it.  This is what makes extra control messages (e.g.
        # DL's second-layer UNMs and resubmissions) cost real time
        # under load (paper §7.5, §11 "Data Plane Overhead").
        self._pipeline_busy_until = 0.0

    # -- reception -----------------------------------------------------------

    def handle_message(self, message: Any, in_port: int) -> None:
        if not isinstance(message, Packet):
            raise TypeError(
                f"{self.name}: data-plane message must be a Packet, got {type(message)!r}"
            )
        self._enqueue(message, in_port, 0)

    def _enqueue(self, packet: Packet, in_port: int, resubmit_count: int) -> None:
        """FIFO admission into the single pipeline."""
        service = self.params.pipeline_delay.sample(self.rng)
        start = max(self.engine.now, self._pipeline_busy_until)
        finish = start + service
        self._pipeline_busy_until = finish
        self.engine.schedule(
            finish - self.engine.now, self._run_pipeline, packet, in_port, resubmit_count
        )

    # -- pipeline execution ------------------------------------------------------

    def _run_pipeline(self, packet: Packet, in_port: int, resubmit_count: int) -> None:
        self.packets_processed += 1
        result = self.pipeline.process(packet, in_port, resubmit_count=resubmit_count)

        for punt in result.punts:
            if self.on_punt is not None:
                self.on_punt(self, punt)

        for port, clone in result.clones:
            self._emit(clone, port)

        if result.resubmit:
            self.resubmissions += 1
            if self.obs.enabled:
                self.obs.metrics.counter("resubmissions", node=self.name).inc()
            if resubmit_count >= self.params.max_resubmits:
                self.packets_dropped += 1
                if self.obs.enabled:
                    self.obs.metrics.histogram(
                        "resubmit_wait_depth", node=self.name,
                    ).observe(resubmit_count)
                    self.obs.metrics.counter(
                        "resubmit_budget_exhausted", node=self.name,
                    ).inc()
                return
            self.engine.schedule(
                self.params.resubmit_interval_ms,
                self._enqueue,
                packet,
                in_port,
                resubmit_count + 1,
            )
            return

        # The packet left the wait loop: record how deep it went.
        if resubmit_count and self.obs.enabled:
            self.obs.metrics.histogram(
                "resubmit_wait_depth", node=self.name,
            ).observe(resubmit_count)

        if result.dropped or result.egress_port is None:
            self.packets_dropped += 1
            return
        self._emit(result.packet, result.egress_port)

    def _emit(self, packet: Packet, port: int) -> None:
        if self.on_forward is not None:
            self.on_forward(self, packet, port)
        self.send(port, packet)

    # -- local origination --------------------------------------------------------

    def inject(self, packet: Packet, in_port: int = 0) -> None:
        """Feed a locally generated packet into the pipeline."""
        self._enqueue(packet, in_port, 0)
