"""Probe traffic for the Fig. 2 experiment.

Generates data packets at a fixed rate at a flow's ingress switch
(125 pps, TTL 64 in the paper) and extracts per-node receive series
and delivery/loss statistics from the trace afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.messages import make_probe
from repro.harness.build import P4UpdateDeployment
from repro.sim.trace import (
    KIND_PACKET_DELIVERED,
    KIND_PACKET_LOST,
    KIND_PACKET_RECV,
    Trace,
)


class ProbeSource:
    """Injects probe packets for one flow at a constant rate."""

    def __init__(
        self,
        deployment: P4UpdateDeployment,
        flow_id: int,
        ingress: str,
        rate_pps: Optional[float] = None,
        ttl: Optional[int] = None,
    ) -> None:
        self.deployment = deployment
        self.flow_id = flow_id
        self.ingress = ingress
        params = deployment.params
        self.interval_ms = 1000.0 / (rate_pps or params.probe_rate_pps)
        self.ttl = ttl if ttl is not None else params.probe_ttl
        self.sent = 0
        self._stop_at: Optional[float] = None

    def start(self, at: float, stop_at: float) -> None:
        """Schedule probe generation over [at, stop_at]."""
        self._stop_at = stop_at
        engine = self.deployment.network.engine
        engine.schedule_at(at, self._tick)

    def _tick(self) -> None:
        engine = self.deployment.network.engine
        if self._stop_at is not None and engine.now > self._stop_at:
            return
        switch = self.deployment.switches[self.ingress]
        packet = make_probe(self.flow_id, seq=self.sent, ttl=self.ttl)
        self.sent += 1
        switch.inject(packet)
        engine.schedule(self.interval_ms, self._tick)


@dataclass(frozen=True)
class ProbeObservation:
    """One probe sighting: (time, sequence id)."""

    time: float
    seq: int


def receives_at(trace: Trace, node: str, flow_id: int) -> list[ProbeObservation]:
    """All probe receptions of a flow at one node (Fig. 2b's series)."""
    return [
        ProbeObservation(e.time, e.detail["seq"])
        for e in trace.of_kind(KIND_PACKET_RECV)
        if e.node == node and e.detail.get("flow") == flow_id
    ]


def deliveries(trace: Trace, flow_id: int) -> list[ProbeObservation]:
    """Probes delivered at the flow egress (Fig. 2c's series)."""
    return [
        ProbeObservation(e.time, e.detail["seq"])
        for e in trace.of_kind(KIND_PACKET_DELIVERED)
        if e.detail.get("flow") == flow_id
    ]


def ttl_losses(trace: Trace, flow_id: int) -> list[ProbeObservation]:
    """Probes that died of TTL expiry (looping packets)."""
    return [
        ProbeObservation(e.time, e.detail["seq"])
        for e in trace.of_kind(KIND_PACKET_LOST)
        if e.detail.get("flow") == flow_id and e.detail.get("reason") == "ttl"
    ]


def duplicate_receives(observations: list[ProbeObservation]) -> dict[int, int]:
    """seq -> times seen, for sequences seen more than once (loops)."""
    counts: dict[int, int] = {}
    for obs in observations:
        counts[obs.seq] = counts.get(obs.seq, 0) + 1
    return {seq: n for seq, n in counts.items() if n > 1}
