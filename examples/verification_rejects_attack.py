#!/usr/bin/env python3
"""Local verification under fire — corrupted and dropped notifications.

Deploys the Fig. 1 dual-layer update while a fault injector corrupts
UNM distances in flight and drops a fraction of control messages.
Every corrupted notification is rejected locally (Alg. 1/2 distance
checks) and reported to the controller as an alarm; the §11 recovery
re-triggers lost notifications.  The network converges to the intended
path without ever becoming inconsistent.

Run:  python examples/verification_rejects_attack.py
"""

import numpy as np

from repro.consistency import LiveChecker
from repro.core.messages import UpdateType
from repro.harness.build import build_p4update_network
from repro.params import SimParams
from repro.sim.faults import FaultModel
from repro.topo import fig1_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
from repro.traffic.flows import Flow


def corrupt_distance(packet):
    """Flip the new-distance field of a UNM in flight."""
    if packet.has_valid("unm"):
        header = packet.header("unm")
        header["new_distance"] = header["new_distance"] + 3
    return packet


def main() -> None:
    topo = fig1_topology()
    deployment = build_p4update_network(topo, params=SimParams(seed=3))
    checker = LiveChecker(deployment.forwarding_state, deployment.network.trace)

    # Corrupt 30% of data-plane messages; §11 recovery handles losses.
    deployment.network.fault_model = FaultModel(
        rng=np.random.default_rng(99),
        corrupt_prob=0.3,
        corruptor=corrupt_distance,
        selector=lambda m: hasattr(m, "has_valid") and m.has_valid("unm"),
    )
    for switch in deployment.switches.values():
        switch.unm_timeout_ms = 400.0     # §11 UNM-loss watchdog

    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    deployment.install_flow(flow)
    deployment.controller.update_flow(
        flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL
    )
    deployment.run(until=20_000.0)

    alarms = deployment.controller.alarms
    walk, outcome = deployment.forwarding_state.walk(flow.flow_id)
    print(f"alarms raised by local verification: {len(alarms)}")
    for alarm in alarms[:5]:
        print(f"  {alarm.reporter}: {alarm.reason[:70]}")
    print(f"network stayed consistent: {checker.ok}")
    print(f"flow still deliverable:    {outcome == 'delivered'}")
    print(f"converged to new path:     {walk == list(FIG1_NEW_PATH)}")


if __name__ == "__main__":
    main()
