"""Dependency-aware orchestration: conflict rules, caps, recovery.

All scenarios run through :func:`run_service` so the assertions see
the same trace/record surface the benchmarks use; the trace is the
ground truth for interleaving claims (dispatch/done ordering).
"""

import pytest

from repro.serve.model import (
    OUTCOME_ABORTED,
    OUTCOME_COMPLETED,
    OUTCOME_MERGED,
    UpdateRequest,
)
from repro.serve.service import run_service
from repro.serve.spec import ServeSpec


def _spec(**overrides):
    base = dict(
        name="orch",
        topology="b4",
        seed=2,
        mode="open",
        flows=8,
        requests=60,
        arrival_rate_per_s=500.0,
        conflict_policy="serialize",
        horizon_ms=300000.0,
    )
    base.update(overrides)
    return ServeSpec(**base)


def _intervals_by_flow(records):
    """[(flow_id, dispatched, completed)] for requests that dispatched."""
    return [
        (r["flow_id"], r["dispatched_ms"], r["completed_ms"])
        for r in records
        if r["dispatched_ms"] is not None
    ]


def test_same_flow_updates_never_overlap():
    result = run_service(_spec())
    by_flow = {}
    for flow_id, start, end in _intervals_by_flow(result.records):
        by_flow.setdefault(flow_id, []).append((start, end))
    overlapping = 0
    for intervals in by_flow.values():
        intervals.sort()
        for (_, end_a), (start_b, _) in zip(intervals, intervals[1:]):
            if start_b < end_a:
                overlapping += 1
    assert overlapping == 0, "a flow owns one version slot: no overlap"
    assert result.consistent and result.invariants_ok


def test_distinct_flows_do_overlap():
    result = run_service(_spec())
    assert result.peak_in_flight > 1, (
        "independent flows must actually run concurrently"
    )


def test_merge_policy_supersedes_queued_same_flow():
    # Few flows + fast arrivals: queued same-flow requests pile up and
    # the merge policy collapses them.
    result = run_service(
        _spec(
            conflict_policy="merge",
            flows=4,
            requests=40,
            arrival_rate_per_s=2000.0,
        )
    )
    outcomes = result.outcome_counts
    assert outcomes.get(OUTCOME_MERGED, 0) > 0
    merged = [
        r for r in result.records if r["outcome"] == OUTCOME_MERGED
    ]
    for record in merged:
        assert record["dispatched_ms"] is None, (
            "only undispatched requests may be merged away"
        )
    assert result.consistent and result.invariants_ok


def test_max_in_flight_one_is_serial():
    result = run_service(_spec(max_in_flight=1))
    assert result.peak_in_flight == 1
    intervals = sorted(
        (start, end) for _, start, end in _intervals_by_flow(result.records)
    )
    for (_, end_a), (start_b, _) in zip(intervals, intervals[1:]):
        assert start_b >= end_a, "max_in_flight=1 must fully serialize"


def test_switch_conflict_serialize_blocks_shared_footprints():
    concurrent = run_service(_spec(seed=5))
    strict = run_service(_spec(seed=5, switch_conflict="serialize"))
    # Same workload, stricter policy: concurrency can only shrink.
    assert strict.peak_in_flight <= concurrent.peak_in_flight
    assert strict.consistent and strict.invariants_ok


def test_lifecycle_timestamps_are_monotone():
    result = run_service(_spec(requests=20))
    assert result.consistent
    for record in result.records:
        if record["admitted_ms"] is not None:
            assert record["admitted_ms"] >= record["submitted_ms"]
        if record["dispatched_ms"] is not None:
            assert record["dispatched_ms"] >= record["admitted_ms"]
            assert record["completed_ms"] >= record["dispatched_ms"]
        if record["pushed_ms"] is not None:
            assert record["pushed_ms"] >= record["dispatched_ms"]


def test_chaos_abort_composes_with_service():
    # A link flap mid-service: the update watchdog aborts or reroutes
    # work crossing the failed link; every request still reaches
    # exactly one terminal outcome and the data plane stays consistent.
    result = run_service(
        _spec(
            seed=3,
            requests=80,
            arrival_rate_per_s=400.0,
            params={"controller_update_timeout_ms": 2000.0},
            events=(
                {
                    "time_ms": 40.0,
                    "kind": "link_down",
                    "node_a": "dalles-or",
                    "node_b": "council-ia",
                },
                {
                    "time_ms": 400.0,
                    "kind": "link_up",
                    "node_a": "dalles-or",
                    "node_b": "council-ia",
                },
            ),
        )
    )
    assert result.invariants_ok
    assert result.consistent, result.violations
    assert len(result.records) == 80
    terminal = sum(result.outcome_counts.values())
    assert terminal == 80
    assert result.outcome_counts.get(OUTCOME_COMPLETED, 0) > 0
    aborted = result.outcome_counts.get(OUTCOME_ABORTED, 0)
    assert aborted >= 0  # aborts are allowed, double-terminals are not


def test_request_terminal_outcome_is_exactly_once():
    request = UpdateRequest(0, 123, submitted_ms=0.0)
    request.finish("completed", 10.0)
    assert request.terminal
    with pytest.raises(RuntimeError):
        request.finish("aborted", 11.0)
    with pytest.raises(ValueError):
        UpdateRequest(1, 124, submitted_ms=0.0).finish("nonsense", 1.0)
