"""The :class:`Topology` abstraction.

A thin, validated wrapper over an undirected :class:`networkx.Graph`
that carries everything the harness needs: per-link latency and
capacity, optional site coordinates, and controller placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import networkx as nx

from repro.topo.latency import geo_latency_ms

DEFAULT_CAPACITY = 100.0


@dataclass(frozen=True)
class EdgeSpec:
    """One undirected edge with its attributes."""

    a: str
    b: str
    latency_ms: float
    capacity: float


class Topology:
    """Named, validated network topology.

    Parameters
    ----------
    name:
        Identifier used in traces and benchmark rows.
    coordinates:
        Optional mapping node -> (lat, lon); when present, edges added
        with ``latency_ms=None`` get geographic latency.
    """

    def __init__(
        self,
        name: str,
        coordinates: Optional[dict[str, tuple[float, float]]] = None,
    ) -> None:
        self.name = name
        self.graph = nx.Graph()
        self.coordinates = dict(coordinates or {})
        self.controller: Optional[str] = None
        # Path cache, keyed on the mutation revision: every structural
        # change bumps ``_revision``; lookups lazily discard entries
        # cached under an older revision.  Drain/migrate/rebalance ops
        # recompute the same (src, dst) pairs constantly — without the
        # cache every probe is a full Dijkstra.
        self._revision = 0
        self._path_cache: dict[tuple, list[str]] = {}
        self._path_cache_revision = 0
        self.path_cache_hits = 0
        self.path_cache_misses = 0

    # -- construction ------------------------------------------------------

    def add_node(self, node: str, lat: Optional[float] = None, lon: Optional[float] = None) -> None:
        self.graph.add_node(node)
        self._revision += 1
        if lat is not None and lon is not None:
            self.coordinates[node] = (lat, lon)

    def add_edge(
        self,
        a: str,
        b: str,
        latency_ms: Optional[float] = None,
        capacity: float = DEFAULT_CAPACITY,
    ) -> None:
        if a == b:
            raise ValueError(f"self-loop on {a!r}")
        if latency_ms is None:
            latency_ms = self._geo_latency(a, b)
        if latency_ms <= 0:
            raise ValueError(f"non-positive latency on edge ({a!r}, {b!r})")
        self.graph.add_edge(a, b, latency_ms=latency_ms, capacity=capacity)
        self._revision += 1

    def _geo_latency(self, a: str, b: str) -> float:
        try:
            (lat1, lon1), (lat2, lon2) = self.coordinates[a], self.coordinates[b]
        except KeyError as exc:
            raise ValueError(
                f"edge ({a!r}, {b!r}) needs latency_ms or coordinates"
            ) from exc
        return geo_latency_ms(lat1, lon1, lat2, lon2)

    @classmethod
    def from_edges(
        cls,
        name: str,
        edges: Iterable[tuple],
        coordinates: Optional[dict[str, tuple[float, float]]] = None,
        default_latency_ms: Optional[float] = None,
        capacity: float = DEFAULT_CAPACITY,
    ) -> "Topology":
        """Build from ``(a, b)`` or ``(a, b, latency_ms)`` tuples."""
        topo = cls(name, coordinates=coordinates)
        for node in coordinates or {}:
            topo.add_node(node)
        for edge in edges:
            if len(edge) == 2:
                a, b = edge
                latency = default_latency_ms
            else:
                a, b, latency = edge
            topo.add_edge(a, b, latency_ms=latency, capacity=capacity)
        return topo

    # -- queries ---------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return list(self.graph.nodes)

    @property
    def edges(self) -> list[EdgeSpec]:
        return [
            EdgeSpec(a, b, data["latency_ms"], data["capacity"])
            for a, b, data in self.graph.edges(data=True)
        ]

    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def latency(self, a: str, b: str) -> float:
        return self.graph.edges[a, b]["latency_ms"]

    def capacity(self, a: str, b: str) -> float:
        return self.graph.edges[a, b]["capacity"]

    def neighbors(self, node: str) -> list[str]:
        return list(self.graph.neighbors(node))

    def is_connected(self) -> bool:
        return self.graph.number_of_nodes() > 0 and nx.is_connected(self.graph)

    def validate(self) -> None:
        """Raise ValueError when the topology is unusable."""
        if not self.is_connected():
            raise ValueError(f"topology {self.name!r} is not connected")

    # -- latency-weighted paths ---------------------------------------------------

    @property
    def revision(self) -> int:
        """Monotonic structural-mutation counter (cache key)."""
        return self._revision

    def invalidate_path_cache(self) -> None:
        """Force-drop cached paths (call after mutating ``.graph``
        directly, bypassing :meth:`add_node`/:meth:`add_edge`)."""
        self._revision += 1

    def _cached_path(self, key: tuple, compute) -> list[str]:
        if self._path_cache_revision != self._revision:
            self._path_cache.clear()
            self._path_cache_revision = self._revision
        cached = self._path_cache.get(key)
        if cached is not None:
            self.path_cache_hits += 1
            return list(cached)
        self.path_cache_misses += 1
        path = compute()
        self._path_cache[key] = path
        return list(path)

    def path_cache_stats(self) -> dict[str, float]:
        """Hits/misses/hit-rate since construction (ops bench probe)."""
        total = self.path_cache_hits + self.path_cache_misses
        return {
            "hits": self.path_cache_hits,
            "misses": self.path_cache_misses,
            "hit_rate": (self.path_cache_hits / total) if total else 0.0,
        }

    def shortest_path(self, src: str, dst: str) -> list[str]:
        return self._cached_path(
            (src, dst),
            lambda: nx.shortest_path(self.graph, src, dst, weight="latency_ms"),
        )

    def shortest_path_avoiding(
        self, src: str, dst: str, avoid: frozenset[str]
    ) -> list[str]:
        """Latency-shortest path whose transit nodes skip ``avoid``.

        ``src``/``dst`` may not be in ``avoid``.  Raises
        :class:`networkx.NetworkXNoPath` when avoidance disconnects the
        pair — callers (drain/migrate) treat that as "park, don't move".
        """
        if src in avoid or dst in avoid:
            raise nx.NetworkXNoPath(
                f"endpoint of ({src!r}, {dst!r}) is in the avoid set"
            )
        if not avoid:
            return self.shortest_path(src, dst)

        def compute() -> list[str]:
            view = nx.restricted_view(self.graph, avoid, [])
            return nx.shortest_path(view, src, dst, weight="latency_ms")

        return self._cached_path((src, dst, tuple(sorted(avoid))), compute)

    def path_latency(self, path: list[str]) -> float:
        return sum(self.latency(a, b) for a, b in zip(path, path[1:]))

    def control_latency(self, switch: str, controller: Optional[str] = None) -> float:
        """Latency of the shortest path from the controller to ``switch``."""
        controller = controller or self.controller
        if controller is None:
            raise ValueError("no controller placed")
        if switch == controller:
            return 0.05  # local loopback floor
        return nx.shortest_path_length(
            self.graph, controller, switch, weight="latency_ms"
        )

    # -- controller placement --------------------------------------------------------

    def place_controller_at_centroid(self) -> str:
        """Place the controller at the node minimising worst-case
        control latency (the paper's centroid rule, §9.1)."""
        lengths = dict(
            nx.all_pairs_dijkstra_path_length(self.graph, weight="latency_ms")
        )
        best = min(self.graph.nodes, key=lambda n: (max(lengths[n].values()), n))
        self.controller = best
        return best

    def set_controller(self, node: str) -> None:
        if node not in self.graph:
            raise ValueError(f"unknown node {node!r}")
        self.controller = node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topology {self.name!r} n={self.num_nodes()} m={self.num_edges()} "
            f"controller={self.controller!r}>"
        )
