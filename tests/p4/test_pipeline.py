"""Unit tests for the pipeline driver and P4Switch node."""

import pytest

from repro.p4.packet import HeaderField, HeaderType, Packet
from repro.p4.pipeline import Pipeline, PipelineProgram
from repro.p4.switch import P4Switch
from repro.p4.tables import Table, TableEntry
from repro.params import DelayDistribution, SimParams
from repro.sim.engine import Engine
from repro.sim.links import Link
from repro.sim.network import Network
from repro.sim.node import Node

TAG = HeaderType("tag", [HeaderField("value", 32)])


class ForwardingProgram(PipelineProgram):
    """Minimal L2-style program: exact match on tag.value -> port."""

    def __init__(self):
        super().__init__()
        self.define_table(Table("fwd", ["value"]))
        self.registers.define("seen", 16)

    def ingress(self, ctx):
        packet = ctx.packet
        if not packet.has_valid("tag"):
            ctx.drop()
            return
        value = packet.header("tag")["value"]
        self.registers["seen"].write(value % 16, 1)
        hit = self.table("fwd").lookup((value,))
        if hit is None:
            ctx.drop()
            return
        ctx.forward(hit.params[0])


def tagged_packet(value):
    packet = Packet()
    header = packet.add_header("tag", TAG.instantiate())
    header["value"] = value
    return packet


def fast_params():
    return SimParams(
        pipeline_delay=DelayDistribution.constant(0.1),
        resubmit_interval_ms=0.5,
    )


def test_pipeline_forwards_on_table_hit():
    program = ForwardingProgram()
    program.table("fwd").add(TableEntry(key=(5,), action="set_port", params=(2,)))
    result = Pipeline(program).process(tagged_packet(5), in_port=1)
    assert result.egress_port == 2 and not result.dropped


def test_pipeline_drops_on_miss():
    program = ForwardingProgram()
    result = Pipeline(program).process(tagged_packet(5), in_port=1)
    assert result.dropped


def test_registers_updated_from_data_plane():
    program = ForwardingProgram()
    program.table("fwd").add(TableEntry(key=(3,), action="set_port", params=(1,)))
    Pipeline(program).process(tagged_packet(3), in_port=1)
    assert program.registers["seen"].read(3) == 1


class CloningProgram(PipelineProgram):
    """Forwards on port 1 and clones to session 7 with an edited header."""

    def ingress(self, ctx):
        ctx.forward(1)
        ctx.clone_to_session(7)

    def egress(self, ctx):
        if ctx.metadata.get("is_clone"):
            ctx.packet.meta["cloned"] = True


def test_clone_goes_to_session_port_through_egress():
    program = CloningProgram()
    program.set_clone_session(7, 9)
    result = Pipeline(program).process(Packet(), in_port=0)
    assert result.egress_port == 1
    assert len(result.clones) == 1
    port, clone = result.clones[0]
    assert port == 9
    assert clone.meta.get("cloned") is True


def test_clone_to_undefined_session_is_discarded():
    program = CloningProgram()
    result = Pipeline(program).process(Packet(), in_port=0)
    assert result.clones == []


class WaitingProgram(PipelineProgram):
    """Resubmits until a register flag flips, then forwards."""

    def __init__(self):
        super().__init__()
        self.registers.define("ready", 1)

    def ingress(self, ctx):
        if self.registers["ready"].read(0):
            ctx.forward(1)
        else:
            ctx.carry("waited", True)
            ctx.resubmit()


class Sink(Node):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def handle_message(self, message, in_port):
        self.received.append((self.now, message))


def wire_switch(program, params=None):
    net = Network(Engine())
    switch = net.add_node(P4Switch("s1", program, params=params or fast_params()))
    sink = net.add_node(Sink("sink"))
    net.add_link(Link("s1", 1, "sink", 1, latency_ms=1.0))
    return net, switch, sink


def test_switch_resubmits_until_register_ready():
    program = WaitingProgram()
    net, switch, sink = wire_switch(program)
    switch.inject(Packet())
    # Flip the flag from the "control plane" at t=3ms.
    net.engine.schedule(3.0, program.registers["ready"].write, 0, 1)
    net.run()
    assert len(sink.received) == 1
    arrival = sink.received[0][0]
    assert arrival > 3.0
    assert switch.resubmissions >= 1


def test_switch_gives_up_after_max_resubmits():
    program = WaitingProgram()
    params = fast_params()
    params.max_resubmits = 3
    net, switch, sink = wire_switch(program, params)
    switch.inject(Packet())
    net.run()
    assert sink.received == []
    assert switch.packets_dropped == 1


def test_switch_rejects_non_packet_messages():
    program = ForwardingProgram()
    net, switch, _ = wire_switch(program)
    with pytest.raises(TypeError):
        switch.handle_message("not-a-packet", 1)


class PuntingProgram(PipelineProgram):
    def ingress(self, ctx):
        ctx.to_cpu("flow_report")
        ctx.drop()


def test_punt_invokes_hook():
    program = PuntingProgram()
    net, switch, _ = wire_switch(program)
    punts = []
    switch.on_punt = lambda sw, punt: punts.append((sw.name, punt.reason))
    switch.inject(Packet())
    net.run()
    assert punts == [("s1", "flow_report")]


def test_forward_hook_observes_emissions():
    program = ForwardingProgram()
    program.table("fwd").add(TableEntry(key=(4,), action="set_port", params=(1,)))
    net, switch, sink = wire_switch(program)
    seen = []
    switch.on_forward = lambda sw, pkt, port: seen.append(port)
    switch.handle_message(tagged_packet(4), in_port=1)
    net.run()
    assert seen == [1]
    assert len(sink.received) == 1


def test_runtime_api_register_and_table_access():
    program = ForwardingProgram()
    net, switch, sink = wire_switch(program)
    switch.runtime.add_table_entry(
        "fwd", TableEntry(key=(6,), action="set_port", params=(1,))
    )
    switch.runtime.write_register("seen", 0, 42)
    assert switch.runtime.read_register("seen", 0) == 42
    switch.handle_message(tagged_packet(6), in_port=1)
    net.run()
    assert len(sink.received) == 1
