"""Corrupted and duplicated messages against the verification layer.

The paper's local verification (Algs. 1 and 2) is what makes faults
survivable: a corrupted UNM must be *rejected* by the receiving
switch's distance/version checks — never applied — and the resulting
alarm plus the §11 watchdogs recover the update.
"""

from repro.chaos.campaign import CORRUPTORS
from repro.consistency import LiveChecker
from repro.core.messages import UpdateType
from repro.harness.build import build_p4update_network
from repro.params import SimParams
from repro.sim.faults import FaultAction, ScriptedFault
from repro.topo import fig1_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
from repro.traffic.flows import Flow


def is_unm(message) -> bool:
    has_valid = getattr(message, "has_valid", None)
    return callable(has_valid) and bool(has_valid("unm"))


def corrupted_update_run(corruptor_name, seed=0):
    params = SimParams(seed=seed)
    dep = build_p4update_network(fig1_topology(), params=params)
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    for switch in dep.switches.values():
        switch.unm_timeout_ms = 200.0
    dep.network.fault_model = ScriptedFault(
        matches=is_unm,
        action=FaultAction.CORRUPT,
        mutate=CORRUPTORS[corruptor_name],
        max_hits=1,
    )
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    return dep, flow, checker


def test_distance_skewed_unm_is_rejected_and_update_recovers():
    dep, flow, checker = corrupted_update_run("unm_distance_skew")
    # At least one switch refused the corrupted notification outright.
    rejects = sum(s.program.stats["unm_rejects"] for s in dep.switches.values())
    assert rejects >= 1
    # The rejection raised an alarm UFM at the controller.
    reasons = [u.reason for u in dep.controller.alarms if u.reason]
    assert any("distance" in r.lower() for r in reasons), reasons
    # ... and the watchdog-driven retransmission still finished the job.
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"
    assert walk == list(FIG1_NEW_PATH)
    assert checker.ok, checker.violations[:3]


def test_version_rewound_unm_is_dropped_and_update_recovers():
    dep, flow, checker = corrupted_update_run("unm_version_rewind")
    # The stale notification must not have been applied anywhere: the
    # update still converges to the new path with no violation.
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"
    assert walk == list(FIG1_NEW_PATH)
    assert checker.ok, checker.violations[:3]


def test_corruptor_mutates_copy_not_original():
    class FakePacket:
        def __init__(self):
            self.fields = {"new_distance": 3, "new_version": 2}

        def has_valid(self, name):
            return name == "unm"

        def header(self, name):
            return self.fields

    packet = FakePacket()
    mutated = CORRUPTORS["unm_distance_skew"](packet)
    assert mutated.fields["new_distance"] == 10   # 3 + 7
    # Payloads without a valid UNM header pass through untouched.
    plain = object()
    assert CORRUPTORS["unm_distance_skew"](plain) is plain


def test_duplicated_unms_are_idempotent():
    """20% duplication on every UNM: version checks make re-delivery a
    no-op, so the update completes on the correct path."""
    import numpy as np

    from repro.sim.faults import FaultModel

    params = SimParams(seed=1)
    dep = build_p4update_network(fig1_topology(), params=params)
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    dep.network.fault_model = FaultModel(
        rng=np.random.default_rng(99),
        duplicate_prob=0.2,
        selector=is_unm,
    )
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"
    assert walk == list(FIG1_NEW_PATH)
    assert checker.ok, checker.violations[:3]
