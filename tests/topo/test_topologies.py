"""Unit tests for topology construction and the latency model."""

import math

import networkx as nx
import pytest

from repro.topo import (
    attmpls_topology,
    b4_topology,
    chinanet_topology,
    fattree_topology,
    fig1_topology,
    fig2_topology,
    geo_latency_ms,
    haversine_km,
    internet2_topology,
    line_topology,
    ring_topology,
    six_node_topology,
)
from repro.topo.fattree import edge_switches
from repro.topo.graph import Topology
from repro.topo.synthetic import (
    FIG1_NEW_PATH,
    FIG1_OLD_PATH,
    FIG2_CONFIG_A,
    FIG2_CONFIG_B,
    FIG2_CONFIG_C,
    SIX_NODE_INITIAL,
    SIX_NODE_U2,
    SIX_NODE_U3,
)


# -- latency model ---------------------------------------------------------

def test_haversine_zero_for_same_point():
    assert haversine_km(40.0, -74.0, 40.0, -74.0) == 0.0


def test_haversine_known_distance_ny_la():
    # New York - Los Angeles is about 3940 km great-circle.
    d = haversine_km(40.71, -74.01, 34.05, -118.24)
    assert 3800 < d < 4050


def test_geo_latency_uses_fibre_speed():
    # 2000 km at 200 km/ms -> 10 ms.  Pick points ~2000km apart on equator.
    lat1, lon1 = 0.0, 0.0
    lon2 = math.degrees(2000.0 / 6371.0)
    latency = geo_latency_ms(lat1, lon1, 0.0, lon2)
    assert latency == pytest.approx(10.0, rel=0.01)


def test_geo_latency_floor():
    assert geo_latency_ms(1.0, 1.0, 1.0, 1.0) == 0.05


# -- synthetic topologies ----------------------------------------------------

def test_fig1_contains_both_paths():
    topo = fig1_topology()
    for path in (FIG1_OLD_PATH, FIG1_NEW_PATH):
        for a, b in zip(path, path[1:]):
            assert topo.graph.has_edge(a, b)


def test_fig1_homogeneous_20ms_links():
    topo = fig1_topology()
    assert all(e.latency_ms == 20.0 for e in topo.edges)


def test_fig2_paths_exist():
    topo = fig2_topology()
    for path in (FIG2_CONFIG_A, FIG2_CONFIG_B, FIG2_CONFIG_C):
        for a, b in zip(path, path[1:]):
            assert topo.graph.has_edge(a, b)


def test_fig2_has_five_nodes():
    assert fig2_topology().num_nodes() == 5


def test_six_node_paths_exist():
    topo = six_node_topology()
    assert topo.num_nodes() == 6
    for path in (SIX_NODE_INITIAL, SIX_NODE_U2, SIX_NODE_U3):
        for a, b in zip(path, path[1:]):
            assert topo.graph.has_edge(a, b)


def test_line_topology_structure():
    topo = line_topology(5)
    assert topo.num_nodes() == 5 and topo.num_edges() == 4
    assert topo.shortest_path("n0", "n4") == ["n0", "n1", "n2", "n3", "n4"]


def test_line_too_short_rejected():
    with pytest.raises(ValueError):
        line_topology(1)


def test_ring_topology_structure():
    topo = ring_topology(6)
    assert topo.num_nodes() == 6 and topo.num_edges() == 6
    degrees = dict(topo.graph.degree())
    assert all(d == 2 for d in degrees.values())


def test_ring_too_short_rejected():
    with pytest.raises(ValueError):
        ring_topology(2)


# -- WAN topologies -------------------------------------------------------------

@pytest.mark.parametrize(
    "builder,n,m",
    [
        (b4_topology, 12, 19),
        (internet2_topology, 16, 26),
        (attmpls_topology, 25, 56),
        (chinanet_topology, 38, 62),
    ],
)
def test_wan_node_edge_counts_match_paper(builder, n, m):
    topo = builder()
    assert topo.num_nodes() == n
    assert topo.num_edges() == m


@pytest.mark.parametrize(
    "builder", [b4_topology, internet2_topology, attmpls_topology, chinanet_topology]
)
def test_wan_connected_with_positive_latencies(builder):
    topo = builder()
    assert topo.is_connected()
    assert all(e.latency_ms > 0 for e in topo.edges)


def test_b4_transatlantic_latency_is_wan_scale():
    topo = b4_topology()
    # Lenoir NC <-> Dublin is ~6000 km -> ~30 ms one-way.
    assert 25.0 < topo.latency("lenoir-nc", "dublin-ie") < 40.0


def test_internet2_short_hop_is_small():
    topo = internet2_topology()
    assert topo.latency("washington", "newyork") < 3.0


# -- fat-tree -----------------------------------------------------------------------

def test_fattree_k4_sizes():
    topo = fattree_topology(4)
    # k=4: 4 cores, 8 agg, 8 edge = 20 switches; 8*2 pod links + 8*2
    # core links... each pod: 2 edge * 2 agg = 4 links -> 16; each pod's
    # 2 agg * 2 cores = 4 -> 16; total 32 edges.
    assert topo.num_nodes() == 20
    assert topo.num_edges() == 32


def test_fattree_edge_switch_listing():
    topo = fattree_topology(4)
    edges = edge_switches(topo)
    assert len(edges) == 8
    assert all(name.startswith("edge") for name in edges)


def test_fattree_odd_k_rejected():
    with pytest.raises(ValueError):
        fattree_topology(3)


def test_fattree_diameter_edge_to_edge():
    topo = fattree_topology(4)
    path = topo.shortest_path("edge0_0", "edge3_1")
    # edge -> agg -> core -> agg -> edge
    assert len(path) == 5


# -- Topology class behaviour ----------------------------------------------------------

def test_self_loop_rejected():
    topo = Topology("t")
    topo.add_node("a")
    with pytest.raises(ValueError):
        topo.add_edge("a", "a", latency_ms=1.0)


def test_edge_without_latency_or_coords_rejected():
    topo = Topology("t")
    topo.add_node("a")
    topo.add_node("b")
    with pytest.raises(ValueError):
        topo.add_edge("a", "b")


def test_disconnected_validation_fails():
    topo = Topology("t")
    topo.add_node("a")
    topo.add_node("b")
    with pytest.raises(ValueError):
        topo.validate()


def test_centroid_controller_minimises_worst_case_latency():
    topo = line_topology(5)
    centroid = topo.place_controller_at_centroid()
    assert centroid == "n2"


def test_centroid_deterministic_tie_break():
    topo = ring_topology(4)
    assert topo.place_controller_at_centroid() == "n0"


def test_control_latency_shortest_path():
    topo = line_topology(5, latency_ms=2.0)
    topo.set_controller("n0")
    assert topo.control_latency("n4") == pytest.approx(8.0)
    assert topo.control_latency("n0") == pytest.approx(0.05)


def test_control_latency_without_controller_raises():
    topo = line_topology(3)
    with pytest.raises(ValueError):
        topo.control_latency("n1")


def test_path_latency_sums_edges():
    topo = line_topology(4, latency_ms=3.0)
    assert topo.path_latency(["n0", "n1", "n2"]) == pytest.approx(6.0)


def test_wan_centroids_are_central_nodes():
    for builder in (b4_topology, internet2_topology):
        topo = builder()
        centroid = topo.place_controller_at_centroid()
        lengths = dict(
            nx.single_source_dijkstra_path_length(
                topo.graph, centroid, weight="latency_ms"
            )
        )
        # Worst-case latency from the centroid must be no worse than
        # from any other node.
        worst_centroid = max(lengths.values())
        for other in topo.nodes:
            other_lengths = dict(
                nx.single_source_dijkstra_path_length(
                    topo.graph, other, weight="latency_ms"
                )
            )
            assert worst_centroid <= max(other_lengths.values()) + 1e-9
