"""Post-hoc trace analysis: message counts and overhead breakdowns.

The paper's core scalability argument is about *where* messages flow:
P4Update pushes one UIM per switch and then coordinates via data-plane
UNMs, while Central takes a controller round-trip per dependency round.
These helpers quantify that from a run's trace.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.sim.trace import KIND_MSG_SEND, Trace

# Message type -> plane.
_PLANES = {
    "UIM": "control",
    "UFM": "control",
    "FRM": "control",
    "TagFlip": "control",
    "Role": "control",
    "Done": "control",
    "Rule": "control",
    "Ack": "control",
    "UNM": "data",
    "GTM": "data",
    "Cleanup": "data",
    "Probe": "data",
}


@dataclass
class MessageStats:
    """Counts of messages sent during a run, by type and plane."""

    by_type: dict = field(default_factory=dict)

    @property
    def control_plane(self) -> int:
        return sum(
            count for name, count in self.by_type.items()
            if _plane_of(name) == "control"
        )

    @property
    def data_plane(self) -> int:
        return sum(
            count for name, count in self.by_type.items()
            if _plane_of(name) == "data"
        )

    @property
    def total(self) -> int:
        return sum(self.by_type.values())

    def coordination_messages(self) -> int:
        """Messages used purely for update coordination (everything
        except probe/data packets)."""
        return sum(
            count for name, count in self.by_type.items()
            if name != "Probe"
        )

    def row(self, label: str) -> str:
        return (
            f"{label:14s} control={self.control_plane:5d}  "
            f"data={self.data_plane:5d}  total={self.total:5d}"
        )


def _plane_of(name: str) -> str:
    return _PLANES.get(name, "data")


def _type_of(description: str) -> str:
    """Normalise a message description to its type tag.

    P4 packets describe themselves as ``Packet#12[unm]`` — the valid
    header in brackets is the semantic type.
    """
    bracket = re.search(r"\[([a-z_,]+)\]", description)
    if description.startswith("Packet") and bracket:
        headers = bracket.group(1).split(",")
        if "unm" in headers:
            return "UNM"
        if "cleanup" in headers:
            return "Cleanup"
        if "probe" in headers:
            return "Probe"
    match = re.match(r"([A-Za-z]+)", description)
    return match.group(1) if match else description


def count_messages(trace: Trace) -> MessageStats:
    """Tally every sent message in a trace by its type."""
    stats = MessageStats()
    for event in trace.of_kind(KIND_MSG_SEND):
        description = event.detail.get("message", "")
        name = _type_of(description)
        stats.by_type[name] = stats.by_type.get(name, 0) + 1
    return stats


@dataclass
class OverheadReport:
    """Message overhead of one system on one scenario."""

    system: str
    stats: MessageStats
    update_time_ms: float
    rounds: int | None = None
