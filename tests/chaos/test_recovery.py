"""Controller recovery from topology failures.

Link failures and switch crashes must end in one of exactly two
states: the flow rerouted onto a working path (consistently, §5
invariants intact) or parked with a structured report.  Repairs must
un-park flows.
"""

from repro.consistency import LiveChecker
from repro.harness.build import build_p4update_network
from repro.obs import make_obs
from repro.params import SimParams
from repro.topo import fig1_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH, line_topology
from repro.traffic.flows import Flow


def fig1_deployment(seed=0, obs=None, **param_overrides):
    params = SimParams(seed=seed, **param_overrides)
    dep = build_p4update_network(fig1_topology(), params=params, obs=obs)
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    return dep, flow, checker


def test_link_failure_on_current_path_triggers_reroute():
    dep, flow, checker = fig1_deployment()
    dep.network.engine.schedule_at(
        5.0, dep.network.set_link_state, "v4", "v2", False
    )
    dep.run()
    record = dep.controller.flow_db[flow.flow_id]
    assert dep.controller.update_complete(flow.flow_id)
    assert not record.parked
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"
    assert not any(
        frozenset(pair) == frozenset(("v4", "v2")) for pair in zip(walk, walk[1:])
    )
    assert checker.ok, checker.violations[:3]


def test_link_failure_mid_update_aborts_then_reroutes():
    """Failure lands while the DL update is in flight: the pending
    update is aborted (Flow-DB rolled back) and a detour is pushed."""
    dep, flow, checker = fig1_deployment()
    dep.network.engine.schedule_at(
        10.0, dep.controller.update_flow, flow.flow_id, list(FIG1_NEW_PATH)
    )
    # v5-v6 is on the *new* path only; break it mid-update.
    dep.network.engine.schedule_at(
        12.0, dep.network.set_link_state, "v5", "v6", False
    )
    dep.run()
    record = dep.controller.flow_db[flow.flow_id]
    assert dep.controller.update_complete(flow.flow_id)
    assert not record.parked
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"
    assert not any(
        frozenset(pair) == frozenset(("v5", "v6")) for pair in zip(walk, walk[1:])
    )
    aborted = dep.network.trace.of_kind("update_aborted")
    assert len(aborted) >= 1
    assert checker.ok, checker.violations[:3]


def test_switch_crash_reroutes_around_the_node():
    dep, flow, checker = fig1_deployment()
    dep.network.engine.schedule_at(5.0, dep.network.crash_switch, "v4")
    dep.run()
    record = dep.controller.flow_db[flow.flow_id]
    assert dep.controller.update_complete(flow.flow_id)
    assert not record.parked
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"
    assert "v4" not in walk
    assert checker.ok, checker.violations[:3]


def test_crash_and_restart_still_converges():
    dep, flow, checker = fig1_deployment()
    dep.network.engine.schedule_at(5.0, dep.network.crash_switch, "v4")
    dep.network.engine.schedule_at(300.0, dep.network.restart_switch, "v4")
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    _, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"
    assert checker.ok, checker.violations[:3]


def test_no_alternate_path_parks_with_report():
    topo = line_topology(3)
    dep = build_p4update_network(topo, params=SimParams(seed=0))
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between("n0", "n2", size=1.0, old_path=["n0", "n1", "n2"])
    dep.install_flow(flow)
    dep.network.engine.schedule_at(
        5.0, dep.network.set_link_state, "n1", "n2", False
    )
    dep.run()
    record = dep.controller.flow_db[flow.flow_id]
    assert record.parked
    assert len(dep.controller.parked) == 1
    report = dep.controller.parked[0]
    assert report.flow_id == flow.flow_id
    assert report.src == "n0" and report.dst == "n2"
    assert "n1|n2" in report.failed_edges
    assert dep.network.trace.of_kind("flow_parked")
    # The gap is environmental, not a protocol violation.
    assert checker.ok, checker.violations[:3]


def test_link_repair_unparks_the_flow():
    topo = line_topology(3)
    dep = build_p4update_network(topo, params=SimParams(seed=0))
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between("n0", "n2", size=1.0, old_path=["n0", "n1", "n2"])
    dep.install_flow(flow)
    dep.network.engine.schedule_at(
        5.0, dep.network.set_link_state, "n1", "n2", False
    )
    dep.network.engine.schedule_at(
        500.0, dep.network.set_link_state, "n1", "n2", True
    )
    dep.run()
    record = dep.controller.flow_db[flow.flow_id]
    assert not record.parked
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"
    assert walk == ["n0", "n1", "n2"]
    assert checker.ok, checker.violations[:3]


def test_recovery_metrics_are_observed():
    obs = make_obs()
    dep, flow, checker = fig1_deployment(obs=obs)
    dep.network.engine.schedule_at(5.0, dep.network.set_link_state, "v4", "v2", False)
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    metrics = obs.metrics
    assert metrics.value("nib_updates", node="controller", kind="port_down") >= 1
    assert metrics.value("flow_reroutes", node="controller") >= 1
    assert metrics.value("flow_recoveries", node="controller") >= 1
    snapshot = obs.snapshot()["metrics"]
    assert "recovery_latency_ms" in snapshot
    record = dep.controller.flow_db[flow.flow_id]
    assert record.recovering_since is None   # cleared at completion


def test_exhausted_control_retries_escalate_to_recovery():
    """A switch that stops acking is treated as failed: its edges are
    marked down and flows are routed around it."""
    dep, flow, checker = fig1_deployment(
        reliable_control=True,
        control_retry_timeout_ms=20.0,
        control_retry_jitter_ms=0.0,
        control_max_retries=2,
    )
    dep.network.engine.schedule_at(5.0, dep.network.crash_switch, "v2")
    dep.run()
    # v2 was on the old path; the controller must have recovered the
    # flow onto a path that avoids it.
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"
    assert "v2" not in walk
    assert checker.ok, checker.violations[:3]


def test_crash_state_policy_volatile_vs_preserved():
    """A volatile crash wipes the switch's rules and registers; a
    preserving crash (NVRAM policy) keeps them."""
    for preserve in (False, True):
        dep, flow, _ = fig1_deployment()
        dep.run(until=5.0)                      # let installs settle
        assert dep.forwarding_state.next_hop(flow.flow_id, "v4") == "v2"
        dep.network.crash_switch("v4", preserve_state=preserve)
        if preserve:
            assert dep.forwarding_state.next_hop(flow.flow_id, "v4") == "v2"
            assert dep.switches["v4"].program.state_of(flow.flow_id).new_version > 0
        else:
            assert dep.forwarding_state.next_hop(flow.flow_id, "v4") is None
            assert dep.switches["v4"].program.state_of(flow.flow_id).new_version == 0


def test_controller_outage_window_delays_but_does_not_break_update():
    dep, flow, checker = fig1_deployment(controller_update_timeout_ms=2_000.0)
    dep.network.engine.schedule_at(
        10.0, dep.controller.update_flow, flow.flow_id, list(FIG1_NEW_PATH)
    )
    # The controller goes dark right after fan-out; completion UFMs
    # arriving during the window wait in the preserved service queue.
    dep.network.engine.schedule_at(11.0, dep.network.set_controller_outage, True)
    dep.network.engine.schedule_at(500.0, dep.network.set_controller_outage, False)
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"
    assert walk == list(FIG1_NEW_PATH)
    assert checker.ok, checker.violations[:3]
