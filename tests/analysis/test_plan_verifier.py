"""Static update-plan verification: hand-built bad plans + real ones."""

import numpy as np
import pytest

from repro.analysis.plan import (
    PlanInstall,
    PlanVerificationError,
    UpdatePlan,
    plan_from_prepared,
    verify_plan,
)
from repro.core.messages import UpdateType
from repro.harness.build import build_p4update_network
from repro.harness.scenarios import single_flow_scenario
from repro.params import SimParams
from repro.topo import b4_topology, fig1_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
from repro.traffic.flows import Flow


def chain_plan(nodes, version=2, prior=1, update_type=UpdateType.SINGLE,
               overrides=None):
    """A well-formed linear plan over ``nodes`` (egress first)."""
    overrides = overrides or {}
    installs = []
    for distance, node in enumerate(nodes):
        kwargs = dict(
            node=node, version=version, distance=distance,
            is_flow_egress=(distance == 0),
            is_ingress=(distance == len(nodes) - 1),
        )
        kwargs.update(overrides.get(node, {}))
        installs.append(PlanInstall(**kwargs))
    edges = tuple((nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1))
    return UpdatePlan(
        flow_id=1, version=version, prior_version=prior,
        update_type=update_type, installs=tuple(installs),
        notify_edges=edges,
    )


def kinds(report):
    return [v.kind for v in report.violations]


def test_well_formed_chain_passes():
    report = verify_plan(chain_plan(["d", "c", "b", "a"]))
    assert report.ok, report.describe()


def test_dependency_cycle_detected_with_counterexample():
    plan = chain_plan(["d", "c", "b", "a"])
    plan.dependencies = (("c", "b"), ("b", "c"))
    report = verify_plan(plan)
    assert "dependency-cycle" in kinds(report)
    cycle = report.counterexample
    assert cycle[0] == cycle[-1]
    assert set(cycle) <= {"b", "c"}


def test_notify_ring_is_a_cycle():
    plan = chain_plan(["d", "c", "b", "a"])
    # close the notification chain back onto the egress: a ring
    plan.notify_edges = plan.notify_edges + (("a", "d"),)
    report = verify_plan(plan)
    assert "dependency-cycle" in kinds(report)


def test_version_regression():
    report = verify_plan(chain_plan(["b", "a"], version=1, prior=1))
    assert "version-regression" in kinds(report)
    report = verify_plan(chain_plan(["b", "a"], version=1, prior=5))
    assert "version-regression" in kinds(report)


def test_mixed_versions():
    plan = chain_plan(["c", "b", "a"])
    stale = PlanInstall("b", version=1, distance=1)
    plan.installs = (plan.installs[0], stale, plan.installs[2])
    report = verify_plan(plan)
    assert "mixed-version" in kinds(report)


def test_no_originator():
    plan = chain_plan(["c", "b", "a"], overrides={"c": {"is_flow_egress": False}})
    report = verify_plan(plan)
    assert "no-originator" in kinds(report)


def test_two_flow_egresses():
    plan = chain_plan(["c", "b", "a"], overrides={"b": {"is_flow_egress": True}})
    report = verify_plan(plan)
    assert "egress-count" in kinds(report)


def test_missing_ack_edge():
    plan = chain_plan(["c", "b", "a"])
    # drop the edge that would trigger a: no in-edge, not an originator
    plan.notify_edges = plan.notify_edges[:-1]
    report = verify_plan(plan)
    assert "missing-ack" in kinds(report)


def test_orphan_install_counterexample():
    plan = chain_plan(["c", "b", "a"])
    # b and a notify each other but nothing connects them to the
    # originator c: unreachable island
    plan.notify_edges = (("b", "a"),)
    report = verify_plan(plan)
    assert "missing-ack" in kinds(report)      # b has no in-edge
    assert "orphan-install" in kinds(report)   # a is fed only from the island
    orphan = next(v for v in report.violations if v.kind == "orphan-install")
    assert orphan.counterexample[-1] == "a"


def test_duplicate_install():
    plan = chain_plan(["b", "a"])
    plan.installs = plan.installs + (PlanInstall("a", version=2, distance=1),)
    report = verify_plan(plan)
    assert "duplicate-install" in kinds(report)


def test_unknown_node_in_edge():
    plan = chain_plan(["b", "a"])
    plan.notify_edges = plan.notify_edges + (("a", "ghost"),)
    report = verify_plan(plan)
    assert "unknown-node" in kinds(report)


def test_distance_gap():
    plan = chain_plan(["c", "b", "a"])
    far = PlanInstall("a", version=2, distance=5, is_ingress=True)
    plan.installs = plan.installs[:2] + (far,)
    report = verify_plan(plan)
    assert "distance-gap" in kinds(report)


# -- plans lifted from the real controller ---------------------------------------


def _prepared_fig1(update_type):
    deployment = build_p4update_network(
        fig1_topology(), params=SimParams(seed=0)
    )
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    deployment.install_flow(flow)
    record = deployment.controller.record_of(flow.flow_id)
    prior = record.version
    prepared = deployment.controller.prepare_update(
        flow.flow_id, list(FIG1_NEW_PATH), update_type
    )
    return deployment, flow, prepared, prior


@pytest.mark.parametrize("update_type", [UpdateType.SINGLE, UpdateType.DUAL])
def test_prepared_fig1_plan_verifies(update_type):
    _, _, prepared, prior = _prepared_fig1(update_type)
    plan = plan_from_prepared(
        prepared, prior_version=prior, new_path=FIG1_NEW_PATH
    )
    report = verify_plan(plan)
    assert report.ok, report.describe()
    assert len(plan.installs) == len(FIG1_NEW_PATH)


def test_prepared_compact_plan_expands_piggybacks():
    deployment = build_p4update_network(
        fig1_topology(), params=SimParams(seed=0)
    )
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    deployment.install_flow(flow)
    prior = deployment.controller.record_of(flow.flow_id).version
    prepared = deployment.controller.compact_update(
        flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL
    )
    deployment.run()
    plan = plan_from_prepared(prepared, prior_version=prior)
    assert len(plan.installs) == len(FIG1_NEW_PATH)
    report = verify_plan(plan)
    assert report.ok, report.describe()


def test_scenario_plans_verify_on_b4():
    topo = b4_topology()
    scenario = single_flow_scenario(topo, np.random.default_rng(0))
    deployment = build_p4update_network(topo, params=SimParams(seed=0))
    for flow in scenario.flows:
        deployment.install_flow(flow)
    for flow in scenario.flows:
        prior = deployment.controller.record_of(flow.flow_id).version
        prepared = deployment.controller.prepare_update(
            flow.flow_id, list(flow.new_path)
        )
        report = verify_plan(plan_from_prepared(prepared, prior_version=prior))
        assert report.ok, report.describe()


def test_seeded_cyclic_plan_rejected():
    from repro.analysis.cli import seeded_cyclic_plan

    report = verify_plan(seeded_cyclic_plan())
    assert not report.ok
    assert "dependency-cycle" in kinds(report)
    assert report.counterexample  # concrete path printed by the CLI


# -- the controller gate ----------------------------------------------------------


def _gated_fig1():
    deployment = build_p4update_network(
        fig1_topology(), params=SimParams(seed=0, verify_update_plans=True)
    )
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    deployment.install_flow(flow)
    return deployment, flow


def test_gate_passes_valid_update_end_to_end():
    deployment, flow = _gated_fig1()
    deployment.controller.update_flow(
        flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL
    )
    deployment.run()
    assert deployment.controller.update_complete(flow.flow_id)


def test_gate_rejects_stale_version_and_rolls_back():
    import dataclasses

    deployment, flow = _gated_fig1()
    record = deployment.controller.record_of(flow.flow_id)
    prepared = deployment.controller.prepare_update(
        flow.flow_id, list(FIG1_NEW_PATH)
    )
    stale_uims = tuple(
        dataclasses.replace(u, version=record.version) for u in prepared.uims
    )
    stale = dataclasses.replace(
        prepared, version=record.version, uims=stale_uims
    )
    with pytest.raises(PlanVerificationError) as excinfo:
        deployment.controller.push_update(stale)
    assert "version-regression" in str(excinfo.value)
    # the stale version's prepared entry is dropped
    assert (flow.flow_id, record.version) not in deployment.controller._prepared


def test_gate_off_by_default():
    deployment = build_p4update_network(
        fig1_topology(), params=SimParams(seed=0)
    )
    assert deployment.params.verify_update_plans is False


def test_tree_plans_rejected_by_lifting():
    import dataclasses

    _, _, prepared, prior = _prepared_fig1(UpdateType.SINGLE)
    tree_uims = tuple(
        dataclasses.replace(u, child_ports=(1, 2)) for u in prepared.uims
    )
    tree = dataclasses.replace(prepared, uims=tree_uims)
    with pytest.raises(ValueError):
        plan_from_prepared(tree, prior_version=prior)
