"""The revision-keyed shortest-path cache on Topology."""

import networkx as nx
import pytest

from repro.topo.graph import Topology


def _square():
    # a—b—d and a—c—d, with the b-route cheaper.
    return Topology.from_edges(
        "square",
        [("a", "b", 1.0), ("b", "d", 1.0), ("a", "c", 5.0), ("c", "d", 5.0)],
    )


def test_repeat_lookup_hits_cache():
    topo = _square()
    first = topo.shortest_path("a", "d")
    second = topo.shortest_path("a", "d")
    assert first == second == ["a", "b", "d"]
    stats = topo.path_cache_stats()
    assert stats == {"hits": 1, "misses": 1, "hit_rate": 0.5}


def test_cached_path_is_a_copy():
    topo = _square()
    path = topo.shortest_path("a", "d")
    path.append("tampered")
    assert topo.shortest_path("a", "d") == ["a", "b", "d"]


def test_structural_mutation_invalidates():
    topo = _square()
    assert topo.shortest_path("a", "d") == ["a", "b", "d"]
    revision = topo.revision
    # A new cheap edge changes the answer; the cache must not serve
    # the stale path.
    topo.add_edge("a", "d", latency_ms=0.5)
    assert topo.revision > revision
    assert topo.shortest_path("a", "d") == ["a", "d"]
    assert topo.path_cache_stats()["hits"] == 0


def test_direct_graph_mutation_needs_explicit_invalidation():
    topo = _square()
    assert topo.shortest_path("a", "d") == ["a", "b", "d"]
    # Chaos mutates .graph directly (link_down), then must invalidate.
    topo.graph.remove_edge("a", "b")
    topo.invalidate_path_cache()
    assert topo.shortest_path("a", "d") == ["a", "c", "d"]


def test_avoiding_paths_cached_per_avoid_set():
    topo = _square()
    assert topo.shortest_path_avoiding("a", "d", frozenset({"b"})) == [
        "a", "c", "d"
    ]
    assert topo.shortest_path_avoiding("a", "d", frozenset({"b"})) == [
        "a", "c", "d"
    ]
    # Distinct avoid sets are distinct cache keys, not collisions.
    assert topo.shortest_path_avoiding("a", "d", frozenset({"c"})) == [
        "a", "b", "d"
    ]
    stats = topo.path_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 2


def test_avoiding_endpoint_raises_no_path():
    topo = _square()
    with pytest.raises(nx.NetworkXNoPath):
        topo.shortest_path_avoiding("a", "d", frozenset({"a"}))


def test_avoidance_disconnection_raises_no_path():
    topo = _square()
    with pytest.raises(nx.NetworkXNoPath):
        topo.shortest_path_avoiding("a", "d", frozenset({"b", "c"}))


def test_empty_avoid_set_shares_plain_cache():
    topo = _square()
    topo.shortest_path("a", "d")
    assert topo.shortest_path_avoiding("a", "d", frozenset()) == ["a", "b", "d"]
    assert topo.path_cache_stats()["hits"] == 1
