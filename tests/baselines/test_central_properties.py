"""Property-based safety tests for the Central baseline's round
construction: any interleaving of a round's flips must be safe."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consistency import LiveChecker
from repro.harness.baselines_build import build_central_network
from repro.params import DelayDistribution, SimParams
from repro.topo import ring_topology
from repro.traffic.flows import Flow


def fast_params(seed):
    return SimParams(
        seed=seed,
        pipeline_delay=DelayDistribution.constant(0.1),
        # Widely varying install delays maximise interleaving diversity
        # inside a round — the condition joint-safety must survive.
        baseline_install_delay=DelayDistribution.exponential(20.0),
        controller_service=DelayDistribution.constant(0.3),
        controller_background_util=0.0,
    )


def arc(n, start, length, direction):
    step = 1 if direction else -1
    return [f"n{(start + step * i) % n}" for i in range(length + 1)]


@st.composite
def central_case(draw):
    n = draw(st.integers(min_value=4, max_value=8))
    start = draw(st.integers(min_value=0, max_value=n - 1))
    length = draw(st.integers(min_value=2, max_value=n - 2))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return n, start, length, seed


@given(central_case())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_central_rounds_safe_under_any_interleaving(case):
    n, start, length, seed = case
    old = arc(n, start, length, direction=True)
    new = arc(n, start, n - length, direction=False)
    topo = ring_topology(n, latency_ms=1.0)
    topo.set_controller(old[0])
    dep = build_central_network(topo, params=fast_params(seed))
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between(old[0], old[-1], size=1.0, old_path=old)
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, new)
    dep.run(until=30_000.0)
    assert checker.ok, checker.violations
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == new


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_central_two_flows_capacity_never_violated(seed):
    """Two flows swapping around a tight ring: either the controller
    schedules them consistently or defers — it must never violate a
    link capacity in flight."""
    rng = np.random.default_rng(seed)
    size = float(rng.uniform(2.0, 6.0))
    topo = ring_topology(6, latency_ms=1.0, capacity=10.0)
    topo.set_controller("n0")
    dep = build_central_network(
        topo, params=fast_params(seed), congestion_aware=True
    )
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    f1 = Flow.between("n0", "n3", size=size, old_path=["n0", "n1", "n2", "n3"])
    f2 = Flow(flow_id=f1.flow_id + 1, src="n0", dst="n3", size=size,
              old_path=["n0", "n5", "n4", "n3"])
    dep.install_flow(f1)
    dep.install_flow(f2)
    dep.controller.update_flow(f1.flow_id, ["n0", "n5", "n4", "n3"])
    dep.controller.update_flow(f2.flow_id, ["n0", "n1", "n2", "n3"])
    dep.run(until=30_000.0)
    assert checker.ok, checker.violations
    # Both flows always deliverable.
    for fid in (f1.flow_id, f2.flow_id):
        _, outcome = dep.forwarding_state.walk(fid)
        assert outcome == "delivered"
