"""Unit tests for the declarative experiment specs."""

import json

import pytest

from repro.harness.spec import (
    SpecError,
    build_scenario,
    build_topology,
    run_spec,
    run_spec_file,
)


def basic_spec():
    return {
        "topology": {"name": "ring", "n": 6, "latency_ms": 1.0},
        "controller": "n0",
        "system": "p4update",
        "seed": 3,
        "flows": [
            {
                "src": "n0", "dst": "n3", "size": 2.0,
                "old_path": ["n0", "n1", "n2", "n3"],
                "new_path": ["n0", "n5", "n4", "n3"],
            }
        ],
    }


def test_build_builtin_topologies():
    assert build_topology({"name": "b4"}).num_nodes() == 12
    assert build_topology({"name": "fattree", "k": 4}).num_nodes() == 20
    assert build_topology({"name": "ring", "n": 5}).num_nodes() == 5


def test_unknown_topology_rejected():
    with pytest.raises(SpecError):
        build_topology({"name": "not-a-topology"})
    with pytest.raises(SpecError):
        build_topology({})


def test_build_scenario_resolves_paths():
    spec = basic_spec()
    spec["flows"][0]["old_path"] = "shortest"
    spec["flows"][0]["new_path"] = "second-shortest"
    scenario = build_scenario(spec)
    flow = scenario.flows[0]
    assert flow.old_path[0] == "n0" and flow.old_path[-1] == "n3"
    assert flow.new_path != flow.old_path


def test_k_shortest_path_spec():
    spec = basic_spec()
    spec["flows"][0]["new_path"] = "k-shortest:2"
    scenario = build_scenario(spec)
    assert scenario.flows[0].new_path[-1] == "n3"


def test_bad_path_spec_rejected():
    spec = basic_spec()
    spec["flows"][0]["new_path"] = "scenic-route"
    with pytest.raises(SpecError):
        build_scenario(spec)


def test_missing_flows_rejected():
    with pytest.raises(SpecError):
        build_scenario({"topology": {"name": "b4"}})


def test_missing_flow_endpoint_rejected():
    spec = basic_spec()
    del spec["flows"][0]["dst"]
    with pytest.raises(SpecError):
        build_scenario(spec)


def test_run_spec_end_to_end():
    result = run_spec(basic_spec())
    assert result.completed
    assert result.consistency_ok
    assert result.system == "p4update"


def test_run_spec_file(tmp_path):
    path = tmp_path / "exp.json"
    path.write_text(json.dumps(basic_spec()))
    result = run_spec_file(str(path))
    assert result.completed


def test_cli_run_command(tmp_path, capsys):
    from repro.harness.cli import main

    path = tmp_path / "exp.json"
    path.write_text(json.dumps(basic_spec()))
    assert main(["run", str(path)]) == 0
    out = capsys.readouterr().out
    assert "completed:  True" in out


def test_spec_with_dionysus_delays():
    spec = basic_spec()
    spec["dionysus_install_delays"] = True
    result = run_spec(spec)
    assert result.completed
    assert result.total_update_time_ms > 50.0   # exp(100) installs dominate
