"""Tests for the §11 two-phase-commit integration.

The property 2PC buys beyond loop/blackhole freedom is *per-packet
consistency* (Reitblatt et al.): every packet traverses the old path
entirely or the new path entirely — never a mix.  Plain SL updates
give the weaker relative consistency (mixed but loop-free paths).
"""


from repro.consistency import LiveChecker
from repro.core.messages import UpdateType
from repro.harness.build import build_p4update_network
from repro.harness.probes import ProbeSource
from repro.params import DelayDistribution, SimParams
from repro.sim.trace import KIND_PACKET_DELIVERED
from repro.topo import ring_topology
from repro.traffic.flows import Flow


def fast_params(seed=0, install_ms=5.0):
    return SimParams(
        seed=seed,
        pipeline_delay=DelayDistribution.constant(0.1),
        rule_install_delay=DelayDistribution.constant(install_ms),
        controller_service=DelayDistribution.constant(0.2),
        controller_background_util=0.0,
        unm_generation_delay=DelayDistribution.constant(0.5),
    )


OLD = ["n0", "n1", "n2", "n3"]
NEW = ["n0", "n7", "n6", "n5", "n4", "n3"]


def deployment(install_ms=5.0, seed=0):
    topo = ring_topology(8, latency_ms=1.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params(seed, install_ms))
    flow = Flow.between("n0", "n3", size=1.0, old_path=list(OLD))
    dep.install_flow(flow)
    return dep, flow


def delivered_hop_logs(dep, flow):
    """Hop sequences of all delivered probes, via the delivery trace's
    per-packet meta (the packet object is shared along the walk)."""
    logs = []
    for event in dep.network.trace.of_kind(KIND_PACKET_DELIVERED):
        if event.detail.get("flow") == flow.flow_id:
            logs.append(event.detail.get("seq"))
    return logs


def run_with_probes(dep, flow, update, probe_until=400.0):
    probes = []

    # Capture packet hop logs at delivery time via the delivered hook.
    for switch in dep.switches.values():
        def wrapped(flow_id, packet, _orig=switch.note_probe_delivered):
            probes.append(list(packet.meta.get("hops", [])))
            _orig(flow_id, packet)
        switch.note_probe_delivered = wrapped

    source = ProbeSource(dep, flow.flow_id, flow.src, rate_pps=400.0)
    source.start(at=1.0, stop_at=probe_until)
    update()
    dep.run(until=probe_until + 500.0)
    return probes, source


def test_two_phase_update_completes():
    dep, flow = deployment()
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    dep.controller.two_phase_update(flow.flow_id, list(NEW))
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    assert checker.ok, checker.violations
    record = dep.controller.record_of(flow.flow_id)
    assert record.current_tag == 1 and record.staged_tag is None
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == list(NEW)


def test_two_phase_gives_per_packet_consistency():
    """Every delivered probe follows exactly the old or the new path."""
    dep, flow = deployment(install_ms=8.0)
    probes, source = run_with_probes(
        dep, flow,
        lambda: dep.network.engine.schedule(
            50.0, dep.controller.two_phase_update, flow.flow_id, list(NEW)
        ),
    )
    assert dep.controller.update_complete(flow.flow_id)
    assert len(probes) == source.sent, "2PC must not drop packets"
    mixed = [p for p in probes if p != OLD and p != NEW]
    assert mixed == [], f"mixed paths under 2PC: {mixed[:3]}"
    assert any(p == OLD for p in probes), "some probes must predate the flip"
    assert any(p == NEW for p in probes), "some probes must follow the flip"


def test_plain_sl_allows_mixed_paths():
    """Contrast: relative consistency permits (loop-free) mixed paths.

    Uses Fig. 1, where old and new paths interleave (gateways v0, v2,
    v4): while v4 has flipped to the new rules but v0 has not, packets
    travel v0 -> v4 -> v5 -> v6 -> v7 — a mix of both configurations.
    """
    from repro.topo import fig1_topology
    from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH

    topo = fig1_topology(latency_ms=2.0)
    topo.set_controller("v0")
    dep = build_p4update_network(topo, params=fast_params(install_ms=8.0))
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    probes, _ = run_with_probes(
        dep, flow,
        lambda: dep.network.engine.schedule(
            20.0, dep.controller.update_flow, flow.flow_id,
            list(FIG1_NEW_PATH), UpdateType.SINGLE,
        ),
        probe_until=300.0,
    )
    old, new = list(FIG1_OLD_PATH), list(FIG1_NEW_PATH)
    mixed = [p for p in probes if p != old and p != new]
    assert mixed, "SL should exhibit transient mixed (but consistent) paths"
    # Every mixed path must still be loop-free and terminate at v7.
    for path in mixed:
        assert len(set(path)) == len(path), f"loop in {path}"
        assert path[-1] == "v7"


def test_second_two_phase_update_flips_back_to_tag0():
    dep, flow = deployment()
    dep.controller.two_phase_update(flow.flow_id, list(NEW))
    dep.run()
    dep.controller.two_phase_update(flow.flow_id, list(OLD))
    dep.run()
    record = dep.controller.record_of(flow.flow_id)
    assert record.current_tag == 0
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == list(OLD)


def test_staged_rules_do_not_disturb_live_traffic():
    """Before the flip, the live forwarding must be exactly the old
    path even though all new-tag rules are already staged."""
    dep, flow = deployment(install_ms=2.0)
    dep.controller.two_phase_update(flow.flow_id, list(NEW))
    # Run long enough to stage everything but intercept the flip by
    # dropping TagFlip messages.
    from repro.core.messages import TagFlip
    from repro.sim.faults import CompositeFaultModel, FaultAction, ScriptedFault

    dep.network.control_fault_model = CompositeFaultModel([
        ScriptedFault(matches=lambda m: isinstance(m, TagFlip),
                      action=FaultAction.DROP)
    ])
    dep.run(until=2_000.0)
    assert not dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == list(OLD), (
        "live forwarding must stay on the old path until the flip"
    )
    # All new-tag rules are staged on the new path's switches.
    for node in NEW[:-1]:
        idx = dep.switches[node].program.flow_index.index_of(flow.flow_id)
        staged = dep.switches[node].program.registers["port_tag1"].read(idx)
        assert staged != 0xFFFF, f"{node} has no staged rule"
