"""Robustness sweep — update completion under UNM loss (§11 "Failures
in the Update Process").

Sweeps the data-plane drop probability and measures (a) how often the
Fig. 1 update completes without recovery and (b) the completion time
with the §11 watchdog + controller re-trigger enabled.  Consistency
must hold at every drop rate regardless of completion (§5-ii).

A second section exercises the repro.chaos recovery path: the
acceptance campaign (mid-update link failure + switch crash/restart +
20% UNM loss with reliable control delivery) must complete with zero
violations and a seed-stable trace signature; its fault/retry/recovery
counters land in the manifest as the regression baseline.
"""

import numpy as np
from benchutils import emit_manifest, print_header

from repro.chaos import FaultCampaign, MessageFaultSpec, TopoEvent, run_campaign
from repro.consistency import LiveChecker
from repro.core.messages import UpdateType
from repro.harness.build import build_p4update_network
from repro.obs import make_obs
from repro.params import SimParams
from repro.sim.faults import FaultModel
from repro.topo import fig1_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
from repro.traffic.flows import Flow

DROP_RATES = (0.0, 0.1, 0.2, 0.3)
RUNS = 10

CHAOS_CAMPAIGN = FaultCampaign(
    name="bench_recovery",
    topology="fig1",
    seed=42,
    horizon_ms=30_000.0,
    update_at_ms=10.0,
    reliable_control=True,
    unm_timeout_ms=200.0,
    controller_update_timeout_ms=2_000.0,
    events=(
        TopoEvent(time_ms=12.0, kind="link_down", node_a="v4", node_b="v2"),
        TopoEvent(time_ms=40.0, kind="switch_crash", node_a="v5"),
        TopoEvent(time_ms=400.0, kind="switch_restart", node_a="v5"),
    ),
    message_faults=(MessageFaultSpec(plane="data", drop_prob=0.2, scope="unm"),),
)


def one_run(seed: int, drop: float, recovery: bool, obs=None):
    params = SimParams(
        seed=seed,
        controller_update_timeout_ms=500.0 if recovery else 0.0,
    )
    dep = build_p4update_network(fig1_topology(), params=params, obs=obs)
    if drop > 0:
        dep.network.fault_model = FaultModel(
            rng=np.random.default_rng(seed ^ 0xBEEF),
            drop_prob=drop,
            selector=lambda m: hasattr(m, "has_valid") and m.has_valid("unm"),
        )
    if recovery:
        for switch in dep.switches.values():
            switch.unm_timeout_ms = 300.0
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run(until=30_000.0)
    done = dep.controller.update_complete(flow.flow_id)
    duration = dep.controller.update_duration(flow.flow_id)
    return done, duration, checker.ok


def sweep():
    rows = []
    for drop in DROP_RATES:
        for recovery in (False, True):
            completions, durations, consistent = 0, [], True
            for seed in range(RUNS):
                done, duration, ok = one_run(seed, drop, recovery)
                completions += done
                consistent = consistent and ok
                if done and duration is not None:
                    durations.append(duration)
            rows.append((drop, recovery, completions, durations, consistent))
    return rows


def test_recovery_under_unm_loss(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header("Robustness — Fig. 1 DL update vs UNM drop rate "
                 f"({RUNS} runs per cell)")
    print(f"{'drop':>5s} {'recovery':>9s} {'completed':>10s} "
          f"{'mean time':>10s} {'consistent':>11s}")
    for drop, recovery, completions, durations, consistent in rows:
        mean = f"{np.mean(durations):8.1f}ms" if durations else "       --"
        print(f"{drop:5.1f} {str(recovery):>9s} {completions:7d}/{RUNS} "
              f"{mean:>10s} {str(consistent):>11s}")

    by_key = {(d, r): (c, t, ok) for d, r, c, t, ok in rows}
    # Consistency holds everywhere (Theorem 3 under lossy delivery).
    assert all(ok for _, _, _, _, ok in rows), "consistency must never break"
    # No loss, no recovery: always completes.
    assert by_key[(0.0, False)][0] == RUNS
    # Recovery restores full completion at moderate loss...
    assert by_key[(0.1, True)][0] == RUNS
    # ...and clearly beats no-recovery at heavy loss.  (End-to-end
    # re-triggering is probabilistic: a 7-hop relay survives 30 % per-
    # hop loss with p≈0.08 per attempt — the §11 sketch bounds this,
    # per-hop retransmission would be the engineering fix.)
    assert by_key[(0.3, True)][0] >= by_key[(0.3, False)][0] + 3
    assert by_key[(0.2, True)][0] >= by_key[(0.2, False)][0] + 3

    # One obs-instrumented run at heavy loss so the manifest carries
    # the watchdog/fault counters, not just completion booleans.
    obs = make_obs()
    one_run(0, 0.3, recovery=True, obs=obs)
    metrics = obs.metrics
    loss_counters = {
        "unm_dropped": metrics.total("messages_dropped"),
        "update_retriggers": metrics.total("update_retriggers"),
        "controller_alarms": metrics.total("controller_alarms"),
        "fault_injections_dropped": metrics.value(
            "fault_injections", plane="data", action="dropped"
        ),
    }

    # Chaos campaign: topology failures + loss, recovery end-to-end.
    chaos_obs = make_obs()
    chaos = run_campaign(CHAOS_CAMPAIGN, obs=chaos_obs)
    repeat = run_campaign(CHAOS_CAMPAIGN)
    print_header("Chaos campaign — link failure + crash/restart + 20% UNM loss")
    print(chaos.summary())
    print(f"retransmissions={chaos.retransmissions} reroutes={chaos.reroutes} "
          f"faults={chaos.fault_counts}")
    assert chaos.completed and chaos.consistent, chaos.violations[:3]
    assert chaos.trace_signature == repeat.trace_signature, "chaos must be seeded"

    emit_manifest(
        "recovery_under_loss",
        params={
            "drop_rates": list(DROP_RATES),
            "runs": RUNS,
            "chaos_campaign": CHAOS_CAMPAIGN.to_dict(),
        },
        results={
            **{
                f"drop_{drop}_recovery_{recovery}": {
                    "completed": completions,
                    "mean_ms": float(np.mean(durations)) if durations else None,
                    "consistent": consistent,
                }
                for drop, recovery, completions, durations, consistent in rows
            },
            "instrumented_loss_counters": loss_counters,
            "chaos_campaign": chaos.to_results(),
        },
        seed=0,
        obs=chaos_obs,
    )
