"""Tests for the ez-Segway baseline."""


from repro.baselines.ezsegway import (
    congestion_dependency_graph,
    prepare_ez_update,
)
from repro.harness.baselines_build import build_ezsegway_network
from repro.params import DelayDistribution, SimParams
from repro.topo import fig1_topology, ring_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
from repro.traffic.flows import Flow


def fast_params(seed=0, install_ms=1.0):
    return SimParams(
        seed=seed,
        pipeline_delay=DelayDistribution.constant(0.1),
        rule_install_delay=DelayDistribution.constant(install_ms),
        controller_service=DelayDistribution.constant(0.2),
    )


# -- preparation -------------------------------------------------------------

def test_prepare_classifies_fig1_segments():
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    prepared = prepare_ez_update(
        flow, list(FIG1_OLD_PATH), list(FIG1_NEW_PATH), update_id=1
    )
    kinds = [s.forward for s in prepared.segments]
    assert kinds == [True, False, True]
    # Roles exist for every node of the new path.
    assert {r.target for r in prepared.roles} == set(FIG1_NEW_PATH)


def test_prepare_in_loop_segment_depends_on_flip():
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    prepared = prepare_ez_update(
        flow, list(FIG1_OLD_PATH), list(FIG1_NEW_PATH), update_id=1
    )
    # v4 is the egress gateway of the in_loop segment {v2, v3, v4}: its
    # role for that segment must carry the dependency.
    v4_roles = [r for r in prepared.roles if r.target == "v4"]
    in_loop_driver = [r for r in v4_roles if r.is_segment_egress and r.in_loop]
    assert in_loop_driver and all(r.depends_on_flip for r in in_loop_driver)


def test_congestion_dependency_graph_ranks_blockers_first():
    # Flow A wants link (x, y) which is full because of flow B; B moves
    # away.  B's move must get a smaller (earlier) rank than A's.
    flow_a = Flow(
        flow_id=1, src="a", dst="y", size=5.0,
        old_path=["a", "x", "z", "y"], new_path=["a", "x", "y"],
    )
    flow_b = Flow(
        flow_id=2, src="x", dst="w", size=6.0,
        old_path=["x", "y", "w"], new_path=["x", "w"],
    )
    capacities = {
        frozenset(("x", "y")): 8.0,
        frozenset(("x", "z")): 100.0,
        frozenset(("z", "y")): 100.0,
        frozenset(("a", "x")): 100.0,
        frozenset(("x", "w")): 100.0,
        frozenset(("y", "w")): 100.0,
    }
    ranks = congestion_dependency_graph([flow_a, flow_b], capacities)
    assert ranks[(2, ("x", "w"))] < ranks[(1, ("x", "y"))]


def test_congestion_dependency_graph_handles_cycles():
    # A <-> B swap: classic deadlock; condensation still yields ranks.
    flow_a = Flow(
        flow_id=1, src="a", dst="c", size=6.0,
        old_path=["a", "b", "c"], new_path=["a", "d", "c"],
    )
    flow_b = Flow(
        flow_id=2, src="a", dst="c", size=6.0,
        old_path=["a", "d", "c"], new_path=["a", "b", "c"],
    )
    capacities = {
        frozenset(("a", "b")): 10.0,
        frozenset(("b", "c")): 10.0,
        frozenset(("a", "d")): 10.0,
        frozenset(("d", "c")): 10.0,
    }
    ranks = congestion_dependency_graph([flow_a, flow_b], capacities)
    assert len(ranks) == 4  # all moves ranked despite the cycle


# -- runtime --------------------------------------------------------------------

def ez_fig1():
    topo = fig1_topology()
    topo.set_controller("v0")
    dep = build_ezsegway_network(topo, params=fast_params())
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    return dep, flow


def test_ez_fig1_update_completes():
    dep, flow = ez_fig1()
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH))
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == list(FIG1_NEW_PATH)


def test_ez_fig1_in_loop_waits_for_not_in_loop():
    dep, flow = ez_fig1()
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH))
    dep.run()
    changes = {
        e.node: e.time
        for e in dep.network.trace.of_kind("rule_change")
        if e.detail.get("flow") == flow.flow_id
    }
    # v2 (in_loop ingress gateway) must flip after v4 flipped.
    assert changes["v2"] > changes["v4"]
    # And v3 (inside the in_loop segment) must NOT have pre-installed:
    # it flips after v4 as well (no early rule install, unlike DL).
    assert changes["v3"] > changes["v4"]


def test_ez_serializes_consecutive_updates():
    """§4.2: ez-Segway waits for U2 before starting U3."""
    topo = ring_topology(6, latency_ms=2.0)
    topo.set_controller("n0")
    dep = build_ezsegway_network(topo, params=fast_params(install_ms=5.0))
    flow = Flow.between("n0", "n3", size=1.0, old_path=["n0", "n1", "n2", "n3"])
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, ["n0", "n5", "n4", "n3"])
    u3 = dep.controller.update_flow(flow.flow_id, ["n0", "n1", "n2", "n3"])
    assert u3 == -1, "second update must be queued, not pushed"
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == ["n0", "n1", "n2", "n3"]
    # Both updates recorded, in order.
    done = sorted(dep.controller.update_done_at.items(), key=lambda kv: kv[1])
    assert len(done) == 2


def test_ez_simple_detour_on_ring():
    topo = ring_topology(6, latency_ms=1.0)
    topo.set_controller("n0")
    dep = build_ezsegway_network(topo, params=fast_params())
    flow = Flow.between("n0", "n3", size=1.0, old_path=["n0", "n1", "n2", "n3"])
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, ["n0", "n5", "n4", "n3"])
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == ["n0", "n5", "n4", "n3"]
