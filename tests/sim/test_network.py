"""Unit tests for network wiring and message delivery."""

import pytest

from repro.sim.engine import Engine
from repro.sim.links import ControlChannel, Link
from repro.sim.network import Network
from repro.sim.node import Node


class Recorder(Node):
    """Node that logs everything it receives with timestamps."""

    def __init__(self, name):
        super().__init__(name)
        self.received = []
        self.control = []

    def handle_message(self, message, in_port):
        self.received.append((self.now, in_port, message))

    def handle_control(self, message, sender):
        self.control.append((self.now, sender, message))


class ControlMsg:
    def __init__(self, target, body):
        self.target = target
        self.body = body


def build_pair(latency=10.0):
    net = Network(Engine())
    a = net.add_node(Recorder("a"))
    b = net.add_node(Recorder("b"))
    net.add_link(Link("a", 1, "b", 1, latency_ms=latency))
    return net, a, b


def test_data_message_arrives_after_link_latency():
    net, a, b = build_pair(latency=7.5)
    a.send(1, "hello")
    net.run()
    assert b.received == [(7.5, 1, "hello")]


def test_bidirectional_delivery():
    net, a, b = build_pair()
    a.send(1, "ping")
    net.run()
    b.send(1, "pong")
    net.run()
    assert a.received[0][2] == "pong"


def test_duplicate_node_name_rejected():
    net = Network(Engine())
    net.add_node(Recorder("a"))
    with pytest.raises(ValueError):
        net.add_node(Recorder("a"))


def test_link_requires_known_nodes():
    net = Network(Engine())
    net.add_node(Recorder("a"))
    with pytest.raises(ValueError):
        net.add_link(Link("a", 1, "ghost", 1, latency_ms=1.0))


def test_port_reuse_rejected():
    net = Network(Engine())
    for name in ("a", "b", "c"):
        net.add_node(Recorder(name))
    net.add_link(Link("a", 1, "b", 1, latency_ms=1.0))
    with pytest.raises(ValueError):
        net.add_link(Link("a", 1, "c", 1, latency_ms=1.0))


def test_port_towards_and_neighbor_lookup():
    net = Network(Engine())
    for name in ("a", "b", "c"):
        net.add_node(Recorder(name))
    net.add_link(Link("a", 1, "b", 2, latency_ms=1.0))
    net.add_link(Link("a", 2, "c", 1, latency_ms=1.0))
    assert net.port_towards("a", "b") == 1
    assert net.port_towards("a", "c") == 2
    assert net.port_towards("b", "a") == 2
    assert net.neighbor_on_port("a", 2) == "c"


def test_unknown_port_raises():
    net, a, _ = build_pair()
    with pytest.raises(KeyError):
        net.link_at("a", 99)


def test_control_switch_to_controller_pays_channel_latency():
    net, a, b = build_pair()
    net.set_controller("a")
    net.add_control_channel(ControlChannel("b", latency_ms=20.0))
    b.send_control("report")
    net.run()
    assert a.control == [(20.0, "b", "report")]


def test_control_controller_to_switch_needs_target():
    net, a, b = build_pair()
    net.set_controller("a")
    net.add_control_channel(ControlChannel("b", latency_ms=5.0))
    a.send_control(ControlMsg(target="b", body="update"))
    net.run()
    assert len(b.control) == 1
    assert b.control[0][0] == 5.0


def test_control_message_without_target_rejected():
    net, a, _ = build_pair()
    net.set_controller("a")
    net.add_control_channel(ControlChannel("b", latency_ms=5.0))
    with pytest.raises(ValueError):
        a.send_control("no-target")


def test_controller_service_queue_serialises_messages():
    """Two switch reports arriving together are served one after another."""
    net = Network(Engine())

    class BusyController(Recorder):
        def control_service_time(self):
            return 10.0

    ctrl = net.add_node(BusyController("ctrl"))
    s1 = net.add_node(Recorder("s1"))
    s2 = net.add_node(Recorder("s2"))
    net.add_link(Link("ctrl", 1, "s1", 1, latency_ms=1.0))
    net.add_link(Link("ctrl", 2, "s2", 1, latency_ms=1.0))
    net.set_controller("ctrl")
    net.add_control_channel(ControlChannel("s1", latency_ms=2.0))
    net.add_control_channel(ControlChannel("s2", latency_ms=2.0))
    s1.send_control("r1")
    s2.send_control("r2")
    net.run()
    times = sorted(t for t, _, _ in ctrl.control)
    # First report: 2 ms channel + 10 ms service; second queues behind it.
    assert times == [12.0, 22.0]


def test_trace_records_send_and_recv():
    net, a, _ = build_pair()
    a.send(1, "x")
    net.run()
    kinds = [e.kind for e in net.trace]
    assert "msg_send" in kinds and "msg_recv" in kinds


def test_unattached_node_send_raises():
    orphan = Recorder("orphan")
    with pytest.raises(RuntimeError):
        orphan.send(1, "x")
    with pytest.raises(RuntimeError):
        orphan.send_control("x")


# -- control-plane fault delivery paths -------------------------------------


class Mutable:
    """Control payload whose corruption is observable."""

    def __init__(self, target, value):
        self.target = target
        self.value = value


def control_pair():
    from repro.sim.faults import FaultAction, ScriptedFault

    net, a, b = build_pair()
    net.set_controller("a")
    net.add_control_channel(ControlChannel("b", latency_ms=5.0))
    return net, a, b, FaultAction, ScriptedFault


def test_control_duplicate_switch_to_controller_delivers_twice():
    net, ctrl, sw, FaultAction, ScriptedFault = control_pair()
    net.control_fault_model = ScriptedFault(
        matches=lambda m: True, action=FaultAction.DUPLICATE, max_hits=1
    )
    sw.send_control("report")
    net.run()
    assert [m for _, _, m in ctrl.control] == ["report", "report"]


def test_control_duplicate_controller_to_switch_delivers_twice():
    net, ctrl, sw, FaultAction, ScriptedFault = control_pair()
    net.control_fault_model = ScriptedFault(
        matches=lambda m: True, action=FaultAction.DUPLICATE, max_hits=1
    )
    ctrl.send_control(Mutable(target="b", value="order"))
    net.run()
    assert [m.value for _, _, m in sw.control] == ["order", "order"]


def test_control_duplicate_is_a_deep_copy():
    net, ctrl, sw, FaultAction, ScriptedFault = control_pair()
    net.control_fault_model = ScriptedFault(
        matches=lambda m: True, action=FaultAction.DUPLICATE, max_hits=1
    )
    ctrl.send_control(Mutable(target="b", value="order"))
    net.run()
    first, second = (m for _, _, m in sw.control)
    assert first is not second


def test_control_corrupt_mutates_delivery_not_sender_object():
    net, ctrl, sw, FaultAction, ScriptedFault = control_pair()

    def garble(message):
        message.value = "garbled"
        return message

    net.control_fault_model = ScriptedFault(
        matches=lambda m: isinstance(m, Mutable),
        action=FaultAction.CORRUPT,
        mutate=garble,
    )
    original = Mutable(target="b", value="order")
    ctrl.send_control(original)
    net.run()
    assert [m.value for _, _, m in sw.control] == ["garbled"]
    assert original.value == "order"     # sender's copy untouched


def test_control_corrupt_switch_to_controller():
    net, ctrl, sw, FaultAction, ScriptedFault = control_pair()

    def garble(message):
        message.value = "garbled"
        return message

    net.control_fault_model = ScriptedFault(
        matches=lambda m: isinstance(m, Mutable),
        action=FaultAction.CORRUPT,
        mutate=garble,
    )
    sw.send_control(Mutable(target=None, value="report"))
    net.run()
    assert [m.value for _, _, m in ctrl.control] == ["garbled"]
