"""Fault injection for control and data messages.

The paper's verification model (§5) assumes update messages may be
dropped, delayed, reordered or corrupted.  A :class:`FaultPolicy`
(usually a :class:`FaultModel`) sits in front of message delivery in
:class:`repro.sim.network.Network` and decides per message what
happens to it.

Fault activity is counted on :class:`repro.obs.registry.Counter`
instruments.  A :class:`FaultModel` starts with private standalone
counters (so ``model.dropped`` works without any observability
wiring); installing the model on an instrumented :class:`Network`
rebinds the counters into the run's metrics registry via
:meth:`FaultModel.attach_metrics`, which makes fault activity appear
in ``BENCH_*`` manifests alongside every other metric.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence

import numpy as np

from repro.obs.registry import Counter, MetricsRegistry


class FaultAction(enum.Enum):
    """What to do with a message about to be delivered."""

    DELIVER = "deliver"
    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    CORRUPT = "corrupt"


@dataclass
class FaultDecision:
    """Outcome of a fault-model query for one message."""

    action: FaultAction = FaultAction.DELIVER
    extra_delay_ms: float = 0.0
    mutate: Optional[Callable[[object], object]] = None


class FaultPolicy(Protocol):
    """Anything that can classify a message delivery.

    The network consults the policy once per transmission; returning
    ``FaultDecision()`` (action ``DELIVER``) leaves the message alone.
    """

    def decide(self, message: object) -> FaultDecision: ...


#: Counter names, in decision-precedence order.
FAULT_COUNTER_ACTIONS = ("dropped", "corrupted", "duplicated", "delayed")


class FaultModel:
    """Probabilistic fault injector.

    Probabilities apply independently per message; precedence is
    drop > corrupt > duplicate > delay.  A ``selector`` predicate can
    scope faults to particular messages (e.g. only UIMs of version 2,
    which is how the Fig. 2 delayed-update scenario is built).
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        drop_prob: float = 0.0,
        delay_prob: float = 0.0,
        delay_ms: float = 0.0,
        duplicate_prob: float = 0.0,
        corrupt_prob: float = 0.0,
        corruptor: Optional[Callable[[object], object]] = None,
        selector: Optional[Callable[[object], bool]] = None,
    ) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.drop_prob = drop_prob
        self.delay_prob = delay_prob
        self.delay_ms = delay_ms
        self.duplicate_prob = duplicate_prob
        self.corrupt_prob = corrupt_prob
        self.corruptor = corruptor
        self.selector = selector
        self._counters: dict[str, Counter] = {
            action: Counter() for action in FAULT_COUNTER_ACTIONS
        }

    # -- counters --------------------------------------------------------

    def attach_metrics(self, metrics: MetricsRegistry, plane: str = "data") -> None:
        """Rebind fault counters into a live metrics registry.

        Counts accumulated so far carry over, so attaching mid-run
        never loses activity.
        """
        for action, old in self._counters.items():
            counter = metrics.counter("fault_injections", plane=plane, action=action)
            if old is not counter and old.value:
                counter.inc(old.value)
            self._counters[action] = counter

    def _count(self, action: str) -> None:
        self._counters[action].inc()

    @property
    def dropped(self) -> int:
        return int(self._counters["dropped"].value)

    @property
    def delayed(self) -> int:
        return int(self._counters["delayed"].value)

    @property
    def duplicated(self) -> int:
        return int(self._counters["duplicated"].value)

    @property
    def corrupted(self) -> int:
        return int(self._counters["corrupted"].value)

    def decide(self, message: object) -> FaultDecision:
        """Classify one message delivery."""
        if self.selector is not None and not self.selector(message):
            return FaultDecision()
        roll = self.rng.random()
        if roll < self.drop_prob:
            self._count("dropped")
            return FaultDecision(action=FaultAction.DROP)
        roll = self.rng.random()
        if self.corruptor is not None and roll < self.corrupt_prob:
            self._count("corrupted")
            return FaultDecision(action=FaultAction.CORRUPT, mutate=self.corruptor)
        roll = self.rng.random()
        if roll < self.duplicate_prob:
            self._count("duplicated")
            return FaultDecision(action=FaultAction.DUPLICATE)
        roll = self.rng.random()
        if roll < self.delay_prob:
            self._count("delayed")
            return FaultDecision(action=FaultAction.DELAY, extra_delay_ms=self.delay_ms)
        return FaultDecision()


@dataclass
class ScriptedFault:
    """Deterministic fault applied to messages matching a predicate.

    Used by scenario builders for reproducible adversaries, e.g. "delay
    every version-2 UIM by 300 ms" (Fig. 2) or "drop the first UNM that
    crosses link (v2, v3)".
    """

    matches: Callable[[object], bool]
    action: FaultAction
    extra_delay_ms: float = 0.0
    mutate: Optional[Callable[[object], object]] = None
    max_hits: Optional[int] = None
    hits: int = field(default=0, init=False)

    def decide(self, message: object) -> FaultDecision:
        if self.max_hits is not None and self.hits >= self.max_hits:
            return FaultDecision()
        if not self.matches(message):
            return FaultDecision()
        self.hits += 1
        return FaultDecision(
            action=self.action, extra_delay_ms=self.extra_delay_ms, mutate=self.mutate
        )


class CompositeFaultModel:
    """Apply a list of fault policies, first non-DELIVER match wins."""

    def __init__(self, faults: Sequence[FaultPolicy]) -> None:
        self.faults: list[FaultPolicy] = list(faults)

    def attach_metrics(self, metrics: MetricsRegistry, plane: str = "data") -> None:
        """Propagate registry binding to members that support it."""
        for fault in self.faults:
            attach = getattr(fault, "attach_metrics", None)
            if attach is not None:
                attach(metrics, plane)

    def decide(self, message: object) -> FaultDecision:
        for fault in self.faults:
            decision = fault.decide(message)
            if decision.action is not FaultAction.DELIVER:
                return decision
        return FaultDecision()
