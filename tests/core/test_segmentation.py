"""Unit tests for gateways and segmentation against the Fig. 1 example."""

import pytest

from repro.core.segmentation import (
    backward_segments,
    compute_gateways,
    compute_segments,
    forward_segments,
    nodes_to_update,
    segment_egress_gateways,
)
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH


def test_fig1_gateways():
    """Paper §3.2: G = {v0, v4, v2, v7} — in new-path order v0, v2, v4, v7."""
    gateways = compute_gateways(FIG1_OLD_PATH, FIG1_NEW_PATH)
    assert gateways == ["v0", "v2", "v4", "v7"]
    assert set(gateways) == {"v0", "v4", "v2", "v7"}


def test_fig1_segments():
    """Paper §3.2: {v0,v1,v2} and {v4,v5,v6,v7} forward, {v2,v3,v4} backward."""
    segments = compute_segments(FIG1_OLD_PATH, FIG1_NEW_PATH)
    assert [s.nodes for s in segments] == [
        ("v0", "v1", "v2"),
        ("v2", "v3", "v4"),
        ("v4", "v5", "v6", "v7"),
    ]
    assert [s.forward for s in segments] == [True, False, True]


def test_fig1_segment_roles():
    segments = compute_segments(FIG1_OLD_PATH, FIG1_NEW_PATH)
    backward = backward_segments(segments)[0]
    assert backward.ingress_gateway == "v2"
    assert backward.egress_gateway == "v4"
    assert backward.interior == ("v3",)
    assert len(backward) == 3


def test_fig1_forward_backward_partition():
    segments = compute_segments(FIG1_OLD_PATH, FIG1_NEW_PATH)
    assert len(forward_segments(segments)) == 2
    assert len(backward_segments(segments)) == 1


def test_segment_egress_gateways_fig1():
    segments = compute_segments(FIG1_OLD_PATH, FIG1_NEW_PATH)
    assert segment_egress_gateways(segments) == {"v2", "v4", "v7"}


def test_identical_paths_single_chain_of_segments():
    path = ["a", "b", "c"]
    segments = compute_segments(path, path)
    # Every node is a gateway; each hop is a trivial forward segment.
    assert [s.nodes for s in segments] == [("a", "b"), ("b", "c")]
    assert all(s.forward for s in segments)


def test_disjoint_detour_is_one_forward_segment():
    old = ["a", "x", "b"]
    new = ["a", "y", "z", "b"]
    segments = compute_segments(old, new)
    assert len(segments) == 1
    assert segments[0].nodes == ("a", "y", "z", "b")
    assert segments[0].forward


def test_mismatched_endpoints_rejected():
    with pytest.raises(ValueError):
        compute_segments(["a", "b"], ["a", "c"])


def test_nodes_to_update_fig1():
    changed = nodes_to_update(FIG1_OLD_PATH, FIG1_NEW_PATH)
    # v7 is egress (no rule change); every other new-path node changes
    # or gains a rule.
    assert changed == {"v0", "v1", "v2", "v3", "v4", "v5", "v6"}


def test_nodes_to_update_no_change():
    assert nodes_to_update(["a", "b"], ["a", "b"]) == set()


def test_backward_segment_detection_via_old_distance():
    # old: a-b-c-d-e ; new: a-d-c-b-e reverses the middle.
    old = ["a", "b", "c", "d", "e"]
    new = ["a", "d", "c", "b", "e"]
    segments = compute_segments(old, new)
    kinds = {s.nodes: s.forward for s in segments}
    assert kinds[("a", "d")] is True       # old dist 4 -> 1: forward
    assert kinds[("d", "c")] is False      # 1 -> 2: backward
    assert kinds[("c", "b")] is False      # 2 -> 3: backward
    assert kinds[("b", "e")] is True       # 3 -> 0: forward
