"""End-to-end SL-P4Update runs on small topologies.

These tests run the whole stack: controller UIMs over control
channels, UNM chain through the simulated P4 pipelines, timed rule
installs, UFM feedback — with the live consistency checker asserting
blackhole/loop/congestion freedom at every rule change.
"""


from repro.consistency import LiveChecker
from repro.core.messages import UpdateType
from repro.harness.build import build_p4update_network
from repro.params import DelayDistribution, SimParams
from repro.topo import fig1_topology, line_topology, ring_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
from repro.traffic.flows import Flow


def fast_params(seed=0):
    return SimParams(
        seed=seed,
        pipeline_delay=DelayDistribution.constant(0.1),
        rule_install_delay=DelayDistribution.constant(1.0),
        controller_service=DelayDistribution.constant(0.2),
    )


def checked(deployment):
    return LiveChecker(deployment.forwarding_state, deployment.network.trace)


def test_sl_update_on_ring_completes_consistently():
    topo = ring_topology(6, latency_ms=2.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params())
    checker = checked(dep)
    flow = Flow.between("n0", "n3", size=1.0, old_path=["n0", "n1", "n2", "n3"])
    dep.install_flow(flow)
    prepared = dep.controller.update_flow(
        flow.flow_id, ["n0", "n5", "n4", "n3"], UpdateType.SINGLE
    )
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    assert checker.ok, checker.violations
    # Final forwarding follows the new path.
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"
    assert walk == ["n0", "n5", "n4", "n3"]
    assert prepared.version == 2


def test_sl_update_time_reflects_serial_chain():
    """SL serialises installs from egress to ingress: with constant
    1 ms installs and 2 ms links, a 4-node path takes at least
    4 installs + 3 UNM hops."""
    topo = ring_topology(6, latency_ms=2.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params())
    flow = Flow.between("n0", "n3", size=1.0, old_path=["n0", "n1", "n2", "n3"])
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, ["n0", "n5", "n4", "n3"], UpdateType.SINGLE)
    dep.run()
    duration = dep.controller.update_duration(flow.flow_id)
    assert duration is not None
    assert duration >= 4 * 1.0 + 3 * 2.0


def test_fig1_update_via_sl():
    topo = fig1_topology()
    topo.set_controller("v0")
    dep = build_p4update_network(topo, params=fast_params())
    checker = checked(dep)
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.SINGLE)
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    assert checker.ok, checker.violations
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == list(FIG1_NEW_PATH)


def test_two_hop_flow_update():
    """Smallest possible update: ingress directly re-pointed."""
    topo = ring_topology(3, latency_ms=1.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params())
    flow = Flow.between("n0", "n2", size=1.0, old_path=["n0", "n1", "n2"])
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, ["n0", "n2"], UpdateType.SINGLE)
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == ["n0", "n2"]


def test_version_increments_across_sequential_updates():
    topo = ring_topology(6, latency_ms=1.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params())
    checker = checked(dep)
    flow = Flow.between("n0", "n3", size=1.0, old_path=["n0", "n1", "n2", "n3"])
    dep.install_flow(flow)
    first = dep.controller.update_flow(
        flow.flow_id, ["n0", "n5", "n4", "n3"], UpdateType.SINGLE
    )
    dep.run()
    second = dep.controller.update_flow(
        flow.flow_id, ["n0", "n1", "n2", "n3"], UpdateType.SINGLE
    )
    dep.run()
    assert (first.version, second.version) == (2, 3)
    assert dep.controller.update_complete(flow.flow_id)
    assert checker.ok, checker.violations
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == ["n0", "n1", "n2", "n3"]


def test_unchanged_path_update_still_completes():
    """Re-pushing the same path bumps versions along the chain."""
    topo = line_topology(4, latency_ms=1.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params())
    flow = Flow.between("n0", "n3", size=1.0, old_path=["n0", "n1", "n2", "n3"])
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, ["n0", "n1", "n2", "n3"], UpdateType.SINGLE)
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)


def test_controller_receives_no_alarms_on_clean_update():
    topo = ring_topology(5, latency_ms=1.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params())
    flow = Flow.between("n0", "n2", size=1.0, old_path=["n0", "n1", "n2"])
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, ["n0", "n4", "n3", "n2"], UpdateType.SINGLE)
    dep.run()
    assert dep.controller.alarms == []
