"""Unit tests for the trace log."""

from repro.sim.trace import (
    KIND_MSG_SEND,
    KIND_RULE_CHANGE,
    Trace,
    TraceEvent,
)


def sample_trace():
    trace = Trace()
    trace.record(1.0, KIND_RULE_CHANGE, "a", flow=1)
    trace.record(2.0, KIND_MSG_SEND, "a", message="UIM(x)")
    trace.record(3.0, KIND_RULE_CHANGE, "b", flow=2)
    trace.record(4.0, KIND_MSG_SEND, "b", message="UNM(y)")
    return trace


def test_record_and_len():
    trace = sample_trace()
    assert len(trace) == 4
    assert isinstance(trace.events[0], TraceEvent)


def test_of_kind_filters():
    trace = sample_trace()
    rules = trace.of_kind(KIND_RULE_CHANGE)
    assert [e.node for e in rules] == ["a", "b"]
    both = trace.of_kind(KIND_RULE_CHANGE, KIND_MSG_SEND)
    assert len(both) == 4


def test_at_node():
    trace = sample_trace()
    assert [e.time for e in trace.at_node("a")] == [1.0, 2.0]


def test_between():
    trace = sample_trace()
    window = trace.between(2.0, 3.0)
    assert [e.time for e in window] == [2.0, 3.0]


def test_last():
    trace = sample_trace()
    last = trace.last(KIND_RULE_CHANGE)
    assert last is not None and last.node == "b"
    assert trace.last("never_happened") is None


def test_subscribe_receives_future_events():
    trace = Trace()
    seen = []
    trace.subscribe(seen.append)
    trace.record(1.0, "x", "n")
    assert len(seen) == 1 and seen[0].kind == "x"


def test_unsubscribe_stops_notifications():
    trace = Trace()
    seen = []
    trace.subscribe(seen.append)
    trace.record(1.0, "x", "n")
    assert trace.unsubscribe(seen.append) is True
    trace.record(2.0, "x", "n")
    assert len(seen) == 1


def test_unsubscribe_unknown_callback_is_harmless():
    trace = Trace()
    assert trace.unsubscribe(lambda e: None) is False


def test_unsubscribe_removes_one_registration_per_call():
    trace = Trace()
    seen = []
    trace.subscribe(seen.append)
    trace.subscribe(seen.append)
    trace.unsubscribe(seen.append)
    trace.record(1.0, "x", "n")
    assert len(seen) == 1


def test_kind_index_matches_linear_scan():
    trace = sample_trace()
    for kind in (KIND_RULE_CHANGE, KIND_MSG_SEND, "missing"):
        assert trace.of_kind(kind) == [e for e in trace.events if e.kind == kind]
        assert trace.count_of_kind(kind) == sum(
            1 for e in trace.events if e.kind == kind
        )


def test_multi_kind_preserves_event_order():
    trace = sample_trace()
    both = trace.of_kind(KIND_MSG_SEND, KIND_RULE_CHANGE)
    times = [e.time for e in both]
    assert times == sorted(times)
    # Duplicate kinds must not duplicate events.
    assert trace.of_kind(KIND_MSG_SEND, KIND_MSG_SEND) == trace.of_kind(KIND_MSG_SEND)


def test_iteration_order():
    trace = sample_trace()
    times = [e.time for e in trace]
    assert times == sorted(times)


def test_events_are_immutable():
    import pytest

    event = TraceEvent(1.0, "k", "n", {})
    with pytest.raises(AttributeError):
        event.time = 2.0


# -- bounded retention (max_events ring buffer) -------------------------------


def test_default_trace_is_unbounded():
    trace = Trace()
    for i in range(1000):
        trace.record(float(i), "k", "n")
    assert len(trace) == 1000
    assert trace.dropped_events == 0


def test_ring_buffer_caps_retention_and_counts_drops():
    trace = Trace(max_events=3)
    for i in range(10):
        trace.record(float(i), "k", "n")
    assert len(trace) == 3
    assert trace.dropped_events == 7
    assert [e.time for e in trace.events] == [7.0, 8.0, 9.0]


def test_ring_buffer_kind_index_stays_consistent():
    trace = Trace(max_events=4)
    for i in range(12):
        trace.record(float(i), KIND_RULE_CHANGE if i % 2 else KIND_MSG_SEND, "n")
    assert trace.of_kind(KIND_RULE_CHANGE) == [
        e for e in trace.events if e.kind == KIND_RULE_CHANGE
    ]
    assert trace.count_of_kind(KIND_MSG_SEND) == sum(
        1 for e in trace.events if e.kind == KIND_MSG_SEND
    )
    last = trace.last(KIND_RULE_CHANGE)
    assert last is not None and last.time == 11.0
    # A kind that only ever lived in the evicted prefix yields nothing.
    trace2 = Trace(max_events=2)
    trace2.record(0.0, "early", "n")
    trace2.record(1.0, "late", "n")
    trace2.record(2.0, "late", "n")
    assert trace2.of_kind("early") == []
    assert trace2.last("early") is None
    assert trace2.count_of_kind("early") == 0


def test_ring_buffer_subscribers_see_every_event():
    trace = Trace(max_events=2)
    seen = []
    trace.subscribe(seen.append)
    for i in range(5):
        trace.record(float(i), "k", "n")
    assert len(seen) == 5
    assert len(trace) == 2
    assert trace.dropped_events == 3
