"""A queryable snapshot of the network's forwarding state.

``ForwardingState`` tracks, per flow, each node's current next hop —
the ground truth the consistency checker reasons about.  Switch agents
mirror every rule change into it (via the trace or directly), so the
checker sees exactly the mixed old/new states that arise mid-update.
"""

from __future__ import annotations

from typing import Optional


class ForwardingState:
    """Per-flow next-hop maps plus per-link flow reservations."""

    def __init__(self) -> None:
        # flow_id -> {node -> next_hop}
        self._next_hop: dict[int, dict[str, str]] = {}
        # flow_id -> (ingresses tuple, egress, size); unicast flows
        # have one ingress, destination trees (§11) have one per leaf.
        self._flows: dict[int, tuple[tuple[str, ...], str, float]] = {}
        # frozenset({a,b}) -> capacity
        self._capacity: dict[frozenset, float] = {}

    # -- flows ---------------------------------------------------------------

    def register_flow(self, flow_id: int, ingress: str, egress: str, size: float) -> None:
        self._flows[flow_id] = ((ingress,), egress, size)
        self._next_hop.setdefault(flow_id, {})

    def register_tree(
        self, tree_id: int, leaves: list[str], egress: str, size: float
    ) -> None:
        """Destination-based routing (§11): one state entry shared by
        every source, walked from each leaf."""
        self._flows[tree_id] = (tuple(leaves), egress, size)
        self._next_hop.setdefault(tree_id, {})

    def flow_ids(self) -> list[int]:
        return sorted(self._flows)

    def flow_info(self, flow_id: int) -> tuple[str, str, float]:
        ingresses, egress, size = self._flows[flow_id]
        return ingresses[0], egress, size

    def ingresses(self, flow_id: int) -> tuple[str, ...]:
        return self._flows[flow_id][0]

    # -- rules -----------------------------------------------------------------

    def set_rule(self, flow_id: int, node: str, next_hop: Optional[str]) -> None:
        """Install/replace (or with None: remove) a forwarding rule."""
        rules = self._next_hop.setdefault(flow_id, {})
        if next_hop is None:
            rules.pop(node, None)
        else:
            rules[node] = next_hop

    def next_hop(self, flow_id: int, node: str) -> Optional[str]:
        return self._next_hop.get(flow_id, {}).get(node)

    def rules(self, flow_id: int) -> dict[str, str]:
        return dict(self._next_hop.get(flow_id, {}))

    # -- capacity --------------------------------------------------------------

    def set_capacity(self, a: str, b: str, capacity: float) -> None:
        self._capacity[frozenset((a, b))] = capacity

    def capacity(self, a: str, b: str) -> float:
        return self._capacity.get(frozenset((a, b)), float("inf"))

    def capacities(self) -> dict[frozenset, float]:
        return dict(self._capacity)

    # -- traversal ----------------------------------------------------------------

    def walk(
        self, flow_id: int, max_hops: int = 10_000, ingress: Optional[str] = None
    ) -> tuple[list[str], str]:
        """Follow next hops from the flow's ingress (or a given one).

        Returns ``(visited_nodes, outcome)`` where outcome is one of
        ``"delivered"`` (egress reached), ``"blackhole"`` (no rule at a
        non-egress node) or ``"loop"`` (a node repeated).
        """
        ingresses, egress, _ = self._flows[flow_id]
        if ingress is None:
            ingress = ingresses[0]
        rules = self._next_hop.get(flow_id, {})
        visited = [ingress]
        seen = {ingress}
        current = ingress
        for _ in range(max_hops):
            if current == egress:
                return visited, "delivered"
            nxt = rules.get(current)
            if nxt is None:
                return visited, "blackhole"
            if nxt in seen:
                visited.append(nxt)
                return visited, "loop"
            visited.append(nxt)
            seen.add(nxt)
            current = nxt
        return visited, "loop"

    def active_edges(self, flow_id: int) -> list[tuple[str, str]]:
        """Edges the flow currently traverses (empty when not
        deliverable); for trees, the union over all leaves' walks."""
        edges: list[tuple[str, str]] = []
        seen: set[tuple[str, str]] = set()
        for ingress in self.ingresses(flow_id):
            path, outcome = self.walk(flow_id, ingress=ingress)
            if outcome != "delivered":
                continue
            for edge in zip(path, path[1:]):
                if edge not in seen:
                    seen.add(edge)
                    edges.append(edge)
        return edges
