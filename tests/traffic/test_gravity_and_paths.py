"""Unit tests for the gravity model and path helpers."""

import numpy as np
import pytest

from repro.topo import fig1_topology, line_topology, ring_topology
from repro.traffic.gravity import gravity_flow_sizes, gravity_matrix, scale_to_capacity
from repro.traffic.paths import edge_disjoint_detour, k_shortest_paths, second_shortest_path


def test_gravity_matrix_shape_and_positivity():
    rng = np.random.default_rng(1)
    nodes = ["a", "b", "c", "d"]
    matrix = gravity_matrix(nodes, rng, total_traffic=10.0)
    assert len(matrix) == 12  # n*(n-1) ordered pairs
    assert all(v > 0 for v in matrix.values())
    assert ("a", "a") not in matrix


def test_gravity_matrix_total_bounded():
    rng = np.random.default_rng(2)
    matrix = gravity_matrix(["a", "b", "c"], rng, total_traffic=5.0)
    assert sum(matrix.values()) <= 5.0 + 1e-9


def test_gravity_matrix_needs_two_nodes():
    with pytest.raises(ValueError):
        gravity_matrix(["solo"], np.random.default_rng(0))


def test_gravity_matrix_seed_determinism():
    nodes = ["a", "b", "c"]
    m1 = gravity_matrix(nodes, np.random.default_rng(7))
    m2 = gravity_matrix(nodes, np.random.default_rng(7))
    assert m1 == m2


def test_gravity_flow_sizes_mean():
    rng = np.random.default_rng(3)
    pairs = [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")]
    sizes = gravity_flow_sizes(pairs, rng, mean_size=4.0)
    assert len(sizes) == 4
    assert np.mean(sizes) == pytest.approx(4.0)
    assert all(s >= 0 for s in sizes)


def test_gravity_flow_sizes_empty():
    assert gravity_flow_sizes([], np.random.default_rng(0)) == []


def test_gravity_flow_sizes_seed_determinism():
    pairs = [("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")]
    s1 = gravity_flow_sizes(pairs, np.random.default_rng(11), mean_size=2.0)
    s2 = gravity_flow_sizes(pairs, np.random.default_rng(11), mean_size=2.0)
    assert s1 == s2


def test_gravity_flow_sizes_pair_order_independent():
    # Node weights are drawn over the *sorted* node set, so the size of
    # a given (src, dst) pair must not depend on where it sits in the
    # input list — permuting the pairs permutes the output identically.
    pairs = [("d", "a"), ("a", "b"), ("b", "c"), ("c", "a"), ("a", "c")]
    forward = gravity_flow_sizes(pairs, np.random.default_rng(5))
    shuffled = list(reversed(pairs))
    backward = gravity_flow_sizes(shuffled, np.random.default_rng(5))
    by_pair_fwd = dict(zip(pairs, forward))
    by_pair_bwd = dict(zip(shuffled, backward))
    assert by_pair_fwd == pytest.approx(by_pair_bwd)


def test_gravity_matrix_node_order_changes_assignment_not_support():
    # gravity_matrix keys follow the caller's node order; callers that
    # need order independence sort first (as gravity_flow_sizes does).
    m1 = gravity_matrix(["a", "b", "c"], np.random.default_rng(9))
    m2 = gravity_matrix(["c", "b", "a"], np.random.default_rng(9))
    assert set(m1) == set(m2)
    assert sum(m1.values()) == pytest.approx(sum(m2.values()))


def test_scale_to_capacity_hits_target_utilisation():
    sizes = [1.0, 2.0]
    loads = {"e1": 3.0, "e2": 1.0}
    caps = {"e1": 10.0, "e2": 10.0}
    scaled = scale_to_capacity(sizes, loads, caps, utilisation=0.9)
    factor = scaled[0] / sizes[0]
    # Worst link was e1 at 0.3 utilisation -> factor 3.
    assert factor == pytest.approx(3.0)


def test_scale_to_capacity_no_finite_caps_is_identity():
    sizes = [1.0]
    assert scale_to_capacity(sizes, {"e": 1.0}, {"e": float("inf")}) == sizes


def test_scale_to_capacity_rejects_bad_capacity():
    with pytest.raises(ValueError):
        scale_to_capacity([1.0], {"e": 1.0}, {"e": 0.0})


def test_k_shortest_on_ring_gives_both_directions():
    topo = ring_topology(6)
    paths = k_shortest_paths(topo, "n0", "n3", 2)
    assert len(paths) == 2
    assert paths[0] != paths[1]
    assert all(p[0] == "n0" and p[-1] == "n3" for p in paths)


def test_second_shortest_none_on_line():
    topo = line_topology(4)
    assert second_shortest_path(topo, "n0", "n3") is None


def test_second_shortest_is_longer_or_equal():
    topo = fig1_topology()
    first = topo.shortest_path("v0", "v7")
    second = second_shortest_path(topo, "v0", "v7")
    assert second is not None
    assert topo.path_latency(second) >= topo.path_latency(first)


def test_k_shortest_same_node_rejected():
    topo = ring_topology(4)
    with pytest.raises(ValueError):
        k_shortest_paths(topo, "n0", "n0", 2)


def test_edge_disjoint_detour_on_ring():
    topo = ring_topology(6)
    detour = edge_disjoint_detour(topo, "n0", "n2")
    assert detour is not None
    shortest = topo.shortest_path("n0", "n2")
    shared = set(map(frozenset, zip(shortest, shortest[1:]))) & set(
        map(frozenset, zip(detour, detour[1:]))
    )
    assert not shared


def test_edge_disjoint_detour_none_on_line():
    topo = line_topology(3)
    assert edge_disjoint_detour(topo, "n0", "n2") is None
