"""The simulated network: nodes, links, control channels, delivery.

Delivery semantics:

* data-plane: FIFO per directed link, delay = link latency (+ optional
  per-hop jitter from the parameter set);
* control-plane: per-switch control channel latency, plus a
  single-threaded controller service queue — the controller processes
  one message at a time, which is what makes the Central baseline pay
  for every acknowledgement round (paper §9.1, [40]).

A :class:`FaultPolicy` (e.g. :class:`repro.sim.faults.FaultModel`) can
be installed to drop/delay/duplicate/corrupt messages in flight.

Topology-level failures (repro.chaos, paper §11): links can go down
(losing in-flight messages), switches can crash and restart, and the
controller can suffer outage windows during which its control channel
is black-holed but the service queue is preserved.  All failure state
lives behind :meth:`Network.enable_chaos`; with chaos disarmed the
delivery paths pay one boolean check and are bit-identical to a build
without the chaos layer.
"""

from __future__ import annotations

import copy
from typing import Any, Optional

from repro.obs.context import NULL_OBS, ObsContext
from repro.sim.engine import Engine, Event
from repro.sim.faults import FaultAction, FaultDecision, FaultPolicy
from repro.sim.links import ControlChannel, Link
from repro.sim.node import Node
from repro.sim.trace import (
    KIND_CONTROLLER_DOWN,
    KIND_CONTROLLER_UP,
    KIND_LINK_DOWN,
    KIND_LINK_UP,
    KIND_MSG_DROP,
    KIND_MSG_RECV,
    KIND_MSG_SEND,
    KIND_SWITCH_CRASH,
    KIND_SWITCH_RESTART,
    Trace,
)


class Network:
    """Container wiring nodes together and delivering messages."""

    def __init__(
        self,
        engine: Optional[Engine] = None,
        trace: Optional[Trace] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.engine = engine if engine is not None else Engine()
        self.trace = trace if trace is not None else Trace()
        self.obs = obs if obs is not None else NULL_OBS
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        # (node, port) -> Link
        self._port_map: dict[tuple[str, int], Link] = {}
        # (node_a, node_b) -> Link  (both orientations)
        self._adjacency: dict[tuple[str, str], Link] = {}
        self.control_channels: dict[str, ControlChannel] = {}
        self.controller_name: Optional[str] = None
        self._fault_model: Optional[FaultPolicy] = None
        self._control_fault_model: Optional[FaultPolicy] = None
        # Single-threaded controller service queue state.
        self.controller_service_busy_until = 0.0
        # -- topology-level failure state (repro.chaos) ----------------
        # One boolean gates every failure check on the delivery paths;
        # until enable_chaos() (or any failure API) flips it, the
        # chaos layer is inert and adds no events or RNG draws.
        self._chaos = False
        self._down_links: set[frozenset[str]] = set()
        self._down_nodes: set[str] = set()
        self.controller_outage = False
        # Control messages that arrived at the controller during an
        # outage window; re-enqueued (service queue preserved) when
        # the controller comes back.
        self._outage_buffer: list[tuple[str, Any]] = []
        # link key -> delivery events currently on that wire, so a
        # LinkDown can lose them.  Only maintained while chaos is
        # armed.
        self._in_flight: dict[frozenset[str], list[Event]] = {}

    # -- fault models ------------------------------------------------------

    @property
    def fault_model(self) -> Optional[FaultPolicy]:
        return self._fault_model

    @fault_model.setter
    def fault_model(self, model: Optional[FaultPolicy]) -> None:
        self._fault_model = self._bind_fault_metrics(model, "data")

    @property
    def control_fault_model(self) -> Optional[FaultPolicy]:
        return self._control_fault_model

    @control_fault_model.setter
    def control_fault_model(self, model: Optional[FaultPolicy]) -> None:
        self._control_fault_model = self._bind_fault_metrics(model, "control")

    def _bind_fault_metrics(
        self, model: Optional[FaultPolicy], plane: str
    ) -> Optional[FaultPolicy]:
        """Expose fault counters through the run's metrics registry."""
        if model is not None and self.obs.enabled:
            attach = getattr(model, "attach_metrics", None)
            if attach is not None:
                attach(self.obs.metrics, plane)
        return model

    # -- construction ----------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        node.attach(self)
        return node

    def add_link(self, link: Link) -> Link:
        for key in ((link.node_a, link.port_a), (link.node_b, link.port_b)):
            if key in self._port_map:
                raise ValueError(f"port already in use: {key}")
        for name in (link.node_a, link.node_b):
            if name not in self.nodes:
                raise ValueError(f"unknown node {name!r}")
        self.links.append(link)
        self._port_map[(link.node_a, link.port_a)] = link
        self._port_map[(link.node_b, link.port_b)] = link
        self._adjacency[(link.node_a, link.node_b)] = link
        self._adjacency[(link.node_b, link.node_a)] = link
        return link

    def set_controller(self, name: str) -> None:
        if name not in self.nodes:
            raise ValueError(f"unknown node {name!r}")
        self.controller_name = name

    def add_control_channel(self, channel: ControlChannel) -> None:
        self.control_channels[channel.switch] = channel

    # -- lookup ------------------------------------------------------------

    def link_at(self, node: str, port: int) -> Link:
        try:
            return self._port_map[(node, port)]
        except KeyError:
            raise KeyError(f"no link on {node!r} port {port}") from None

    def link_between(self, node_a: str, node_b: str) -> Link:
        try:
            return self._adjacency[(node_a, node_b)]
        except KeyError:
            raise KeyError(f"no link between {node_a!r} and {node_b!r}") from None

    def port_towards(self, node: str, neighbor: str) -> int:
        """The local port on ``node`` whose link leads to ``neighbor``."""
        link = self.link_between(node, neighbor)
        if link.node_a == node:
            return link.port_a
        return link.port_b

    def neighbor_on_port(self, node: str, port: int) -> str:
        return self.link_at(node, port).other(node)

    # -- simulation ----------------------------------------------------------

    def start(self) -> None:
        """Invoke every node's start hook at t=0."""
        for node in self.nodes.values():
            node.start()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.engine.run(until=until, max_events=max_events)

    # -- topology failures (repro.chaos) -----------------------------------

    def enable_chaos(self) -> None:
        """Arm the failure layer.

        Must be called before messages whose in-flight loss matters are
        sent — delivery events are only tracked per link while armed.
        Every failure API arms the layer itself, but messages already
        on the wire at that point are not retroactively tracked.
        """
        self._chaos = True

    @property
    def chaos_enabled(self) -> bool:
        return self._chaos

    def link_is_up(self, node_a: str, node_b: str) -> bool:
        return self.link_between(node_a, node_b).key not in self._down_links

    def node_is_up(self, name: str) -> bool:
        return name not in self._down_nodes

    def set_link_state(self, node_a: str, node_b: str, up: bool) -> None:
        """Take the (bidirectional) link between two nodes down or up.

        On LinkDown, messages currently on the wire are lost and both
        endpoints get a synchronous port-status notification (which
        P4Update switches relay to the controller as port-down FRMs,
        §11).  On LinkUp the endpoints are notified again.
        """
        self.enable_chaos()
        link = self.link_between(node_a, node_b)
        key = link.key
        now = self.engine.now
        if up:
            if key not in self._down_links:
                return
            self._down_links.discard(key)
            self.trace.record(now, KIND_LINK_UP, link.node_a, peer=link.node_b)
            if self.obs.enabled:
                self.obs.metrics.counter("topo_events", kind="link_up").inc()
        else:
            if key in self._down_links:
                return
            self._down_links.add(key)
            self.trace.record(now, KIND_LINK_DOWN, link.node_a, peer=link.node_b)
            if self.obs.enabled:
                self.obs.metrics.counter("topo_events", kind="link_down").inc()
            for event in self._in_flight.pop(key, []):
                if event.cancelled or event.time < now:
                    continue
                event.cancel()
                dest, _dest_port, payload = event.args
                self._drop_for_failure(
                    link.other(dest), dest, payload, plane="data", reason="link_down"
                )
        self._notify_port_status(link, up)

    def _notify_port_status(self, link: Link, up: bool) -> None:
        for name, port in (
            (link.node_a, link.port_a),
            (link.node_b, link.port_b),
        ):
            if name in self._down_nodes:
                continue
            self.nodes[name].handle_port_status(port, up)

    def crash_switch(self, name: str, preserve_state: bool = False) -> None:
        """Crash a switch: it stops sending and receiving.

        ``preserve_state`` selects the register policy: False models a
        power-cycle (pipeline registers and queued work are lost, the
        node's ``on_crash`` hook resets them); True models a fast
        control-agent failure where the data-plane state survives.
        Live neighbors see their ports toward the switch go down.
        """
        self.enable_chaos()
        if name not in self.nodes:
            raise KeyError(f"unknown node {name!r}")
        if name in self._down_nodes:
            return
        self._down_nodes.add(name)
        self.trace.record(
            self.engine.now, KIND_SWITCH_CRASH, name, preserve_state=preserve_state
        )
        if self.obs.enabled:
            self.obs.metrics.counter("topo_events", kind="switch_crash").inc()
        hook = getattr(self.nodes[name], "on_crash", None)
        if hook is not None:
            hook(preserve_state)
        for link in self._links_of(name):
            if link.key in self._down_links:
                continue
            other = link.other(name)
            if other in self._down_nodes:
                continue
            port = link.port_a if link.node_a == other else link.port_b
            self.nodes[other].handle_port_status(port, False)

    def restart_switch(self, name: str) -> None:
        """Bring a crashed switch back; neighbors see ports come up."""
        self.enable_chaos()
        if name not in self._down_nodes:
            return
        self._down_nodes.discard(name)
        self.trace.record(self.engine.now, KIND_SWITCH_RESTART, name)
        if self.obs.enabled:
            self.obs.metrics.counter("topo_events", kind="switch_restart").inc()
        hook = getattr(self.nodes[name], "on_restart", None)
        if hook is not None:
            hook()
        for link in self._links_of(name):
            if link.key in self._down_links:
                continue
            other = link.other(name)
            if other in self._down_nodes:
                continue
            port = link.port_a if link.node_a == other else link.port_b
            self.nodes[other].handle_port_status(port, True)

    def set_controller_outage(self, down: bool) -> None:
        """Black-hole the control channel during a controller outage.

        Messages arriving at the controller while it is down are
        buffered and re-enqueued through the (preserved) service queue
        at recovery time; messages *sent* during the window — in either
        direction — are lost, modelling a dead management network.
        """
        self.enable_chaos()
        if self.controller_name is None:
            raise RuntimeError("no controller registered")
        if down == self.controller_outage:
            return
        self.controller_outage = down
        kind = KIND_CONTROLLER_DOWN if down else KIND_CONTROLLER_UP
        self.trace.record(self.engine.now, kind, self.controller_name)
        if self.obs.enabled:
            self.obs.metrics.counter(
                "topo_events", kind="controller_down" if down else "controller_up"
            ).inc()
        if not down and self._outage_buffer:
            buffered = self._outage_buffer
            self._outage_buffer = []
            for sender, message in buffered:
                self._enqueue_at_controller(sender, message, self.engine.now)

    def _links_of(self, name: str) -> list[Link]:
        return [link for link in self.links if name in (link.node_a, link.node_b)]

    def _drop_for_failure(
        self, sender: str, dest: str, message: Any, plane: str, reason: str
    ) -> None:
        self.trace.record(
            self.engine.now, KIND_MSG_DROP, sender,
            dest=dest, message=describe(message), reason=reason,
        )
        if self.obs.enabled:
            self.obs.metrics.counter(
                "messages_lost_to_failure", plane=plane, reason=reason,
            ).inc()

    def _note_in_flight(self, key: frozenset, event: Event) -> None:
        flights = self._in_flight.setdefault(key, [])
        now = self.engine.now
        while flights and (flights[0].cancelled or flights[0].time < now):
            flights.pop(0)
        flights.append(event)

    # -- data-plane delivery ---------------------------------------------------

    def transmit(self, sender: str, port: int, message: Any) -> None:
        link = self.link_at(sender, port)
        dest, dest_port = link.endpoint(sender)
        self.trace.record(
            self.engine.now, KIND_MSG_SEND, sender,
            dest=dest, port=port, message=describe(message),
        )
        if self.obs.enabled:
            self.obs.metrics.counter(
                "messages_sent", node=sender, plane="data",
                type=message_type(message),
            ).inc()
        if self._chaos:
            if sender in self._down_nodes:
                self._drop_for_failure(sender, dest, message, "data", "sender_down")
                return
            if link.key in self._down_links:
                self._drop_for_failure(sender, dest, message, "data", "link_down")
                return
        decision = self._fault_decision(self._fault_model, message)
        if decision.action is FaultAction.DROP:
            self.trace.record(
                self.engine.now, KIND_MSG_DROP, sender,
                dest=dest, message=describe(message),
            )
            if self.obs.enabled:
                self.obs.metrics.counter(
                    "messages_dropped", node=sender, plane="data",
                    type=message_type(message),
                ).inc()
            return
        delay = link.latency_ms + decision.extra_delay_ms
        payload = message
        if decision.action is FaultAction.CORRUPT and decision.mutate is not None:
            payload = decision.mutate(copy.deepcopy(message))
        event = self.engine.schedule(delay, self._deliver, dest, dest_port, payload)
        if self._chaos:
            self._note_in_flight(link.key, event)
        if decision.action is FaultAction.DUPLICATE:
            dup = self.engine.schedule(
                delay, self._deliver, dest, dest_port, copy.deepcopy(message)
            )
            if self._chaos:
                self._note_in_flight(link.key, dup)

    def _deliver(self, dest: str, dest_port: int, message: Any) -> None:
        node = self.nodes.get(dest)
        if node is None:
            return
        if self._chaos and dest in self._down_nodes:
            self._drop_for_failure(
                self.neighbor_on_port(dest, dest_port), dest, message,
                "data", "dest_down",
            )
            return
        self.trace.record(
            self.engine.now, KIND_MSG_RECV, dest,
            port=dest_port, message=describe(message),
        )
        if self.obs.enabled:
            self.obs.metrics.counter(
                "messages_received", node=dest, plane="data",
                type=message_type(message),
            ).inc()
        node.handle_message(message, dest_port)

    # -- control-plane delivery ---------------------------------------------------

    def transmit_control(self, sender: str, message: Any) -> None:
        """Control channel between a switch and the controller.

        When the sender is the controller, the message must carry a
        ``target`` attribute naming the destination switch.  When the
        sender is a switch, delivery goes to the controller and passes
        through the single-threaded controller service queue.
        """
        if self.controller_name is None:
            raise RuntimeError("no controller registered")
        if self._chaos:
            if sender in self._down_nodes:
                self._drop_for_failure(
                    sender, self.controller_name, message, "control", "sender_down"
                )
                return
            if self.controller_outage:
                self._drop_for_failure(
                    sender, self.controller_name, message,
                    "control", "controller_outage",
                )
                return
        decision = self._fault_decision(self._control_fault_model, message)
        if self.obs.enabled:
            self.obs.metrics.counter(
                "messages_sent", node=sender, plane="control",
                type=message_type(message),
            ).inc()
        if decision.action is FaultAction.DROP:
            self.trace.record(
                self.engine.now, KIND_MSG_DROP, sender, message=describe(message),
            )
            if self.obs.enabled:
                self.obs.metrics.counter(
                    "messages_dropped", node=sender, plane="control",
                    type=message_type(message),
                ).inc()
            return
        payload = message
        if decision.action is FaultAction.CORRUPT and decision.mutate is not None:
            payload = decision.mutate(copy.deepcopy(message))

        if sender == self.controller_name:
            target = getattr(payload, "target", None)
            if target is None:
                raise ValueError("controller message lacks .target")
            channel = self._channel_for(target)
            delay = channel.delay() + decision.extra_delay_ms
            self.trace.record(
                self.engine.now, KIND_MSG_SEND, sender,
                dest=target, message=describe(payload),
            )
            self.engine.schedule(delay, self._deliver_control, target, payload, sender)
            if decision.action is FaultAction.DUPLICATE:
                self.engine.schedule(
                    delay, self._deliver_control, target, copy.deepcopy(payload), sender
                )
        else:
            channel = self._channel_for(sender)
            delay = channel.delay() + decision.extra_delay_ms
            self.trace.record(
                self.engine.now, KIND_MSG_SEND, sender,
                dest=self.controller_name, message=describe(payload),
            )
            arrival = self.engine.now + delay
            self.engine.schedule(
                delay, self._enqueue_at_controller, sender, payload, arrival
            )
            if decision.action is FaultAction.DUPLICATE:
                self.engine.schedule(
                    delay, self._enqueue_at_controller,
                    sender, copy.deepcopy(payload), arrival,
                )

    def _channel_for(self, switch: str) -> ControlChannel:
        channel = self.control_channels.get(switch)
        if channel is None:
            raise KeyError(f"no control channel for {switch!r}")
        return channel

    def _enqueue_at_controller(self, sender: str, message: Any, arrival: float) -> None:
        """Messages to the controller serialise through one service queue.

        The controller handles one message at a time (paper: single
        thread); service time is supplied by the controller node via
        ``control_service_time()`` if present, else zero.
        """
        if self._chaos and self.controller_outage:
            # Arrived while the controller is down: the service queue
            # survives the outage, so park the message for re-enqueue
            # at recovery.
            self._outage_buffer.append((sender, message))
            return
        controller = self.nodes[self.controller_name]
        service_time = 0.0
        provider = getattr(controller, "control_service_time", None)
        if provider is not None:
            service_time = provider()
        backlog = 0.0
        backlog_provider = getattr(controller, "control_queue_delay", None)
        if backlog_provider is not None:
            backlog = backlog_provider()
        start = max(self.engine.now, self.controller_service_busy_until) + backlog
        finish = start + service_time
        self.controller_service_busy_until = finish
        if self.obs.enabled:
            self.obs.metrics.histogram(
                "controller_service_wait_ms", node=self.controller_name,
            ).observe(start - self.engine.now)
        self.engine.schedule(
            finish - self.engine.now, self._deliver_control,
            self.controller_name, message, sender,
        )

    def _deliver_control(self, dest: str, message: Any, sender: str) -> None:
        node = self.nodes.get(dest)
        if node is None:
            return
        if self._chaos and dest in self._down_nodes:
            self._drop_for_failure(sender, dest, message, "control", "dest_down")
            return
        self.trace.record(
            self.engine.now, KIND_MSG_RECV, dest,
            sender=sender, message=describe(message),
        )
        if self.obs.enabled:
            self.obs.metrics.counter(
                "messages_received", node=dest, plane="control",
                type=message_type(message),
            ).inc()
        node.handle_control(message, sender)

    # -- faults -------------------------------------------------------------------

    def _fault_decision(
        self, model: Optional[FaultPolicy], message: Any
    ) -> FaultDecision:
        if model is None:
            return FaultDecision()
        return model.decide(message)


def describe(message: Any) -> str:
    """Short human-readable tag for a message, used in traces."""
    describe_fn = getattr(message, "describe", None)
    if callable(describe_fn):
        return describe_fn()
    return type(message).__name__


def message_type(message: Any) -> str:
    """Coarse message class for metric labels.

    Data-plane messages are all ``Packet`` instances; the interesting
    distinction is which header they carry (UNM, probe, cleanup).
    Control-plane messages keep their class name (UIM, UFM, ...).
    """
    has_valid = getattr(message, "has_valid", None)
    if callable(has_valid):
        for header in ("unm", "probe", "cleanup"):
            if has_valid(header):
                return header
        return "packet"
    return type(message).__name__
