"""Static verification layer (no simulation required).

Three checkers, all runnable before (or instead of) executing anything:

* :mod:`repro.analysis.linter` + :mod:`repro.analysis.rules` — the
  sim-purity linter: AST rules that flag determinism hazards
  (wall-clock reads, unseeded randomness, set-iteration order,
  mutable default arguments, unguarded observability calls) in the
  packages covered by the reproducibility contract;
* :mod:`repro.analysis.plan` — the update-plan verifier: checks a
  prepared SL-/DL-P4Update plan's notification DAG for deadlock
  cycles, orphaned installs, missing ack edges and version-number
  regressions, emitting a concrete counterexample path on failure;
* :mod:`repro.analysis.pipecheck` — the pipeline static analyzer:
  inspects a behavioural P4 program for registers read but never
  written, read-before-write across stages, unbounded resubmit loops
  and tables without default actions.

The ``analyze`` CLI subcommand (``p4update-repro analyze lint|plan|
pipeline``) fronts all three; :data:`repro.params.SimParams.
verify_update_plans` turns the plan verifier into a pre-execution
gate inside :class:`repro.core.controller.P4UpdateController`.
"""

from repro.analysis.findings import Finding, format_findings
from repro.analysis.linter import (
    DEFAULT_RULES,
    LintContext,
    LintRule,
    lint_paths,
    lint_source,
    register_rule,
    rule_names,
)
from repro.analysis.pipecheck import analyze_pipeline
from repro.analysis.plan import (
    PlanInstall,
    PlanReport,
    PlanVerificationError,
    PlanViolation,
    UpdatePlan,
    plan_from_prepared,
    verify_plan,
)

__all__ = [
    "DEFAULT_RULES",
    "Finding",
    "LintContext",
    "LintRule",
    "PlanInstall",
    "PlanReport",
    "PlanVerificationError",
    "PlanViolation",
    "UpdatePlan",
    "analyze_pipeline",
    "format_findings",
    "lint_paths",
    "lint_source",
    "plan_from_prepared",
    "register_rule",
    "rule_names",
    "verify_plan",
]
