"""Waypoint traversal checking (the paper's future-work direction in
§12, building on [4, 5, 55]).

A waypoint policy requires every packet of a flow to pass through a
designated node (firewall, scrubber, ...).  This module provides:

* static checking — does the current forwarding state route a flow
  through its waypoint(s)?
* per-packet checking — given probe hop logs (e.g. from a Fig.-2-style
  run), did every *packet* traverse the waypoint, even mid-update?

The paper's 2-phase-commit integration (§11) is what makes waypoint
policies updatable safely: per-packet consistency implies waypoint
traversal is preserved whenever both the old and the new path satisfy
the policy.  Plain SL/DL updates only preserve the policy when every
transient mixed path happens to contain the waypoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.consistency.state import ForwardingState


@dataclass
class WaypointPolicy:
    """One flow's required waypoint set (all must be traversed)."""

    flow_id: int
    waypoints: frozenset

    @classmethod
    def require(cls, flow_id: int, *waypoints: str) -> "WaypointPolicy":
        if not waypoints:
            raise ValueError("a waypoint policy needs at least one waypoint")
        return cls(flow_id=flow_id, waypoints=frozenset(waypoints))


@dataclass
class WaypointViolation:
    flow_id: int
    missing: frozenset
    path: tuple
    packet_seq: int | None = None


def check_state_waypoints(
    state: ForwardingState, policies: Iterable[WaypointPolicy]
) -> list[WaypointViolation]:
    """Static check: every ingress walk must cover the waypoints."""
    violations = []
    for policy in policies:
        for ingress in state.ingresses(policy.flow_id):
            path, outcome = state.walk(policy.flow_id, ingress=ingress)
            if outcome != "delivered":
                continue        # blackhole/loop is another checker's job
            missing = policy.waypoints - set(path)
            if missing:
                violations.append(
                    WaypointViolation(
                        flow_id=policy.flow_id,
                        missing=frozenset(missing),
                        path=tuple(path),
                    )
                )
    return violations


def check_packet_waypoints(
    hop_logs: Sequence[tuple[int, Sequence[str]]],
    policy: WaypointPolicy,
) -> list[WaypointViolation]:
    """Per-packet check over ``(seq, hops)`` records of delivered
    packets — the property a 2PC update preserves and a plain update
    may transiently break."""
    violations = []
    for seq, hops in hop_logs:
        missing = policy.waypoints - set(hops)
        if missing:
            violations.append(
                WaypointViolation(
                    flow_id=policy.flow_id,
                    missing=frozenset(missing),
                    path=tuple(hops),
                    packet_seq=seq,
                )
            )
    return violations


def paths_satisfy(policy: WaypointPolicy, *paths: Sequence[str]) -> bool:
    """Do all given (old/new) paths contain every waypoint?  The
    precondition under which a 2PC update preserves the policy."""
    return all(policy.waypoints <= set(path) for path in paths)
