"""Pure-Python reproduction of P4Update (CoNEXT 2021).

The package is organised as a stack:

``repro.sim``
    Deterministic discrete-event simulator (the Mininet substitute).
``repro.p4``
    Behavioural model of a P4 pipeline (the BMv2 substitute).
``repro.topo``
    Network topologies used in the paper's evaluation.
``repro.traffic``
    Gravity-model traffic and flow/path generation.
``repro.consistency``
    Blackhole / loop / congestion freedom checkers.
``repro.core``
    The paper's contribution: SL-/DL-P4Update, local verification,
    the data-plane congestion scheduler, controller and switch agents.
``repro.baselines``
    Central (dependency-graph rounds) and ez-Segway comparators.
``repro.harness``
    Scenario builders, experiment runner and metrics that regenerate
    the paper's figures.
"""

from repro.version import __version__

__all__ = ["__version__"]
