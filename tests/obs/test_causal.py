"""Unit tests for per-request causal tracing (repro.obs.causal)."""

import gzip
import io
import json
import math

from repro.obs.causal import (
    SEGMENTS,
    CausalTracker,
    critical_path,
    iter_causal_jsonl,
    nearest_rank,
    perfetto_trace,
    summarize_attribution,
    write_causal_jsonl,
)


def _sum_invariant(row):
    return abs(sum(row["segments"].values()) - row["e2e_ms"])


def happy_path_tracker() -> CausalTracker:
    """submit -> admit -> dispatch -> push -> verify -> done."""
    tracker = CausalTracker()
    tracker.submit(0, 7, 10.0)
    tracker.mark(0, 12.0, "admitted", "orchestrator", queue_depth=1)
    tracker.mark(0, 15.0, "dispatched", "orchestrator", state="prepare")
    tracker.bind_flow(7, 0)
    tracker.pushed(0, 20.0, "controller", version=2)
    tracker.flow_event(7, 24.0, "rule_change", "s1", flow=7)
    tracker.flow_event(7, 27.0, "verify_ok", "s2", flow=7)
    tracker.flow_event(7, 30.0, "update_done", "controller", flow=7)
    tracker.unbind_flow(7)
    tracker.finish(0, 30.0, "completed")
    return tracker


def test_segments_schema_is_fixed():
    assert SEGMENTS == (
        "queue_wait", "conflict_wait", "prepare", "control_rtt",
        "retry_backoff", "dataplane_verify", "recovery",
    )


def test_happy_path_attribution():
    [row] = happy_path_tracker().attribution_rows()
    assert row["request_id"] == 0
    assert row["flow_id"] == 7
    assert row["outcome"] == "completed"
    assert row["e2e_ms"] == 20.0
    assert row["segments"]["queue_wait"] == 5.0       # 10 -> 15
    assert row["segments"]["prepare"] == 5.0          # 15 -> 20
    assert row["segments"]["control_rtt"] == 7.0      # 20->24 rtt, 27->30 ufm
    assert row["segments"]["dataplane_verify"] == 3.0  # 24 -> 27
    assert _sum_invariant(row) == 0.0


def test_wait_reclassification_splits_queue_and_conflict():
    tracker = CausalTracker()
    tracker.submit(0, 7, 0.0)
    tracker.set_state(0, 4.0, "conflict_wait")   # blocked behind a conflict
    tracker.set_state(0, 9.0, "queue_wait")      # conflict cleared, tokens dry
    tracker.mark(0, 10.0, "dispatched", "orchestrator", state="prepare")
    tracker.finish(0, 10.0, "completed")
    [row] = tracker.attribution_rows()
    assert row["segments"]["queue_wait"] == 5.0      # 0-4 + 9-10
    assert row["segments"]["conflict_wait"] == 5.0   # 4-9
    assert _sum_invariant(row) == 0.0


def test_set_state_noop_on_same_state_records_no_edge():
    tracker = CausalTracker()
    tracker.submit(0, 7, 0.0)
    tracker.set_state(0, 4.0, "queue_wait")
    [dag] = tracker.dags()
    assert len(dag["events"]) == 1          # only "submitted"


def test_retry_closes_gap_as_retry_backoff():
    tracker = CausalTracker()
    tracker.submit(0, 7, 0.0)
    tracker.bind_flow(7, 0)
    tracker.pushed(0, 5.0, "controller", version=1)
    tracker.retry(7, 85.0, "retransmit", "controller", attempt=2)
    tracker.flow_event(7, 90.0, "update_done", "controller")
    tracker.finish(0, 90.0, "completed")
    [row] = tracker.attribution_rows()
    assert row["segments"]["queue_wait"] == 5.0      # submit -> push
    assert row["segments"]["retry_backoff"] == 80.0  # push -> retransmit
    assert row["segments"]["control_rtt"] == 5.0     # resend travel + ufm
    assert _sum_invariant(row) == 0.0


def test_pre_push_flow_events_are_ignored():
    tracker = CausalTracker()
    tracker.submit(0, 7, 0.0)
    tracker.bind_flow(7, 0)
    tracker.flow_event(7, 2.0, "rule_change", "s1")   # recovery write, not ours
    tracker.retry(7, 3.0, "retransmit", "controller")
    [dag] = tracker.dags()
    assert [e["kind"] for e in dag["events"]] == ["submitted"]


def test_unbound_flow_events_are_ignored():
    tracker = CausalTracker()
    tracker.submit(0, 7, 0.0)
    tracker.flow_event(99, 2.0, "rule_change", "s1")
    tracker.retry(99, 3.0, "retransmit", "controller")
    [dag] = tracker.dags()
    assert len(dag["events"]) == 1


def test_abort_tail_lands_in_recovery():
    tracker = CausalTracker()
    tracker.submit(0, 7, 0.0)
    tracker.bind_flow(7, 0)
    tracker.pushed(0, 5.0, "controller", version=1)
    tracker.flow_event(7, 8.0, "update_aborted", "controller")
    tracker.finish(0, 12.0, "aborted")
    [row] = tracker.attribution_rows()
    assert row["outcome"] == "aborted"
    assert row["segments"]["queue_wait"] == 5.0      # submit -> push
    assert row["segments"]["control_rtt"] == 3.0     # push -> abort in flight
    assert row["segments"]["recovery"] == 4.0        # abort -> done
    assert _sum_invariant(row) == 0.0


def test_events_after_finish_are_dropped():
    tracker = happy_path_tracker()
    tracker.mark(0, 99.0, "late", "orchestrator")
    tracker.set_state(0, 99.0, "recovery")
    tracker.finish(0, 99.0, "aborted")
    [row] = tracker.attribution_rows()
    assert row["outcome"] == "completed"
    assert row["e2e_ms"] == 20.0


def test_sum_invariant_under_awkward_floats():
    """Fraction accumulation keeps the telescoping exact even for
    timestamps with no short binary representation."""
    tracker = CausalTracker()
    t = 0.1
    tracker.submit(0, 7, t)
    for i in range(500):
        t += 0.1 * (i % 7 + 1) / 3.0
        tracker.mark(0, t, "step", "n", state=SEGMENTS[i % len(SEGMENTS)])
    tracker.finish(0, t + 1e-7, "completed")
    [row] = tracker.attribution_rows()
    assert _sum_invariant(row) <= 1e-9


def test_critical_path_covers_end_to_end():
    [dag] = happy_path_tracker().dags()
    report = critical_path(dag)
    assert report["steps"][0]["from"] == "submitted"
    assert report["steps"][-1]["to"] == "done"
    # Steps chain with no gaps, so their durations telescope to e2e.
    assert math.isclose(
        sum(s["dur_ms"] for s in report["steps"]), dag["e2e_ms"]
    )
    for a, b in zip(report["steps"], report["steps"][1:]):
        assert a["t1"] == b["t0"]
    assert report["segment_totals"]["dataplane_verify"] == 3.0


def test_nearest_rank():
    values = [float(v) for v in range(1, 101)]
    assert nearest_rank(values, 50) == 50.0
    assert nearest_rank(values, 90) == 90.0
    assert nearest_rank(values, 99) == 99.0
    assert nearest_rank([5.0], 99) == 5.0
    assert nearest_rank([], 50) is None


def test_summarize_attribution():
    rows = happy_path_tracker().attribution_rows()
    summary = summarize_attribution(rows)
    assert summary["requests"] == 1
    assert summary["e2e_ms"]["p50"] == 20.0
    assert summary["segments"]["prepare"]["total"] == 5.0
    assert set(summary["segments"]) == set(SEGMENTS)
    assert summary["residual_max_ms"] <= 1e-9


def test_summarize_attribution_empty():
    summary = summarize_attribution([])
    assert summary["requests"] == 0
    assert summary["e2e_ms"]["p50"] is None
    assert summary["residual_max_ms"] == 0.0


def test_perfetto_trace_structure():
    dags = happy_path_tracker().dags()
    doc = perfetto_trace(dags)
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    slices = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    meta = [e for e in events if e["ph"] == "M"]
    # Zero-duration edges are skipped; all others become slices.
    positive = [e for e in dags[0]["edges"] if e["dur_ms"] > 0.0]
    assert len(slices) == len(positive)
    assert len(instants) == len(dags[0]["events"])
    assert any(m["name"] == "thread_name" for m in meta)
    # Simulated ms -> trace microseconds.
    assert slices[0]["ts"] == dags[0]["events"][0]["t"] * 1000.0
    assert json.dumps(doc)  # strictly JSON-serializable


def test_causal_jsonl_round_trip():
    dags = happy_path_tracker().dags()
    buffer = io.StringIO()
    assert write_causal_jsonl(dags, buffer) == 1
    buffer.seek(0)
    assert list(iter_causal_jsonl(buffer)) == dags


def test_causal_jsonl_gzip_round_trip(tmp_path):
    dags = happy_path_tracker().dags()
    path = str(tmp_path / "trace.causal.jsonl.gz")
    assert write_causal_jsonl(dags, path) == 1
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        assert json.loads(handle.readline())["request_id"] == 0
    assert list(iter_causal_jsonl(path)) == dags
