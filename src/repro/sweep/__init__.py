"""``repro.sweep`` — parallel experiment-fleet orchestration.

Expands a declarative JSON sweep spec (scenario x topology x seed x
system, or a chaos-campaign fleet) into a deterministic shard list,
executes the shards across a process pool with per-worker isolation
and crash containment, and merges the per-shard results into one
consolidated, resumable ``BENCH_sweep_<name>.json`` manifest whose
aggregate signature is independent of worker count.

See ``docs/SWEEP.md`` for the spec format and the determinism /
resume contract, and ``examples/sweep_smoke.json`` for a starter spec.
"""

from repro.sweep.executor import (
    DEFAULT_CACHE_DIR,
    SweepProgress,
    SweepRun,
    cache_root,
    load_cached_shard,
    read_status,
    run_sweep,
)
from repro.sweep.merge import (
    aggregate_chaos,
    aggregate_experiment,
    build_sweep_results,
    merge_metrics,
    merge_profiles,
    results_signature,
    validate_sweep_results,
    write_sweep_manifest,
)
from repro.sweep.spec import (
    Shard,
    SweepSpec,
    SweepSpecError,
    derive_shard_seed,
    load_sweep_spec,
    load_sweep_spec_file,
)
from repro.sweep.worker import run_shard_payload

__all__ = [
    "DEFAULT_CACHE_DIR",
    "Shard",
    "SweepProgress",
    "SweepRun",
    "SweepSpec",
    "SweepSpecError",
    "aggregate_chaos",
    "aggregate_experiment",
    "build_sweep_results",
    "cache_root",
    "derive_shard_seed",
    "load_cached_shard",
    "load_sweep_spec",
    "load_sweep_spec_file",
    "merge_metrics",
    "merge_profiles",
    "read_status",
    "results_signature",
    "run_shard_payload",
    "run_sweep",
    "validate_sweep_results",
    "write_sweep_manifest",
]
