"""Runners for the paper's §4 demonstrations (Fig. 2 and Fig. 4) and
the Fig. 7 evaluation matrix.

* :func:`run_fig2` — the out-of-order-update scenario: configuration
  (c) is deployed while the control messages of (b) are still in
  flight; probe traffic at 125 pps / TTL 64 exposes the loop
  {v1, v2, v3} under ez-Segway and its absence under P4Update.
* :func:`run_fig4` — the fast-forward scenario: a simple update U3 is
  issued while the complex U2 is still ongoing; P4Update jumps ahead,
  ez-Segway serializes.
* :data:`FIG7_SCENARIOS` / :func:`fig7_sweep_spec` /
  :func:`fig7_paired_times` — the §9 scenario x topology matrix,
  expressed as a :mod:`repro.sweep` fleet so the grid's cells run in
  parallel worker processes (``p4update-repro fig7 --workers N``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from repro.consistency import LiveChecker
from repro.core.messages import UIM, UpdateType
from repro.harness.baselines_build import build_ezsegway_network
from repro.harness.build import build_p4update_network
from repro.harness.experiment import path_establishment_time
from repro.harness.probes import (
    ProbeSource,
    deliveries,
    duplicate_receives,
    receives_at,
    ttl_losses,
)
from repro.harness.scenarios import FastForwardScenario, InconsistentUpdateScenario
from repro.params import SimParams
from repro.sim.faults import CompositeFaultModel, FaultAction, ScriptedFault
from repro.topo import fig2_topology, six_node_topology
from repro.traffic.flows import Flow


@dataclass
class Fig2Result:
    """Per-system outcome of the §4.1 experiment."""

    system: str
    probes_sent: int
    received_at_v1: list
    duplicates_at_v1: dict          # seq -> times seen (loops!)
    delivered_at_v4: list
    ttl_losses: int
    loop_window_ms: float           # duration packets looped (0 = none)
    consistency_violations: int


def run_fig2(
    system: str,
    scenario: Optional[InconsistentUpdateScenario] = None,
    params: Optional[SimParams] = None,
) -> Fig2Result:
    """Run the inconsistent-update demonstration for one system."""
    scenario = scenario if scenario is not None else InconsistentUpdateScenario()
    params = params if params is not None else SimParams()
    if system in ("p4update", "p4update-sl"):
        return _fig2_p4update(scenario, params)
    if system == "ezsegway":
        return _fig2_ezsegway(scenario, params)
    raise ValueError(f"fig2 supports p4update and ezsegway, not {system!r}")


def _fig2_flow(scenario: InconsistentUpdateScenario) -> Flow:
    return Flow.between(
        scenario.config_a[0], scenario.config_a[-1], size=1.0,
        old_path=list(scenario.config_a),
    )


def _fig2_probe_phase(deployment, flow, scenario, start_ms: float, stop_ms: float):
    source = ProbeSource(
        deployment, flow.flow_id, flow.src,
        rate_pps=scenario.probe_rate_pps, ttl=scenario.probe_ttl,
    )
    source.start(at=start_ms, stop_at=stop_ms)
    return source


def _fig2_p4update(scenario: InconsistentUpdateScenario, params: SimParams) -> Fig2Result:
    topo = fig2_topology()
    topo.set_controller(scenario.config_a[0])
    dep = build_p4update_network(topo, params=params)
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = _fig2_flow(scenario)
    dep.install_flow(flow)

    # Delay every version-2 UIM (configuration (b)): the controller
    # sent it, the network holds it, the controller is oblivious.
    dep.network.control_fault_model = CompositeFaultModel([
        ScriptedFault(
            matches=lambda m: isinstance(m, UIM) and m.version == 2,
            action=FaultAction.DELAY,
            extra_delay_ms=scenario.b_delay_ms,
        )
    ])

    source = _fig2_probe_phase(
        dep, flow, scenario, start_ms=1.0,
        stop_ms=scenario.b_delay_ms + 700.0,
    )
    # (b) then (c), back to back: (b)'s messages are in-flight-delayed.
    dep.controller.update_flow(flow.flow_id, list(scenario.config_b), UpdateType.SINGLE)
    dep.controller.update_flow(flow.flow_id, list(scenario.config_c), UpdateType.SINGLE)
    dep.run(until=scenario.b_delay_ms + 1500.0)

    return _fig2_collect("p4update", dep.network.trace, flow, source, checker)


def _fig2_ezsegway(scenario: InconsistentUpdateScenario, params: SimParams) -> Fig2Result:
    topo = fig2_topology()
    topo.set_controller(scenario.config_a[0])
    dep = build_ezsegway_network(topo, params=params)
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = _fig2_flow(scenario)
    dep.install_flow(flow)

    from repro.baselines.ezsegway import RoleMessage

    dep.network.control_fault_model = CompositeFaultModel([
        ScriptedFault(
            matches=lambda m: isinstance(m, RoleMessage) and m.update_id == 1,
            action=FaultAction.DELAY,
            extra_delay_ms=scenario.b_delay_ms,
        )
    ])

    source = _fig2_probe_phase(
        dep, flow, scenario, start_ms=1.0,
        stop_ms=scenario.b_delay_ms + 700.0,
    )
    # (b) pushed first (update 1, delayed in flight); the controller —
    # believing it done (inconsistent view, [69]) — pushes (c) against
    # the believed state.  We model the oblivious controller by
    # clearing the active-update serialisation between the pushes.
    dep.controller.update_flow(flow.flow_id, list(scenario.config_b))
    dep.controller.active_updates.pop(flow.flow_id, None)
    dep.controller.update_flow(flow.flow_id, list(scenario.config_c))
    dep.run(until=scenario.b_delay_ms + 1500.0)

    return _fig2_collect("ezsegway", dep.network.trace, flow, source, checker)


def _fig2_collect(system, trace, flow, source, checker) -> Fig2Result:
    at_v1 = receives_at(trace, "v1", flow.flow_id)
    dups = duplicate_receives(at_v1)
    losses = ttl_losses(trace, flow.flow_id)
    dup_times = [o.time for o in at_v1 if o.seq in dups]
    loop_window = (max(dup_times) - min(dup_times)) if dup_times else 0.0
    return Fig2Result(
        system=system,
        probes_sent=source.sent,
        received_at_v1=at_v1,
        duplicates_at_v1=dups,
        delivered_at_v4=deliveries(trace, flow.flow_id),
        ttl_losses=len(losses),
        loop_window_ms=loop_window,
        consistency_violations=len(checker.violations),
    )


# -- Fig. 7: the scenario x topology matrix as a sweep ---------------------------

#: Cell letter -> (scenario kind, sweep topology name), Fig. 7 (a)-(f).
FIG7_SCENARIOS = {
    "a": ("single", "fig1"),
    "b": ("multi", "fattree4"),
    "c": ("single", "b4"),
    "d": ("multi", "b4"),
    "e": ("single", "internet2"),
    "f": ("multi", "internet2"),
}

FIG7_SYSTEMS = ("p4update-sl", "p4update-dl", "ezsegway", "central")


def fig7_sweep_spec(scenario: str, runs: int = 15, seed: int = 0):
    """One Fig. 7 cell as a sweep spec: ``runs`` paired seeds across
    the four systems.  Single-flow cells use the paper's Dionysus-style
    exp(100) ms install delays (§9.1), exactly as the serial runner
    did."""
    from repro.sweep.spec import load_sweep_spec

    kind, topo_name = FIG7_SCENARIOS[scenario]
    return load_sweep_spec({
        "name": f"fig7{scenario}",
        "kind": "experiment",
        "seed": seed,
        "systems": list(FIG7_SYSTEMS),
        "topologies": [topo_name],
        "scenarios": [kind],
        "seeds": runs,
        "dionysus_install_delays": kind == "single",
        "description": f"Fig. 7({scenario}): {kind} flow(s) on {topo_name}",
    })


def fig7_paired_times(shard_docs: list) -> tuple[dict, int]:
    """Paired per-system update times from a fig7 sweep's shards.

    Mirrors :func:`repro.harness.experiment.compare_systems`: a seed
    contributes only when every system completed on it; the skipped
    count is returned alongside.  Shards carry their axis key (the
    merge layer attaches it), so this works on a manifest's ``shards``
    list too."""
    by_seed: dict[int, dict[str, dict]] = {}
    for doc in shard_docs:
        key = doc.get("key") or {}
        by_seed.setdefault(int(key["seed_index"]), {})[key["system"]] = (
            doc["results"]
        )
    times: dict[str, list] = {system: [] for system in FIG7_SYSTEMS}
    skipped = 0
    for seed_index in sorted(by_seed):
        cell = by_seed[seed_index]
        if any(
            not cell.get(system, {}).get("completed") for system in FIG7_SYSTEMS
        ):
            skipped += 1
            continue
        for system in FIG7_SYSTEMS:
            times[system].append(cell[system]["total_update_time_ms"])
    return times, skipped


# -- Fig. 4 ----------------------------------------------------------------------


@dataclass
class Fig4Result:
    """Completion time of U3, measured from its issue instant."""

    system: str
    u3_completion_ms: float
    completed: bool
    consistency_violations: int


def run_fig4(
    system: str,
    scenario: Optional[FastForwardScenario] = None,
    params: Optional[SimParams] = None,
) -> Fig4Result:
    """Run the §4.2 two-consecutive-update scenario for one system."""
    scenario = scenario if scenario is not None else FastForwardScenario()
    params = params if params is not None else SimParams()
    topo = six_node_topology()
    topo.set_controller(scenario.initial[0])

    flow = Flow.between(
        scenario.initial[0], scenario.initial[-1], size=1.0,
        old_path=list(scenario.initial),
    )

    if system in ("p4update", "p4update-sl", "p4update-dl"):
        dep = build_p4update_network(topo, params=params)
        checker = LiveChecker(dep.forwarding_state, dep.network.trace)
        dep.install_flow(flow)
        dep.controller.update_flow(flow.flow_id, list(scenario.u2))
        dep.network.engine.schedule(
            scenario.u3_delay_ms,
            lambda: dep.controller.update_flow(flow.flow_id, list(scenario.u3)),
        )
        dep.run()
        established = path_establishment_time(
            dep.network.trace, flow.flow_id, list(scenario.u3), list(scenario.initial)
        )
        completed = established != float("inf")
        return Fig4Result(
            system=system,
            u3_completion_ms=established - scenario.u3_delay_ms,
            completed=completed,
            consistency_violations=len(checker.violations),
        )

    if system == "ezsegway":
        dep = build_ezsegway_network(topo, params=params)
        checker = LiveChecker(dep.forwarding_state, dep.network.trace)
        dep.install_flow(flow)
        dep.controller.update_flow(flow.flow_id, list(scenario.u2))
        dep.network.engine.schedule(
            scenario.u3_delay_ms,
            lambda: dep.controller.update_flow(flow.flow_id, list(scenario.u3)),
        )
        dep.run()
        established = path_establishment_time(
            dep.network.trace, flow.flow_id, list(scenario.u3), list(scenario.initial)
        )
        completed = established != float("inf")
        return Fig4Result(
            system="ezsegway",
            u3_completion_ms=established - scenario.u3_delay_ms,
            completed=completed,
            consistency_violations=len(checker.violations),
        )

    raise ValueError(f"fig4 supports p4update and ezsegway, not {system!r}")
