"""The Update Information Base — paper Table 1 as register arrays.

Table 1 lists per-flow registers: ``new_distance``, ``new_version``,
``egress_port_updated`` (the pending configuration from the UIM),
``old_distance``, ``old_version``, ``egress_port`` (the current one),
``flow_size``, ``flow_priority``, ``t`` (last update type) and
``counter``.

Algorithm 2 distinguishes *three* tiers of state — the pending UIM
(``V_n(UIM)``, ``D_n(UIM)``), the applied configuration (``V_n(v)``,
``D_n(v)``) and the previous/inherited one (``V_o(v)``, ``D_o(v)``) —
so the UIB keeps the applied tier explicit (``cur_*``) in addition to
Table 1's pending (``pend_*`` = Table 1 ``new_*``) and old tiers.
Field-for-field correspondence is asserted by
``tests/core/test_registers.py``.

Flow indexing: the artifact indexes register arrays by a hash of the
flow id.  We allocate dense indices per switch (a perfect-hash
abstraction) so that reproduction runs can never be corrupted by hash
collisions; the hash-indexed mode of :func:`repro.traffic.flows.flow_hash`
remains available for collision experiments.
"""

from __future__ import annotations


from repro.p4.registers import RegisterFile

# Register geometry.
DEFAULT_MAX_FLOWS = 4096
PORT_WIDTH_BITS = 16
VERSION_WIDTH_BITS = 16
DISTANCE_WIDTH_BITS = 16

# Sentinel port values.
LOCAL_DELIVER_PORT = 511        # flow egress: deliver locally
NO_PORT = 0xFFFF                # "no port" (e.g. no child at the ingress)

# Flow sizes are stored scaled to integers in the register mirror.
FLOW_SIZE_SCALE = 1000

# pend_flags bits.
FLAG_FLOW_EGRESS = 1 << 0
FLAG_SEGMENT_EGRESS = 1 << 1
FLAG_INGRESS = 1 << 2
FLAG_GATEWAY = 1 << 3

# Table 1 name -> our register name (documentation + test anchor).
TABLE1_MAPPING = {
    "new_distance": "pend_distance",
    "new_version": "pend_version",
    "egress_port_updated": "pend_egress_port",
    "old_distance": "old_distance",
    "old_version": "old_version",
    "egress_port": "cur_egress_port",
    "flow_size": "flow_size",
    "flow_priority": "flow_priority",
    "t": "last_type",
    "counter": "counter",
}


def define_uib(registers: RegisterFile, max_flows: int = DEFAULT_MAX_FLOWS) -> None:
    """Declare every UIB register array on ``registers``."""
    # Pending tier (Table 1 "new"): the highest UIM's content.
    registers.define("pend_version", max_flows, VERSION_WIDTH_BITS)
    registers.define("pend_distance", max_flows, DISTANCE_WIDTH_BITS)
    registers.define("pend_egress_port", max_flows, PORT_WIDTH_BITS, initial=NO_PORT)
    registers.define("pend_type", max_flows, 2)
    registers.define("pend_child_port", max_flows, PORT_WIDTH_BITS, initial=NO_PORT)
    registers.define("pend_flags", max_flows, 4)
    registers.define("pend_flow_size", max_flows, 32)
    # Applied tier (Alg. 2's V_n(v) / D_n(v)).
    registers.define("cur_version", max_flows, VERSION_WIDTH_BITS)
    registers.define("cur_distance", max_flows, DISTANCE_WIDTH_BITS)
    registers.define("cur_egress_port", max_flows, PORT_WIDTH_BITS, initial=NO_PORT)
    # Old/inherited tier (Alg. 2's V_o(v) / D_o(v), §3.2 segment ids).
    registers.define("old_version", max_flows, VERSION_WIDTH_BITS)
    registers.define("old_distance", max_flows, DISTANCE_WIDTH_BITS)
    # Bookkeeping (Table 1).
    registers.define("flow_size", max_flows, 32)
    registers.define("flow_priority", max_flows, 1)
    registers.define("last_type", max_flows, 2)
    registers.define("counter", max_flows, 16)
    # §11 two-phase-commit integration: per-tag forwarding state and
    # the tag the ingress currently stamps.  Mirrors Reitblatt et
    # al.'s observation that 2PC doubles the required rule space.
    registers.define("port_tag0", max_flows, PORT_WIDTH_BITS, initial=NO_PORT)
    registers.define("port_tag1", max_flows, PORT_WIDTH_BITS, initial=NO_PORT)
    registers.define("ingress_tag", max_flows, 1)
    registers.define("two_phase", max_flows, 1)


class FlowIndexAllocator:
    """Dense per-switch flow-id -> register-index mapping."""

    def __init__(self, max_flows: int = DEFAULT_MAX_FLOWS) -> None:
        self.max_flows = max_flows
        self._index: dict[int, int] = {}

    def index_of(self, flow_id: int) -> int:
        idx = self._index.get(flow_id)
        if idx is None:
            idx = len(self._index)
            if idx >= self.max_flows:
                raise RuntimeError(
                    f"register arrays full: {self.max_flows} flows supported"
                )
            self._index[flow_id] = idx
        return idx

    def known(self, flow_id: int) -> bool:
        return flow_id in self._index

    def __len__(self) -> int:
        return len(self._index)
