"""repro.fuzz — coverage-guided scenario fuzzing with shrinking.

Seeded generators (:mod:`repro.fuzz.gen`) produce random topologies,
update plans, serve specs and fault campaigns; oracles
(:mod:`repro.fuzz.oracles`) classify each case as pass / violation /
divergence / crash against the static verifier, short simulations and
cross-system checks; coverage signals (:mod:`repro.fuzz.coverage`)
drive corpus retention; failing cases are delta-debugged to minimal
repros (:mod:`repro.fuzz.shrink`) and committed as self-contained JSON
documents (:mod:`repro.fuzz.corpus`) replayed forever by pytest.
Campaigns (:mod:`repro.fuzz.campaign`) shard through the sweep fleet.
"""

from repro.fuzz.campaign import (
    CrashRecord,
    FuzzCampaignResult,
    FuzzSpec,
    FuzzSpecError,
    load_fuzz_spec,
    load_fuzz_spec_file,
    run_fuzz_campaign,
    run_fuzz_shard,
    split_budget,
    write_fuzz_manifest,
)
from repro.fuzz.corpus import (
    corpus_doc,
    corpus_files,
    known_keys,
    load_corpus_file,
    replay_doc,
    replay_file,
    write_corpus_case,
)
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.gen import FUZZ_KINDS, FuzzCase, generate_case, mutate_case
from repro.fuzz.oracles import (
    OUTCOMES,
    OracleVerdict,
    classify,
    evaluate_case,
    failure_key,
)
from repro.fuzz.shrink import shrink_case, shrink_measure

__all__ = [
    "CrashRecord",
    "CoverageMap",
    "FUZZ_KINDS",
    "FuzzCampaignResult",
    "FuzzCase",
    "FuzzSpec",
    "FuzzSpecError",
    "OUTCOMES",
    "OracleVerdict",
    "classify",
    "corpus_doc",
    "corpus_files",
    "evaluate_case",
    "failure_key",
    "generate_case",
    "known_keys",
    "load_corpus_file",
    "load_fuzz_spec",
    "load_fuzz_spec_file",
    "mutate_case",
    "replay_doc",
    "replay_file",
    "run_fuzz_campaign",
    "run_fuzz_shard",
    "shrink_case",
    "shrink_measure",
    "split_budget",
    "write_corpus_case",
    "write_fuzz_manifest",
]
