"""Executes :class:`~repro.chaos.campaign.FaultCampaign` descriptions.

A campaign run is fully deterministic in its seed: the deployment, the
workload, every fault model and every topology event derive their
randomness from ``campaign.seed``, and :func:`trace_signature` hashes
the complete event trace so two runs can be compared bit-for-bit.

The runner asserts the paper's §5 invariants throughout via
:class:`~repro.consistency.checker.LiveChecker` (failure-aware: a
physically broken flow is disarmed, see the checker's docstring) and
reports completions, parked flows, fault/retry/recovery activity and
the trace signature in a :class:`CampaignResult`, optionally emitting
a ``BENCH_``-style manifest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.chaos.campaign import (
    CORRUPTORS,
    FaultCampaign,
    MessageFaultSpec,
    TopoEvent,
    scope_selector,
)
from repro.consistency.checker import LiveChecker
from repro.core.messages import UpdateType
from repro.harness.build import P4UpdateDeployment, build_p4update_network
from repro.harness.scenarios import (
    UpdateScenario,
    multi_flow_scenario,
    single_flow_scenario,
)
from repro.obs.context import NULL_OBS, ObsContext
from repro.obs.manifest import write_manifest
from repro.params import SimParams
from repro.sim.reset import reset_global_state
from repro.sim.faults import CompositeFaultModel, FaultModel, FaultPolicy
from repro.sim.trace import Trace
from repro.topo.attmpls import attmpls_topology
from repro.topo.b4 import b4_topology
from repro.topo.chinanet import chinanet_topology
from repro.topo.fattree import fattree_topology
from repro.topo.graph import Topology
from repro.topo.internet2 import internet2_topology
from repro.topo.synthetic import fig1_topology, fig2_topology

TOPOLOGIES: dict[str, Callable[[], Topology]] = {
    "fig1": fig1_topology,
    "fig2": fig2_topology,
    "b4": b4_topology,
    "internet2": internet2_topology,
    "chinanet": chinanet_topology,
    "attmpls": attmpls_topology,
    "fattree4": lambda: fattree_topology(4),
}

UPDATE_TYPES = {
    "auto": None,
    "single": UpdateType.SINGLE,
    "dual": UpdateType.DUAL,
}


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    campaign: str
    seed: int
    flows_total: int
    flows_completed: int
    flows_parked: int
    parked_reports: list[dict]
    violations: list[dict]
    trace_signature: str
    sim_time_ms: float
    events_processed: int
    fault_counts: dict[str, dict[str, int]] = field(default_factory=dict)
    retransmissions: int = 0
    retry_exhausted: int = 0
    reroutes: int = 0
    topo_events: int = 0

    @property
    def consistent(self) -> bool:
        return not self.violations

    @property
    def completed(self) -> bool:
        """Every flow either completed or is parked with a report."""
        return self.flows_completed + self.flows_parked >= self.flows_total

    def to_results(self) -> dict:
        return {
            "flows_total": self.flows_total,
            "flows_completed": self.flows_completed,
            "flows_parked": self.flows_parked,
            "parked_reports": self.parked_reports,
            "violations": self.violations,
            "consistent": self.consistent,
            "completed": self.completed,
            "trace_signature": self.trace_signature,
            "sim_time_ms": self.sim_time_ms,
            "events_processed": self.events_processed,
            "fault_counts": self.fault_counts,
            "retransmissions": self.retransmissions,
            "retry_exhausted": self.retry_exhausted,
            "reroutes": self.reroutes,
            "topo_events": self.topo_events,
        }

    def summary(self) -> str:
        status = "CONSISTENT" if self.consistent else "VIOLATIONS"
        return (
            f"{self.campaign}: {self.flows_completed}/{self.flows_total} flows "
            f"completed, {self.flows_parked} parked, "
            f"{len(self.violations)} violations [{status}], "
            f"signature {self.trace_signature[:16]}"
        )


def trace_signature(trace: Trace) -> str:
    """SHA-256 over the formatted event trace (determinism probe)."""
    digest = hashlib.sha256()
    for event in trace:
        line = (
            f"{event.time!r}|{event.kind}|{event.node}|"
            f"{sorted(event.detail.items())!r}\n"
        )
        digest.update(line.encode("utf-8"))
    return digest.hexdigest()


def build_fault_policy(
    specs: list[MessageFaultSpec], seed: int, plane_index: int
) -> Optional[FaultPolicy]:
    """Seeded fault models for one plane; composed when several."""
    models: list[FaultPolicy] = []
    for i, spec in enumerate(specs):
        rng = np.random.default_rng([seed, 0xFA017, plane_index, i])
        models.append(
            FaultModel(
                rng=rng,
                drop_prob=spec.drop_prob,
                delay_prob=spec.delay_prob,
                delay_ms=spec.delay_ms,
                duplicate_prob=spec.duplicate_prob,
                corrupt_prob=spec.corrupt_prob,
                corruptor=CORRUPTORS.get(spec.corruptor),
                selector=scope_selector(spec.scope),
            )
        )
    if not models:
        return None
    if len(models) == 1:
        return models[0]
    return CompositeFaultModel(models)


def campaign_params(campaign: FaultCampaign) -> SimParams:
    return SimParams(
        seed=campaign.seed,
        reliable_control=campaign.reliable_control,
        controller_update_timeout_ms=campaign.controller_update_timeout_ms,
        crash_preserves_state=campaign.crash_preserves_state,
        max_sim_time_ms=campaign.horizon_ms,
    )


def build_campaign_deployment(
    campaign: FaultCampaign, obs: Optional[ObsContext] = None
) -> tuple[P4UpdateDeployment, UpdateScenario, LiveChecker]:
    """Construct the deployment, workload and checker for a campaign.

    Everything is wired but nothing is scheduled yet; use
    :func:`run_campaign` for a complete execution."""
    obs = obs if obs is not None else NULL_OBS
    reset_global_state()
    factory = TOPOLOGIES.get(campaign.topology)
    if factory is None:
        raise ValueError(
            f"unknown topology {campaign.topology!r}; known: {sorted(TOPOLOGIES)}"
        )
    topo = factory()
    params = campaign_params(campaign)
    deployment = build_p4update_network(
        topo, params=params, rng=np.random.default_rng(campaign.seed), obs=obs
    )
    scenario_rng = np.random.default_rng([campaign.seed, 0x5CE2])
    if campaign.scenario == "single":
        scenario = single_flow_scenario(topo, rng=scenario_rng)
    else:
        scenario = multi_flow_scenario(topo, rng=scenario_rng)
    for flow in scenario.flows:
        deployment.install_flow(flow)
    if campaign.unm_timeout_ms > 0:
        for switch in deployment.switches.values():
            switch.unm_timeout_ms = campaign.unm_timeout_ms
    checker = LiveChecker(deployment.forwarding_state, deployment.network.trace)
    return deployment, scenario, checker


def _apply_topo_event(deployment: P4UpdateDeployment, event: TopoEvent) -> None:
    network = deployment.network
    if event.kind == "link_down":
        network.set_link_state(event.node_a, event.node_b, up=False)
    elif event.kind == "link_up":
        network.set_link_state(event.node_a, event.node_b, up=True)
    elif event.kind == "switch_crash":
        preserve = event.preserve_state
        if preserve is None:
            preserve = deployment.params.crash_preserves_state
        network.crash_switch(event.node_a, preserve_state=preserve)
    elif event.kind == "switch_restart":
        network.restart_switch(event.node_a)
    elif event.kind == "controller_down":
        network.set_controller_outage(True)
    elif event.kind == "controller_up":
        network.set_controller_outage(False)


def _trigger_updates(
    deployment: P4UpdateDeployment,
    scenario: UpdateScenario,
    update_type: Optional[UpdateType],
) -> None:
    for flow in scenario.flows:
        if flow.new_path is None:
            continue
        record = deployment.controller.flow_db.get(flow.flow_id)
        if record is not None and record.parked:
            continue  # already parked by an earlier failure
        deployment.controller.update_flow(
            flow.flow_id, list(flow.new_path), update_type
        )


def run_campaign(
    campaign: FaultCampaign,
    obs: Optional[ObsContext] = None,
    emit_manifest: bool = False,
    out_dir: Optional[str] = None,
) -> CampaignResult:
    """Execute one seeded campaign run end-to-end."""
    obs = obs if obs is not None else NULL_OBS
    deployment, scenario, checker = build_campaign_deployment(campaign, obs=obs)
    network = deployment.network
    engine = network.engine

    data_specs = [s for s in campaign.message_faults if s.plane == "data"]
    control_specs = [s for s in campaign.message_faults if s.plane == "control"]
    data_model = build_fault_policy(data_specs, campaign.seed, 0)
    control_model = build_fault_policy(control_specs, campaign.seed, 1)
    if data_model is not None:
        network.fault_model = data_model
    if control_model is not None:
        network.control_fault_model = control_model

    if campaign.events:
        # Arm in-flight tracking before any message is sent so link
        # failures can lose messages already on the wire.
        network.enable_chaos()
        for event in campaign.events:
            engine.schedule_at(event.time_ms, _apply_topo_event, deployment, event)

    engine.schedule_at(
        campaign.update_at_ms,
        _trigger_updates,
        deployment,
        scenario,
        UPDATE_TYPES[campaign.update_type],
    )

    deployment.run(until=campaign.horizon_ms)

    controller = deployment.controller
    flows_completed = sum(
        1
        for flow in scenario.flows
        if controller.update_complete(flow.flow_id)
        and not controller.flow_db[flow.flow_id].parked
    )
    flows_parked = sum(
        1 for flow in scenario.flows if controller.flow_db[flow.flow_id].parked
    )
    fault_counts: dict[str, dict[str, int]] = {}
    for plane, model in (("data", data_model), ("control", control_model)):
        if model is None:
            continue
        fault_counts[plane] = _fault_counts(model)

    result = CampaignResult(
        campaign=campaign.name,
        seed=campaign.seed,
        flows_total=len(scenario.flows),
        flows_completed=flows_completed,
        flows_parked=flows_parked,
        parked_reports=[report.to_dict() for report in controller.parked],
        violations=[
            {
                "time": v.time,
                "kind": v.kind,
                "flow_id": v.flow_id,
                "detail": v.detail,
            }
            for v in checker.violations
        ],
        trace_signature=trace_signature(network.trace),
        sim_time_ms=engine.now,
        events_processed=engine.processed_events,
        fault_counts=fault_counts,
        retransmissions=(
            controller.reliable.retransmissions
            if controller.reliable is not None
            else 0
        ),
        retry_exhausted=(
            controller.reliable.exhausted if controller.reliable is not None else 0
        ),
        reroutes=int(
            obs.metrics.value("flow_reroutes", node=controller.name) or 0
        )
        if obs.enabled
        else len(network.trace.of_kind("update_aborted")),
        topo_events=len(campaign.events),
    )

    if emit_manifest:
        write_manifest(
            f"chaos_{campaign.name}",
            params=campaign.to_dict(),
            results=result.to_results(),
            seed=campaign.seed,
            obs=obs if obs.enabled else None,
            out_dir=out_dir,
        )
    return result


def _fault_counts(model: FaultPolicy) -> dict[str, int]:
    if isinstance(model, CompositeFaultModel):
        totals = {"dropped": 0, "corrupted": 0, "duplicated": 0, "delayed": 0}
        for member in model.faults:
            for key, value in _fault_counts(member).items():
                totals[key] += value
        return totals
    return {
        "dropped": int(getattr(model, "dropped", 0)),
        "corrupted": int(getattr(model, "corrupted", 0)),
        "duplicated": int(getattr(model, "duplicated", 0)),
        "delayed": int(getattr(model, "delayed", 0)),
    }
