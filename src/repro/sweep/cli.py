"""The ``sweep`` CLI subcommand: plan / run / merge / status.

Wired into :mod:`repro.harness.cli`; kept here so the harness stays a
thin argument-parsing layer.

* ``sweep plan <spec.json>`` — expand and print the shard list
  without running anything (what *would* the fleet do?);
* ``sweep run <spec.json>`` — execute the fleet (``--workers N``,
  ``--resume``, ``--obs``, ``--profile``), write the consolidated
  ``BENCH_sweep_<name>.json`` manifest and print the deterministic
  aggregate signature; exits 1 when any shard exhausted its retries;
* ``sweep merge <spec.json>`` — rebuild the consolidated manifest
  purely from the on-disk shard cache (no execution);
* ``sweep status <spec.json>`` — print the live fleet heartbeat
  written by a (possibly still running) ``sweep run``.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sweep.spec import SweepSpec


def cmd_sweep(args: argparse.Namespace) -> int:
    handler = {
        "plan": _cmd_plan,
        "run": _cmd_run,
        "merge": _cmd_merge,
        "status": _cmd_status,
    }[args.sweep_command]
    return handler(args)


def _load(path: str) -> Optional["SweepSpec"]:
    from repro.sweep.spec import SweepSpecError, load_sweep_spec_file

    try:
        return load_sweep_spec_file(path)
    except (OSError, SweepSpecError) as exc:
        print(f"error: cannot load sweep spec {path!r}: {exc}", file=sys.stderr)
        return None


def _cmd_plan(args: argparse.Namespace) -> int:
    spec = _load(args.spec)
    if spec is None:
        return 1
    shards = spec.expand()
    print(f"sweep {spec.name!r} ({spec.kind}): {len(shards)} shard(s), "
          f"spec hash {spec.spec_hash()[:16]}")
    if spec.description:
        print(f"# {spec.description}")
    for shard in shards:
        print(f"  {shard.describe()}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.obs import make_obs
    from repro.sweep.executor import run_sweep
    from repro.sweep.merge import format_profile, write_sweep_manifest

    spec = _load(args.spec)
    if spec is None:
        return 1
    shards_total = len(spec.expand())
    print(f"sweep {spec.name!r}: {shards_total} shard(s), "
          f"{args.workers} worker(s)"
          + (", resuming" if args.resume else ""))

    obs = make_obs() if args.obs else None
    heartbeat_every = max(1, shards_total // 10)

    def heartbeat(progress, event: str) -> None:
        if event not in ("shard_completed", "shard_failed"):
            return
        done = progress.completed + progress.failed
        if done % heartbeat_every and progress.remaining:
            return
        eta = progress.eta_s(args.workers)
        eta_text = f", eta {eta:.1f}s" if eta is not None else ""
        print(f"  [{done}/{progress.total}] completed={progress.completed} "
              f"failed={progress.failed} cached={progress.cached}{eta_text}")

    run = run_sweep(
        spec,
        workers=args.workers,
        cache_dir=args.cache_dir,
        resume=args.resume,
        retries=args.retries,
        obs=obs,
        progress=heartbeat,
        profile=args.profile,
    )

    path = write_sweep_manifest(
        spec, run.shard_docs, run.failures, run.shards_total,
        out_dir=args.out_dir, obs=obs,
    )
    print(f"wrote {path}")
    print(f"signature {run.signature()}")
    for failure in run.failures:
        print(
            f"SHARD FAILURE {failure['shard_id']} "
            f"({failure['attempts']} attempt(s)): "
            f"{failure['error_type']}: {failure['message']}"
        )
    if args.profile and run.shard_docs:
        from repro.sweep.merge import merge_profiles

        profiles = [d["profile"] for d in run.shard_docs if d.get("profile")]
        if profiles:
            print(format_profile(merge_profiles(profiles)))
    print("OK" if run.ok else "FAILED")
    return 0 if run.ok else 1


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.sweep.executor import cache_root, load_cached_shard
    from repro.sweep.merge import results_signature, write_sweep_manifest

    spec = _load(args.spec)
    if spec is None:
        return 1
    root = cache_root(spec, args.cache_dir)
    digest = spec.spec_hash()
    docs = []
    missing = []
    for shard in spec.expand():
        doc = load_cached_shard(root, shard, digest)
        if doc is None:
            missing.append(shard.shard_id)
        else:
            docs.append(doc)
    if missing:
        print(
            f"error: {len(missing)} shard(s) not in cache {root!r}: "
            f"{', '.join(missing[:8])}{'...' if len(missing) > 8 else ''}",
            file=sys.stderr,
        )
        return 1
    path = write_sweep_manifest(
        spec, docs, [], len(docs), out_dir=args.out_dir,
    )
    print(f"wrote {path}")
    print(f"signature {results_signature(docs)}")
    return 0


#: Fields a readable status heartbeat must carry before we render it.
_STATUS_REQUIRED = (
    "name", "state", "spec_hash", "shards_total", "completed",
    "failed", "remaining", "cached", "workers",
)


def _cmd_status(args: argparse.Namespace) -> int:
    import os

    from repro.sweep.executor import cache_root, read_status

    spec = _load(args.spec)
    if spec is None:
        return 1
    root = cache_root(spec, args.cache_dir)
    status_path = os.path.join(root, "status.json")
    if not os.path.exists(status_path):
        print(f"error: no status for sweep {spec.name!r} under {root!r} "
              f"(not started, or a different spec version)", file=sys.stderr)
        return 1
    status = read_status(root)
    if status is None:
        # The heartbeat is rewritten while the fleet runs; a read can
        # race a writer and see a truncated/partial file.
        print(f"error: status file {status_path!r} is unreadable or "
              f"mid-write; retry in a moment", file=sys.stderr)
        return 1
    missing = [key for key in _STATUS_REQUIRED if key not in status]
    if missing:
        print(f"error: status file {status_path!r} is incomplete "
              f"(missing {', '.join(missing)}); it may be mid-write or "
              f"from an older run — retry or remove it", file=sys.stderr)
        return 1
    print(f"sweep {status['name']!r} [{status['state']}] "
          f"spec {str(status['spec_hash'])[:16]}")
    print(f"  shards:    {status['completed']}/{status['shards_total']} "
          f"completed, {status['failed']} failed, "
          f"{status['remaining']} remaining ({status['cached']} from cache)")
    print(f"  workers:   {status['workers']}")
    print(f"  elapsed:   {float(status.get('elapsed_s') or 0.0):.1f} s")
    eta = status.get("eta_s")
    print(f"  eta:       {eta:.1f} s" if eta is not None else "  eta:       -")
    return 0


def add_sweep_parser(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "sweep", help="fleet orchestration: parallel experiment sweeps"
    )
    sweep_sub = parser.add_subparsers(dest="sweep_command", required=True)

    pplan = sweep_sub.add_parser("plan", help="expand a spec into its shard list")
    pplan.add_argument("spec", help="path to a sweep spec JSON file")

    prun = sweep_sub.add_parser(
        "run", help="execute a sweep across worker processes"
    )
    prun.add_argument("spec", help="path to a sweep spec JSON file")
    prun.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial in-process execution, default)",
    )
    prun.add_argument(
        "--resume", action="store_true",
        help="reuse completed shards from the on-disk cache",
    )
    prun.add_argument(
        "--retries", type=int, default=2,
        help="retry attempts per shard before recording a ShardFailure",
    )
    prun.add_argument(
        "--cache-dir", default=None,
        help="shard-result cache root (default .sweep_cache)",
    )
    prun.add_argument(
        "--out-dir", default=None,
        help="directory for BENCH_sweep_<name>.json (default: repo root "
             "or $REPRO_BENCH_DIR)",
    )
    prun.add_argument(
        "--obs", action="store_true",
        help="instrument shards with live metrics, merged into the manifest",
    )
    prun.add_argument(
        "--profile", action="store_true",
        help="profile engine callbacks per shard and merge the reports",
    )

    pmerge = sweep_sub.add_parser(
        "merge", help="rebuild the consolidated manifest from cached shards"
    )
    pmerge.add_argument("spec", help="path to a sweep spec JSON file")
    pmerge.add_argument("--cache-dir", default=None)
    pmerge.add_argument("--out-dir", default=None)

    pstatus = sweep_sub.add_parser(
        "status", help="show the live heartbeat of a (running) sweep"
    )
    pstatus.add_argument("spec", help="path to a sweep spec JSON file")
    pstatus.add_argument("--cache-dir", default=None)
