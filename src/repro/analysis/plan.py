"""Static update-plan verification.

A prepared SL-/DL-P4Update update is, statically, a set of per-switch
rule installs plus the notification (ack) edges along which UNMs will
travel: the flow egress originates the first-layer chain, each
segment-egress gateway originates a second-layer chain, and every
other install is enabled only by a notification from its downstream
neighbour.  That structure is a DAG in every correct plan — so the
properties that would deadlock or corrupt an execution can be checked
*before* a single UIM is sent:

* a **cycle** among notify/dependency edges means no node can ever be
  the first to install (deadlock) — reported with the concrete cycle
  path as counterexample;
* an install **unreachable** from any originator will wait for a
  notification that never comes (orphaned rule install);
* a non-originator with **no incoming ack edge** can never be
  triggered (missing ack edge);
* the plan's **version** must strictly exceed the flow's current
  version, and every install must carry the same version — stale or
  mixed versions would be rejected in-flight by Alg. 1/2, wasting the
  whole round trip.

:func:`plan_from_prepared` lifts a
:class:`repro.core.controller.PreparedUpdate` into this model
(expanding §11 piggybacked UIMs); hand-built :class:`UpdatePlan`
objects express adversarial plans directly.  The controller runs
:func:`verify_plan` as an optional pre-execution gate
(``SimParams.verify_update_plans``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.messages import UIM, UpdateType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.controller import PreparedUpdate


class PlanVerificationError(RuntimeError):
    """A plan failed static verification (raised by the gate)."""


@dataclass(frozen=True)
class PlanInstall:
    """One switch's part of the plan: install rules for ``version``."""

    node: str
    version: int
    distance: int
    is_flow_egress: bool = False
    is_segment_egress: bool = False
    is_ingress: bool = False
    is_gateway: bool = False

    @property
    def originator(self) -> bool:
        """Does this node originate a UNM chain (§8)?"""
        return self.is_flow_egress or self.is_segment_egress


@dataclass(frozen=True)
class PlanViolation:
    """One check failure, optionally with a counterexample path."""

    kind: str
    message: str
    counterexample: tuple[str, ...] = ()

    def format(self) -> str:
        text = f"{self.kind}: {self.message}"
        if self.counterexample:
            text += f"  [counterexample: {' -> '.join(self.counterexample)}]"
        return text


@dataclass
class UpdatePlan:
    """Static model of one flow update.

    ``notify_edges`` are directed ``(notifier, notified)`` pairs: the
    UNM travels from the notifier to the notified node, enabling its
    install.  ``dependencies`` are extra ``(waiter, prerequisite)``
    pairs (e.g. backward segments waiting on downstream segments);
    they join the same graph with reversed orientation (prerequisite
    enables waiter).
    """

    flow_id: int
    version: int
    prior_version: int
    update_type: UpdateType
    installs: tuple[PlanInstall, ...]
    notify_edges: tuple[tuple[str, str], ...]
    dependencies: tuple[tuple[str, str], ...] = ()
    description: str = ""
    # Footprint material (repro.analysis.interference): the path the
    # flow leaves, the path it moves onto, and its traffic size.
    # Empty/zero for hand-built plans that only exercise the per-plan
    # checks — interference analysis requires them.
    old_path: tuple[str, ...] = ()
    new_path: tuple[str, ...] = ()
    flow_size: float = 0.0

    def install_at(self, node: str) -> Optional[PlanInstall]:
        for install in self.installs:
            if install.node == node:
                return install
        return None


@dataclass
class PlanReport:
    """Outcome of verifying one plan."""

    plan: UpdatePlan
    violations: list[PlanViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def counterexample(self) -> tuple[str, ...]:
        for violation in self.violations:
            if violation.counterexample:
                return violation.counterexample
        return ()

    def describe(self) -> str:
        head = (
            f"plan flow={self.plan.flow_id} v{self.plan.version} "
            f"({self.plan.update_type.name}, {len(self.plan.installs)} installs)"
        )
        if self.ok:
            return f"{head}: OK"
        lines = [f"{head}: {len(self.violations)} violation(s)"]
        lines.extend(f"  - {v.format()}" for v in self.violations)
        return "\n".join(lines)


def plan_from_prepared(
    prepared: "PreparedUpdate",
    prior_version: int = 0,
    new_path: Optional[Sequence[str]] = None,
) -> UpdatePlan:
    """Lift a controller-prepared update into the static model.

    §11 compact updates are expanded: piggybacked UIMs become regular
    installs, notified by the UIM that carries them (the stack pops
    hop by hop along the chain, so the carrier transitively enables
    every stacked install).  Tree plans (``child_ports``) have no
    linear notification order and are rejected.
    """
    uims: list[UIM] = []
    for uim in prepared.uims:
        if uim.child_ports:
            raise ValueError(
                "destination-tree plans are not expressible as a linear "
                "update plan"
            )
        uims.append(uim)
        uims.extend(uim.piggyback)

    installs = tuple(
        PlanInstall(
            node=uim.target,
            version=uim.version,
            distance=uim.new_distance,
            is_flow_egress=uim.is_flow_egress,
            is_segment_egress=uim.is_segment_egress,
            is_ingress=uim.is_ingress,
            is_gateway=uim.is_gateway,
        )
        for uim in uims
    )

    # Notification edges run from distance d to distance d+1 (the UNM
    # travels egress -> ingress).  ``new_path`` (when known) is only a
    # cross-check: the distances already pin the order.
    by_distance: dict[int, list[str]] = {}
    for install in installs:
        by_distance.setdefault(install.distance, []).append(install.node)
    edges: list[tuple[str, str]] = []
    for install in installs:
        for upstream in by_distance.get(install.distance + 1, ()):
            edges.append((install.node, upstream))

    if new_path is not None:
        expected = {node: i for i, node in enumerate(new_path)}
        for a, b in edges:
            if a in expected and b in expected and expected[b] + 1 != expected[a]:
                raise ValueError(
                    f"distance labels disagree with the new path order "
                    f"({b} -> {a})"
                )

    return UpdatePlan(
        flow_id=prepared.flow_id,
        version=prepared.version,
        prior_version=prior_version,
        update_type=prepared.update_type,
        installs=installs,
        notify_edges=tuple(edges),
        old_path=tuple(prepared.old_path),
        new_path=(
            tuple(new_path) if new_path is not None
            else tuple(prepared.new_path)
        ),
        flow_size=max((uim.flow_size for uim in uims), default=0.0),
    )


def plan_to_dict(plan: UpdatePlan) -> dict:
    """JSON-safe encoding of a plan (``analyze interference`` batches)."""
    return {
        "flow_id": plan.flow_id,
        "version": plan.version,
        "prior_version": plan.prior_version,
        "update_type": plan.update_type.name,
        "installs": [
            {
                "node": i.node,
                "version": i.version,
                "distance": i.distance,
                "is_flow_egress": i.is_flow_egress,
                "is_segment_egress": i.is_segment_egress,
                "is_ingress": i.is_ingress,
                "is_gateway": i.is_gateway,
            }
            for i in plan.installs
        ],
        "notify_edges": [list(edge) for edge in plan.notify_edges],
        "dependencies": [list(edge) for edge in plan.dependencies],
        "description": plan.description,
        "old_path": list(plan.old_path),
        "new_path": list(plan.new_path),
        "flow_size": plan.flow_size,
    }


def plan_from_dict(data: dict) -> UpdatePlan:
    """Inverse of :func:`plan_to_dict` (validates the update type)."""
    return UpdatePlan(
        flow_id=int(data["flow_id"]),
        version=int(data["version"]),
        prior_version=int(data.get("prior_version", 0)),
        update_type=UpdateType[str(data["update_type"])],
        installs=tuple(
            PlanInstall(
                node=str(i["node"]),
                version=int(i["version"]),
                distance=int(i["distance"]),
                is_flow_egress=bool(i.get("is_flow_egress", False)),
                is_segment_egress=bool(i.get("is_segment_egress", False)),
                is_ingress=bool(i.get("is_ingress", False)),
                is_gateway=bool(i.get("is_gateway", False)),
            )
            for i in data.get("installs", ())
        ),
        notify_edges=tuple(
            (str(a), str(b)) for a, b in data.get("notify_edges", ())
        ),
        dependencies=tuple(
            (str(a), str(b)) for a, b in data.get("dependencies", ())
        ),
        description=str(data.get("description", "")),
        old_path=tuple(str(n) for n in data.get("old_path", ())),
        new_path=tuple(str(n) for n in data.get("new_path", ())),
        flow_size=float(data.get("flow_size", 0.0)),
    )


def _find_cycle(
    nodes: Sequence[str], edges: Sequence[tuple[str, str]]
) -> Optional[list[str]]:
    """First cycle found by DFS, as ``[n1, ..., nk, n1]``; else None."""
    adjacency: dict[str, list[str]] = {node: [] for node in nodes}
    for a, b in edges:
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, [])
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in adjacency}
    for start in sorted(adjacency):
        if color[start] != WHITE:
            continue
        stack: list[tuple[str, int]] = [(start, 0)]
        path: list[str] = []
        while stack:
            node, child_index = stack[-1]
            if child_index == 0:
                color[node] = GREY
                path.append(node)
            children = sorted(adjacency[node])
            if child_index < len(children):
                stack[-1] = (node, child_index + 1)
                child = children[child_index]
                if color[child] == GREY:
                    loop_start = path.index(child)
                    return path[loop_start:] + [child]
                if color[child] == WHITE:
                    stack.append((child, 0))
            else:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return None


def verify_plan(plan: UpdatePlan) -> PlanReport:
    """Run every static check over ``plan``."""
    report = PlanReport(plan)
    violations = report.violations

    # -- structural sanity --------------------------------------------------
    seen: set[str] = set()
    for install in plan.installs:
        if install.node in seen:
            violations.append(
                PlanViolation(
                    "duplicate-install",
                    f"node {install.node} receives two installs in one plan",
                )
            )
        seen.add(install.node)

    known = {install.node for install in plan.installs}
    for a, b in list(plan.notify_edges) + list(plan.dependencies):
        for node in (a, b):
            if node not in known:
                violations.append(
                    PlanViolation(
                        "unknown-node",
                        f"edge ({a} -> {b}) references {node}, which has "
                        f"no install in the plan",
                    )
                )

    # -- version monotonicity ----------------------------------------------
    if plan.version <= plan.prior_version:
        violations.append(
            PlanViolation(
                "version-regression",
                f"plan version {plan.version} does not exceed the flow's "
                f"current version {plan.prior_version}; every switch would "
                f"drop the UNM as outdated",
            )
        )
    for install in plan.installs:
        if install.version != plan.version:
            violations.append(
                PlanViolation(
                    "mixed-version",
                    f"install at {install.node} carries version "
                    f"{install.version}, plan is version {plan.version}",
                )
            )

    # -- originators ---------------------------------------------------------
    originators = [i for i in plan.installs if i.originator]
    if not originators:
        violations.append(
            PlanViolation(
                "no-originator",
                "no flow-egress or segment-egress install: nothing ever "
                "originates a UNM, the update cannot start",
            )
        )
    egresses = [i for i in plan.installs if i.is_flow_egress]
    if len(egresses) > 1:
        violations.append(
            PlanViolation(
                "egress-count",
                f"{len(egresses)} flow-egress installs "
                f"({', '.join(sorted(i.node for i in egresses))}); a "
                f"linear plan has exactly one",
            )
        )

    # -- ack-edge shape -------------------------------------------------------
    distance = {i.node: i.distance for i in plan.installs}
    for a, b in plan.notify_edges:
        if a in distance and b in distance and distance[b] != distance[a] + 1:
            violations.append(
                PlanViolation(
                    "distance-gap",
                    f"notify edge {a} (d={distance[a]}) -> {b} "
                    f"(d={distance[b]}) skips distances; Alg. 1/2 only "
                    f"accepts a UNM from the node one hop downstream",
                )
            )

    # -- deadlock (cycles) ---------------------------------------------------
    # Dependencies are oriented waiter -> prerequisite; flip them so
    # every edge means "enables", matching notify edges.
    enable_edges = list(plan.notify_edges) + [
        (prerequisite, waiter) for waiter, prerequisite in plan.dependencies
    ]
    cycle = _find_cycle(sorted(known), enable_edges)
    if cycle is not None:
        violations.append(
            PlanViolation(
                "dependency-cycle",
                "notification/dependency edges form a cycle: every node "
                "on it waits for another, the update deadlocks",
                counterexample=tuple(cycle),
            )
        )

    # -- reachability ----------------------------------------------------------
    incoming: dict[str, int] = {node: 0 for node in known}
    adjacency: dict[str, list[str]] = {node: [] for node in known}
    for a, b in enable_edges:
        if a in known and b in known:
            adjacency[a].append(b)
            incoming[b] = incoming.get(b, 0) + 1
    reached = {i.node for i in originators}
    frontier = sorted(reached)
    while frontier:
        node = frontier.pop()
        for nxt in adjacency.get(node, ()):
            if nxt not in reached:
                reached.add(nxt)
                frontier.append(nxt)
    for install in plan.installs:
        if install.node in reached:
            continue
        if incoming.get(install.node, 0) == 0:
            violations.append(
                PlanViolation(
                    "missing-ack",
                    f"install at {install.node} has no incoming "
                    f"notification edge and is not an originator; it can "
                    f"never be triggered",
                )
            )
        else:
            origin_names = sorted(i.node for i in originators)
            violations.append(
                PlanViolation(
                    "orphan-install",
                    f"install at {install.node} is unreachable from any "
                    f"originator ({', '.join(origin_names) or 'none'}); "
                    f"its enabling notification never arrives",
                    counterexample=tuple(origin_names + [install.node]),
                )
            )

    return report
