"""The live operations plane.

A long-lived serve session (:mod:`repro.serve`) overlaid with a
declarative operations timeline — tenant migrations, rolling switch
drains, capacity rebalancing — plus rolling snapshot/restore of the
full simulator state to sha256-signed on-disk checkpoints, so a
multi-hour simulated session can be stopped and resumed
byte-identically (``repro ops run|checkpoint|resume``).
"""

from repro.ops.spec import (
    OP_KINDS,
    SessionSpec,
    SessionSpecError,
    load_session_spec,
    load_session_spec_file,
)
from repro.ops.session import OpsResult, OpsSession, build_session, run_session

__all__ = [
    "OP_KINDS",
    "OpsResult",
    "OpsSession",
    "SessionSpec",
    "SessionSpecError",
    "build_session",
    "load_session_spec",
    "load_session_spec_file",
    "run_session",
]
