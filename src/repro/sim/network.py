"""The simulated network: nodes, links, control channels, delivery.

Delivery semantics:

* data-plane: FIFO per directed link, delay = link latency (+ optional
  per-hop jitter from the parameter set);
* control-plane: per-switch control channel latency, plus a
  single-threaded controller service queue — the controller processes
  one message at a time, which is what makes the Central baseline pay
  for every acknowledgement round (paper §9.1, [40]).

A :class:`FaultModel` (or any object with a compatible ``decide``) can
be installed to drop/delay/duplicate/corrupt messages in flight.
"""

from __future__ import annotations

import copy
from typing import Any, Optional

from repro.obs.context import NULL_OBS, ObsContext
from repro.sim.engine import Engine
from repro.sim.faults import FaultAction, FaultDecision, FaultModel
from repro.sim.links import ControlChannel, Link
from repro.sim.node import Node
from repro.sim.trace import (
    KIND_MSG_DROP,
    KIND_MSG_RECV,
    KIND_MSG_SEND,
    Trace,
)


class Network:
    """Container wiring nodes together and delivering messages."""

    def __init__(
        self,
        engine: Optional[Engine] = None,
        trace: Optional[Trace] = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.engine = engine if engine is not None else Engine()
        self.trace = trace if trace is not None else Trace()
        self.obs = obs if obs is not None else NULL_OBS
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        # (node, port) -> Link
        self._port_map: dict[tuple[str, int], Link] = {}
        # (node_a, node_b) -> Link  (both orientations)
        self._adjacency: dict[tuple[str, str], Link] = {}
        self.control_channels: dict[str, ControlChannel] = {}
        self.controller_name: Optional[str] = None
        self.fault_model: Optional[FaultModel] = None
        self.control_fault_model: Optional[FaultModel] = None
        # Single-threaded controller service queue state.
        self.controller_service_busy_until = 0.0

    # -- construction ----------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        node.attach(self)
        return node

    def add_link(self, link: Link) -> Link:
        for key in ((link.node_a, link.port_a), (link.node_b, link.port_b)):
            if key in self._port_map:
                raise ValueError(f"port already in use: {key}")
        for name in (link.node_a, link.node_b):
            if name not in self.nodes:
                raise ValueError(f"unknown node {name!r}")
        self.links.append(link)
        self._port_map[(link.node_a, link.port_a)] = link
        self._port_map[(link.node_b, link.port_b)] = link
        self._adjacency[(link.node_a, link.node_b)] = link
        self._adjacency[(link.node_b, link.node_a)] = link
        return link

    def set_controller(self, name: str) -> None:
        if name not in self.nodes:
            raise ValueError(f"unknown node {name!r}")
        self.controller_name = name

    def add_control_channel(self, channel: ControlChannel) -> None:
        self.control_channels[channel.switch] = channel

    # -- lookup ------------------------------------------------------------

    def link_at(self, node: str, port: int) -> Link:
        try:
            return self._port_map[(node, port)]
        except KeyError:
            raise KeyError(f"no link on {node!r} port {port}") from None

    def link_between(self, node_a: str, node_b: str) -> Link:
        try:
            return self._adjacency[(node_a, node_b)]
        except KeyError:
            raise KeyError(f"no link between {node_a!r} and {node_b!r}") from None

    def port_towards(self, node: str, neighbor: str) -> int:
        """The local port on ``node`` whose link leads to ``neighbor``."""
        link = self.link_between(node, neighbor)
        if link.node_a == node:
            return link.port_a
        return link.port_b

    def neighbor_on_port(self, node: str, port: int) -> str:
        return self.link_at(node, port).other(node)

    # -- simulation ----------------------------------------------------------

    def start(self) -> None:
        """Invoke every node's start hook at t=0."""
        for node in self.nodes.values():
            node.start()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        self.engine.run(until=until, max_events=max_events)

    # -- data-plane delivery ---------------------------------------------------

    def transmit(self, sender: str, port: int, message: Any) -> None:
        link = self.link_at(sender, port)
        dest, dest_port = link.endpoint(sender)
        self.trace.record(
            self.engine.now, KIND_MSG_SEND, sender,
            dest=dest, port=port, message=describe(message),
        )
        if self.obs.enabled:
            self.obs.metrics.counter(
                "messages_sent", node=sender, plane="data",
                type=message_type(message),
            ).inc()
        decision = self._fault_decision(self.fault_model, message)
        if decision.action is FaultAction.DROP:
            self.trace.record(
                self.engine.now, KIND_MSG_DROP, sender,
                dest=dest, message=describe(message),
            )
            if self.obs.enabled:
                self.obs.metrics.counter(
                    "messages_dropped", node=sender, plane="data",
                    type=message_type(message),
                ).inc()
            return
        delay = link.latency_ms + decision.extra_delay_ms
        payload = message
        if decision.action is FaultAction.CORRUPT and decision.mutate is not None:
            payload = decision.mutate(copy.deepcopy(message))
        self.engine.schedule(delay, self._deliver, dest, dest_port, payload)
        if decision.action is FaultAction.DUPLICATE:
            self.engine.schedule(delay, self._deliver, dest, dest_port, copy.deepcopy(message))

    def _deliver(self, dest: str, dest_port: int, message: Any) -> None:
        node = self.nodes.get(dest)
        if node is None:
            return
        self.trace.record(
            self.engine.now, KIND_MSG_RECV, dest,
            port=dest_port, message=describe(message),
        )
        if self.obs.enabled:
            self.obs.metrics.counter(
                "messages_received", node=dest, plane="data",
                type=message_type(message),
            ).inc()
        node.handle_message(message, dest_port)

    # -- control-plane delivery ---------------------------------------------------

    def transmit_control(self, sender: str, message: Any) -> None:
        """Control channel between a switch and the controller.

        When the sender is the controller, the message must carry a
        ``target`` attribute naming the destination switch.  When the
        sender is a switch, delivery goes to the controller and passes
        through the single-threaded controller service queue.
        """
        if self.controller_name is None:
            raise RuntimeError("no controller registered")
        decision = self._fault_decision(self.control_fault_model, message)
        if self.obs.enabled:
            self.obs.metrics.counter(
                "messages_sent", node=sender, plane="control",
                type=message_type(message),
            ).inc()
        if decision.action is FaultAction.DROP:
            self.trace.record(
                self.engine.now, KIND_MSG_DROP, sender, message=describe(message),
            )
            if self.obs.enabled:
                self.obs.metrics.counter(
                    "messages_dropped", node=sender, plane="control",
                    type=message_type(message),
                ).inc()
            return
        payload = message
        if decision.action is FaultAction.CORRUPT and decision.mutate is not None:
            payload = decision.mutate(copy.deepcopy(message))

        if sender == self.controller_name:
            target = getattr(payload, "target", None)
            if target is None:
                raise ValueError("controller message lacks .target")
            channel = self._channel_for(target)
            delay = channel.delay() + decision.extra_delay_ms
            self.trace.record(
                self.engine.now, KIND_MSG_SEND, sender,
                dest=target, message=describe(payload),
            )
            self.engine.schedule(delay, self._deliver_control, target, payload, sender)
            if decision.action is FaultAction.DUPLICATE:
                self.engine.schedule(
                    delay, self._deliver_control, target, copy.deepcopy(payload), sender
                )
        else:
            channel = self._channel_for(sender)
            delay = channel.delay() + decision.extra_delay_ms
            self.trace.record(
                self.engine.now, KIND_MSG_SEND, sender,
                dest=self.controller_name, message=describe(payload),
            )
            arrival = self.engine.now + delay
            self.engine.schedule(
                delay, self._enqueue_at_controller, sender, payload, arrival
            )

    def _channel_for(self, switch: str) -> ControlChannel:
        channel = self.control_channels.get(switch)
        if channel is None:
            raise KeyError(f"no control channel for {switch!r}")
        return channel

    def _enqueue_at_controller(self, sender: str, message: Any, arrival: float) -> None:
        """Messages to the controller serialise through one service queue.

        The controller handles one message at a time (paper: single
        thread); service time is supplied by the controller node via
        ``control_service_time()`` if present, else zero.
        """
        controller = self.nodes[self.controller_name]
        service_time = 0.0
        provider = getattr(controller, "control_service_time", None)
        if provider is not None:
            service_time = provider()
        backlog = 0.0
        backlog_provider = getattr(controller, "control_queue_delay", None)
        if backlog_provider is not None:
            backlog = backlog_provider()
        start = max(self.engine.now, self.controller_service_busy_until) + backlog
        finish = start + service_time
        self.controller_service_busy_until = finish
        if self.obs.enabled:
            self.obs.metrics.histogram(
                "controller_service_wait_ms", node=self.controller_name,
            ).observe(start - self.engine.now)
        self.engine.schedule(
            finish - self.engine.now, self._deliver_control,
            self.controller_name, message, sender,
        )

    def _deliver_control(self, dest: str, message: Any, sender: str) -> None:
        node = self.nodes.get(dest)
        if node is None:
            return
        self.trace.record(
            self.engine.now, KIND_MSG_RECV, dest,
            sender=sender, message=describe(message),
        )
        if self.obs.enabled:
            self.obs.metrics.counter(
                "messages_received", node=dest, plane="control",
                type=message_type(message),
            ).inc()
        node.handle_control(message, sender)

    # -- faults -------------------------------------------------------------------

    def _fault_decision(
        self, model: Optional["FaultModel"], message: Any
    ) -> FaultDecision:
        if model is None:
            return FaultDecision()
        return model.decide(message)


def describe(message: Any) -> str:
    """Short human-readable tag for a message, used in traces."""
    describe_fn = getattr(message, "describe", None)
    if callable(describe_fn):
        return describe_fn()
    return type(message).__name__


def message_type(message: Any) -> str:
    """Coarse message class for metric labels.

    Data-plane messages are all ``Packet`` instances; the interesting
    distinction is which header they carry (UNM, probe, cleanup).
    Control-plane messages keep their class name (UIM, UFM, ...).
    """
    has_valid = getattr(message, "has_valid", None)
    if callable(has_valid):
        for header in ("unm", "probe", "cleanup"):
            if has_valid(header):
                return header
        return "packet"
    return type(message).__name__
