"""Property-based tests (hypothesis) for the paper's correctness claims.

Theorems 1-4 / Corollaries 1-4: under arbitrary update scenarios and an
adversarial network (message delay, duplication, drop), the forwarding
state must be blackhole-, loop- and congestion-free **at every event
instant**, and — when the adversary is fair (no drops) — converge to
the highest-version update.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consistency import LiveChecker
from repro.core.messages import UpdateType
from repro.harness.build import build_p4update_network
from repro.params import DelayDistribution, SimParams
from repro.sim.faults import FaultModel
from repro.topo import ring_topology
from repro.traffic.flows import Flow

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fast_params(seed):
    return SimParams(
        seed=seed,
        pipeline_delay=DelayDistribution.constant(0.1),
        rule_install_delay=DelayDistribution.constant(1.0),
        controller_service=DelayDistribution.constant(0.2),
        controller_background_util=0.0,
        unm_generation_delay=DelayDistribution.constant(0.5),
    )


def arc(n, start, length, direction):
    """A simple path along the ring of size n."""
    step = 1 if direction else -1
    return [f"n{(start + step * i) % n}" for i in range(length + 1)]


@st.composite
def ring_update_case(draw):
    n = draw(st.integers(min_value=4, max_value=8))
    start = draw(st.integers(min_value=0, max_value=n - 1))
    length = draw(st.integers(min_value=2, max_value=n - 2))
    old = arc(n, start, length, direction=True)
    new = arc(n, start, n - length, direction=False)
    assert old[0] == new[0] and old[-1] == new[-1]
    seed = draw(st.integers(min_value=0, max_value=2**31))
    update_type = draw(st.sampled_from([UpdateType.SINGLE, UpdateType.DUAL]))
    return n, old, new, seed, update_type


@given(ring_update_case())
@settings(**SETTINGS)
def test_update_converges_and_stays_consistent(case):
    """Theorems 1-4: fair network -> consistency + convergence."""
    n, old, new, seed, update_type = case
    topo = ring_topology(n, latency_ms=1.0)
    topo.set_controller(old[0])
    dep = build_p4update_network(topo, params=fast_params(seed))
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between(old[0], old[-1], size=1.0, old_path=old)
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, new, update_type)
    dep.run(until=10_000.0)
    assert checker.ok, checker.violations
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == new


@given(
    ring_update_case(),
    st.floats(min_value=0.0, max_value=0.3),
    st.floats(min_value=0.0, max_value=0.5),
)
@settings(**SETTINGS)
def test_consistency_under_message_drops_and_delays(case, drop_prob, delay_prob):
    """Verification model (§5-ii): even with dropped/delayed UNMs the
    partially implemented update must stay consistent (convergence is
    not required without recovery)."""
    n, old, new, seed, update_type = case
    topo = ring_topology(n, latency_ms=1.0)
    topo.set_controller(old[0])
    dep = build_p4update_network(topo, params=fast_params(seed))
    dep.network.fault_model = FaultModel(
        rng=np.random.default_rng(seed ^ 0xABCDEF),
        drop_prob=drop_prob,
        delay_prob=delay_prob,
        delay_ms=25.0,
    )
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between(old[0], old[-1], size=1.0, old_path=old)
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, new, update_type)
    dep.run(until=10_000.0)
    assert checker.ok, checker.violations
    _, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered", "the flow must never lose its path"


@given(ring_update_case())
@settings(**SETTINGS)
def test_consistency_under_duplicated_messages(case):
    """Duplicate UNMs/UIMs must be idempotent."""
    n, old, new, seed, update_type = case
    topo = ring_topology(n, latency_ms=1.0)
    topo.set_controller(old[0])
    dep = build_p4update_network(topo, params=fast_params(seed))
    dep.network.fault_model = FaultModel(
        rng=np.random.default_rng(seed ^ 0x123456), duplicate_prob=0.5
    )
    dep.network.control_fault_model = FaultModel(
        rng=np.random.default_rng(seed ^ 0x654321), duplicate_prob=0.5
    )
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between(old[0], old[-1], size=1.0, old_path=old)
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, new, update_type)
    dep.run(until=10_000.0)
    assert checker.ok, checker.violations
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == new


@given(ring_update_case(), st.integers(min_value=2, max_value=4))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_rapid_successive_updates_converge_to_highest_version(case, n_updates):
    """Theorem 2 / fast-forward: pushing several SL updates in rapid
    succession must converge to the last one."""
    n, old, new, seed, _ = case
    topo = ring_topology(n, latency_ms=1.0)
    topo.set_controller(old[0])
    dep = build_p4update_network(topo, params=fast_params(seed))
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between(old[0], old[-1], size=1.0, old_path=old)
    dep.install_flow(flow)
    # Alternate between the two arcs without waiting for completion.
    targets = [new if i % 2 == 0 else old for i in range(n_updates)]
    for target in targets:
        dep.controller.update_flow(flow.flow_id, list(target), UpdateType.SINGLE)
    dep.run(until=20_000.0)
    assert checker.ok, checker.violations
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"
    assert walk == targets[-1], "must converge to the highest version"


@given(st.integers(min_value=0, max_value=2**31))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_corrupted_unm_distances_never_break_consistency(seed):
    """§7.1 scenarios (ii)/(iii): corruptions that violate the label
    invariants (distances/versions outside any valid proof for this
    update) are always rejected locally."""
    from repro.topo import fig1_topology
    from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH

    rng = np.random.default_rng(seed)

    def corrupt(packet):
        if packet.has_valid("unm"):
            header = packet.header("unm")
            field = rng.choice(["new_distance", "new_version", "old_distance"])
            # Push the label outside the valid range for Fig. 1 (max
            # distance 7, versions 1-2): detectably wrong.
            header[field] = int(rng.integers(8, 64))
        return packet

    topo = fig1_topology()
    dep = build_p4update_network(topo, params=fast_params(seed))
    dep.network.fault_model = FaultModel(
        rng=np.random.default_rng(seed ^ 0xF00D),
        corrupt_prob=0.4,
        corruptor=corrupt,
    )
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run(until=10_000.0)
    assert checker.ok, checker.violations
    _, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"


def test_forged_plausible_label_defeats_local_verification():
    """Documented boundary of the §5 verification model: a corrupted
    UNM that *mimics a valid proof* — here, forging the inherited old
    distance to 0 at exactly the backward gateway — passes every local
    check and admits a transient loop.  This is inherent to
    proof-labeling: a node can only validate label *relations*, not
    whether the neighbour's claimed label is genuine.  (The paper's
    threat model is an inconsistent/buggy controller and message
    reordering, not an in-network forger.)
    """
    from repro.topo import fig1_topology
    from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH

    def forge(packet):
        if packet.has_valid("unm"):
            header = packet.header("unm")
            header["old_distance"] = 0            # claim segment id 0
        return packet

    topo = fig1_topology()
    dep = build_p4update_network(topo, params=fast_params(0))
    dep.network.fault_model = FaultModel(
        rng=np.random.default_rng(1),
        corrupt_prob=1.0,
        corruptor=forge,
    )
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run(until=10_000.0)
    assert any(v.kind == "loop" for v in checker.violations), (
        "the forged segment id should have slipped past local checks"
    )
