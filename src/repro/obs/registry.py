"""Labeled metrics: counters, gauges and streaming histograms.

A :class:`MetricsRegistry` hands out instruments keyed by metric name
plus a frozen label set (``registry.counter("messages_sent",
node="v3", type="UIM")``).  Instruments are cheap mutable cells; the
registry's :meth:`~MetricsRegistry.snapshot` renders everything into a
plain JSON-safe dict for manifests and the CLI.

Histograms are *streaming*: they keep geometric buckets (≈9 % wide)
plus exact count/sum/min/max, so p50/p90/p99 estimates never require
storing the samples.  The estimation error is bounded by the bucket
width.

The :class:`NullRegistry` is the default everywhere: every instrument
request returns a shared no-op singleton, so instrumented code paths
cost one attribute check (``obs.enabled``) or an empty method call
when observability is off.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

# Geometric bucket growth: 2**(1/8) per bucket ≈ 9.05 % relative
# width, i.e. quantile estimates are within ~4.5 % of the true value.
_BUCKET_BASE = 2.0 ** 0.125
_LOG_BASE = math.log(_BUCKET_BASE)

LabelKey = frozenset


def _label_key(labels: dict) -> frozenset:
    return frozenset(labels.items())


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Point-in-time value (queue depth, reserved capacity, ...)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Streaming distribution with geometric buckets.

    ``observe`` is O(1); ``quantile`` walks the (sparse) bucket table.
    Non-positive samples land in a dedicated zero bucket (the paper's
    measured quantities — delays, depths, sizes — are non-negative).
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_zero", "_buckets")
    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._zero = 0                       # samples <= 0
        self._buckets: dict[int, int] = {}   # bucket index -> count

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"non-finite histogram sample: {value}")
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if value <= 0.0:
            self._zero += 1
            return
        idx = math.floor(math.log(value) / _LOG_BASE)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * (self.count - 1)
        cumulative = self._zero
        if rank < cumulative:
            return max(self.minimum, 0.0) if self._zero else 0.0
        for idx in sorted(self._buckets):
            cumulative += self._buckets[idx]
            if rank < cumulative:
                # Geometric bucket midpoint, clamped to observed range.
                mid = _BUCKET_BASE ** (idx + 0.5)
                return min(max(mid, self.minimum), self.maximum)
        return self.maximum

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def snapshot(self) -> dict:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }


class MetricsRegistry:
    """Get-or-create store of labeled instruments."""

    enabled = True

    def __init__(self) -> None:
        # (name, label_key) -> instrument
        self._instruments: dict[tuple[str, frozenset], object] = {}
        # name -> labels dict per label_key, for snapshots.
        self._labels: dict[tuple[str, frozenset], dict] = {}

    def _get(self, factory, name: str, labels: dict):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
            self._labels[key] = dict(labels)
        elif not isinstance(instrument, factory):
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[tuple[str, dict, object]]:
        for (name, key), instrument in self._instruments.items():
            yield name, self._labels[(name, key)], instrument

    def value(self, name: str, **labels) -> Optional[float]:
        """Counter/gauge value for exact name+labels, or None."""
        instrument = self._instruments.get((name, _label_key(labels)))
        return getattr(instrument, "value", None)

    def total(self, name: str) -> float:
        """Sum of a counter/gauge metric across all label sets."""
        return sum(
            instrument.value
            for (metric, _), instrument in self._instruments.items()
            if metric == name and hasattr(instrument, "value")
        )

    def snapshot(self) -> dict:
        """JSON-safe dump: name -> list of {labels, type, ...fields}."""
        out: dict[str, list] = {}
        for name, labels, instrument in sorted(
            self, key=lambda row: (row[0], sorted(row[1].items()))
        ):
            row = {"labels": labels, "type": instrument.kind}
            row.update(instrument.snapshot())
            out.setdefault(name, []).append(row)
        return out


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """No-op registry: shared singletons, no state, no allocation."""

    enabled = False

    def counter(self, name: str, **labels) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, **labels) -> Histogram:
        return _NULL_HISTOGRAM
