"""Shared helpers for the figure-regeneration benchmarks.

Every ``bench_fig*.py`` module regenerates one table/figure of the
paper: it runs the experiment, prints the same rows/series the paper
reports (plus the paper's numbers for comparison), and asserts the
*shape* — who wins, roughly by how much — not absolute milliseconds
(our substrate is an event simulator, not the authors' testbed).
"""

from __future__ import annotations


def print_header(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def print_cdf_series(label: str, samples) -> None:
    from repro.harness.metrics import cdf_points, summarize

    summary = summarize(samples)
    print(summary.row(label))
    points = cdf_points(samples)
    # Print a compact CDF: every 10th percentile.
    n = len(points)
    picks = [points[min(n - 1, int(q * n))] for q in (0.1, 0.25, 0.5, 0.75, 0.9)]
    series = "  ".join(f"({v:.0f}ms,{p:.2f})" for v, p in picks)
    print(f"{'':28s} CDF: {series}")


def emit_manifest(name: str, *, params=None, results=None, seed=None, obs=None):
    """Write/merge this bench's ``BENCH_<name>.json`` run manifest."""
    from repro.obs import write_manifest

    path = write_manifest(
        name, params=params, results=results, seed=seed, obs=obs
    )
    print(f"manifest: {path}")
    return path


def instrumented_obs(system: str, scenario, params, congestion_aware: bool = True):
    """One extra obs-enabled run of the bench's own scenario, so the
    manifest carries real metric snapshots and phase-span timings."""
    from repro.harness.experiment import run_experiment
    from repro.obs import make_obs

    obs = make_obs()
    run_experiment(
        system, scenario, params=params,
        congestion_aware=congestion_aware, obs=obs,
    )
    return obs
