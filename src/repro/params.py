"""Central parameter set for all experiments.

Every timing knob in the reproduction lives here so that experiments
are comparable and the substitution choices (DESIGN.md §1) are visible
in one place.  All times are milliseconds; capacities and flow sizes
are abstract rate units (the paper normalises the same way).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

# Propagation speed in optical fibre, km per millisecond.  The paper
# writes "2 * 10e6 km/s"; the physically meaningful value is 2*10^5 km/s
# = 200 km/ms, which we use (DESIGN.md §2).
FIBRE_KM_PER_MS = 200.0


@dataclass
class DelayDistribution:
    """A named delay distribution sampled from a seeded generator."""

    kind: str = "constant"      # constant | exponential | normal | uniform
    value: float = 0.0           # constant value, or mean
    spread: float = 0.0          # std-dev (normal) / half-range (uniform)
    floor: float = 0.0           # samples are clamped below at this value

    def sample(self, rng: np.random.Generator) -> float:
        if self.kind == "constant":
            sample = self.value
        elif self.kind == "exponential":
            sample = rng.exponential(self.value)
        elif self.kind == "normal":
            sample = rng.normal(self.value, self.spread)
        elif self.kind == "uniform":
            sample = rng.uniform(self.value - self.spread, self.value + self.spread)
        else:
            raise ValueError(f"unknown delay distribution {self.kind!r}")
        return max(self.floor, sample)

    @classmethod
    def constant(cls, value: float) -> "DelayDistribution":
        return cls(kind="constant", value=value)

    @classmethod
    def exponential(cls, mean: float, floor: float = 0.0) -> "DelayDistribution":
        return cls(kind="exponential", value=mean, floor=floor)

    @classmethod
    def normal(cls, mean: float, std: float, floor: float = 0.0) -> "DelayDistribution":
        return cls(kind="normal", value=mean, spread=std, floor=floor)

    @classmethod
    def uniform(cls, low: float, high: float) -> "DelayDistribution":
        mid = (low + high) / 2.0
        return cls(kind="uniform", value=mid, spread=(high - low) / 2.0, floor=low)


@dataclass
class SimParams:
    """All timing / behaviour knobs of one experiment run."""

    seed: int = 0

    # -- switch data plane ------------------------------------------------
    # Per-packet pipeline traversal cost on the software target (BMv2).
    pipeline_delay: DelayDistribution = field(
        default_factory=lambda: DelayDistribution.constant(0.3)
    )
    # Installing/flipping a forwarding rule.  P4Update applies updates
    # as register writes in the data plane (sub-ms); the OpenFlow-based
    # baselines (ez-Segway, Central) go through the switch agent's
    # flow-mod path, measured at ms to tens of ms ([32, 50]).  The
    # Dionysus-style single-flow scenario replaces BOTH with exp(100)
    # ms (paper §9.1) so that comparison stays apples-to-apples.
    rule_install_delay: DelayDistribution = field(
        default_factory=lambda: DelayDistribution.uniform(0.5, 2.0)
    )
    baseline_install_delay: DelayDistribution = field(
        default_factory=lambda: DelayDistribution.uniform(3.0, 12.0)
    )
    # Resubmission back-off while a UNM waits for its UIM (paper §8).
    resubmit_interval_ms: float = 1.0
    # P4 cannot create packets from scratch: UNMs are cloned from
    # ongoing packets of the flow (paper §8/App. B), so originating a
    # UNM waits for the next flow packet to pass.  Mean inter-packet
    # gap at the origination points (flow egress, segment egresses).
    unm_generation_delay: DelayDistribution = field(
        default_factory=lambda: DelayDistribution.exponential(4.0)
    )
    # Hard cap on resubmissions per waiting packet before giving up and
    # alerting the controller (prevents infinite loops under faults).
    max_resubmits: int = 10_000

    # -- control plane -----------------------------------------------------
    # Service time per message at the single-threaded controller.  The
    # paper's Central discussion ([40], §9.1) assumes a controller that
    # is "also responsible for other tasks such as new path setup and
    # flow monitoring", so acknowledgements experience queuing and
    # processing delay; 10 ms mean matches OpenFlow-controller-scale
    # measurements.
    controller_service: DelayDistribution = field(
        default_factory=lambda: DelayDistribution.exponential(10.0, floor=0.5)
    )
    # Background utilisation of the controller by "other control
    # messages" ([40]): incoming messages additionally wait behind a
    # backlog modelled as an M/M/1 queue at this utilisation (extra
    # wait ~ exp(util / (1 - util) * service mean)).  Hits systems that
    # put controller round-trips on the update's critical path.
    controller_background_util: float = 0.7
    # Computation time the controller spends preparing one flow update;
    # measured separately for Fig. 8 (wall-clock, not simulated).
    controller_compute: DelayDistribution = field(
        default_factory=lambda: DelayDistribution.constant(0.0)
    )
    # §11 failure handling, controller side: when > 0, an update that
    # produced no UFM within this window is re-triggered (covers loss
    # of the final notification when no switch is left waiting).
    controller_update_timeout_ms: float = 0.0
    # Static pre-execution gate: verify every prepared linear plan
    # (repro.analysis.plan) before its UIMs leave the controller.
    # Rejected plans raise PlanVerificationError and roll back the
    # pending Flow-DB state instead of deadlocking the data plane.
    verify_update_plans: bool = False

    # -- §11 failure handling (repro.chaos) --------------------------------
    # Reliable control delivery: wrap controller -> switch UIM/TagFlip
    # sends in sequence-numbered envelopes with ack tracking and
    # seeded exponential backoff + jitter.  Off by default — with it
    # off the control path is byte-identical to the pre-chaos build.
    reliable_control: bool = False
    # First retransmission timeout; attempt k waits
    # timeout * backoff**(k-1) + U(0, jitter).
    control_retry_timeout_ms: float = 80.0
    control_retry_backoff: float = 2.0
    control_retry_jitter_ms: float = 5.0
    # Retransmissions per message before escalating to the controller's
    # failure handler (the target is then treated as unreachable).
    control_max_retries: int = 6
    # Crash register policy: False = power-cycle semantics (pipeline
    # registers lost on crash), True = data-plane state survives.
    crash_preserves_state: bool = False
    # Controller-side recovery: on a detected link/switch failure,
    # abort affected pending updates (Flow-DB rollback), recompute
    # paths around the failed element and re-issue, or park the flow
    # with a structured report when no alternate path exists.
    recover_on_failure: bool = True

    # -- fat-tree control latency (DESIGN.md §1, Huang et al. stand-in) ----
    fattree_control_latency: DelayDistribution = field(
        default_factory=lambda: DelayDistribution.normal(4.0, 2.0, floor=0.5)
    )
    # Link latency inside the data centre fabric.
    fattree_link_latency_ms: float = 0.05

    # -- probe traffic (Fig. 2) ---------------------------------------------
    probe_rate_pps: float = 125.0
    probe_ttl: int = 64

    # -- safety horizon ------------------------------------------------------
    max_sim_time_ms: float = 60_000.0

    # -- tracing -------------------------------------------------------------
    # Bound on retained trace events (0 = unbounded).  When positive the
    # Trace becomes a ring keeping only the newest events, with drops
    # counted in ``Trace.dropped_events`` — million-request serve runs
    # can trace without OOMing.  Live subscribers (consistency checker,
    # orchestrator) still see every event.
    trace_max_events: int = 0

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def with_seed(self, seed: int) -> "SimParams":
        return replace(self, seed=seed)

    def with_dionysus_install_delay(self) -> "SimParams":
        """exp(100) ms rule-install delay for every system (the paper's
        single-flow setup slows each node uniformly)."""
        return replace(
            self,
            rule_install_delay=DelayDistribution.exponential(100.0),
            baseline_install_delay=DelayDistribution.exponential(100.0),
        )


DEFAULT_PARAMS = SimParams()
