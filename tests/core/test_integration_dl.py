"""End-to-end DL-P4Update runs — the Fig. 1 scenario and variants."""


from repro.consistency import LiveChecker
from repro.core.messages import UpdateType
from repro.harness.build import build_p4update_network
from repro.params import DelayDistribution, SimParams
from repro.topo import fig1_topology, ring_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
from repro.traffic.flows import Flow


def fast_params(seed=0, install_ms=1.0):
    return SimParams(
        seed=seed,
        pipeline_delay=DelayDistribution.constant(0.1),
        rule_install_delay=DelayDistribution.constant(install_ms),
        controller_service=DelayDistribution.constant(0.2),
    )


def fig1_deployment(install_ms=1.0, seed=0):
    topo = fig1_topology()
    topo.set_controller("v0")
    dep = build_p4update_network(topo, params=fast_params(seed, install_ms))
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    return dep, flow


def test_fig1_dl_update_completes_consistently():
    dep, flow = fig1_deployment()
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    assert checker.ok, checker.violations
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == list(FIG1_NEW_PATH)
    assert dep.controller.alarms == []


def test_fig1_dl_gateways_inherit_segment_id_zero():
    """§3.2: at convergence all gateways joined segment id 0."""
    dep, flow = fig1_deployment()
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    for gateway in ("v0", "v2", "v4"):
        state = dep.switches[gateway].program.state_of(flow.flow_id)
        assert state.old_distance == 0, f"{gateway} kept segment id {state.old_distance}"
        assert state.update_type is UpdateType.DUAL


def test_fig1_dl_backward_gateway_updates_after_forward_segment():
    """v2 (backward segment ingress) must flip only after v4 flipped."""
    dep, flow = fig1_deployment()
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    changes = {
        e.node: e.time
        for e in dep.network.trace.of_kind("rule_change")
        if e.detail.get("flow") == flow.flow_id
    }
    assert changes["v2"] > changes["v4"], "loop-inducing order"
    assert changes["v0"] > changes["v2"] or "v0" in changes


def test_fig1_dl_parallelism_beats_sl_with_slow_installs():
    """With installs dominating, DL's segment parallelism must finish
    faster than SL's full serial chain."""
    durations = {}
    for update_type in (UpdateType.SINGLE, UpdateType.DUAL):
        dep, flow = fig1_deployment(install_ms=50.0)
        dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), update_type)
        dep.run()
        assert dep.controller.update_complete(flow.flow_id)
        durations[update_type] = dep.controller.update_duration(flow.flow_id)
    assert durations[UpdateType.DUAL] < durations[UpdateType.SINGLE]


def test_fig1_dl_interior_nodes_update_early():
    """Interior nodes of the backward segment (v3) pre-install: v3's
    rule change must not wait for v4's flip."""
    dep, flow = fig1_deployment(install_ms=20.0)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    changes = {
        e.node: e.time
        for e in dep.network.trace.of_kind("rule_change")
        if e.detail.get("flow") == flow.flow_id
    }
    assert changes["v3"] < changes["v4"], "backward interior should pre-install"


def test_dl_after_dl_raises_alarm_and_keeps_state():
    """§11: consecutive dual-layer updates are rejected by gateways."""
    dep, flow = fig1_deployment()
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    # Second DL back to the old path: gateways reject.
    dep.controller.update_flow(flow.flow_id, list(FIG1_OLD_PATH), UpdateType.DUAL)
    dep.run(until=dep.network.engine.now + 20_000.0)
    assert checker.ok, checker.violations
    # The network must never have become inconsistent; the flow is
    # still deliverable (on either path, depending on how far the
    # rejected update got before the alarm).
    _, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered"
    assert any(
        "consecutive" in a.reason for a in dep.controller.alarms
    ), dep.controller.alarms


def test_sl_after_dl_succeeds():
    """The sanctioned sequence: DL, then SL resets old distances."""
    dep, flow = fig1_deployment()
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    dep.controller.update_flow(flow.flow_id, list(FIG1_OLD_PATH), UpdateType.SINGLE)
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    assert checker.ok, checker.violations
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == list(FIG1_OLD_PATH)


def test_dl_on_forward_only_detour():
    """DL on a simple detour (single forward segment) still works."""
    topo = ring_topology(6, latency_ms=2.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params())
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between("n0", "n3", size=1.0, old_path=["n0", "n1", "n2", "n3"])
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, ["n0", "n5", "n4", "n3"], UpdateType.DUAL)
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    assert checker.ok, checker.violations
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == ["n0", "n5", "n4", "n3"]
