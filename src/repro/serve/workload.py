"""Seeded request workloads for the update service.

Two pieces:

* a **flow population** — ``flows`` src/dst pairs on the spec topology
  that each have both a shortest (primary) and 2nd-shortest (alternate)
  path, sized by the gravity model (``repro.traffic.gravity``); update
  requests toggle a flow between its two paths;
* an **arrival stream** — a lazy generator of ``(gap_ms, flow_index)``
  pairs.  The stream is O(1) memory, so request counts in the millions
  stream through without materialising anything; each arrival picks a
  flow with probability proportional to its gravity size (heavy flows
  are updated more often, matching tenant demand).

Both are driven by caller-provided RNG streams, so the same seed
produces the same population and the same arrival order regardless of
dict/set iteration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.topo.graph import Topology
from repro.traffic.flows import Flow
from repro.traffic.gravity import gravity_flow_sizes
from repro.traffic.paths import second_shortest_path


@dataclass(frozen=True)
class ServiceFlow:
    """One tenant flow the service can reroute, with its two paths."""

    flow_id: int
    src: str
    dst: str
    size: float
    primary: tuple[str, ...]
    alternate: tuple[str, ...]

    def to_flow(self) -> Flow:
        """The initial install: routed on the primary path."""
        return Flow(
            flow_id=self.flow_id,
            src=self.src,
            dst=self.dst,
            size=self.size,
            old_path=list(self.primary),
            new_path=list(self.primary),
        )

    def nodes(self) -> frozenset[str]:
        """Every switch either path touches (conflict footprint)."""
        return frozenset(self.primary) | frozenset(self.alternate)


def build_flow_population(
    topo: Topology,
    count: int,
    rng: np.random.Generator,
    mean_size: float = 1.0,
    max_attempts: int = 2000,
) -> list[ServiceFlow]:
    """``count`` distinct flows that each admit a primary/alternate pair.

    Endpoint pairs are drawn uniformly from the sorted node list (so
    the draw depends only on the node *set*), deduplicated, and kept
    only when a 2nd-shortest path exists.  Sizes come from the gravity
    model over the accepted pairs.
    """
    nodes = sorted(topo.nodes)
    if len(nodes) < 2:
        raise ValueError(f"topology {topo.name!r} too small for a flow population")
    pairs: list[tuple[str, str]] = []
    paths: dict[tuple[str, str], tuple[list[str], list[str]]] = {}
    attempts = 0
    while len(pairs) < count and attempts < max_attempts:
        attempts += 1
        i, j = (int(x) for x in rng.choice(len(nodes), size=2, replace=False))
        pair = (nodes[i], nodes[j])
        if pair in paths:
            continue
        alternate = second_shortest_path(topo, *pair)
        if alternate is None:
            continue
        primary = topo.shortest_path(*pair)
        pairs.append(pair)
        paths[pair] = (primary, alternate)
    if len(pairs) < count:
        raise ValueError(
            f"topology {topo.name!r} yielded only {len(pairs)} of {count} "
            f"reroutable flows after {max_attempts} attempts"
        )
    sizes = gravity_flow_sizes(pairs, rng, mean_size=mean_size)
    population = []
    for (src, dst), size in zip(pairs, sizes):
        primary, alternate = paths[(src, dst)]
        flow_id = Flow.between(src, dst).flow_id
        population.append(
            ServiceFlow(
                flow_id=flow_id,
                src=src,
                dst=dst,
                size=float(size),
                primary=tuple(primary),
                alternate=tuple(alternate),
            )
        )
    return population


def flow_weights(population: list[ServiceFlow]) -> np.ndarray:
    """Request-sampling probabilities, proportional to gravity size."""
    raw = np.array([f.size for f in population], dtype=float)
    total = float(raw.sum())
    if total <= 0:
        return np.full(len(population), 1.0 / len(population))
    return raw / total


def open_loop_arrivals(
    rng: np.random.Generator,
    population: list[ServiceFlow],
    rate_per_s: float,
    limit: int,
) -> Iterator[tuple[float, int]]:
    """Lazy Poisson arrival stream: ``limit`` pairs of
    ``(gap_ms_since_previous, flow_index)``.

    Nothing is precomputed — consuming k arrivals draws exactly 2k
    variates, so the stream scales to millions of requests.
    """
    if rate_per_s <= 0:
        raise ValueError("open-loop arrivals need rate_per_s > 0")
    mean_gap_ms = 1000.0 / rate_per_s
    weights = flow_weights(population)
    indices = np.arange(len(population))
    for _ in range(limit):
        gap = float(rng.exponential(mean_gap_ms))
        index = int(rng.choice(indices, p=weights))
        yield gap, index


def closed_loop_pick(
    rng: np.random.Generator,
    population: list[ServiceFlow],
    weights: np.ndarray,
) -> int:
    """One weighted flow pick for a closed-loop client."""
    return int(rng.choice(np.arange(len(population)), p=weights))
