"""The shared finding record every static checker emits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class Finding:
    """One static-analysis diagnostic, formatted ``path:line:col``.

    ``rule`` is the stable machine name (what a ``# repro:
    ignore[rule]`` comment suppresses); ``suppressed`` marks findings
    that an ignore comment silenced — they are kept so tooling can
    report suppression counts, but they never fail a run.
    """

    rule: str
    message: str
    path: str
    line: int
    col: int = 0
    suppressed: bool = False

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}{tag}"


def format_findings(findings: Iterable[Finding]) -> str:
    """One finding per line, stable order (path, line, col, rule)."""
    ordered = sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    )
    return "\n".join(f.format() for f in ordered)
