"""The oracle layer: run one fuzz case through the platform's checks.

Each case kind maps onto oracles the repo already trusts:

* ``plan`` — the PR 2 static verifier (:func:`verify_plan`) plus the
  PR 7 interference analyzer (:func:`detect_interference`).  When the
  case carries an advgen expectation (a known injected conflict kind,
  or "provably disjoint"), a contradiction between that ground truth
  and the analyzer is classified ``divergence`` — a detector bug, the
  most severe find this oracle can make.
* ``chaos`` — a full seeded :func:`run_campaign` simulation; the live
  checker's trace invariants plus the completion liveness property
  (every flow completes or is parked with a report).
* ``serve`` — a full :func:`run_service` run; live-checker violations
  plus the service's ``invariants_ok`` record audit.
* ``divergence`` — the same seeded scenario executed under two
  systems (SL vs DL, P4Update vs ez-Segway); their completion and
  consistency verdicts must agree.
* ``ops`` — a full :func:`~repro.ops.session.run_session` operations
  session; live-checker violations, the record invariants audit, and
  the move state machine's no-stranded-flows property (a flow a drain
  or migration left in limbo is always a bug, whatever the topology
  did meanwhile).

Outcomes: ``pass`` (all checks hold), ``violation`` (an invariant was
tripped), ``divergence`` (two oracles disagree), ``crash`` (a
generator/oracle raised — contained by :func:`classify`, never
aborting a campaign).  Every verdict carries the coverage keys that
drive corpus retention (:mod:`repro.fuzz.coverage`).
"""

from __future__ import annotations

import dataclasses
import traceback
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.fuzz.coverage import obs_coverage_keys
from repro.fuzz.gen import FUZZ_KINDS, FuzzCase
from repro.sim.reset import reset_global_state

#: Classification outcomes, from best to worst.
OUTCOMES = ("pass", "violation", "divergence", "crash")

#: Scenario-stream domain separator (same value the sweep worker uses,
#: so divergence scenarios look exactly like sweep-shard scenarios).
_SCENARIO_STREAM = 0x5CE2


@dataclass(frozen=True)
class OracleVerdict:
    """The classified outcome of one case evaluation."""

    outcome: str
    oracle: str
    kinds: tuple[str, ...] = ()
    coverage: tuple[str, ...] = ()
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "oracle": self.oracle,
            "kinds": list(self.kinds),
            "coverage": list(self.coverage),
            "detail": dict(self.detail),
        }


def verdict_from_dict(data: dict) -> OracleVerdict:
    return OracleVerdict(
        outcome=str(data["outcome"]),
        oracle=str(data["oracle"]),
        kinds=tuple(str(k) for k in data.get("kinds", ())),
        coverage=tuple(str(k) for k in data.get("coverage", ())),
        detail=dict(data.get("detail", {})),
    )


def failure_key(case_kind: str, verdict: OracleVerdict) -> tuple[str, ...]:
    """The identity of a finding: what "the same bug again" means.

    Coarse on purpose — shrunk payloads of one root cause differ
    byte-wise across seeds, but their (case kind, outcome, oracle,
    violation kinds) fingerprint is stable.
    """
    return (case_kind, verdict.outcome, verdict.oracle) + tuple(verdict.kinds)


def classify(case: FuzzCase) -> OracleVerdict:
    """Evaluate with crash containment: an oracle exception becomes a
    structured ``crash`` verdict instead of aborting the campaign."""
    try:
        return evaluate_case(case)
    except Exception as exc:
        tb = traceback.format_exc()
        error = type(exc).__name__
        return OracleVerdict(
            outcome="crash",
            oracle="oracle",
            kinds=(error,),
            coverage=(f"crash:{case.kind}:{error}",),
            detail={"message": str(exc), "traceback_tail": tb[-2000:]},
        )


def evaluate_case(case: FuzzCase) -> OracleVerdict:
    """Run the kind-appropriate oracle stack (may raise)."""
    if case.kind not in FUZZ_KINDS:
        raise ValueError(f"unknown fuzz case kind {case.kind!r}")
    # Fresh global state per case: a case's verdict must not depend on
    # its position in a campaign, or shrinking/replay would diverge
    # from the original classification.
    reset_global_state()
    if case.kind == "plan":
        return _evaluate_plan(case.payload)
    if case.kind == "chaos":
        return _evaluate_chaos(case.payload)
    if case.kind == "serve":
        return _evaluate_serve(case.payload)
    if case.kind == "ops":
        return _evaluate_ops(case.payload)
    return _evaluate_divergence(case.payload)


# -- plan --------------------------------------------------------------------


def _evaluate_plan(payload: dict) -> OracleVerdict:
    from repro.analysis.interference import BatchPolicies, detect_interference
    from repro.analysis.plan import plan_from_dict, verify_plan

    plans = [plan_from_dict(doc) for doc in payload["plans"]]
    plan_kinds = sorted(
        {v.kind for plan in plans for v in verify_plan(plan).violations}
    )
    policies_doc = dict(payload.get("policies", {}))
    policies = BatchPolicies(
        same_flow=bool(policies_doc.get("same_flow", False)),
        shared_switch=bool(policies_doc.get("shared_switch", False)),
        max_in_flight=int(policies_doc.get("max_in_flight", 0)),
        extra_order=tuple(
            (int(a), int(b)) for a, b in policies_doc.get("extra_order", ())
        ),
    )
    capacities = {
        tuple(key.split("|", 1)): float(cap)
        for key, cap in sorted(payload.get("capacities", {}).items())
    }
    finding_kinds: list[str] = []
    if len(plans) >= 2:
        report = detect_interference(
            plans,
            policies,
            capacities,  # type: ignore[arg-type]
            congestion_aware=bool(payload.get("congestion_aware", True)),
            label="fuzz",
        )
        finding_kinds = sorted({f.kind for f in report.findings})

    kinds = tuple(
        [f"plan:{k}" for k in plan_kinds]
        + [f"interference:{k}" for k in finding_kinds]
    )
    coverage = list(kinds)
    detail: dict[str, Any] = {
        "plans": len(plans),
        "plan_violations": plan_kinds,
        "interference_findings": finding_kinds,
    }

    expect = payload.get("expect_kind")
    if expect is not None:
        expect = str(expect)
        detail["expect_kind"] = expect
        if expect and expect not in finding_kinds:
            return OracleVerdict(
                outcome="divergence",
                oracle="advgen-expectation",
                kinds=(f"missed:{expect}",),
                coverage=tuple(coverage + [f"advgen:missed:{expect}"]),
                detail=detail,
            )
        if not expect and finding_kinds:
            return OracleVerdict(
                outcome="divergence",
                oracle="advgen-expectation",
                kinds=tuple(f"false-positive:{k}" for k in finding_kinds),
                coverage=tuple(coverage + ["advgen:false-positive"]),
                detail=detail,
            )
    if kinds:
        return OracleVerdict(
            outcome="violation",
            oracle="static",
            kinds=kinds,
            coverage=tuple(coverage),
            detail=detail,
        )
    return OracleVerdict(
        outcome="pass",
        oracle="static",
        coverage=("plan:clean",),
        detail=detail,
    )


# -- chaos -------------------------------------------------------------------


def _evaluate_chaos(payload: dict) -> OracleVerdict:
    from repro.chaos.campaign import load_campaign
    from repro.chaos.runner import run_campaign
    from repro.obs.context import make_obs

    campaign = load_campaign(dict(payload["campaign"]))
    obs = make_obs()
    try:
        result = run_campaign(campaign, obs=obs)
    except RuntimeError as exc:
        # Workload generation can legitimately fail (no feasible
        # near-capacity reroute); same seed -> same failure, so this
        # is a deterministic non-finding, not a crash.
        return OracleVerdict(
            outcome="pass",
            oracle="chaos",
            coverage=("chaos:scenario-infeasible",),
            detail={"scenario_error": str(exc)},
        )

    kinds = sorted({f"chaos:{v['kind']}" for v in result.violations})
    if not result.completed:
        kinds.append("chaos:incomplete")
    coverage = list(kinds)
    if result.flows_parked:
        coverage.append("chaos:parked")
    if result.reroutes:
        coverage.append("chaos:reroutes")
    if result.retransmissions:
        coverage.append("chaos:retransmissions")
    if result.retry_exhausted:
        coverage.append("chaos:retry-exhausted")
    for plane in sorted(result.fault_counts):
        for fault_kind, count in sorted(result.fault_counts[plane].items()):
            if count:
                coverage.append(f"chaos:fault:{plane}:{fault_kind}")
    coverage.extend(obs_coverage_keys(obs))
    detail = {
        "flows_total": result.flows_total,
        "flows_completed": result.flows_completed,
        "flows_parked": result.flows_parked,
        "violations": len(result.violations),
        "trace_signature": result.trace_signature,
    }
    return OracleVerdict(
        outcome="violation" if kinds else "pass",
        oracle="chaos",
        kinds=tuple(kinds),
        coverage=tuple(sorted(set(coverage))),
        detail=detail,
    )


# -- serve -------------------------------------------------------------------


def _evaluate_serve(payload: dict) -> OracleVerdict:
    from repro.obs.context import make_obs
    from repro.serve.service import run_service
    from repro.serve.spec import load_serve_spec

    spec = load_serve_spec(dict(payload["serve"]))
    obs = make_obs()
    result = run_service(spec, obs=obs)

    kinds = sorted({f"serve:{v['kind']}" for v in result.violations})
    if not result.invariants_ok:
        kinds.append("serve:invariants")
    coverage = list(kinds)
    for outcome_kind, count in sorted(result.outcome_counts.items()):
        if count:
            coverage.append(f"serve:outcome:{outcome_kind}")
    for event in result.interference:
        coverage.append(f"serve:gate:{event.get('action')}")
    coverage.extend(obs_coverage_keys(obs))
    detail = {
        "requests": len(result.records),
        "outcomes": dict(sorted(result.outcome_counts.items())),
        "violations": len(result.violations),
        "invariants_ok": result.invariants_ok,
        "signature": result.signature(),
    }
    return OracleVerdict(
        outcome="violation" if kinds else "pass",
        oracle="serve",
        kinds=tuple(kinds),
        coverage=tuple(sorted(set(coverage))),
        detail=detail,
    )


# -- ops ---------------------------------------------------------------------


def _evaluate_ops(payload: dict) -> OracleVerdict:
    from repro.obs.context import make_obs
    from repro.ops.session import run_session
    from repro.ops.spec import load_session_spec

    spec = load_session_spec(dict(payload["ops"]))
    obs = make_obs()
    result = run_session(spec, obs=obs)
    summary = result.ops_summary()

    kinds = sorted({f"ops:{v['kind']}" for v in result.violations})
    if not result.invariants_ok:
        kinds.append("ops:invariants")
    if summary["moves_by_outcome"].get("stranded"):
        # A move whose install completed but whose flow record never
        # converged: the one outcome that is a bug by definition.
        kinds.append("ops:stranded")
    coverage = list(kinds)
    for outcome_kind, count in sorted(result.outcome_counts.items()):
        if count:
            coverage.append(f"ops:outcome:{outcome_kind}")
    for status, count in sorted(summary["ops_by_status"].items()):
        if count:
            coverage.append(f"ops:op:{status}")
    for move_outcome, count in sorted(summary["moves_by_outcome"].items()):
        if count:
            coverage.append(f"ops:move:{move_outcome}")
    if not summary["drains_clean"]:
        coverage.append("ops:drain-dirty")
    coverage.extend(obs_coverage_keys(obs))
    detail = {
        "requests": len(result.records),
        "outcomes": dict(sorted(result.outcome_counts.items())),
        "ops": summary,
        "violations": len(result.violations),
        "invariants_ok": result.invariants_ok,
        "signature": result.signature(),
    }
    return OracleVerdict(
        outcome="violation" if kinds else "pass",
        oracle="ops",
        kinds=tuple(kinds),
        coverage=tuple(sorted(set(coverage))),
        detail=detail,
    )


# -- divergence --------------------------------------------------------------


def _evaluate_divergence(payload: dict) -> OracleVerdict:
    from repro.chaos.runner import TOPOLOGIES
    from repro.harness.experiment import run_experiment
    from repro.harness.scenarios import multi_flow_scenario, single_flow_scenario
    from repro.params import SimParams

    seed = int(payload["seed"])
    topo = TOPOLOGIES[str(payload["topology"])]()
    scenario_rng = np.random.default_rng([seed, _SCENARIO_STREAM])
    try:
        if str(payload.get("scenario", "single")) == "single":
            scenario = single_flow_scenario(topo, rng=scenario_rng)
        else:
            scenario = multi_flow_scenario(topo, rng=scenario_rng)
    except RuntimeError as exc:
        return OracleVerdict(
            outcome="pass",
            oracle="cross-system",
            coverage=("div:scenario-infeasible",),
            detail={"scenario_error": str(exc)},
        )

    params = SimParams(seed=seed)
    overrides = dict(payload.get("params", {}))
    if overrides:
        params = dataclasses.replace(params, **overrides)
    congestion_aware = bool(payload.get("congestion_aware", True))

    systems = [str(s) for s in payload["systems"]]
    summaries: dict[str, dict[str, Any]] = {}
    coverage: list[str] = []
    for system in systems:
        reset_global_state()
        result = run_experiment(
            system, scenario, params=params, congestion_aware=congestion_aware
        )
        summaries[system] = {
            "completed": bool(result.completed),
            "consistency_ok": bool(result.consistency_ok),
            "violations": int(result.violations),
        }
        coverage.append(
            f"div:{system}:{'completed' if result.completed else 'incomplete'}"
        )
        if result.violations:
            coverage.append(f"div:{system}:violations")

    a, b = systems[0], systems[1]
    mismatches: list[str] = []
    for field_name in ("completed", "consistency_ok"):
        if summaries[a][field_name] != summaries[b][field_name]:
            mismatches.append(f"mismatch:{field_name}")
    if (summaries[a]["violations"] > 0) != (summaries[b]["violations"] > 0):
        mismatches.append("mismatch:violations")

    detail: dict[str, Any] = {"systems": summaries, "scenario": scenario.description}
    if mismatches:
        kinds = tuple(sorted(mismatches))
        return OracleVerdict(
            outcome="divergence",
            oracle="cross-system",
            kinds=kinds,
            coverage=tuple(sorted(set(coverage + [f"div:{m}" for m in kinds]))),
            detail=detail,
        )
    if summaries[a]["violations"] and summaries[b]["violations"]:
        return OracleVerdict(
            outcome="violation",
            oracle="cross-system",
            kinds=("both-systems-violate",),
            coverage=tuple(sorted(set(coverage + ["div:both-violations"]))),
            detail=detail,
        )
    coverage.append("div:agree")
    return OracleVerdict(
        outcome="pass",
        oracle="cross-system",
        coverage=tuple(sorted(set(coverage))),
        detail=detail,
    )
