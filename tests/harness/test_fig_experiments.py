"""Tests for the §4.1 (Fig. 2) and §4.2 (Fig. 4) demonstrations."""

import pytest

from repro.harness.fig_experiments import run_fig2, run_fig4
from repro.harness.scenarios import InconsistentUpdateScenario
from repro.params import DelayDistribution, SimParams


def fig2_params(seed=0):
    return SimParams(
        seed=seed,
        pipeline_delay=DelayDistribution.constant(0.2),
        rule_install_delay=DelayDistribution.constant(1.0),
        controller_service=DelayDistribution.constant(0.5),
    )


def test_fig2_ezsegway_loops_packets():
    """§4.1: under ez-Segway, packets received at v1 loop through
    {v1, v2, v3} during the delay window and some die of TTL expiry."""
    result = run_fig2("ezsegway", params=fig2_params())
    assert result.duplicates_at_v1, "expected looped packets at v1"
    assert result.ttl_losses > 0, "expected TTL-expired drops"
    assert result.loop_window_ms > 0
    assert result.consistency_violations > 0, "the checker must see the loop"


def test_fig2_p4update_never_loops():
    """§4.1: P4Update's local verification rejects the out-of-order
    update: every probe is received at v1 exactly once and none die."""
    result = run_fig2("p4update", params=fig2_params())
    assert result.duplicates_at_v1 == {}, "no packet may be seen twice at v1"
    assert result.ttl_losses == 0
    assert result.consistency_violations == 0


def test_fig2_p4update_delivers_everything():
    result = run_fig2("p4update", params=fig2_params())
    delivered = {o.seq for o in result.delivered_at_v4}
    assert len(delivered) == result.probes_sent


def test_fig2_ezsegway_loses_packets():
    result = run_fig2("ezsegway", params=fig2_params())
    delivered = {o.seq for o in result.delivered_at_v4}
    assert len(delivered) < result.probes_sent, "TTL losses must show at v4"


def test_fig2_rejects_unknown_system():
    with pytest.raises(ValueError):
        run_fig2("central")


def test_fig2_scenario_knobs():
    scenario = InconsistentUpdateScenario(b_delay_ms=150.0, probe_rate_pps=250.0)
    result = run_fig2("ezsegway", scenario=scenario, params=fig2_params())
    assert result.probes_sent > 100  # 250 pps over the longer window


# -- Fig. 4 -----------------------------------------------------------------

def fig4_params(seed=0):
    return SimParams(seed=seed).with_dionysus_install_delay()


def test_fig4_p4update_fast_forwards():
    result = run_fig4("p4update", params=fig4_params())
    assert result.completed
    assert result.consistency_violations == 0
    assert result.u3_completion_ms > 0


def test_fig4_ezsegway_serializes():
    result = run_fig4("ezsegway", params=fig4_params())
    assert result.completed
    assert result.consistency_violations == 0


def test_fig4_p4update_faster_than_ezsegway():
    """§4.2: P4Update skips ahead to U3 while ez-Segway completes U2
    first — 'about 4x faster' in the paper; we assert a clear win."""
    import numpy as np

    p4, ez = [], []
    for seed in range(10):
        p4.append(run_fig4("p4update", params=fig4_params(seed)).u3_completion_ms)
        ez.append(run_fig4("ezsegway", params=fig4_params(seed)).u3_completion_ms)
    assert np.mean(p4) < np.mean(ez) / 2.0, (np.mean(p4), np.mean(ez))


def test_fig4_rejects_unknown_system():
    with pytest.raises(ValueError):
        run_fig4("central")
