"""Message-overhead comparison (the paper's scalability argument, §1,
§10, §11 "Reducing the Number of Control Plane Messages").

Counts the messages each system sends to complete the Fig. 1 single
flow update: P4Update touches the controller once per switch (UIMs)
plus one feedback message, coordinating via data-plane UNMs; Central
crosses the control channel twice per node update (command + ack) over
several dependency rounds.
"""

from benchutils import emit_manifest, print_header

from repro.core.messages import UpdateType
from repro.harness.analysis import count_messages
from repro.harness.baselines_build import build_central_network, build_ezsegway_network
from repro.harness.build import build_p4update_network
from repro.params import SimParams
from repro.topo import fig1_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
from repro.traffic.flows import Flow


def run_p4update(update_type, compact=False):
    dep = build_p4update_network(fig1_topology(), params=SimParams(seed=0))
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    if compact:
        dep.controller.compact_update(flow.flow_id, list(FIG1_NEW_PATH), update_type)
    else:
        dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), update_type)
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    return count_messages(dep.network.trace), None


def run_ezsegway():
    dep = build_ezsegway_network(fig1_topology(), params=SimParams(seed=0))
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH))
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    return count_messages(dep.network.trace), None


def run_central():
    dep = build_central_network(fig1_topology(), params=SimParams(seed=0))
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH))
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    return count_messages(dep.network.trace), dep.controller.rounds_executed


def collect():
    return {
        "p4update-sl": run_p4update(UpdateType.SINGLE),
        "p4update-dl": run_p4update(UpdateType.DUAL),
        "p4u-compact": run_p4update(UpdateType.DUAL, compact=True),
        "ezsegway": run_ezsegway(),
        "central": run_central(),
    }


def test_message_overhead(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)

    print_header("Message overhead — Fig. 1 single-flow update")
    for system, (stats, rounds) in results.items():
        suffix = f"  rounds={rounds}" if rounds is not None else ""
        print(stats.row(system) + suffix)
        detail = "  ".join(f"{k}={v}" for k, v in sorted(stats.by_type.items()))
        print(f"{'':14s} {detail}")

    p4_sl, _ = results["p4update-sl"]
    p4_dl, _ = results["p4update-dl"]
    compact, _ = results["p4u-compact"]
    central, rounds = results["central"]

    # §11 compact mode: UIMs only to v7, v4, v2.
    assert compact.by_type.get("UIM") == 3
    assert compact.control_plane < p4_dl.control_plane

    # P4Update: exactly one UIM per new-path switch + one UFM.
    assert p4_sl.by_type.get("UIM") == len(FIG1_NEW_PATH)
    assert p4_sl.by_type.get("UFM") == 1
    # Central crosses the control plane at least twice per changed node
    # (command + ack) — strictly more control messages than P4Update.
    assert central.control_plane > p4_sl.control_plane
    assert rounds is not None and rounds >= 2
    # DL trades extra data-plane notifications for parallelism.
    assert p4_dl.data_plane >= p4_sl.data_plane
    # Central needs no data-plane coordination at all.
    assert central.data_plane == 0

    emit_manifest(
        "message_overhead",
        params={"topology": "fig1"},
        results={
            system: {
                "control_plane": stats.control_plane,
                "data_plane": stats.data_plane,
                "by_type": dict(stats.by_type),
                **({"rounds": rounds} if rounds is not None else {}),
            }
            for system, (stats, rounds) in results.items()
        },
        seed=0,
    )
