"""The zero-overhead invariant: observability must never change the
simulation.  Obs-off and obs-on runs of the same seed produce the
bit-identical simulated trace, and the disabled context does no work.
"""

from repro.core.messages import UpdateType
from repro.harness.build import build_p4update_network
from repro.obs import NULL_OBS, make_obs
from repro.params import SimParams
from repro.topo import fig1_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
from repro.traffic.flows import Flow

from tests.sim.test_determinism import trace_signature


def run_fig1(seed: int, obs=None):
    dep = build_p4update_network(
        fig1_topology(),
        params=SimParams(seed=seed).with_dionysus_install_delay(),
        obs=obs,
    )
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    return dep


def test_obs_on_equals_obs_off():
    baseline = trace_signature(run_fig1(7))
    instrumented = trace_signature(run_fig1(7, obs=make_obs()))
    assert baseline == instrumented


def test_profiling_does_not_change_the_trace():
    baseline = trace_signature(run_fig1(7))
    profiled = trace_signature(run_fig1(7, obs=make_obs(profile=True)))
    assert baseline == profiled


def test_obs_enabled_experiment_matches_disabled():
    import numpy as np

    from repro.harness.experiment import run_experiment
    from repro.harness.scenarios import multi_flow_scenario
    from repro.topo import b4_topology

    scenario1 = multi_flow_scenario(b4_topology(), np.random.default_rng(3))
    scenario2 = multi_flow_scenario(b4_topology(), np.random.default_rng(3))
    plain = run_experiment("p4update-sl", scenario1, params=SimParams(seed=3))
    instrumented = run_experiment(
        "p4update-sl", scenario2, params=SimParams(seed=3), obs=make_obs()
    )
    assert plain.total_update_time_ms == instrumented.total_update_time_ms
    assert plain.per_flow_ms == instrumented.per_flow_ms


def test_null_obs_is_the_default_and_inert():
    dep = run_fig1(0)
    assert dep.controller.obs is NULL_OBS
    for switch in dep.switches.values():
        assert switch.obs is NULL_OBS
    assert dep.network.obs is NULL_OBS
    assert not NULL_OBS.enabled
    # The disabled context captured nothing during the whole run.
    assert NULL_OBS.snapshot() == {"metrics": {}, "spans": []}
    assert dep.network.engine.profiler is None


def test_null_obs_convenience_calls_are_noops():
    NULL_OBS.count("anything", node="x")
    NULL_OBS.observe("anything_ms", 4.2, node="x")
    assert NULL_OBS.snapshot() == {"metrics": {}, "spans": []}


def test_enabled_run_collects_protocol_metrics():
    obs = make_obs()
    dep = run_fig1(0, obs=obs)
    assert dep.controller.update_complete is not None
    metrics = obs.metrics
    assert metrics.total("uims_sent") == 8          # one UIM per Fig. 1 switch
    assert metrics.total("updates_completed") == 1
    assert metrics.total("messages_sent") > 0
    assert metrics.total("rule_installs") == 8
    snap = obs.snapshot()
    assert snap["metrics"]["messages_sent"]
