"""Unit tests for flow specifications."""

import pytest

from repro.traffic.flows import Flow, FlowSet, flow_hash


def test_flow_hash_deterministic_and_directional():
    assert flow_hash("a", "b") == flow_hash("a", "b")
    assert flow_hash("a", "b") != flow_hash("b", "a")


def test_flow_hash_respects_space():
    assert 0 <= flow_hash("x", "y", space=128) < 128


def test_flow_between_builds_id():
    flow = Flow.between("a", "b", size=2.0)
    assert flow.flow_id == flow_hash("a", "b")
    assert flow.size == 2.0


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Flow(flow_id=1, src="a", dst="b", size=-1.0)


def test_path_endpoint_validation():
    with pytest.raises(ValueError):
        Flow(flow_id=1, src="a", dst="b", size=1.0, old_path=["a", "c"])
    with pytest.raises(ValueError):
        Flow(flow_id=1, src="a", dst="b", size=1.0, new_path=["c", "b"])


def test_path_length_validation():
    with pytest.raises(ValueError):
        Flow(flow_id=1, src="a", dst="a", size=1.0, old_path=["a"])


def test_path_loop_rejected():
    with pytest.raises(ValueError):
        Flow(
            flow_id=1, src="a", dst="d", size=1.0,
            old_path=["a", "b", "a", "d"],
        )


def test_edges_and_changed_nodes():
    flow = Flow(
        flow_id=1, src="a", dst="d", size=1.0,
        old_path=["a", "b", "d"],
        new_path=["a", "c", "d"],
    )
    assert flow.old_edges() == [("a", "b"), ("b", "d")]
    assert flow.new_edges() == [("a", "c"), ("c", "d")]
    # 'a' changes next hop (b -> c); 'c' is newly forwarding; 'd' is egress.
    assert flow.changed_nodes() == {"a", "c"}


def test_changed_nodes_empty_when_paths_equal():
    flow = Flow(
        flow_id=1, src="a", dst="b", size=1.0,
        old_path=["a", "b"], new_path=["a", "b"],
    )
    assert flow.changed_nodes() == set()


def test_flowset_rejects_duplicates():
    flows = FlowSet([Flow(flow_id=1, src="a", dst="b", size=1.0)])
    with pytest.raises(ValueError):
        flows.add(Flow(flow_id=1, src="c", dst="d", size=1.0))


def test_flowset_lookup_and_len():
    flow = Flow(flow_id=9, src="a", dst="b", size=1.0)
    flows = FlowSet([flow])
    assert flows[9] is flow
    assert 9 in flows and 10 not in flows
    assert len(flows) == 1


def test_link_load_aggregates_by_undirected_link():
    flows = FlowSet([
        Flow(flow_id=1, src="a", dst="c", size=2.0, old_path=["a", "b", "c"]),
        Flow(flow_id=2, src="c", dst="a", size=3.0, old_path=["c", "b", "a"]),
    ])
    load = flows.link_load("old")
    assert load[frozenset(("a", "b"))] == 5.0
    assert load[frozenset(("b", "c"))] == 5.0


def test_link_load_which_validation():
    with pytest.raises(ValueError):
        FlowSet().link_load("future")


def test_feasible_checks_capacities():
    flows = FlowSet([
        Flow(flow_id=1, src="a", dst="b", size=6.0, old_path=["a", "b"]),
    ])
    assert flows.feasible({frozenset(("a", "b")): 10.0}, "old")
    assert not flows.feasible({frozenset(("a", "b")): 5.0}, "old")
    # Missing capacity entries are treated as unconstrained.
    assert flows.feasible({}, "old")
