"""Span nesting, dual clocks and tree export."""

from repro.obs.spans import NullSpanTracker, SpanTracker


class FakeClock:
    def __init__(self, start=0.0):
        self.t = start

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def test_nesting_builds_a_tree():
    tracker = SpanTracker()
    with tracker.span("experiment"):
        with tracker.span("preparation"):
            pass
        with tracker.span("run_to_quiescence"):
            with tracker.span("inner"):
                pass
    assert len(tracker.roots) == 1
    root = tracker.roots[0]
    assert root.name == "experiment"
    assert [c.name for c in root.children] == ["preparation", "run_to_quiescence"]
    assert [c.name for c in root.children[1].children] == ["inner"]


def test_sibling_spans_are_not_nested():
    tracker = SpanTracker()
    with tracker.span("a"):
        pass
    with tracker.span("b"):
        pass
    assert [r.name for r in tracker.roots] == ["a", "b"]
    assert not tracker.roots[0].children


def test_dual_clock_durations():
    wall = FakeClock(100.0)
    sim = FakeClock(0.0)
    tracker = SpanTracker(sim_clock=sim, wall_clock=wall)
    with tracker.span("phase") as span:
        wall.advance(0.25)          # perf_counter seconds
        sim.advance(42.0)           # simulated ms
    assert span.wall_ms == 250.0
    assert span.sim_ms == 42.0
    assert span.sim_start == 0.0 and span.sim_end == 42.0


def test_no_sim_clock_means_none():
    tracker = SpanTracker()
    with tracker.span("wall_only") as span:
        pass
    assert span.sim_ms is None
    assert span.wall_ms is not None and span.wall_ms >= 0.0


def test_attrs_and_to_dict():
    wall = FakeClock()
    sim = FakeClock()
    tracker = SpanTracker(sim_clock=sim, wall_clock=wall)
    with tracker.span("experiment", system="p4update", flows=3):
        wall.advance(0.001)
        sim.advance(5.0)
        with tracker.span("child"):
            sim.advance(1.0)
    (doc,) = tracker.tree()
    assert doc["name"] == "experiment"
    assert doc["attrs"] == {"system": "p4update", "flows": 3}
    assert doc["sim_ms"] == 6.0
    assert [c["name"] for c in doc["children"]] == ["child"]
    assert doc["children"][0]["sim_ms"] == 1.0


def test_current_tracks_the_stack():
    tracker = SpanTracker()
    assert tracker.current is None
    with tracker.span("outer"):
        assert tracker.current.name == "outer"
        with tracker.span("inner"):
            assert tracker.current.name == "inner"
        assert tracker.current.name == "outer"
    assert tracker.current is None


def test_exception_still_closes_span():
    tracker = SpanTracker()
    try:
        with tracker.span("doomed"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert tracker.roots[0].wall_end is not None
    assert tracker.current is None


def test_null_tracker_records_nothing():
    tracker = NullSpanTracker()
    assert not tracker.enabled
    with tracker.span("x", a=1):
        with tracker.span("y"):
            pass
    assert tracker.roots == []
    assert tracker.tree() == []
    # Shared singleton context manager: no allocation per span.
    assert tracker.span("a") is tracker.span("b")
