"""Register arrays — P4's stateful memory.

Registers persist across packets and are writable from both the data
plane (pipeline actions) and the control plane (runtime API), which is
exactly the property P4Update exploits to apply new routing state "at
the correct time" (paper §2.1).
"""

from __future__ import annotations

from typing import Iterator


class RegisterArray:
    """Fixed-size array of unsigned values of a given bit width."""

    def __init__(self, name: str, size: int, bits: int = 32, initial: int = 0) -> None:
        if size <= 0:
            raise ValueError(f"register array {name!r} needs positive size")
        if bits <= 0:
            raise ValueError(f"register array {name!r} needs positive width")
        self.name = name
        self.size = size
        self.bits = bits
        self._mask = (1 << bits) - 1
        self._cells = [initial & self._mask] * size
        self.reads = 0
        self.writes = 0

    def read(self, index: int) -> int:
        self._check(index)
        self.reads += 1
        return self._cells[index]

    def write(self, index: int, value: int) -> None:
        self._check(index)
        self.writes += 1
        self._cells[index] = int(value) & self._mask

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(
                f"register {self.name!r} index {index} out of range [0, {self.size})"
            )

    def reset(self, value: int = 0) -> None:
        self._cells = [value & self._mask] * self.size

    def snapshot(self) -> list[int]:
        return list(self._cells)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[int]:
        return iter(self._cells)


class RegisterFile:
    """Named collection of register arrays belonging to one switch."""

    def __init__(self) -> None:
        self._arrays: dict[str, RegisterArray] = {}

    def define(self, name: str, size: int, bits: int = 32, initial: int = 0) -> RegisterArray:
        if name in self._arrays:
            raise ValueError(f"register array {name!r} already defined")
        array = RegisterArray(name, size, bits, initial)
        self._arrays[name] = array
        return array

    def __getitem__(self, name: str) -> RegisterArray:
        try:
            return self._arrays[name]
        except KeyError:
            raise KeyError(f"no register array {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def names(self) -> list[str]:
        return sorted(self._arrays)
