"""The global-state snapshot registry and its audit.

The byte-identical-resume contract depends on every module-level
counter being both resettable (fresh runs) and snapshottable
(checkpoint/restore).  The audit here pins the two registries to the
same name set, so a counter added to one but not the other fails CI
instead of silently breaking resume.
"""

import pytest

from repro.sim.reset import registered_resets, reset_global_state
from repro.sim.snapshot import (
    capture_global_state,
    register_global_snapshot,
    registered_snapshots,
    restore_global_state,
)


def test_snapshot_registry_covers_every_reset_hook():
    # A counter that resets but does not snapshot would silently
    # renumber after resume; one that snapshots but never resets would
    # leak across fresh runs.  Both registries must agree.
    assert set(registered_snapshots()) == set(registered_resets())


def test_capture_restore_round_trip():
    reset_global_state()
    baseline = capture_global_state()
    assert set(baseline) == set(registered_snapshots())

    # Burn some packet ids, capture, burn more, then restore: the
    # capture must bring the counter back exactly.
    from repro.p4.packet import Packet

    Packet()
    mid = capture_global_state()
    Packet()
    Packet()
    restore_global_state(mid)
    assert capture_global_state() == mid


def test_restore_rejects_missing_counter():
    reset_global_state()
    state = capture_global_state()
    state.pop("p4.packet_ids")
    with pytest.raises(KeyError):
        restore_global_state(state)


def test_register_is_idempotent_per_name():
    before = registered_snapshots()
    calls = []
    register_global_snapshot("test.temp", lambda: 1, lambda v: calls.append(v))
    register_global_snapshot("test.temp", lambda: 2, lambda v: calls.append(v))
    try:
        assert registered_snapshots().count("test.temp") == 1
        assert capture_global_state()["test.temp"] == 2  # latest wins
    finally:
        from repro.sim import snapshot as snapshot_mod

        snapshot_mod._SNAPSHOT_HOOKS[:] = [
            hook for hook in snapshot_mod._SNAPSHOT_HOOKS
            if hook[0] != "test.temp"
        ]
    assert registered_snapshots() == before
