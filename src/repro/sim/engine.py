"""Heap-based discrete-event engine.

The engine keeps a priority queue of :class:`Event` objects ordered by
simulated time (milliseconds).  Ties are broken by insertion order so
that runs are deterministic.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Optional, Protocol


class SupportsRecord(Protocol):
    """Callback profiler interface (see :mod:`repro.obs.profiler`)."""

    def record(self, callback: Callable[..., Any], elapsed_s: float) -> None:
        ...


class Event:
    """A scheduled callback.

    Events are created through :meth:`Engine.schedule` and can be
    cancelled with :meth:`Engine.cancel` (or :meth:`cancel` directly).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, callback: Callable[..., Any], args: tuple
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.3f} #{self.seq}{state} {self.callback!r}>"


class EngineError(RuntimeError):
    """Raised on invalid engine operations (e.g. scheduling in the past)."""


class Engine:
    """Discrete-event loop with a simulated millisecond clock."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        # Plain int (not itertools.count): the sequence number is part
        # of the snapshotable engine state (repro.sim.snapshot) and a
        # count() iterator cannot be pickled.
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._processed = 0
        # Opt-in wall-clock attribution (repro.obs.profiler).  None by
        # default: the dispatch loop pays one `is None` check per event.
        self._profiler: Optional[SupportsRecord] = None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._processed

    @property
    def profiler(self) -> Optional["SupportsRecord"]:
        return self._profiler

    def set_profiler(self, profiler: Optional["SupportsRecord"]) -> None:
        """Install (or, with None, remove) a callback profiler.

        The profiler's ``record(callback, elapsed_seconds)`` is invoked
        after every executed event.  Profiling observes wall clock
        only — simulated time and event order are unaffected.
        """
        self._profiler = profiler

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now.

        ``delay`` must be non-negative; zero-delay events run after the
        current event completes, in FIFO order.
        """
        if delay < 0:
            raise EngineError(f"cannot schedule in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        event = Event(self._now + delay, seq, callback, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        event.cancel()

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            if self._profiler is None:
                event.callback(*event.args)
            else:
                started = time.perf_counter()  # repro: ignore[wall-clock] profiler
                event.callback(*event.args)
                self._profiler.record(
                    event.callback, time.perf_counter() - started  # repro: ignore[wall-clock] profiler
                )
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` ms is reached, or
        ``max_events`` events have executed.

        ``until`` is an absolute simulated time; when the horizon is hit
        the clock is advanced to exactly ``until``.
        """
        self._running = True
        executed = 0
        try:
            while self._running:
                if max_events is not None and executed >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
                executed += 1
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop a run() in progress after the current event."""
        self._running = False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # The profiler observes wall clock only and may hold callback
        # references that do not pickle; snapshots never carry it (the
        # resumed run can install a fresh one).
        state["_profiler"] = None
        state["_running"] = False
        return state
