"""Capture/restore hooks for process-wide simulator state.

:mod:`repro.sim.reset` resets the audited module-level counters to
their fresh-interpreter values; this module is its checkpointing twin.
An ops session snapshot (:mod:`repro.ops.checkpoint`) pickles the
session object graph — engine queue, switches, NIB, Flow-DB,
orchestrator, RNG streams — but module-level counters live *outside*
that graph, so they are captured here as a small JSON-safe dict and
restored before the resumed session takes its first step.  Without
this, packet numbering (which leaks into trace ``describe()`` strings)
would restart at 1 on resume and break the byte-identical-resume
contract.

New module-level counters must register a capture/restore pair with
:func:`register_global_snapshot` next to their definition, in addition
to their :func:`repro.sim.reset.register_global_reset` hook (the audit
in ``tests/ops/test_snapshot.py`` pins that both registries cover the
same names).
"""

from __future__ import annotations

from typing import Any, Callable

_SNAPSHOT_HOOKS: list[tuple[str, Callable[[], Any], Callable[[Any], None]]] = []


def register_global_snapshot(
    name: str,
    capture: Callable[[], Any],
    restore: Callable[[Any], None],
) -> None:
    """Register a named capture/restore pair (idempotent per name).

    ``capture()`` must return a JSON-safe value; ``restore(value)``
    must accept exactly what ``capture`` returned.
    """
    for i, (existing, _, _) in enumerate(_SNAPSHOT_HOOKS):
        if existing == name:
            _SNAPSHOT_HOOKS[i] = (name, capture, restore)
            return
    _SNAPSHOT_HOOKS.append((name, capture, restore))


def registered_snapshots() -> list[str]:
    """Names of every registered hook, in registration order."""
    _ensure_defaults()
    return [name for name, _, _ in _SNAPSHOT_HOOKS]


def capture_global_state() -> dict[str, Any]:
    """Snapshot every registered module-level counter."""
    _ensure_defaults()
    return {name: capture() for name, capture, _ in _SNAPSHOT_HOOKS}


def restore_global_state(state: dict[str, Any]) -> None:
    """Restore the counters captured by :func:`capture_global_state`.

    Raises ``KeyError`` when the snapshot is missing a registered
    counter — a checkpoint from an older code revision must fail
    loudly, not resume with half the process state.
    """
    _ensure_defaults()
    for name, _, restore in _SNAPSHOT_HOOKS:
        restore(state[name])


def _ensure_defaults() -> None:
    """Lazily register the audited built-in hooks (import-cycle-free)."""
    if any(name == "p4.packet_ids" for name, _, _ in _SNAPSHOT_HOOKS):
        return
    from repro.p4.packet import capture_packet_ids, restore_packet_ids

    register_global_snapshot(
        "p4.packet_ids", capture_packet_ids, restore_packet_ids
    )
