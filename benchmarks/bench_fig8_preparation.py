"""Figure 8 — §9.3 control plane preparation time.

Measures real wall-clock computation time of the control-plane
preparation for 1000 updates on B4, Internet2, AttMpls and Chinanet,
and reports the ratio DL-P4Update / ez-Segway:

* Fig. 8a — without congestion freedom: distance labeling +
  segmentation (P4Update) vs segmentation + in_loop classification +
  order encoding (ez-Segway).  Paper ratio: 0.68-0.73.
* Fig. 8b — with congestion freedom: P4Update adds nothing (the
  dependency resolution lives in the data plane); ez-Segway must also
  build the centralized inter-flow dependency graph with static
  priorities.  Paper ratio: 0.002-0.02 (50x-500x).

Wall-clock times are printed and recorded in the manifest for the
figure itself, but the pass/fail assertions use a deterministic proxy:
the number of Python function calls each preparation executes
(counted via ``sys.setprofile``).  Call counts are identical across
runs and machines, so CI cannot flake on a loaded host, while the
ratios they produce sit in the same bands as the wall-clock ones.

The measurement core is shared with the sweep executor — see
:mod:`repro.harness.prep` (``repro fig8 --workers N`` runs the same
counts as fleet shards).
"""

from benchutils import emit_manifest, print_header

from repro.harness.prep import (
    DEFAULT_COUNT_UPDATES as COUNT_UPDATES,
    DEFAULT_UPDATES as UPDATES,
    FIG8_LABELS,
    FIG8_TOPOLOGIES,
    count_operations,
    prep_workload,
    time_ez,
    time_ez_congestion,
    time_p4update,
)
from repro.topo import (
    attmpls_topology,
    b4_topology,
    chinanet_topology,
    internet2_topology,
)

TOPOLOGIES = [
    (FIG8_LABELS["b4"], b4_topology),
    (FIG8_LABELS["internet2"], internet2_topology),
    (FIG8_LABELS["attmpls"], attmpls_topology),
    (FIG8_LABELS["chinanet"], chinanet_topology),
]

assert len(TOPOLOGIES) == len(FIG8_TOPOLOGIES)


def collect_ratios(obs=None):
    from repro.obs import NULL_OBS

    obs = obs if obs is not None else NULL_OBS
    rows = []
    for label, topo_factory in TOPOLOGIES:
        with obs.spans.span("preparation_workload", topology=label):
            topo, scenario, deployment = prep_workload(topo_factory)
            flows = scenario.flows
            with obs.spans.span("time_p4update"):
                t_p4 = time_p4update(deployment, flows)
            with obs.spans.span("time_ezsegway"):
                t_ez = time_ez(flows)
            with obs.spans.span("time_ezsegway_congestion"):
                t_ez_cong = time_ez_congestion(topo, flows)
            with obs.spans.span("count_operations"):
                ops = count_operations(topo, deployment, flows)
        if obs.enabled:
            per_update_us = 1e6 / UPDATES
            obs.metrics.histogram(
                "prep_time_us", system="p4update"
            ).observe(t_p4 * per_update_us)
            obs.metrics.histogram(
                "prep_time_us", system="ezsegway"
            ).observe(t_ez * per_update_us)
            obs.metrics.histogram(
                "prep_time_us", system="ezsegway-congestion"
            ).observe(t_ez_cong * per_update_us)
        rows.append((label, t_p4, t_ez, t_ez_cong, ops))
    return rows


def test_fig8_preparation_ratio(benchmark):
    from repro.obs import make_obs

    obs = make_obs()
    rows = benchmark.pedantic(collect_ratios, args=(obs,), rounds=1, iterations=1)

    print_header("Fig. 8a — preparation time ratio DL-P4Update / ez-Segway "
                 f"(no congestion freedom, {UPDATES} updates)")
    for label, t_p4, t_ez, _, _ in rows:
        print(f"{label:22s} p4={t_p4*1e3:8.1f} ms  ez={t_ez*1e3:8.1f} ms  "
              f"ratio={t_p4/t_ez:5.2f}   (paper: 0.68-0.73)")

    print_header("Fig. 8b — with congestion freedom")
    for label, t_p4, _, t_ez_cong, _ in rows:
        print(f"{label:22s} p4={t_p4*1e3:8.1f} ms  ez={t_ez_cong*1e3:8.1f} ms  "
              f"ratio={t_p4/t_ez_cong:7.4f}   (paper: 0.002-0.02)")

    print_header(f"deterministic operation counts ({COUNT_UPDATES} updates)")
    for label, _, _, _, (c_p4, c_ez, c_cong) in rows:
        print(f"{label:22s} p4={c_p4:8d} ez={c_ez:8d} ez+cong={c_cong:9d}  "
              f"ratio_a={c_p4/c_ez:5.2f}  ratio_b={c_p4/c_cong:7.4f}")

    # Assertions run on the operation counts, not the wall clock:
    # identical across runs and hosts, so a loaded CI machine cannot
    # flip the verdict.  The counted ratios sit in the same bands.
    for label, _, _, _, (c_p4, c_ez, c_cong) in rows:
        ratio_a = c_p4 / c_ez
        ratio_b = c_p4 / c_cong
        assert ratio_a < 1.0, (
            f"{label}: P4Update prep must be cheaper ({ratio_a:.2f})"
        )
        assert ratio_b < 0.2, (
            f"{label}: congestion freedom must collapse the ratio ({ratio_b:.4f})"
        )

    emit_manifest(
        "fig8_preparation",
        params={
            "updates": UPDATES,
            "count_updates": COUNT_UPDATES,
            "topologies": [label for label, _ in TOPOLOGIES],
        },
        results={
            label: {
                "p4update_s": t_p4,
                "ezsegway_s": t_ez,
                "ezsegway_congestion_s": t_ez_cong,
                "ratio_a": t_p4 / t_ez,
                "ratio_b": t_p4 / t_ez_cong,
                "p4update_ops": c_p4,
                "ezsegway_ops": c_ez,
                "ezsegway_congestion_ops": c_cong,
                "op_ratio_a": c_p4 / c_ez,
                "op_ratio_b": c_p4 / c_cong,
            }
            for label, t_p4, t_ez, t_ez_cong, (c_p4, c_ez, c_cong) in rows
        },
        seed=0,
        obs=obs,
    )
