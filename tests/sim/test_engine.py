"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, EngineError


def test_clock_starts_at_zero():
    engine = Engine()
    assert engine.now == 0.0


def test_schedule_and_run_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(5.0, seen.append, "b")
    engine.schedule(1.0, seen.append, "a")
    engine.schedule(9.0, seen.append, "c")
    engine.run()
    assert seen == ["a", "b", "c"]
    assert engine.now == 9.0


def test_ties_break_by_insertion_order():
    engine = Engine()
    seen = []
    for tag in ("first", "second", "third"):
        engine.schedule(2.0, seen.append, tag)
    engine.run()
    assert seen == ["first", "second", "third"]


def test_zero_delay_runs_after_current_event():
    engine = Engine()
    seen = []

    def outer():
        engine.schedule(0.0, seen.append, "inner")
        seen.append("outer")

    engine.schedule(1.0, outer)
    engine.run()
    assert seen == ["outer", "inner"]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(EngineError):
        engine.schedule(-0.1, lambda: None)


def test_cancel_skips_event():
    engine = Engine()
    seen = []
    event = engine.schedule(1.0, seen.append, "cancelled")
    engine.schedule(2.0, seen.append, "kept")
    engine.cancel(event)
    engine.run()
    assert seen == ["kept"]


def test_run_until_horizon_stops_clock_at_horizon():
    engine = Engine()
    seen = []
    engine.schedule(1.0, seen.append, "early")
    engine.schedule(10.0, seen.append, "late")
    engine.run(until=5.0)
    assert seen == ["early"]
    assert engine.now == 5.0
    engine.run()
    assert seen == ["early", "late"]


def test_run_max_events():
    engine = Engine()
    seen = []
    for i in range(5):
        engine.schedule(float(i + 1), seen.append, i)
    engine.run(max_events=3)
    assert seen == [0, 1, 2]


def test_stop_during_run():
    engine = Engine()
    seen = []

    def stopper():
        seen.append("stop")
        engine.stop()

    engine.schedule(1.0, stopper)
    engine.schedule(2.0, seen.append, "never")
    engine.run()
    assert seen == ["stop"]
    # A fresh run() resumes processing.
    engine.run()
    assert seen == ["stop", "never"]


def test_schedule_at_absolute_time():
    engine = Engine()
    seen = []
    engine.schedule_at(4.0, seen.append, "x")
    engine.run()
    assert engine.now == 4.0 and seen == ["x"]


def test_pending_counts_live_events_only():
    engine = Engine()
    e1 = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    assert engine.pending() == 2
    engine.cancel(e1)
    assert engine.pending() == 1


def test_peek_time_skips_cancelled():
    engine = Engine()
    e1 = engine.schedule(1.0, lambda: None)
    engine.schedule(3.0, lambda: None)
    engine.cancel(e1)
    assert engine.peek_time() == 3.0


def test_processed_events_counter():
    engine = Engine()
    for _ in range(4):
        engine.schedule(1.0, lambda: None)
    engine.run()
    assert engine.processed_events == 4


def test_callback_scheduling_cascade():
    """Events scheduled from callbacks keep the clock monotonic."""
    engine = Engine()
    times = []

    def tick(remaining):
        times.append(engine.now)
        if remaining:
            engine.schedule(2.5, tick, remaining - 1)

    engine.schedule(0.0, tick, 3)
    engine.run()
    assert times == [0.0, 2.5, 5.0, 7.5]
