"""The ``fuzz`` CLI: run gates, replay exit-code inversion, shrink."""

import json
import pathlib

from repro.harness.cli import main

CORPUS_DIR = str(
    pathlib.Path(__file__).resolve().parent / "corpus"
)


def _run_args(tmp_path, *extra):
    return [
        "fuzz", "run",
        "--name", "cli", "--seed", "3", "--budget", "6", "--shards", "2",
        "--cache-dir", str(tmp_path / "cache"),
        "--out-dir", str(tmp_path),
        "--no-shrink",
        *extra,
    ]


def test_fuzz_run_writes_manifest(tmp_path, capsys):
    rc = main(_run_args(tmp_path))
    out = capsys.readouterr().out
    assert rc == 0
    assert "signature " in out
    manifest = tmp_path / "BENCH_fuzz_cli.json"
    assert manifest.exists()
    doc = json.loads(manifest.read_text())
    assert doc["params"]["budget"] == 6


def test_fuzz_run_fail_on_new_against_empty_corpus(tmp_path, capsys):
    empty = tmp_path / "corpus"
    empty.mkdir()
    rc = main(_run_args(tmp_path, "--corpus", str(empty), "--fail-on-new"))
    out = capsys.readouterr().out
    if "finding [NEW]" in out:
        assert rc == 1
        assert "new finding key(s) not in corpus" in out
    else:  # campaign found nothing at this tiny budget: gate passes
        assert rc == 0


def test_fuzz_run_emit_corpus_then_gate_passes(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    # Emission requires shrinking (the corpus holds minimal repros).
    rc = main(
        [
            "fuzz", "run",
            "--name", "cli", "--seed", "3", "--budget", "6", "--shards", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--out-dir", str(tmp_path),
            "--corpus", str(corpus), "--emit-corpus",
        ]
    )
    assert rc == 0
    capsys.readouterr()
    # Second run against the emitted corpus: every key is now known.
    rc = main(
        [
            "fuzz", "run",
            "--name", "cli", "--seed", "3", "--budget", "6", "--shards", "2",
            "--cache-dir", str(tmp_path / "cache"), "--resume",
            "--out-dir", str(tmp_path), "--no-shrink",
            "--corpus", str(corpus), "--fail-on-new",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "finding [NEW]" not in out


def test_fuzz_replay_reproduced_exits_one(capsys):
    from repro.fuzz.corpus import corpus_files

    cases = corpus_files(CORPUS_DIR)
    assert cases
    rc = main(["fuzz", "replay", cases[0]])
    out = capsys.readouterr().out
    assert rc == 1
    assert "REPRODUCED" in out


def test_fuzz_replay_fixed_exits_zero(tmp_path, capsys):
    from repro.fuzz.corpus import corpus_files, load_corpus_file

    doc = load_corpus_file(corpus_files(CORPUS_DIR)[0])
    doc["expect"]["kinds"] = ["plan:never-this-kind"]
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps(doc))
    rc = main(["fuzz", "replay", str(stale)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fixed" in out


def test_fuzz_replay_invalid_file_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    rc = main(["fuzz", "replay", str(bad)])
    assert rc == 2
    assert "error:" in capsys.readouterr().err


def test_fuzz_shrink_command_is_idempotent_on_minimal_case(tmp_path, capsys):
    from repro.fuzz.corpus import corpus_files, load_corpus_file

    source = corpus_files(CORPUS_DIR)[0]
    target = tmp_path / "case.json"
    target.write_text(json.dumps(load_corpus_file(source)))
    rc = main(["fuzz", "shrink", str(target), "--out", str(tmp_path / "o.json")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "measure" in out
