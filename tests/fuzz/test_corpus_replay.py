"""The committed regression corpus replays forever.

Every JSON document under ``tests/fuzz/corpus/`` is a shrunk repro of
a finding some campaign made.  Green here means the oracles still
catch each adversarial input with the exact recorded classification
(outcome + oracle + violation kinds) — if an oracle regresses, the
corpus case that covered it fails.  To triage one case interactively::

    PYTHONPATH=src python -m repro.harness.cli fuzz replay tests/fuzz/corpus/<case>.json

(exit 1 = still reproduces, 0 = fixed; see docs/FUZZING.md).
"""

import pathlib

import pytest

from repro.fuzz.corpus import (
    corpus_files,
    expected_key,
    known_keys,
    load_corpus_file,
    replay_file,
    validate_corpus_doc,
)

CORPUS_DIR = str(pathlib.Path(__file__).resolve().parent / "corpus")
CASES = corpus_files(CORPUS_DIR)


def test_corpus_is_committed_and_diverse():
    assert len(CASES) >= 3, "the regression corpus must not be empty"
    kinds = {load_corpus_file(path)["kind"] for path in CASES}
    # The ISSUE's bar: at least three distinct adversarial finding
    # classes (e.g. a plan slot race, a fault-schedule violation and a
    # cross-system check) survive as committed repros.
    assert len(kinds) >= 3, kinds


def test_corpus_keys_are_unique():
    keys = [expected_key(load_corpus_file(path)) for path in CASES]
    assert len(keys) == len(set(keys))
    assert known_keys(CORPUS_DIR) == set(keys)


@pytest.mark.parametrize(
    "path", CASES, ids=[pathlib.Path(p).stem for p in CASES]
)
def test_corpus_case_replays(path):
    doc = validate_corpus_doc(load_corpus_file(path))
    reproduced, verdict, _ = replay_file(path)
    assert reproduced, (
        f"{doc['name']}: expected {doc['expect']} but observed "
        f"{verdict.outcome}/{verdict.oracle} kinds={list(verdict.kinds)} — "
        f"either an oracle regressed or the underlying bug was fixed; "
        f"if fixed, delete this corpus case in the same change"
    )


def test_corpus_filenames_match_case_names():
    for path in CASES:
        doc = load_corpus_file(path)
        assert pathlib.Path(path).stem == doc["name"]
