"""Chinanet — China Telecom's backbone (Topology Zoo).

38 nodes, 62 edges (the paper's 2-tuple).  The real graph is a
hub-and-spoke structure around Beijing / Shanghai / Guangzhou with
provincial capitals attached; we reproduce that structure.  Coordinates
feed the latency model only.
"""

from __future__ import annotations

from repro.topo.graph import Topology

CHINANET_SITES = {
    "beijing": (39.90, 116.41),
    "tianjin": (39.34, 117.36),
    "shijiazhuang": (38.04, 114.51),
    "taiyuan": (37.87, 112.56),
    "hohhot": (40.84, 111.75),
    "shenyang": (41.81, 123.43),
    "changchun": (43.82, 125.32),
    "harbin": (45.80, 126.53),
    "dalian": (38.91, 121.60),
    "jinan": (36.65, 117.12),
    "qingdao": (36.07, 120.38),
    "zhengzhou": (34.75, 113.63),
    "xian": (34.34, 108.94),
    "lanzhou": (36.06, 103.83),
    "xining": (36.62, 101.78),
    "yinchuan": (38.49, 106.23),
    "urumqi": (43.83, 87.62),
    "shanghai": (31.23, 121.47),
    "nanjing": (32.06, 118.80),
    "hangzhou": (30.27, 120.16),
    "hefei": (31.82, 117.23),
    "fuzhou": (26.07, 119.30),
    "xiamen": (24.48, 118.09),
    "nanchang": (28.68, 115.86),
    "wuhan": (30.59, 114.31),
    "changsha": (28.23, 112.94),
    "guangzhou": (23.13, 113.26),
    "shenzhen": (22.54, 114.06),
    "nanning": (22.82, 108.32),
    "haikou": (20.04, 110.34),
    "guiyang": (26.65, 106.63),
    "kunming": (24.88, 102.83),
    "chengdu": (30.57, 104.07),
    "chongqing": (29.56, 106.55),
    "lhasa": (29.65, 91.14),
    "wenzhou": (28.00, 120.67),
    "suzhou": (31.30, 120.58),
    "dongguan": (23.02, 113.75),
}

CHINANET_EDGES = [
    # national ring: Beijing - Shanghai - Guangzhou - Xi'an - Beijing
    ("beijing", "shanghai"),
    ("shanghai", "guangzhou"),
    ("guangzhou", "xian"),
    ("xian", "beijing"),
    ("beijing", "guangzhou"),
    ("shanghai", "xian"),
    # north
    ("beijing", "tianjin"),
    ("beijing", "shijiazhuang"),
    ("beijing", "taiyuan"),
    ("beijing", "hohhot"),
    ("beijing", "shenyang"),
    ("beijing", "jinan"),
    ("beijing", "zhengzhou"),
    ("tianjin", "shenyang"),
    ("tianjin", "jinan"),
    ("shijiazhuang", "taiyuan"),
    ("shijiazhuang", "zhengzhou"),
    ("shenyang", "changchun"),
    ("shenyang", "dalian"),
    ("changchun", "harbin"),
    ("dalian", "qingdao"),
    ("jinan", "qingdao"),
    ("jinan", "zhengzhou"),
    # west
    ("xian", "lanzhou"),
    ("xian", "zhengzhou"),
    ("xian", "chengdu"),
    ("xian", "taiyuan"),
    ("lanzhou", "xining"),
    ("lanzhou", "yinchuan"),
    ("lanzhou", "urumqi"),
    ("lanzhou", "chengdu"),
    ("xining", "lhasa"),
    ("yinchuan", "hohhot"),
    ("urumqi", "xian"),
    ("chengdu", "chongqing"),
    ("chengdu", "lhasa"),
    ("chengdu", "kunming"),
    ("chongqing", "wuhan"),
    ("chongqing", "guiyang"),
    # east / Yangtze delta
    ("shanghai", "nanjing"),
    ("shanghai", "hangzhou"),
    ("shanghai", "suzhou"),
    ("nanjing", "hefei"),
    ("nanjing", "suzhou"),
    ("nanjing", "wuhan"),
    ("hangzhou", "wenzhou"),
    ("hangzhou", "fuzhou"),
    ("hefei", "wuhan"),
    ("wuhan", "changsha"),
    ("wuhan", "zhengzhou"),
    ("wuhan", "nanchang"),
    ("nanchang", "changsha"),
    ("nanchang", "fuzhou"),
    ("fuzhou", "xiamen"),
    # south
    ("guangzhou", "shenzhen"),
    ("guangzhou", "dongguan"),
    ("guangzhou", "nanning"),
    ("guangzhou", "haikou"),
    ("guangzhou", "changsha"),
    ("guangzhou", "guiyang"),
    ("shenzhen", "xiamen"),
    ("nanning", "kunming"),
]


def chinanet_topology(capacity: float = 100.0) -> Topology:
    """Build the Chinanet topology with geographic link latencies."""
    topo = Topology.from_edges(
        "chinanet", CHINANET_EDGES, coordinates=CHINANET_SITES, capacity=capacity
    )
    topo.validate()
    assert topo.num_nodes() == 38 and topo.num_edges() == 62
    return topo
