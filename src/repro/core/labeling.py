"""Distance labeling and version allocation (paper §3).

The control plane assigns every node of the new path P_n its distance
to the egress (number of hops), and every update a unique, strictly
increasing version number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


def distance_labels(path: Sequence[str]) -> dict[str, int]:
    """Hop distance to the egress for every node of ``path``.

    For the Fig. 1 new path (v0..v7): D(v0)=7, ..., D(v7)=0.
    """
    if len(path) < 2:
        raise ValueError("a path needs at least two nodes")
    if len(set(path)) != len(path):
        raise ValueError(f"path revisits a node: {path}")
    length = len(path) - 1
    return {node: length - i for i, node in enumerate(path)}


class VersionAllocator:
    """Strictly increasing version numbers per flow.

    The paper: "The version number V is unique and increments
    automatically for each new configuration."

    ``width_bits`` bounds the allocation to the data plane's version
    register space (Table 1: 16-bit version registers): versions live
    in ``[1, 2**width_bits - 1]`` and exhausting the space raises
    instead of silently wrapping — a wrapped version would compare
    *older* than the live one at every switch and deadlock the flow.
    """

    def __init__(self, start: int = 0, width_bits: Optional[int] = None) -> None:
        self._current: dict[int, int] = {}
        self._start = start
        self._limit = (2**width_bits - 1) if width_bits is not None else None

    def next_version(self, flow_id: int) -> int:
        version = self._current.get(flow_id, self._start) + 1
        if self._limit is not None and version > self._limit:
            raise OverflowError(
                f"flow {flow_id} exhausted its {self._limit}-version "
                f"register space; updates must be re-based before reuse"
            )
        self._current[flow_id] = version
        return version

    def current(self, flow_id: int) -> int:
        return self._current.get(flow_id, self._start)

    def remaining(self, flow_id: int) -> Optional[int]:
        """Version-bit slots left for ``flow_id`` (None = unbounded)."""
        if self._limit is None:
            return None
        return self._limit - self.current(flow_id)


@dataclass(frozen=True)
class UpdateLabels:
    """Everything the control plane computes for one flow update."""

    flow_id: int
    version: int
    new_path: tuple[str, ...]
    distances: dict


def label_update(flow_id: int, version: int, new_path: Sequence[str]) -> UpdateLabels:
    """Compute the verification content of an update (version + distances)."""
    return UpdateLabels(
        flow_id=flow_id,
        version=version,
        new_path=tuple(new_path),
        distances=distance_labels(new_path),
    )
