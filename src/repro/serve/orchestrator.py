"""Admission control and dependency-aware update orchestration.

The orchestrator sits between tenants and the controller's verified
prepare/push path.  Its job:

* **admission** — a bounded queue with an optional token bucket; when
  the queue is full, overflow is either rejected outright or parked in
  an unbounded side queue and re-admitted as the main queue drains
  (``shed_policy``);
* **dependency tracking** — at most one in-flight update per flow
  (each flow owns a single pending-version register slot in the data
  plane, so same-flow updates *must* serialize); optionally, updates
  whose path footprints share a switch serialize too
  (``switch_conflict="serialize"``); same-flow requests still waiting
  in the queue can be merged (the older one is superseded);
* **concurrency** — everything else dispatches concurrently, up to
  ``max_in_flight`` (``max_in_flight=1`` forces a serial service, the
  baseline the acceptance test compares against);
* **recovery composition** — chaos-triggered aborts/parks arrive via
  the controller's update listeners; the affected request reaches its
  terminal outcome exactly once and the slot is released so queued
  work keeps flowing.  A flow busy with failure recovery (parked, or
  with a recovery reroute pending) is never dispatched onto.

All waiting happens on the simulated clock — the orchestrator never
blocks a real thread (enforced by the ``blocking-in-service`` lint
rule in CI).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.analysis.interference import (
    PlanFootprint,
    footprint_from_paths,
    pair_conflicts,
)
from repro.harness.build import P4UpdateDeployment
from repro.obs.context import NULL_OBS, ObsContext
from repro.serve.model import (
    OUTCOME_ABORTED,
    OUTCOME_COMPLETED,
    OUTCOME_FLOW_PARKED,
    OUTCOME_MERGED,
    OUTCOME_REJECTED,
    OUTCOME_UNFINISHED,
    UpdateRequest,
)
from repro.serve.spec import ServeSpec
from repro.serve.workload import ServiceFlow
from repro.sim.trace import (
    KIND_FLOW_PARKED,
    KIND_REQUEST_DISPATCHED,
    KIND_REQUEST_DONE,
    KIND_REQUEST_SHED,
    KIND_REQUEST_SUBMITTED,
    KIND_RULE_CHANGE,
    KIND_UPDATE_ABORTED,
    KIND_UPDATE_DONE,
    KIND_VERIFY_FAIL,
    KIND_VERIFY_OK,
    TraceEvent,
)

_ORCH = "orchestrator"

#: Flow-tagged trace kinds routed into the causal tracker.  Same-flow
#: updates serialize (one in-flight request per flow), so the flow id
#: in the event detail identifies the request unambiguously.
_CAUSAL_TRACE_KINDS = frozenset(
    {
        KIND_RULE_CHANGE,
        "rule_staged",
        KIND_VERIFY_OK,
        KIND_VERIFY_FAIL,
        KIND_UPDATE_DONE,
        KIND_UPDATE_ABORTED,
        KIND_FLOW_PARKED,
    }
)


class ServiceOrchestrator:
    """Drives tenant update requests through one deployment."""

    def __init__(
        self,
        spec: ServeSpec,
        deployment: P4UpdateDeployment,
        population: list[ServiceFlow],
        obs: Optional[ObsContext] = None,
        capacities: Optional[dict[tuple[str, str], float]] = None,
    ) -> None:
        self.spec = spec
        self.deployment = deployment
        self.engine = deployment.network.engine
        self.controller = deployment.controller
        self.trace = deployment.network.trace
        self.obs = obs if obs is not None else NULL_OBS
        # Per-request causal tracing (None unless the run enables it).
        # The tracker is pure bookkeeping: it never schedules events,
        # samples RNGs or records trace events, so tracked runs stay
        # bit-identical to untracked runs in simulated time.
        self._causal = self.obs.causal
        self.flows = {f.flow_id: f for f in population}
        # Admission state.
        self.pending: deque[UpdateRequest] = deque()
        self.parked_requests: deque[UpdateRequest] = deque()
        self._tokens = float(spec.burst)
        self._tokens_at = 0.0
        self._wake_armed = False
        # Orchestration state.
        self.in_flight: dict[int, UpdateRequest] = {}
        self._busy_switches: dict[str, int] = {}
        self.peak_in_flight = 0
        # Switches an operations session is draining: a queued toggle
        # whose target path transits one of these is held (the pump
        # re-evaluates on every release / undrain), so background
        # churn never re-routes *onto* a switch being evacuated.
        self.avoid_nodes: set[str] = set()
        # Static interference gate (spec.static_interference).  The
        # gate only *reads* orchestrator/controller state — no RNG, no
        # clock, no trace events — so a gated conflict-free run is
        # bit-identical to a gate-off run.
        self._gate = spec.static_interference
        self._capacities = capacities or {}
        self._inflight_footprints: dict[int, PlanFootprint] = {}
        self.interference_events: list[dict] = []
        self._gate_logged: set[int] = set()
        # Bookkeeping for results.
        self.requests: list[UpdateRequest] = []
        self._next_id = 0
        # Closed-loop hook: called once per terminal outcome.
        self.on_terminal: Optional[Callable[[UpdateRequest], None]] = None
        self.controller.update_listeners.append(self._on_update_event)
        self.trace.subscribe(self._on_trace_event)

    # -- token bucket (simulated time, lazy refill) -------------------------

    def _refill(self) -> None:
        if self.spec.rate_per_s <= 0:
            return
        now = self.engine.now
        gained = (now - self._tokens_at) * self.spec.rate_per_s / 1000.0
        self._tokens = min(float(self.spec.burst), self._tokens + gained)
        self._tokens_at = now

    #: Accumulated-refill rounding slack: without it a wake scheduled
    #: exactly one token away can arrive at 0.999...9 tokens and re-arm
    #: a zero-delay wake forever.
    _EPS = 1e-9

    def _take_token(self) -> bool:
        if self.spec.rate_per_s <= 0:
            return True
        self._refill()
        if self._tokens >= 1.0 - self._EPS:
            self._tokens = max(0.0, self._tokens - 1.0)
            return True
        return False

    def _arm_token_wake(self) -> None:
        """Schedule one pump at the instant the next token accrues."""
        if self._wake_armed or self.spec.rate_per_s <= 0:
            return
        self._refill()
        deficit = 1.0 - self._tokens
        if deficit <= self._EPS:
            return
        self._wake_armed = True
        delay_ms = deficit * 1000.0 / self.spec.rate_per_s
        self.engine.schedule(delay_ms, self._token_wake)

    def _token_wake(self) -> None:
        self._wake_armed = False
        self.pump()

    # -- admission -----------------------------------------------------------

    def submit(self, flow_id: int) -> UpdateRequest:
        """A tenant asks to toggle ``flow_id`` to its other path."""
        now = self.engine.now
        request = UpdateRequest(self._next_id, flow_id, submitted_ms=now)
        self._next_id += 1
        self.requests.append(request)
        self.trace.record(
            now, KIND_REQUEST_SUBMITTED, _ORCH,
            request=request.request_id, flow=flow_id,
        )
        if self._causal is not None:
            self._causal.submit(request.request_id, flow_id, now)
        if self.spec.conflict_policy == "merge":
            self._merge_queued(request)
        if len(self.pending) >= self.spec.queue_depth:
            self._shed(request)
        else:
            request.admitted_ms = now
            request.queue_depth_at_admit = len(self.pending)
            self.pending.append(request)
            if self._causal is not None:
                self._causal.mark(
                    request.request_id, now, "admitted", _ORCH,
                    queue_depth=request.queue_depth_at_admit,
                )
        self._gauges()
        self.pump()
        return request

    def _merge_queued(self, newer: UpdateRequest) -> None:
        """Supersede an undispatched same-flow request: toggling twice
        from the same queued state is a no-op, so the older request
        collapses into the newer one."""
        for queued in self.pending:
            if queued.flow_id == newer.flow_id:
                self.pending.remove(queued)
                self._finish(queued, OUTCOME_MERGED)
                return
        for queued in self.parked_requests:
            if queued.flow_id == newer.flow_id:
                self.parked_requests.remove(queued)
                self._finish(queued, OUTCOME_MERGED)
                return

    def _shed(self, request: UpdateRequest) -> None:
        self.trace.record(
            self.engine.now, KIND_REQUEST_SHED, _ORCH,
            request=request.request_id, flow=request.flow_id,
            policy=self.spec.shed_policy,
        )
        if self.obs.enabled:
            self.obs.count("serve_shed", policy=self.spec.shed_policy)
        if self.spec.shed_policy == "reject":
            self._finish(request, OUTCOME_REJECTED)
        else:
            self.parked_requests.append(request)

    def _drain_parked(self) -> None:
        while self.parked_requests and len(self.pending) < self.spec.queue_depth:
            request = self.parked_requests.popleft()
            request.admitted_ms = self.engine.now
            request.queue_depth_at_admit = len(self.pending)
            self.pending.append(request)
            if self._causal is not None:
                self._causal.mark(
                    request.request_id, self.engine.now, "admitted", _ORCH,
                    queue_depth=request.queue_depth_at_admit,
                )

    # -- dispatch ------------------------------------------------------------

    def _footprint(self, flow_id: int) -> frozenset[str]:
        return self.flows[flow_id].nodes()

    def _toggle_target(self, flow_id: int) -> Optional[tuple[str, ...]]:
        """The path the flow's next toggle would move onto (same rule
        as ``_execute``), or None when the flow is gone."""
        record = self.controller.flow_db.get(flow_id)
        if record is None:
            return None
        flow = self.flows[flow_id]
        if tuple(record.current_path) == flow.primary:
            return flow.alternate
        return flow.primary

    def _blocked_by_avoid(self, flow_id: int) -> bool:
        if not self.avoid_nodes:
            return False
        target = self._toggle_target(flow_id)
        return target is not None and any(
            n in self.avoid_nodes for n in target
        )

    # -- static interference gate --------------------------------------------

    def _candidate_footprint(self, flow_id: int) -> Optional[PlanFootprint]:
        """The footprint the flow's next toggle would have, from the
        controller's current view (same toggle rule as ``_execute``)."""
        record = self.controller.flow_db.get(flow_id)
        if record is None:
            return None
        flow = self.flows[flow_id]
        if tuple(record.current_path) == flow.primary:
            target = flow.alternate
        else:
            target = flow.primary
        return footprint_from_paths(
            flow_id, tuple(record.current_path), tuple(target), flow.size
        )

    def _gate_conflicts(self, request: UpdateRequest) -> list[dict]:
        """Conflicts between the candidate and every in-flight update."""
        if self._gate == "off" or not self._inflight_footprints:
            return []
        candidate = self._candidate_footprint(request.flow_id)
        if candidate is None:
            return []
        conflicts: list[dict] = []
        for other in self._inflight_footprints.values():
            conflicts.extend(
                pair_conflicts(candidate, other, self._capacities)
            )
        return conflicts

    def _record_gate(
        self, request: UpdateRequest, action: str, conflicts: list[dict]
    ) -> None:
        """Log one gate decision (first block only for held requests —
        re-evaluations at later pumps would say the same thing)."""
        if request.request_id in self._gate_logged:
            return
        self._gate_logged.add(request.request_id)
        self.interference_events.append(
            {
                "time": self.engine.now,
                "request": request.request_id,
                "flow": request.flow_id,
                "action": action,
                "conflicts": conflicts,
            }
        )
        if self.obs.enabled:
            self.obs.count("serve_interference_gate", action=action)

    def _dispatchable(self, request: UpdateRequest) -> bool:
        flow_id = request.flow_id
        if flow_id in self.in_flight:
            return False
        cap = self.spec.max_in_flight
        if cap and len(self.in_flight) >= cap:
            return False
        record = self.controller.flow_db.get(flow_id)
        if record is None:
            return False
        # A flow parked by recovery, or with a recovery reroute still
        # pending, owns its version-register slot — hands off.
        if record.parked or record.pending_version is not None:
            return False
        if self.spec.switch_conflict == "serialize":
            if any(n in self._busy_switches for n in self._footprint(flow_id)):
                return False
        if self._blocked_by_avoid(flow_id):
            return False
        return True

    def pump(self) -> None:
        """Dispatch every queued request that can go right now.

        Scans in FIFO order but skips blocked requests, so one
        conflicted flow never head-of-line-blocks independent work.
        """
        self._drain_parked()
        progressed = True
        while progressed:
            progressed = False
            for request in list(self.pending):
                if not self._dispatchable(request):
                    continue
                if self._gate != "off":
                    conflicts = self._gate_conflicts(request)
                    if conflicts:
                        if self._gate == "reject":
                            self.pending.remove(request)
                            self._record_gate(request, "reject", conflicts)
                            self._finish(request, OUTCOME_REJECTED)
                            progressed = True
                            continue
                        if self._gate == "serialize":
                            # Hold until the conflicting in-flight
                            # update releases its slot (pump runs on
                            # every release).
                            self._record_gate(request, "hold", conflicts)
                            continue
                        self._record_gate(request, "warn", conflicts)
                if not self._take_token():
                    self._arm_token_wake()
                    self._causal_reclassify()
                    self._gauges()
                    return
                self.pending.remove(request)
                self._dispatch(request)
                progressed = True
        self._causal_reclassify()
        self._gauges()

    def _wait_reason(self, request: UpdateRequest) -> str:
        """Why a queued request is not dispatching right now."""
        flow_id = request.flow_id
        if flow_id in self.in_flight:
            return "conflict_wait"
        record = self.controller.flow_db.get(flow_id)
        if record is not None and (
            record.parked or record.pending_version is not None
        ):
            return "recovery"
        if self.spec.switch_conflict == "serialize":
            if any(n in self._busy_switches for n in self._footprint(flow_id)):
                return "conflict_wait"
        if self._blocked_by_avoid(flow_id):
            return "conflict_wait"
        if self._gate == "serialize" and self._gate_conflicts(request):
            return "conflict_wait"
        return "queue_wait"

    def _causal_reclassify(self) -> None:
        """Re-label every waiting request's current segment.

        Runs at each ``pump`` exit point — the only instants blocking
        state changes — and only *reads* orchestrator/controller state,
        so simulated time is untouched."""
        causal = self._causal
        if causal is None:
            return
        now = self.engine.now
        for request in self.pending:
            causal.set_state(request.request_id, now, self._wait_reason(request))
        for request in self.parked_requests:
            causal.set_state(request.request_id, now, self._wait_reason(request))

    def _dispatch(self, request: UpdateRequest) -> None:
        now = self.engine.now
        request.dispatched_ms = now
        self.in_flight[request.flow_id] = request
        if self._gate != "off":
            footprint = self._candidate_footprint(request.flow_id)
            if footprint is not None:
                self._inflight_footprints[request.flow_id] = footprint
        self.peak_in_flight = max(self.peak_in_flight, len(self.in_flight))
        for node in self._footprint(request.flow_id):
            self._busy_switches[node] = self._busy_switches.get(node, 0) + 1
        self.trace.record(
            now, KIND_REQUEST_DISPATCHED, _ORCH,
            request=request.request_id, flow=request.flow_id,
        )
        if self._causal is not None:
            self._causal.mark(
                request.request_id, now, "dispatched", _ORCH, state="prepare"
            )
            self._causal.bind_flow(request.flow_id, request.request_id)
        if self.obs.enabled:
            self.obs.observe(
                "serve_admission_wait_ms", now - request.submitted_ms
            )
        # The controller is single-threaded: preparation happens after
        # its queueing delay + per-message service time.
        delay = (
            self.controller.control_queue_delay()
            + self.controller.control_service_time()
        )
        self.engine.schedule(delay, self._execute, request)

    def _execute(self, request: UpdateRequest) -> None:
        if request.terminal:
            self._release(request.flow_id)
            self.pump()
            return
        record = self.controller.flow_db[request.flow_id]
        if record.parked or record.pending_version is not None:
            # Failure recovery grabbed the flow between dispatch and
            # execution — back to the queue, slot freed.
            self._release(request.flow_id)
            if self._causal is not None:
                self._causal.mark(
                    request.request_id, self.engine.now, "requeued", _ORCH,
                    state="recovery",
                )
            self.pending.appendleft(request)
            self.pump()
            return
        flow = self.flows[request.flow_id]
        if tuple(record.current_path) == flow.primary:
            target = list(flow.alternate)
        else:
            target = list(flow.primary)
        prepared = self.controller.prepare_update(request.flow_id, target)
        request.version = prepared.version
        request.pushed_ms = self.engine.now
        if self._causal is not None:
            self._causal.pushed(
                request.request_id, self.engine.now,
                self.controller.name, prepared.version,
            )
        if self.obs.enabled:
            self.obs.observe(
                "serve_prepare_ms",
                self.engine.now - (request.dispatched_ms or 0.0),
            )
        self.controller.push_update(prepared)

    # -- lifecycle notifications --------------------------------------------

    def _on_update_event(
        self, event: str, flow_id: int, version: Optional[int]
    ) -> None:
        request = self.in_flight.get(flow_id)
        if event == "completed":
            if request is not None and request.version == version:
                self._finish(request, OUTCOME_COMPLETED)
                self._release(flow_id)
        elif event == "aborted":
            if request is not None and request.version == version:
                self._finish(request, OUTCOME_ABORTED)
                self._release(flow_id)
        elif event == "parked":
            if request is not None and not request.terminal:
                self._finish(request, OUTCOME_FLOW_PARKED)
                self._release(flow_id)
        # "reissued" is recovery re-driving its own reroute; nothing to
        # do — the slot stays blocked via record.pending_version.
        self.pump()

    def _on_trace_event(self, event: TraceEvent) -> None:
        if event.kind == KIND_RULE_CHANGE:
            request = self.in_flight.get(event.detail.get("flow", -1))
            if request is not None and request.pushed_ms is not None:
                request.last_install_ms = event.time
        if self._causal is not None and event.kind in _CAUSAL_TRACE_KINDS:
            flow = event.detail.get("flow")
            if flow is not None:
                version = event.detail.get("version")
                if version is not None:
                    self._causal.flow_event(
                        flow, event.time, event.kind, event.node,
                        version=version,
                    )
                else:
                    self._causal.flow_event(
                        flow, event.time, event.kind, event.node
                    )

    def _release(self, flow_id: int) -> None:
        if self._causal is not None:
            self._causal.unbind_flow(flow_id)
        self._inflight_footprints.pop(flow_id, None)
        if self.in_flight.pop(flow_id, None) is None:
            return
        for node in self._footprint(flow_id):
            count = self._busy_switches.get(node, 0) - 1
            if count <= 0:
                self._busy_switches.pop(node, None)
            else:
                self._busy_switches[node] = count

    def _finish(self, request: UpdateRequest, outcome: str) -> None:
        now = self.engine.now
        request.finish(outcome, now)
        self.trace.record(
            now, KIND_REQUEST_DONE, _ORCH,
            request=request.request_id, flow=request.flow_id,
            outcome=outcome,
        )
        if self._causal is not None:
            self._causal.finish(request.request_id, now, outcome)
        if self.obs.enabled:
            self.obs.count("serve_requests", outcome=outcome)
            if outcome == OUTCOME_COMPLETED:
                self.obs.observe(
                    "serve_e2e_ms", now - request.submitted_ms
                )
                if request.pushed_ms is not None:
                    anchor = request.last_install_ms or request.pushed_ms
                    self.obs.observe(
                        "serve_install_ms", anchor - request.pushed_ms
                    )
                    self.obs.observe("serve_verify_ms", now - anchor)
        if self.on_terminal is not None:
            self.on_terminal(request)

    def _gauges(self) -> None:
        if self.obs.enabled:
            self.obs.gauge_set("serve_in_flight", float(len(self.in_flight)))
            self.obs.gauge_set("serve_queue_depth", float(len(self.pending)))
            self.obs.gauge_set(
                "serve_parked_requests", float(len(self.parked_requests))
            )

    # -- teardown ------------------------------------------------------------

    def finalize(self) -> None:
        """Horizon reached: everything still non-terminal is unfinished."""
        for request in self.requests:
            if not request.terminal:
                self._finish(request, OUTCOME_UNFINISHED)
        self.trace.unsubscribe(self._on_trace_event)
