"""Fault injection for control and data messages.

The paper's verification model (§5) assumes update messages may be
dropped, delayed, reordered or corrupted.  A :class:`FaultModel` sits in
front of message delivery in :class:`repro.sim.network.Network` and
decides per message what happens to it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np


class FaultAction(enum.Enum):
    """What to do with a message about to be delivered."""

    DELIVER = "deliver"
    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    CORRUPT = "corrupt"


@dataclass
class FaultDecision:
    """Outcome of a fault-model query for one message."""

    action: FaultAction = FaultAction.DELIVER
    extra_delay_ms: float = 0.0
    mutate: Optional[Callable[[Any], Any]] = None


class FaultModel:
    """Probabilistic fault injector.

    Probabilities apply independently per message; precedence is
    drop > corrupt > duplicate > delay.  A ``selector`` predicate can
    scope faults to particular messages (e.g. only UIMs of version 2,
    which is how the Fig. 2 delayed-update scenario is built).
    """

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        drop_prob: float = 0.0,
        delay_prob: float = 0.0,
        delay_ms: float = 0.0,
        duplicate_prob: float = 0.0,
        corrupt_prob: float = 0.0,
        corruptor: Optional[Callable[[Any], Any]] = None,
        selector: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.drop_prob = drop_prob
        self.delay_prob = delay_prob
        self.delay_ms = delay_ms
        self.duplicate_prob = duplicate_prob
        self.corrupt_prob = corrupt_prob
        self.corruptor = corruptor
        self.selector = selector
        self.dropped: int = 0
        self.delayed: int = 0
        self.duplicated: int = 0
        self.corrupted: int = 0

    def decide(self, message: Any) -> FaultDecision:
        """Classify one message delivery."""
        if self.selector is not None and not self.selector(message):
            return FaultDecision()
        roll = self.rng.random()
        if roll < self.drop_prob:
            self.dropped += 1
            return FaultDecision(action=FaultAction.DROP)
        roll = self.rng.random()
        if self.corruptor is not None and roll < self.corrupt_prob:
            self.corrupted += 1
            return FaultDecision(action=FaultAction.CORRUPT, mutate=self.corruptor)
        roll = self.rng.random()
        if roll < self.duplicate_prob:
            self.duplicated += 1
            return FaultDecision(action=FaultAction.DUPLICATE)
        roll = self.rng.random()
        if roll < self.delay_prob:
            self.delayed += 1
            return FaultDecision(action=FaultAction.DELAY, extra_delay_ms=self.delay_ms)
        return FaultDecision()


@dataclass
class ScriptedFault:
    """Deterministic fault applied to messages matching a predicate.

    Used by scenario builders for reproducible adversaries, e.g. "delay
    every version-2 UIM by 300 ms" (Fig. 2) or "drop the first UNM that
    crosses link (v2, v3)".
    """

    matches: Callable[[Any], bool]
    action: FaultAction
    extra_delay_ms: float = 0.0
    mutate: Optional[Callable[[Any], Any]] = None
    max_hits: Optional[int] = None
    hits: int = field(default=0, init=False)

    def decide(self, message: Any) -> FaultDecision:
        if self.max_hits is not None and self.hits >= self.max_hits:
            return FaultDecision()
        if not self.matches(message):
            return FaultDecision()
        self.hits += 1
        return FaultDecision(
            action=self.action, extra_delay_ms=self.extra_delay_ms, mutate=self.mutate
        )


class CompositeFaultModel:
    """Apply a list of scripted faults, first match wins."""

    def __init__(self, faults: list) -> None:
        self.faults = list(faults)

    def decide(self, message: Any) -> FaultDecision:
        for fault in self.faults:
            decision = fault.decide(message)
            if decision.action is not FaultAction.DELIVER:
                return decision
        return FaultDecision()
