"""Central baseline — dependency-graph updates driven in rounds (§9.1).

The controller greedily computes, each round, a maximal *jointly safe*
set of node updates (flipping all of them together keeps every flow
loop-, blackhole- and, when enabled, congestion-free), sends the
commands, and waits for every acknowledgement before computing the
next round.  Every acknowledgement passes through the single-threaded
controller service queue, which is where the paper's "queuing delay
and processing delay" ([40]) bites.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.consistency.state import ForwardingState
from repro.params import SimParams
from repro.sim.node import Node
from repro.sim.trace import KIND_RULE_CHANGE, KIND_UPDATE_DONE
from repro.topo.graph import Topology
from repro.traffic.flows import Flow

LOCAL_DELIVER = "__local__"


@dataclass(frozen=True)
class RuleCommand:
    """Controller -> switch: install one forwarding rule."""

    target: str
    flow_id: int
    round_id: int
    next_hop: Optional[str]
    flow_size: float

    def describe(self) -> str:
        return f"Rule(to={self.target} flow={self.flow_id} r={self.round_id})"


@dataclass(frozen=True)
class RuleAck:
    """Switch -> controller: the rule is installed."""

    reporter: str
    flow_id: int
    round_id: int

    def describe(self) -> str:
        return f"Ack(from={self.reporter} flow={self.flow_id} r={self.round_id})"


class CentralSwitch(Node):
    """Dumb OpenFlow-style switch: installs commands, acks back."""

    def __init__(
        self,
        name: str,
        params: Optional[SimParams] = None,
        rng: Optional[np.random.Generator] = None,
        forwarding_state: Optional[ForwardingState] = None,
    ) -> None:
        super().__init__(name)
        self.params = params if params is not None else SimParams()
        self.rng = rng if rng is not None else self.params.rng()
        self.forwarding_state = forwarding_state
        self.rules: dict[int, str] = {}

    def install_initial(self, flow_id: int, next_hop: Optional[str]) -> None:
        hop = next_hop if next_hop is not None else LOCAL_DELIVER
        self.rules[flow_id] = hop
        if self.forwarding_state is not None and hop != LOCAL_DELIVER:
            self.forwarding_state.set_rule(flow_id, self.name, hop)

    def handle_control(self, message: Any, sender: str) -> None:
        if not isinstance(message, RuleCommand):
            return
        delay = self.params.baseline_install_delay.sample(self.rng)
        self.engine.schedule(delay, self._complete_install, message)

    def _complete_install(self, command: RuleCommand) -> None:
        hop = command.next_hop if command.next_hop is not None else LOCAL_DELIVER
        self.rules[command.flow_id] = hop
        if self.obs.enabled:
            self.obs.metrics.counter("rule_installs", node=self.name).inc()
        if self.forwarding_state is not None and hop != LOCAL_DELIVER:
            self.forwarding_state.set_rule(command.flow_id, self.name, hop)
        self.network.trace.record(
            self.now, KIND_RULE_CHANGE, self.name,
            flow=command.flow_id, next_hop=None if hop == LOCAL_DELIVER else hop,
        )
        self.send_control(
            RuleAck(reporter=self.name, flow_id=command.flow_id, round_id=command.round_id)
        )


@dataclass
class _PendingFlowUpdate:
    flow: Flow
    old_path: list[str]
    new_path: list[str]
    # node -> new next hop, still to be deployed.
    remaining: dict[str, Optional[str]]


class CentralController(Node):
    """Round-based centralized update scheduler."""

    def __init__(
        self,
        name: str,
        topology: Topology,
        params: Optional[SimParams] = None,
        rng: Optional[np.random.Generator] = None,
        congestion_aware: bool = False,
    ) -> None:
        super().__init__(name)
        self.topology = topology
        self.params = params if params is not None else SimParams()
        self.rng = rng if rng is not None else self.params.rng()
        self.congestion_aware = congestion_aware
        self._round_ids = itertools.count(1)
        self.flows: dict[int, Flow] = {}
        # The controller's model of the deployed state.
        self.deployed: dict[int, dict[str, str]] = {}     # flow -> node -> hop
        self.flow_endpoints: dict[int, tuple[str, str]] = {}
        self.pending: dict[int, _PendingFlowUpdate] = {}
        self.update_sent_at: dict[int, float] = {}
        self.update_done_at: dict[int, float] = {}
        self.rounds_executed = 0
        self._outstanding_acks: set[tuple[str, int]] = set()
        self._current_round: Optional[int] = None

    def control_service_time(self) -> float:
        return self.params.controller_service.sample(self.rng)

    def control_queue_delay(self) -> float:
        util = self.params.controller_background_util
        if util <= 0:
            return 0.0
        mean_wait = util / (1.0 - util) * self.params.controller_service.value
        return float(self.rng.exponential(mean_wait))

    # -- bootstrap -------------------------------------------------------------

    def register_flow(self, flow: Flow) -> None:
        if flow.old_path is None:
            raise ValueError("flow needs an initial path")
        self.flows[flow.flow_id] = flow
        path = flow.old_path
        hops = {a: b for a, b in zip(path, path[1:])}
        hops[path[-1]] = LOCAL_DELIVER
        self.deployed[flow.flow_id] = hops
        self.flow_endpoints[flow.flow_id] = (path[0], path[-1])

    # -- update entry point --------------------------------------------------------

    def update_flow(self, flow_id: int, new_path: list[str]) -> None:
        flow = self.flows[flow_id]
        old_hops = self.deployed[flow_id]
        new_hops: dict[str, Optional[str]] = {
            a: b for a, b in zip(new_path, new_path[1:])
        }
        new_hops[new_path[-1]] = None
        remaining = {
            node: hop
            for node, hop in new_hops.items()
            if old_hops.get(node) != (hop if hop is not None else LOCAL_DELIVER)
        }
        self.pending[flow_id] = _PendingFlowUpdate(
            flow=flow,
            old_path=list(self.flows[flow_id].old_path or []),
            new_path=list(new_path),
            remaining=remaining,
        )
        self.update_sent_at[flow_id] = self.now
        if self._current_round is None:
            self._start_round()

    # -- round computation -------------------------------------------------------------

    def _walk(self, flow_id: int, hops: dict[str, str]) -> Optional[list[str]]:
        """Ingress-to-egress walk under ``hops``; None on loop/blackhole."""
        ingress, egress = self.flow_endpoints[flow_id]
        node = ingress
        seen = {node}
        path = [node]
        for _ in range(len(hops) + 2):
            if node == egress:
                return path
            nxt = hops.get(node)
            if nxt is None or nxt == LOCAL_DELIVER:
                return None                 # blackhole
            if nxt in seen:
                return None                 # loop
            seen.add(nxt)
            path.append(nxt)
            node = nxt
        return None                         # did not terminate

    def _capacity_ok(self, mover_walks: dict[int, list[list[str]]]) -> bool:
        """Conservative transient capacity check for one round.

        Because flips within a round complete asynchronously, a moving
        flow is charged on the union of the edges of its confirmed walk
        and every candidate walk of this round; non-movers are charged
        on their confirmed walk.
        """
        load: dict[tuple[str, str], float] = {}
        for flow_id in self.deployed:
            size = self.flows[flow_id].size
            edges: set[tuple[str, str]] = set()
            confirmed = self._walk(flow_id, self.deployed[flow_id])
            if confirmed is not None:
                edges.update(zip(confirmed, confirmed[1:]))
            for walk in mover_walks.get(flow_id, []):
                edges.update(zip(walk, walk[1:]))
            for edge in edges:
                load[edge] = load.get(edge, 0.0) + size
        for (a, b), used in load.items():
            if used > self.topology.capacity(a, b) + 1e-9:
                return False
        return True

    def _start_round(self) -> None:
        """Pick a set of flips that is safe under *any* interleaving.

        Dionysus-style rules:
        * rule **additions** (the node has no rule for the flow, hence
          carries none of its traffic) are always safe and go out
          immediately;
        * rule **modifications** are evaluated against the confirmed
          state only: the flow's walk with just this flip applied must
          be loop- and blackhole-free, and two chosen modifications of
          the same flow must not appear in each other's downstream
          walk (otherwise their relative completion order could yield
          an unverified path);
        * with congestion awareness, movers are charged on the union
          of their old and candidate walks (atomic-move semantics).
        """
        additions: list[tuple[int, str, Optional[str]]] = []
        mod_candidates: list[tuple[int, int, str, Optional[str]]] = []
        for flow_id, pending in self.pending.items():
            new_dist = {
                node: len(pending.new_path) - 1 - i
                for i, node in enumerate(pending.new_path)
            }
            for node, hop in pending.remaining.items():
                if node not in self.deployed[flow_id]:
                    additions.append((flow_id, node, hop))
                else:
                    mod_candidates.append((new_dist.get(node, 0), flow_id, node, hop))
        # Egress-close flips first maximize parallelism.
        mod_candidates.sort(key=lambda c: (c[0], c[1], c[2]))

        chosen_mods: list[tuple[int, str, Optional[str]]] = []
        downstream_of: dict[tuple[int, str], set[str]] = {}
        mover_walks: dict[int, list[list[str]]] = {}
        for _dist, flow_id, node, hop in mod_candidates:
            hypothetical = dict(self.deployed[flow_id])
            hypothetical[node] = hop if hop is not None else LOCAL_DELIVER
            walk = self._walk(flow_id, hypothetical)
            if walk is None:
                continue
            if node in walk:
                downstream = set(walk[walk.index(node) + 1 :])
            else:
                downstream = set()
            conflict = False
            for other_flow, other_node, _ in chosen_mods:
                if other_flow != flow_id:
                    continue
                if other_node in downstream or node in downstream_of[(other_flow, other_node)]:
                    conflict = True
                    break
            if conflict:
                continue
            if self.congestion_aware:
                trial = {
                    fid: list(walks) for fid, walks in mover_walks.items()
                }
                trial.setdefault(flow_id, []).append(walk)
                if not self._capacity_ok(trial):
                    continue
                mover_walks = trial
            chosen_mods.append((flow_id, node, hop))
            downstream_of[(flow_id, node)] = downstream

        chosen = additions + chosen_mods
        if not chosen:
            # Nothing safe right now — a dependency deadlock for the
            # greedy heuristic; give up (reported by the harness).
            self._current_round = None
            return

        round_id = next(self._round_ids)
        self._current_round = round_id
        self.rounds_executed += 1
        if self.obs.enabled:
            self.obs.metrics.counter("central_rounds", node=self.name).inc()
            self.obs.metrics.histogram(
                "central_round_size", node=self.name,
            ).observe(len(chosen))
        for flow_id, node, hop in chosen:
            self._outstanding_acks.add((node, flow_id))
            self.pending[flow_id].remaining.pop(node, None)
            self.deployed[flow_id][node] = hop if hop is not None else LOCAL_DELIVER
            self.send_control(
                RuleCommand(
                    target=node, flow_id=flow_id, round_id=round_id,
                    next_hop=hop, flow_size=self.flows[flow_id].size,
                )
            )

    # -- acks ---------------------------------------------------------------------------

    def handle_control(self, message: Any, sender: str) -> None:
        if not isinstance(message, RuleAck):
            return
        self._outstanding_acks.discard((message.reporter, message.flow_id))
        if self._outstanding_acks:
            return
        # Round complete: close out finished flows, then next round.
        finished = [
            flow_id for flow_id, pending in self.pending.items()
            if not pending.remaining
        ]
        for flow_id in finished:
            del self.pending[flow_id]
            self.update_done_at[flow_id] = self.now
            self.network.trace.record(
                self.now, KIND_UPDATE_DONE, self.name, flow=flow_id,
            )
        self._current_round = None
        if self.pending:
            self._start_round()

    # -- queries -------------------------------------------------------------------------

    def update_complete(self, flow_id: int) -> bool:
        return flow_id not in self.pending and flow_id in self.update_done_at

    def all_updates_complete(self) -> bool:
        return not self.pending

    def update_duration(self, flow_id: int) -> Optional[float]:
        sent = self.update_sent_at.get(flow_id)
        done = self.update_done_at.get(flow_id)
        if sent is None or done is None:
            return None
        return done - sent
