"""Match-action tables.

Supports the match kinds used by the P4Update program: ``exact``
(forwarding and clone-session tables), ``ternary`` and ``lpm`` (for
completeness and tests).  An entry binds a key to an action name plus
action parameters; the pipeline looks actions up on the program.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional, Sequence


class MatchKind(enum.Enum):
    EXACT = "exact"
    TERNARY = "ternary"
    LPM = "lpm"


@dataclass(frozen=True)
class TableEntry:
    """One table entry: match spec -> (action, params).

    ``key`` is a tuple with one element per key field:
      * exact: the value;
      * ternary: ``(value, mask)``;
      * lpm: ``(value, prefix_len)``.
    ``priority`` breaks ternary ties (higher wins).
    """

    key: tuple
    action: str
    params: tuple = ()
    priority: int = 0


@dataclass
class TableHit:
    entry: TableEntry
    action: str
    params: tuple


class Table:
    """A single match-action table."""

    def __init__(
        self,
        name: str,
        key_fields: Sequence[str],
        match_kinds: Optional[Sequence[MatchKind]] = None,
        default_action: Optional[str] = None,
        default_params: tuple = (),
    ) -> None:
        self.name = name
        self.key_fields = tuple(key_fields)
        if match_kinds is None:
            match_kinds = [MatchKind.EXACT] * len(self.key_fields)
        if len(match_kinds) != len(self.key_fields):
            raise ValueError("one match kind per key field required")
        self.match_kinds = tuple(match_kinds)
        self.default_action = default_action
        self.default_params = default_params
        self._entries: list[TableEntry] = []
        self._exact_index: dict[tuple, TableEntry] = {}
        self.hits = 0
        self.misses = 0

    @property
    def entries(self) -> list[TableEntry]:
        return list(self._entries)

    def _all_exact(self) -> bool:
        return all(kind is MatchKind.EXACT for kind in self.match_kinds)

    def add(self, entry: TableEntry) -> None:
        if len(entry.key) != len(self.key_fields):
            raise ValueError(
                f"table {self.name!r} expects {len(self.key_fields)} key parts"
            )
        self._entries.append(entry)
        if self._all_exact():
            self._exact_index[entry.key] = entry

    def remove(self, key: tuple) -> bool:
        """Remove the first entry with the given key; True if removed."""
        for i, entry in enumerate(self._entries):
            if entry.key == key:
                del self._entries[i]
                if self._all_exact():
                    self._exact_index.pop(key, None)
                    # Re-index in case of duplicates of the same key.
                    for other in self._entries:
                        self._exact_index.setdefault(other.key, other)
                return True
        return False

    def clear(self) -> None:
        self._entries.clear()
        self._exact_index.clear()

    def lookup(self, key_values: Sequence[Any]) -> Optional[TableHit]:
        """Match ``key_values`` against the entries."""
        key_values = tuple(key_values)
        if self._all_exact():
            entry = self._exact_index.get(key_values)
        else:
            entry = self._general_lookup(key_values)
        if entry is None:
            self.misses += 1
            if self.default_action is not None:
                return TableHit(
                    entry=TableEntry(key=(), action=self.default_action),
                    action=self.default_action,
                    params=self.default_params,
                )
            return None
        self.hits += 1
        return TableHit(entry=entry, action=entry.action, params=entry.params)

    def _general_lookup(self, key_values: tuple) -> Optional[TableEntry]:
        best: Optional[TableEntry] = None
        best_rank: tuple = ()
        for entry in self._entries:
            rank = self._match_rank(entry, key_values)
            if rank is None:
                continue
            if best is None or rank > best_rank:
                best, best_rank = entry, rank
        return best

    def _match_rank(self, entry: TableEntry, key_values: tuple) -> Optional[tuple]:
        """None when the entry does not match; otherwise a sortable rank
        (lpm prefix length sum, then priority)."""
        prefix_total = 0
        for kind, part, value in zip(self.match_kinds, entry.key, key_values):
            if kind is MatchKind.EXACT:
                if part != value:
                    return None
            elif kind is MatchKind.TERNARY:
                want, mask = part
                if (value & mask) != (want & mask):
                    return None
            elif kind is MatchKind.LPM:
                want, prefix_len = part
                if prefix_len:
                    shift = max(0, 32 - prefix_len)
                    if (value >> shift) != (want >> shift):
                        return None
                prefix_total += prefix_len
        return (prefix_total, entry.priority)
