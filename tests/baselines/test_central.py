"""Tests for the Central (dependency-graph rounds) baseline."""


from repro.consistency import LiveChecker
from repro.harness.baselines_build import build_central_network
from repro.params import DelayDistribution, SimParams
from repro.topo import fig1_topology, ring_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
from repro.traffic.flows import Flow


def fast_params(seed=0, install_ms=1.0):
    return SimParams(
        seed=seed,
        pipeline_delay=DelayDistribution.constant(0.1),
        rule_install_delay=DelayDistribution.constant(install_ms),
        controller_service=DelayDistribution.constant(0.5),
    )


def central_fig1(**kwargs):
    topo = fig1_topology()
    topo.set_controller("v0")
    dep = build_central_network(topo, params=fast_params(), **kwargs)
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    return dep, flow


def test_central_fig1_completes_consistently():
    dep, flow = central_fig1()
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH))
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    assert checker.ok, checker.violations
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == list(FIG1_NEW_PATH)


def test_central_needs_multiple_rounds_for_fig1():
    """The backward segment forces at least two dependency rounds."""
    dep, flow = central_fig1()
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH))
    dep.run()
    assert dep.controller.rounds_executed >= 2


def test_central_single_round_for_disjoint_detour():
    topo = ring_topology(6, latency_ms=1.0)
    topo.set_controller("n0")
    dep = build_central_network(topo, params=fast_params())
    flow = Flow.between("n0", "n3", size=1.0, old_path=["n0", "n1", "n2", "n3"])
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, ["n0", "n5", "n4", "n3"])
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    # A forward-only detour is jointly safe in one shot... except the
    # ingress flip must wait for the detour rules: still >= 1 rounds,
    # and the greedy adds the ingress flip to round 1 only if safe.
    assert dep.controller.rounds_executed >= 1
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == ["n0", "n5", "n4", "n3"]


def test_central_round_trip_cost_scales_with_rounds():
    """Every round pays control RTT + service queue: the Fig. 1 update
    must take at least rounds * (2 * min control latency)."""
    dep, flow = central_fig1()
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH))
    dep.run()
    duration = dep.controller.update_duration(flow.flow_id)
    rounds = dep.controller.rounds_executed
    assert duration is not None and rounds >= 2
    # v0 is the controller's site; remote switches pay >= 20 ms one-way.
    assert duration >= rounds * 2 * 20.0 * 0.5  # lenient lower bound


def test_central_multi_flow_updates_complete():
    topo = ring_topology(8, latency_ms=1.0)
    topo.set_controller("n0")
    dep = build_central_network(topo, params=fast_params())
    flows = [
        Flow.between("n0", "n3", size=1.0, old_path=["n0", "n1", "n2", "n3"]),
        Flow.between("n4", "n7", size=1.0, old_path=["n4", "n5", "n6", "n7"]),
    ]
    for flow in flows:
        dep.install_flow(flow)
    dep.controller.update_flow(flows[0].flow_id, ["n0", "n7", "n6", "n5", "n4", "n3"])
    dep.controller.update_flow(flows[1].flow_id, ["n4", "n3", "n2", "n1", "n0", "n7"])
    dep.run()
    assert dep.controller.all_updates_complete()
    for flow in flows:
        _, outcome = dep.forwarding_state.walk(flow.flow_id)
        assert outcome == "delivered"


def dependency_chain_topology():
    """s-{a,b,c}-t diamond: flow1 wants onto link s-b, which only has
    room after flow2 moved off it to s-c."""
    from repro.topo.graph import Topology

    topo = Topology("deps")
    for node in ("s", "a", "b", "c", "t"):
        topo.add_node(node)
    topo.add_edge("s", "a", latency_ms=1.0, capacity=100.0)
    topo.add_edge("s", "b", latency_ms=1.0, capacity=10.0)
    topo.add_edge("s", "c", latency_ms=1.0, capacity=100.0)
    topo.add_edge("a", "t", latency_ms=1.0, capacity=100.0)
    topo.add_edge("b", "t", latency_ms=1.0, capacity=100.0)
    topo.add_edge("c", "t", latency_ms=1.0, capacity=100.0)
    topo.set_controller("s")
    return topo


def test_central_congestion_aware_orders_dependent_moves():
    """Flow1 may enter link s-b only after flow2 vacated it; the
    congestion-aware controller must find that order and never violate
    capacity along the way."""
    topo = dependency_chain_topology()
    dep = build_central_network(topo, params=fast_params(), congestion_aware=True)
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    f1 = Flow.between("s", "t", size=6.0, old_path=["s", "a", "t"])
    f2 = Flow(flow_id=f1.flow_id + 1, src="s", dst="t", size=6.0,
              old_path=["s", "b", "t"])
    dep.install_flow(f1)
    dep.install_flow(f2)
    dep.controller.update_flow(f1.flow_id, ["s", "b", "t"])   # needs room on s-b
    dep.controller.update_flow(f2.flow_id, ["s", "c", "t"])   # frees s-b
    dep.run()
    assert checker.ok, checker.violations
    assert dep.controller.all_updates_complete()
    assert dep.controller.rounds_executed >= 2, "moves must be ordered"
