"""Hand-built topologies from the paper's examples.

* :func:`fig1_topology` — the 8-node example of Fig. 1 used for
  SL-/DL-P4Update illustration and the Fig. 7a single-flow scenario
  (homogeneous 20 ms links, §9.1).
* :func:`fig2_topology` — the 5-node out-of-order-update demonstration
  of §4.1.
* :func:`six_node_topology` — the §4.2 fast-forward scenario network.
* :func:`line_topology` / :func:`ring_topology` — parametric helpers
  for unit and property tests.
"""

from __future__ import annotations

from repro.topo.graph import Topology

FIG1_LINK_LATENCY_MS = 20.0

# Fig. 1: old path v0 -> v4 -> v2 -> v7 (solid), new path
# v0 -> v1 -> v2 -> v3 -> v4 -> v5 -> v6 -> v7 (dashed).
FIG1_OLD_PATH = ["v0", "v4", "v2", "v7"]
FIG1_NEW_PATH = ["v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"]


def fig1_topology(latency_ms: float = FIG1_LINK_LATENCY_MS, capacity: float = 100.0) -> Topology:
    """The synthetic topology of Fig. 1 (paper §3).

    Contains the union of the old and the new flow path, which is all
    the figure defines.
    """
    edges = set()
    for path in (FIG1_OLD_PATH, FIG1_NEW_PATH):
        edges.update(frozenset(pair) for pair in zip(path, path[1:]))
    topo = Topology("fig1")
    for node in sorted({n for e in edges for n in e}):
        topo.add_node(node)
    for edge in sorted(edges, key=sorted):
        a, b = sorted(edge)
        topo.add_edge(a, b, latency_ms=latency_ms, capacity=capacity)
    topo.validate()
    return topo


# Fig. 2 configurations (§4.1), reconstructed so that deploying (c)
# while the (b) messages are still in flight produces the loop
# {v1, v2, v3} described in the paper:
#   (a) v0 -> v1 -> v2 -> v3 -> v4        (initial, solid)
#   (b) v0 -> v1 -> v2 -> v4              (updates only the v2..v4 part)
#   (c) v0 -> v3 -> v1 -> v2 -> v4        (updates some parts again)
# If (c)'s rules (v0->v3, v3->v1) are applied while v2 still forwards
# to v3 (because (b) is delayed), packets cycle v3 -> v1 -> v2 -> v3.
FIG2_CONFIG_A = ["v0", "v1", "v2", "v3", "v4"]
FIG2_CONFIG_B = ["v0", "v1", "v2", "v4"]
FIG2_CONFIG_C = ["v0", "v3", "v1", "v2", "v4"]


def fig2_topology(latency_ms: float = 20.0, capacity: float = 100.0) -> Topology:
    """5-node topology for the §4.1 inconsistent-update demonstration."""
    edges = set()
    for path in (FIG2_CONFIG_A, FIG2_CONFIG_B, FIG2_CONFIG_C):
        edges.update(frozenset(pair) for pair in zip(path, path[1:]))
    topo = Topology("fig2")
    for node in sorted({n for e in edges for n in e}):
        topo.add_node(node)
    for edge in sorted(edges, key=sorted):
        a, b = sorted(edge)
        topo.add_edge(a, b, latency_ms=latency_ms, capacity=capacity)
    topo.validate()
    return topo


# §4.2 fast-forward scenario: "a network with six nodes".  U2 is a
# complex (segmented, with a backward segment) update, U3 a simple one.
#   initial: s0 -> s1 -> s2 -> s5
#   U2:      s0 -> s2 -> s1 -> s3 -> s4 -> s5   (backward segment s2->s1)
#   U3:      s0 -> s1 -> s4 -> s5               (simple forward detour)
SIX_NODE_INITIAL = ["s0", "s1", "s2", "s5"]
SIX_NODE_U2 = ["s0", "s2", "s1", "s3", "s4", "s5"]
SIX_NODE_U3 = ["s0", "s1", "s4", "s5"]


def six_node_topology(latency_ms: float = 20.0, capacity: float = 100.0) -> Topology:
    """6-node topology for the §4.2 two-consecutive-update scenario."""
    edges = set()
    for path in (SIX_NODE_INITIAL, SIX_NODE_U2, SIX_NODE_U3):
        edges.update(frozenset(pair) for pair in zip(path, path[1:]))
    topo = Topology("six_node")
    for node in sorted({n for e in edges for n in e}):
        topo.add_node(node)
    for edge in sorted(edges, key=sorted):
        a, b = sorted(edge)
        topo.add_edge(a, b, latency_ms=latency_ms, capacity=capacity)
    topo.validate()
    return topo


def line_topology(n: int, latency_ms: float = 1.0, capacity: float = 100.0) -> Topology:
    """n nodes in a row: n0 - n1 - ... - n(n-1)."""
    if n < 2:
        raise ValueError("a line needs at least two nodes")
    topo = Topology(f"line{n}")
    for i in range(n):
        topo.add_node(f"n{i}")
    for i in range(n - 1):
        topo.add_edge(f"n{i}", f"n{i+1}", latency_ms=latency_ms, capacity=capacity)
    topo.validate()
    return topo


def ring_topology(n: int, latency_ms: float = 1.0, capacity: float = 100.0) -> Topology:
    """n nodes in a cycle."""
    if n < 3:
        raise ValueError("a ring needs at least three nodes")
    topo = Topology(f"ring{n}")
    for i in range(n):
        topo.add_node(f"n{i}")
    for i in range(n):
        topo.add_edge(f"n{i}", f"n{(i+1) % n}", latency_ms=latency_ms, capacity=capacity)
    topo.validate()
    return topo
