"""Links and control channels.

A :class:`Link` is a bidirectional connection between two node ports
with a fixed propagation latency (milliseconds) and a capacity used for
congestion accounting (abstract rate units; the paper's flow sizes are
expressed in the same units).

A :class:`ControlChannel` connects the controller to a switch.  Its
latency models the control-plane path (geographic distance to the
centroid controller for WANs, a measured distribution for fat-trees).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Link:
    """Bidirectional data-plane link between two switch ports."""

    node_a: str
    port_a: int
    node_b: str
    port_b: int
    latency_ms: float
    capacity: float = float("inf")

    def endpoint(self, node: str) -> tuple[str, int]:
        """Return ``(peer_node, peer_port)`` as seen from ``node``."""
        if node == self.node_a:
            return (self.node_b, self.port_b)
        if node == self.node_b:
            return (self.node_a, self.port_a)
        raise ValueError(f"{node!r} is not an endpoint of {self}")

    def other(self, node: str) -> str:
        return self.endpoint(node)[0]

    @property
    def key(self) -> frozenset:
        """Orientation-independent identity of the link."""
        return frozenset((self.node_a, self.node_b))


@dataclass
class ControlChannel:
    """Control-plane path between the controller and one switch."""

    switch: str
    latency_ms: float
    # Per-message serialisation overhead at the channel (e.g. the
    # switch-agent handling cost); usually zero, kept for experiments.
    overhead_ms: float = 0.0

    def delay(self) -> float:
        return self.latency_ms + self.overhead_ms


@dataclass
class LinkUsage:
    """Mutable capacity bookkeeping for one directed link use.

    The consistency checker uses this to assert congestion freedom over
    time; switches keep their own local view in registers.
    """

    capacity: float
    reserved: float = 0.0
    flows: dict = field(default_factory=dict)

    @property
    def remaining(self) -> float:
        return self.capacity - self.reserved

    def reserve(self, flow_id: int, size: float) -> None:
        if flow_id in self.flows:
            return
        self.flows[flow_id] = size
        self.reserved += size

    def release(self, flow_id: int) -> float:
        size = self.flows.pop(flow_id, 0.0)
        self.reserved -= size
        return size

    def violated(self) -> bool:
        # Tolerate float round-off from repeated reserve/release.
        return self.reserved > self.capacity + 1e-9
