"""Deterministic merge: metrics, profiles, aggregates, the manifest."""

import pytest

from repro.obs.manifest import load_manifest
from repro.sweep.executor import run_sweep
from repro.sweep.merge import (
    attach_shard_keys,
    build_sweep_results,
    format_profile,
    merge_metrics,
    merge_profiles,
    results_signature,
    validate_sweep_results,
    write_sweep_manifest,
)
from repro.sweep.spec import load_sweep_spec


def _doc(index, results, **extra):
    return {
        "shard_id": f"s{index:04d}", "index": index, "kind": "experiment",
        "seed": 7, "results": results, "wall": {"duration_s": 0.1},
        **extra,
    }


def test_signature_is_order_independent():
    docs = [_doc(i, {"x": i}) for i in range(4)]
    assert results_signature(docs) == results_signature(docs[::-1])


def test_merge_metrics_sums_counters_and_combines_histograms():
    a = {
        "messages": [{"labels": {"node": "v1"}, "type": "counter", "value": 3}],
        "latency": [{"labels": {}, "type": "histogram", "count": 2,
                     "sum": 10.0, "min": 4.0, "max": 6.0, "mean": 5.0}],
    }
    b = {
        "messages": [
            {"labels": {"node": "v1"}, "type": "counter", "value": 2},
            {"labels": {"node": "v2"}, "type": "counter", "value": 1},
        ],
        "latency": [{"labels": {}, "type": "histogram", "count": 1,
                     "sum": 2.0, "min": 2.0, "max": 2.0, "mean": 2.0}],
    }
    merged = merge_metrics([a, b])
    by_node = {row["labels"].get("node"): row for row in merged["messages"]}
    assert by_node["v1"]["value"] == 5
    assert by_node["v2"]["value"] == 1
    hist = merged["latency"][0]
    assert hist["count"] == 3
    assert hist["sum"] == 12.0
    assert hist["min"] == 2.0 and hist["max"] == 6.0
    assert hist["mean"] == pytest.approx(4.0)


def test_merge_metrics_empty_histogram_snapshot():
    empty = {"h": [{"labels": {}, "type": "histogram", "count": 0}]}
    merged = merge_metrics([empty, empty])
    assert merged["h"][0]["count"] == 0


def test_merge_profiles_sums_and_recomputes_mean():
    a = [{"target": "Switch.on_unm", "calls": 10, "total_ms": 2.0,
          "mean_us": 200.0, "max_us": 400.0}]
    b = [{"target": "Switch.on_unm", "calls": 30, "total_ms": 6.0,
          "mean_us": 200.0, "max_us": 900.0},
         {"target": "Engine.tick", "calls": 5, "total_ms": 10.0,
          "mean_us": 2000.0, "max_us": 2500.0}]
    merged = merge_profiles([a, b])
    # Sorted by total time descending.
    assert [row["target"] for row in merged] == [
        "Engine.tick", "Switch.on_unm",
    ]
    unm = merged[1]
    assert unm["calls"] == 40
    assert unm["total_ms"] == pytest.approx(8.0)
    assert unm["max_us"] == 900.0
    assert unm["mean_us"] == pytest.approx(8.0 * 1000.0 / 40)
    table = format_profile(merged)
    assert "Engine.tick" in table and "target" in table


def test_build_sweep_results_validates_and_counts():
    spec = load_sweep_spec({
        "name": "t", "systems": ["p4update-sl"], "topologies": ["fig1"],
        "scenarios": ["single"], "seeds": 2,
    })
    docs = [
        _doc(0, {"completed": True, "total_update_time_ms": 10.0,
                 "violations": 0}),
        _doc(1, {"completed": True, "total_update_time_ms": 30.0,
                 "violations": 0}),
    ]
    results = build_sweep_results(spec, docs, [], 2)
    assert results["shards_completed"] == 2 and results["shards_failed"] == 0
    cell = results["aggregates"]["cells"]["single/fig1/p4update-sl"]
    assert cell["paired_runs"] == 2
    assert cell["mean_update_ms"] == pytest.approx(20.0)
    validate_sweep_results(results)


def test_incomplete_group_is_skipped_from_pairing():
    spec = load_sweep_spec({
        "name": "t", "systems": ["p4update-sl", "ezsegway"],
        "topologies": ["fig1"], "scenarios": ["single"], "seeds": 1,
    })
    docs = [
        _doc(0, {"completed": True, "total_update_time_ms": 10.0,
                 "violations": 0}),
        _doc(1, {"completed": False, "total_update_time_ms": None,
                 "violations": 0}),
    ]
    results = build_sweep_results(spec, docs, [], 2)
    assert results["aggregates"]["skipped_groups"] == 1
    cell = results["aggregates"]["cells"]["single/fig1/p4update-sl"]
    assert cell["paired_runs"] == 0 and cell["mean_update_ms"] is None


def test_validate_sweep_results_rejects_malformed():
    with pytest.raises(ValueError, match="missing field 'signature'"):
        validate_sweep_results({"spec_hash": "x"})
    spec = load_sweep_spec({
        "name": "t", "systems": ["p4update-sl"], "topologies": ["fig1"],
        "scenarios": ["single"], "seeds": 1,
    })
    good = build_sweep_results(spec, [_doc(0, {"completed": True})], [], 1)
    broken = dict(good, shards_completed=5)
    with pytest.raises(ValueError, match="shards_completed"):
        validate_sweep_results(broken)


def test_attach_shard_keys_rederives_axes():
    spec = load_sweep_spec({
        "name": "t", "systems": ["p4update-sl", "p4update-dl"],
        "topologies": ["fig1"], "scenarios": ["single"], "seeds": 1,
    })
    docs = [_doc(0, {"completed": True}), _doc(1, {"completed": True})]
    enriched = attach_shard_keys(spec, docs)
    assert enriched[0]["key"]["system"] == "p4update-sl"
    assert enriched[1]["key"]["system"] == "p4update-dl"
    # The inputs are not mutated.
    assert "key" not in docs[0]


def test_sweep_manifest_round_trip_and_schema(tmp_path):
    """The consolidated manifest is a schema-valid BENCH manifest whose
    results tree passes the sweep-specific validator after reload."""
    spec = load_sweep_spec({
        "name": "mini", "systems": ["p4update-sl"], "topologies": ["fig1"],
        "scenarios": ["single"], "seeds": 1,
    })
    run = run_sweep(spec, workers=1, cache_dir=str(tmp_path / "cache"))
    assert run.ok
    path = write_sweep_manifest(
        spec, run.shard_docs, run.failures, run.shards_total,
        out_dir=str(tmp_path),
    )
    doc = load_manifest(path)
    assert doc["name"] == "sweep_mini"
    assert doc["params"] == spec.to_dict()
    validate_sweep_results(doc["results"])
    assert doc["results"]["signature"] == run.signature()


def test_sweep_manifest_merges_profiles(tmp_path):
    spec = load_sweep_spec({
        "name": "prof", "systems": ["p4update-sl"], "topologies": ["fig1"],
        "scenarios": ["single"], "seeds": 1,
    })
    run = run_sweep(
        spec, workers=1, cache_dir=str(tmp_path / "cache"), profile=True,
    )
    assert run.ok
    assert all(d.get("profile") for d in run.shard_docs)
    path = write_sweep_manifest(
        spec, run.shard_docs, run.failures, run.shards_total,
        out_dir=str(tmp_path),
    )
    doc = load_manifest(path)
    merged = doc["results"]["merged_profile"]
    assert merged and all("target" in row for row in merged)
    assert sum(row["calls"] for row in merged) > 0
