"""Tests for the §11 extensions: rule cleanup, UNM-loss recovery, and
the App. C consecutive-dual-layer extension."""


from repro.consistency import LiveChecker
from repro.core.messages import UpdateType
from repro.harness.build import build_p4update_network
from repro.params import DelayDistribution, SimParams
from repro.sim.faults import CompositeFaultModel, FaultAction, ScriptedFault
from repro.topo import fig1_topology, ring_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
from repro.traffic.flows import Flow


def fast_params(seed=0):
    return SimParams(
        seed=seed,
        pipeline_delay=DelayDistribution.constant(0.1),
        rule_install_delay=DelayDistribution.constant(1.0),
        controller_service=DelayDistribution.constant(0.2),
        controller_background_util=0.0,
        unm_generation_delay=DelayDistribution.constant(0.5),
    )


# -- §11 rule cleanup -----------------------------------------------------------

def test_cleanup_removes_abandoned_rules_and_reservations():
    """After rerouting away from n1/n2, those nodes must drop the
    flow's rules and release their capacity reservations."""
    topo = ring_topology(6, latency_ms=1.0, capacity=10.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params())
    flow = Flow.between("n0", "n3", size=4.0, old_path=["n0", "n1", "n2", "n3"])
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, ["n0", "n5", "n4", "n3"], UpdateType.SINGLE)
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    for node in ("n1", "n2"):
        switch = dep.switches[node]
        state = switch.program.state_of(flow.flow_id)
        assert state.new_version == 0, f"{node} kept stale state"
        # All reservations must be zero on every port.
        for port in (1, 2):
            assert switch.program.scheduler.port_budget(port).reserved == 0.0
        assert dep.forwarding_state.next_hop(flow.flow_id, node) is None


def test_cleanup_spares_nodes_on_the_new_path():
    """A cleanup racing through must stop at nodes with a pending or
    applied UIM of the new version (they serve the mixed path)."""
    topo = fig1_topology()
    dep = build_p4update_network(topo, params=fast_params())
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    assert checker.ok, checker.violations
    # Every new-path node still has its rule.
    for a, b in zip(FIG1_NEW_PATH, FIG1_NEW_PATH[1:]):
        assert dep.forwarding_state.next_hop(flow.flow_id, a) == b


def test_cleanup_never_removes_egress_delivery():
    topo = ring_topology(5, latency_ms=1.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params())
    flow = Flow.between("n0", "n2", size=1.0, old_path=["n0", "n1", "n2"])
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, ["n0", "n4", "n3", "n2"], UpdateType.SINGLE)
    dep.run()
    egress_state = dep.switches["n2"].program.state_of(flow.flow_id)
    assert egress_state.new_version >= 1, "egress must keep its state"


# -- §11 UNM-loss recovery ---------------------------------------------------------

def drop_first_unm_fault():
    """Drop the first UNM that crosses the data plane."""
    return CompositeFaultModel([
        ScriptedFault(
            matches=lambda m: hasattr(m, "has_valid") and m.has_valid("unm"),
            action=FaultAction.DROP,
            max_hits=1,
        )
    ])


def test_recovery_retriggers_after_unm_loss():
    topo = ring_topology(6, latency_ms=1.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params())
    dep.network.fault_model = drop_first_unm_fault()
    for switch in dep.switches.values():
        switch.unm_timeout_ms = 50.0
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between("n0", "n3", size=1.0, old_path=["n0", "n1", "n2", "n3"])
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, ["n0", "n5", "n4", "n3"], UpdateType.SINGLE)
    dep.run(until=5_000.0)
    assert dep.controller.update_complete(flow.flow_id), "recovery must finish the update"
    assert checker.ok, checker.violations
    assert any(a.reason == "unm_timeout" for a in dep.controller.alarms)


def test_without_recovery_a_lost_unm_stalls_the_update():
    """Control: the same drop without the watchdog never completes —
    which is exactly why §11 proposes the monitoring."""
    topo = ring_topology(6, latency_ms=1.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params())
    dep.network.fault_model = drop_first_unm_fault()
    flow = Flow.between("n0", "n3", size=1.0, old_path=["n0", "n1", "n2", "n3"])
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, ["n0", "n5", "n4", "n3"], UpdateType.SINGLE)
    dep.run(until=5_000.0)
    assert not dep.controller.update_complete(flow.flow_id)


def test_recovery_bounded_retriggers():
    """A switch black-holing all UNMs must not trigger unbounded
    re-sends: the controller stops after max_retriggers."""
    topo = ring_topology(6, latency_ms=1.0)
    topo.set_controller("n0")
    dep = build_p4update_network(topo, params=fast_params())
    dep.network.fault_model = CompositeFaultModel([
        ScriptedFault(
            matches=lambda m: hasattr(m, "has_valid") and m.has_valid("unm"),
            action=FaultAction.DROP,
        )
    ])
    for switch in dep.switches.values():
        switch.unm_timeout_ms = 20.0
    flow = Flow.between("n0", "n3", size=1.0, old_path=["n0", "n1", "n2", "n3"])
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, ["n0", "n5", "n4", "n3"], UpdateType.SINGLE)
    dep.run(until=10_000.0)
    version = dep.controller.record_of(flow.flow_id).pending_version
    key = (flow.flow_id, version)
    assert dep.controller._retriggers.get(key, 0) <= dep.controller.max_retriggers


# -- App. C: consecutive dual-layer updates ---------------------------------------------

def fig1_deployment(allow_consecutive=False):
    topo = fig1_topology()
    dep = build_p4update_network(topo, params=fast_params())
    if allow_consecutive:
        for switch in dep.switches.values():
            switch.program.allow_consecutive_dual = True
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    return dep, flow


def test_appc_extension_allows_dl_after_dl():
    dep, flow = fig1_deployment(allow_consecutive=True)
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    dep.controller.update_flow(flow.flow_id, list(FIG1_OLD_PATH), UpdateType.DUAL)
    dep.run(until=dep.network.engine.now + 30_000.0)
    assert checker.ok, checker.violations
    assert dep.controller.update_complete(flow.flow_id)
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == list(FIG1_OLD_PATH)


def test_appc_extension_stays_consistent_over_three_dl_rounds():
    dep, flow = fig1_deployment(allow_consecutive=True)
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    paths = [list(FIG1_NEW_PATH), list(FIG1_OLD_PATH), list(FIG1_NEW_PATH)]
    for path in paths:
        dep.controller.update_flow(flow.flow_id, path, UpdateType.DUAL)
        dep.run(until=dep.network.engine.now + 30_000.0)
    assert checker.ok, checker.violations
    walk, outcome = dep.forwarding_state.walk(flow.flow_id)
    assert outcome == "delivered" and walk == list(FIG1_NEW_PATH)


def test_without_extension_dl_after_dl_alarms():
    dep, flow = fig1_deployment(allow_consecutive=False)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    dep.controller.update_flow(flow.flow_id, list(FIG1_OLD_PATH), UpdateType.DUAL)
    dep.run(until=dep.network.engine.now + 20_000.0)
    assert any("consecutive" in a.reason for a in dep.controller.alarms)
