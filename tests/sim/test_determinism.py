"""Determinism: identical seeds give bit-identical traces."""

import numpy as np

from repro.core.messages import UpdateType
from repro.harness.build import build_p4update_network
from repro.harness.scenarios import multi_flow_scenario
from repro.params import SimParams
from repro.topo import b4_topology, fig1_topology
from repro.topo.synthetic import FIG1_NEW_PATH, FIG1_OLD_PATH
from repro.traffic.flows import Flow


import re


def trace_signature(dep):
    """Normalised trace: packet ids are process-global counters and
    carry no semantics, so they are stripped before comparison."""
    return [
        (
            round(e.time, 9),
            e.kind,
            e.node,
            tuple(sorted(re.sub(r"#\d+", "#", str(e.detail)).split())),
        )
        for e in dep.network.trace
    ]


def run_fig1(seed):
    dep = build_p4update_network(
        fig1_topology(), params=SimParams(seed=seed).with_dionysus_install_delay()
    )
    flow = Flow.between("v0", "v7", size=1.0, old_path=list(FIG1_OLD_PATH))
    dep.install_flow(flow)
    dep.controller.update_flow(flow.flow_id, list(FIG1_NEW_PATH), UpdateType.DUAL)
    dep.run()
    return dep


def test_same_seed_same_trace():
    a = trace_signature(run_fig1(7))
    b = trace_signature(run_fig1(7))
    assert a == b


def test_different_seed_different_timing():
    a = trace_signature(run_fig1(7))
    b = trace_signature(run_fig1(8))
    assert a != b


def test_multi_flow_experiment_deterministic():
    from repro.harness.experiment import run_experiment

    scenario1 = multi_flow_scenario(b4_topology(), np.random.default_rng(3))
    scenario2 = multi_flow_scenario(b4_topology(), np.random.default_rng(3))
    r1 = run_experiment("p4update-sl", scenario1, params=SimParams(seed=3))
    r2 = run_experiment("p4update-sl", scenario2, params=SimParams(seed=3))
    assert r1.total_update_time_ms == r2.total_update_time_ms
    assert r1.per_flow_ms == r2.per_flow_ms
