"""Runners for the paper's §4 demonstrations (Fig. 2 and Fig. 4).

* :func:`run_fig2` — the out-of-order-update scenario: configuration
  (c) is deployed while the control messages of (b) are still in
  flight; probe traffic at 125 pps / TTL 64 exposes the loop
  {v1, v2, v3} under ez-Segway and its absence under P4Update.
* :func:`run_fig4` — the fast-forward scenario: a simple update U3 is
  issued while the complex U2 is still ongoing; P4Update jumps ahead,
  ez-Segway serializes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


from repro.consistency import LiveChecker
from repro.core.messages import UIM, UpdateType
from repro.harness.baselines_build import build_ezsegway_network
from repro.harness.build import build_p4update_network
from repro.harness.experiment import path_establishment_time
from repro.harness.probes import (
    ProbeSource,
    deliveries,
    duplicate_receives,
    receives_at,
    ttl_losses,
)
from repro.harness.scenarios import FastForwardScenario, InconsistentUpdateScenario
from repro.params import SimParams
from repro.sim.faults import CompositeFaultModel, FaultAction, ScriptedFault
from repro.topo import fig2_topology, six_node_topology
from repro.traffic.flows import Flow


@dataclass
class Fig2Result:
    """Per-system outcome of the §4.1 experiment."""

    system: str
    probes_sent: int
    received_at_v1: list
    duplicates_at_v1: dict          # seq -> times seen (loops!)
    delivered_at_v4: list
    ttl_losses: int
    loop_window_ms: float           # duration packets looped (0 = none)
    consistency_violations: int


def run_fig2(
    system: str,
    scenario: Optional[InconsistentUpdateScenario] = None,
    params: Optional[SimParams] = None,
) -> Fig2Result:
    """Run the inconsistent-update demonstration for one system."""
    scenario = scenario if scenario is not None else InconsistentUpdateScenario()
    params = params if params is not None else SimParams()
    if system in ("p4update", "p4update-sl"):
        return _fig2_p4update(scenario, params)
    if system == "ezsegway":
        return _fig2_ezsegway(scenario, params)
    raise ValueError(f"fig2 supports p4update and ezsegway, not {system!r}")


def _fig2_flow(scenario: InconsistentUpdateScenario) -> Flow:
    return Flow.between(
        scenario.config_a[0], scenario.config_a[-1], size=1.0,
        old_path=list(scenario.config_a),
    )


def _fig2_probe_phase(deployment, flow, scenario, start_ms: float, stop_ms: float):
    source = ProbeSource(
        deployment, flow.flow_id, flow.src,
        rate_pps=scenario.probe_rate_pps, ttl=scenario.probe_ttl,
    )
    source.start(at=start_ms, stop_at=stop_ms)
    return source


def _fig2_p4update(scenario: InconsistentUpdateScenario, params: SimParams) -> Fig2Result:
    topo = fig2_topology()
    topo.set_controller(scenario.config_a[0])
    dep = build_p4update_network(topo, params=params)
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = _fig2_flow(scenario)
    dep.install_flow(flow)

    # Delay every version-2 UIM (configuration (b)): the controller
    # sent it, the network holds it, the controller is oblivious.
    dep.network.control_fault_model = CompositeFaultModel([
        ScriptedFault(
            matches=lambda m: isinstance(m, UIM) and m.version == 2,
            action=FaultAction.DELAY,
            extra_delay_ms=scenario.b_delay_ms,
        )
    ])

    source = _fig2_probe_phase(
        dep, flow, scenario, start_ms=1.0,
        stop_ms=scenario.b_delay_ms + 700.0,
    )
    # (b) then (c), back to back: (b)'s messages are in-flight-delayed.
    dep.controller.update_flow(flow.flow_id, list(scenario.config_b), UpdateType.SINGLE)
    dep.controller.update_flow(flow.flow_id, list(scenario.config_c), UpdateType.SINGLE)
    dep.run(until=scenario.b_delay_ms + 1500.0)

    return _fig2_collect("p4update", dep.network.trace, flow, source, checker)


def _fig2_ezsegway(scenario: InconsistentUpdateScenario, params: SimParams) -> Fig2Result:
    topo = fig2_topology()
    topo.set_controller(scenario.config_a[0])
    dep = build_ezsegway_network(topo, params=params)
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = _fig2_flow(scenario)
    dep.install_flow(flow)

    from repro.baselines.ezsegway import RoleMessage

    dep.network.control_fault_model = CompositeFaultModel([
        ScriptedFault(
            matches=lambda m: isinstance(m, RoleMessage) and m.update_id == 1,
            action=FaultAction.DELAY,
            extra_delay_ms=scenario.b_delay_ms,
        )
    ])

    source = _fig2_probe_phase(
        dep, flow, scenario, start_ms=1.0,
        stop_ms=scenario.b_delay_ms + 700.0,
    )
    # (b) pushed first (update 1, delayed in flight); the controller —
    # believing it done (inconsistent view, [69]) — pushes (c) against
    # the believed state.  We model the oblivious controller by
    # clearing the active-update serialisation between the pushes.
    dep.controller.update_flow(flow.flow_id, list(scenario.config_b))
    dep.controller.active_updates.pop(flow.flow_id, None)
    dep.controller.update_flow(flow.flow_id, list(scenario.config_c))
    dep.run(until=scenario.b_delay_ms + 1500.0)

    return _fig2_collect("ezsegway", dep.network.trace, flow, source, checker)


def _fig2_collect(system, trace, flow, source, checker) -> Fig2Result:
    at_v1 = receives_at(trace, "v1", flow.flow_id)
    dups = duplicate_receives(at_v1)
    losses = ttl_losses(trace, flow.flow_id)
    dup_times = [o.time for o in at_v1 if o.seq in dups]
    loop_window = (max(dup_times) - min(dup_times)) if dup_times else 0.0
    return Fig2Result(
        system=system,
        probes_sent=source.sent,
        received_at_v1=at_v1,
        duplicates_at_v1=dups,
        delivered_at_v4=deliveries(trace, flow.flow_id),
        ttl_losses=len(losses),
        loop_window_ms=loop_window,
        consistency_violations=len(checker.violations),
    )


# -- Fig. 4 ----------------------------------------------------------------------


@dataclass
class Fig4Result:
    """Completion time of U3, measured from its issue instant."""

    system: str
    u3_completion_ms: float
    completed: bool
    consistency_violations: int


def run_fig4(
    system: str,
    scenario: Optional[FastForwardScenario] = None,
    params: Optional[SimParams] = None,
) -> Fig4Result:
    """Run the §4.2 two-consecutive-update scenario for one system."""
    scenario = scenario if scenario is not None else FastForwardScenario()
    params = params if params is not None else SimParams()
    topo = six_node_topology()
    topo.set_controller(scenario.initial[0])

    flow = Flow.between(
        scenario.initial[0], scenario.initial[-1], size=1.0,
        old_path=list(scenario.initial),
    )

    if system in ("p4update", "p4update-sl", "p4update-dl"):
        dep = build_p4update_network(topo, params=params)
        checker = LiveChecker(dep.forwarding_state, dep.network.trace)
        dep.install_flow(flow)
        dep.controller.update_flow(flow.flow_id, list(scenario.u2))
        dep.network.engine.schedule(
            scenario.u3_delay_ms,
            lambda: dep.controller.update_flow(flow.flow_id, list(scenario.u3)),
        )
        dep.run()
        established = path_establishment_time(
            dep.network.trace, flow.flow_id, list(scenario.u3), list(scenario.initial)
        )
        completed = established != float("inf")
        return Fig4Result(
            system=system,
            u3_completion_ms=established - scenario.u3_delay_ms,
            completed=completed,
            consistency_violations=len(checker.violations),
        )

    if system == "ezsegway":
        dep = build_ezsegway_network(topo, params=params)
        checker = LiveChecker(dep.forwarding_state, dep.network.trace)
        dep.install_flow(flow)
        dep.controller.update_flow(flow.flow_id, list(scenario.u2))
        dep.network.engine.schedule(
            scenario.u3_delay_ms,
            lambda: dep.controller.update_flow(flow.flow_id, list(scenario.u3)),
        )
        dep.run()
        established = path_establishment_time(
            dep.network.trace, flow.flow_id, list(scenario.u3), list(scenario.initial)
        )
        completed = established != float("inf")
        return Fig4Result(
            system="ezsegway",
            u3_completion_ms=established - scenario.u3_delay_ms,
            completed=completed,
            consistency_violations=len(checker.violations),
        )

    raise ValueError(f"fig4 supports p4update and ezsegway, not {system!r}")
