"""Admission control: queue depth, shed policies, token bucket.

Everything is asserted from per-request records of full
:func:`run_service` runs — timestamps are simulated milliseconds, so
the assertions are exact, not statistical.
"""

import pytest

from repro.serve.model import (
    OUTCOME_COMPLETED,
    OUTCOME_REJECTED,
)
from repro.serve.service import run_service
from repro.serve.spec import ServeSpec


def _spec(**overrides):
    base = dict(
        name="admission",
        topology="b4",
        seed=1,
        mode="open",
        flows=8,
        requests=40,
        arrival_rate_per_s=2000.0,  # a burst: ~0.5ms between arrivals
        conflict_policy="serialize",
        horizon_ms=120000.0,
    )
    base.update(overrides)
    return ServeSpec(**base)


def test_reject_policy_sheds_over_depth():
    result = run_service(
        _spec(queue_depth=4, shed_policy="reject", max_in_flight=1)
    )
    rejected = [
        r for r in result.records if r["outcome"] == OUTCOME_REJECTED
    ]
    assert rejected, "burst arrivals over a depth-4 queue must shed"
    # A rejected request never entered the queue, let alone dispatched.
    for record in rejected:
        assert record["admitted_ms"] is None
        assert record["dispatched_ms"] is None
        assert record["completed_ms"] is not None
    assert result.invariants_ok and result.consistent


def test_park_policy_readmits_instead_of_rejecting():
    result = run_service(
        _spec(queue_depth=4, shed_policy="park", max_in_flight=1)
    )
    outcomes = result.outcome_counts
    assert OUTCOME_REJECTED not in outcomes
    # Parked requests re-enter as the queue drains: admission happens
    # strictly after submission for at least some of them.
    readmitted = [
        r
        for r in result.records
        if r["admitted_ms"] is not None
        and r["admitted_ms"] > r["submitted_ms"]
    ]
    assert readmitted, "parked requests must be re-admitted later"
    assert outcomes.get(OUTCOME_COMPLETED, 0) > 0
    assert result.invariants_ok and result.consistent


def test_park_policy_completes_everything_reject_does_not():
    park = run_service(_spec(queue_depth=4, shed_policy="park"))
    reject = run_service(_spec(queue_depth=4, shed_policy="reject"))
    assert park.completed > reject.completed
    assert park.completed == len(park.records)


def test_token_bucket_paces_dispatch_on_sim_clock():
    # 10 tokens/s, burst 1: after the first dispatch, consecutive
    # dispatches are >= 100 simulated ms apart no matter how fast
    # requests arrive.
    result = run_service(
        _spec(
            requests=12,
            rate_per_s=10.0,
            burst=1,
            queue_depth=64,
        )
    )
    dispatched = sorted(
        r["dispatched_ms"]
        for r in result.records
        if r["dispatched_ms"] is not None
    )
    assert len(dispatched) >= 10
    gaps = [b - a for a, b in zip(dispatched, dispatched[1:])]
    assert min(gaps) >= 100.0 - 1e-6
    assert result.invariants_ok and result.consistent


def test_unlimited_bucket_dispatches_immediately():
    result = run_service(_spec(rate_per_s=0.0))
    waits = [
        r["dispatched_ms"] - r["submitted_ms"]
        for r in result.records
        if r["dispatched_ms"] is not None and r["admitted_ms"] is not None
    ]
    assert waits and min(waits) == pytest.approx(0.0)
