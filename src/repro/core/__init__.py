"""P4Update — the paper's primary contribution.

Modules:

* :mod:`repro.core.messages` — FRM / UIM / UNM / UFM message types (§6);
* :mod:`repro.core.registers` — the Update Information Base, i.e. the
  register arrays of paper Table 1;
* :mod:`repro.core.labeling` — version numbers and egress distances (§3);
* :mod:`repro.core.segmentation` — gateways, forward/backward segments (§3.2);
* :mod:`repro.core.verification` — Alg. 1 (SL) and Alg. 2 (DL) as pure
  functions (§7.1, App. A);
* :mod:`repro.core.scheduler` — the local, dynamic congestion scheduler (§7.4);
* :mod:`repro.core.dataplane` — the P4 pipeline program (§8, App. B);
* :mod:`repro.core.switch` — the switch agent tying program to simulator;
* :mod:`repro.core.controller` — the control plane (§6, §8);
* :mod:`repro.core.strategy` — SL/DL selection (§7.5);
* :mod:`repro.core.cleanup` — rule cleanup extension (§11);
* :mod:`repro.core.recovery` — UNM-loss detection and re-trigger (§11).
"""

from repro.core.messages import FRM, UFM, UIM, UNMFields, UpdateType
from repro.core.labeling import distance_labels, label_update
from repro.core.segmentation import Segment, compute_gateways, compute_segments
from repro.core.verification import (
    Decision,
    NodeFlowState,
    Verdict,
    verify_dl,
    verify_sl,
)
from repro.core.controller import P4UpdateController
from repro.core.switch import P4UpdateSwitch
from repro.core.strategy import choose_update_type
from repro.core.desttree import DestinationTreeManager

__all__ = [
    "FRM",
    "UFM",
    "UIM",
    "UNMFields",
    "UpdateType",
    "distance_labels",
    "label_update",
    "Segment",
    "compute_gateways",
    "compute_segments",
    "Decision",
    "NodeFlowState",
    "Verdict",
    "verify_sl",
    "verify_dl",
    "P4UpdateController",
    "P4UpdateSwitch",
    "choose_update_type",
    "DestinationTreeManager",
]
