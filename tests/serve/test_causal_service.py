"""Service-level acceptance for per-request causal tracing.

The ISSUE-level contracts live here:

* every terminal request's segment durations sum to its end-to-end
  latency within 1e-9 ms;
* enabling causal tracing leaves the simulated run bit-identical —
  trace signature AND result signature match a causal=False run;
* attribution is worker-count independent: a 2-worker sweep produces
  byte-identical rows, summaries and DAGs to the serial run;
* chaos (link flap + update watchdog) populates the retry_backoff and
  recovery segments, and the queue-depth gauge cross-check holds.
"""

import json

import pytest

from repro.obs.causal import SEGMENTS
from repro.serve.service import run_service
from repro.serve.spec import ServeSpec
from repro.sweep.executor import run_sweep
from repro.sweep.spec import load_sweep_spec

#: The serve-smoke workload (mirrors examples/serve_smoke.json): a
#: mid-run link flap forces watchdog retriggers and recovery requeues.
SMOKE = dict(
    name="causal-smoke",
    topology="b4",
    seed=0,
    mode="open",
    flows=8,
    requests=60,
    arrival_rate_per_s=400.0,
    queue_depth=16,
    shed_policy="park",
    conflict_policy="serialize",
    horizon_ms=300000.0,
    params={"controller_update_timeout_ms": 2000.0},
    events=(
        {"time_ms": 40.0, "kind": "link_down",
         "node_a": "dalles-or", "node_b": "council-ia"},
        {"time_ms": 400.0, "kind": "link_up",
         "node_a": "dalles-or", "node_b": "council-ia"},
    ),
)


@pytest.fixture(scope="module")
def traced():
    return run_service(ServeSpec(**SMOKE, causal=True))


@pytest.fixture(scope="module")
def untraced():
    return run_service(ServeSpec(**SMOKE))


def test_every_request_has_an_attribution_row(traced):
    rows = traced.attribution["rows"]
    assert len(rows) == len(traced.records) == 60
    assert [r["request_id"] for r in rows] == sorted(
        rec["request_id"] for rec in traced.records
    )


def test_segments_sum_to_end_to_end(traced):
    for row in traced.attribution["rows"]:
        residual = abs(sum(row["segments"].values()) - row["e2e_ms"])
        assert residual <= 1e-9, (row["request_id"], residual)
        assert set(row["segments"]) == set(SEGMENTS)
    assert traced.attribution["summary"]["residual_max_ms"] <= 1e-9


def test_e2e_matches_request_records(traced):
    by_id = {rec["request_id"]: rec for rec in traced.records}
    for row in traced.attribution["rows"]:
        rec = by_id[row["request_id"]]
        assert row["outcome"] == rec["outcome"]
        assert row["e2e_ms"] == pytest.approx(
            rec["completed_ms"] - rec["submitted_ms"], abs=1e-9
        )


def test_causal_run_is_bit_identical_to_untraced(traced, untraced):
    on, off = traced.to_results(), untraced.to_results()
    assert on["trace_signature"] == off["trace_signature"]
    assert traced.signature() == untraced.signature()
    assert on["records"] == off["records"]


def test_chaos_populates_retry_and_recovery():
    # Seed 1 of this workload exercises the §11 watchdog: at least one
    # request must spend time waiting out a retrigger and in recovery.
    result = run_service(ServeSpec(**{**SMOKE, "seed": 1}, causal=True))
    totals = {s: 0.0 for s in SEGMENTS}
    for row in result.attribution["rows"]:
        for segment, value in row["segments"].items():
            totals[segment] += value
    assert totals["retry_backoff"] > 0.0
    assert totals["recovery"] > 0.0
    assert totals["dataplane_verify"] > 0.0


def test_queue_depth_at_admit_recorded(traced):
    depths = [
        rec["queue_depth_at_admit"]
        for rec in traced.records
        if rec["admitted_ms"] is not None
    ]
    assert depths and all(isinstance(d, int) and d >= 0 for d in depths)
    # The spec caps the queue: the recorded depth can never exceed it.
    assert max(depths) <= SMOKE["queue_depth"]


def test_queue_depth_cross_checks_gauge_and_causal_event():
    from repro.obs import make_obs

    obs = make_obs()
    result = run_service(ServeSpec(**SMOKE, causal=True), obs=obs)
    # The causal "admitted" event carries the same depth the record
    # stores — one fact, two observation paths.
    by_id = {rec["request_id"]: rec for rec in result.records}
    admitted = 0
    for dag in result.causal:
        for event in dag["events"]:
            if event["kind"] == "admitted":
                rec = by_id[dag["request_id"]]
                assert event["queue_depth"] == rec["queue_depth_at_admit"]
                admitted += 1
    assert admitted > 0
    # The serve_queue_depth gauge exists and has fully drained by the
    # end of the run (every request reached a terminal outcome).
    assert obs.metrics.value("serve_queue_depth") == 0.0


def test_dags_cover_all_requests(traced):
    dags = traced.causal
    assert len(dags) == 60
    for dag in dags:
        assert dag["events"][0]["kind"] == "submitted"
        assert dag["events"][-1]["kind"] == "done"
        assert len(dag["edges"]) == len(dag["events"]) - 1
        # Edges tile the lifetime: telescoping sum equals e2e.
        assert sum(e["dur_ms"] for e in dag["edges"]) == pytest.approx(
            dag["e2e_ms"], abs=1e-9
        )


def _sweep(workers: int):
    sweep = load_sweep_spec(
        {
            "name": "causal-sweep",
            "kind": "serve",
            "seed": 0,
            "seeds": 2,
            "serve": ServeSpec(**SMOKE, causal=True).to_dict(),
        }
    )
    run = run_sweep(sweep, workers=workers, cache_dir=None, resume=False)
    assert run.ok
    dags = []
    rows = []
    for doc in sorted(run.shard_docs, key=lambda d: int(d["index"])):
        dags.extend(doc.pop("causal"))
        rows.extend(doc["results"]["attribution"]["rows"])
    return run, dags, rows


def test_attribution_identical_across_worker_counts():
    run1, dags1, rows1 = _sweep(workers=1)
    run2, dags2, rows2 = _sweep(workers=2)
    assert json.dumps(rows1, sort_keys=True) == json.dumps(rows2, sort_keys=True)
    assert json.dumps(dags1, sort_keys=True) == json.dumps(dags2, sort_keys=True)
    for d1, d2 in zip(run1.shard_docs, run2.shard_docs):
        assert d1["results"] == d2["results"]


def test_trace_max_events_bounds_retention_and_reports_drops():
    spec = ServeSpec(
        **{
            **SMOKE,
            "params": {**SMOKE["params"], "trace_max_events": 50},
        },
        causal=True,
    )
    bounded = run_service(spec)
    results = bounded.to_results()
    assert results["trace_dropped_events"] > 0
    # Retention is an observer concern: the run's outcome records and
    # the attribution are identical to the unbounded run.
    unbounded = run_service(ServeSpec(**SMOKE, causal=True))
    assert results["records"] == unbounded.to_results()["records"]
    assert bounded.attribution["rows"] == unbounded.attribution["rows"]
    assert unbounded.to_results()["trace_dropped_events"] == 0
