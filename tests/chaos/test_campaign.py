"""Campaign declarations, the runner, determinism and zero-overhead."""

import json

import numpy as np
import pytest

from repro.chaos import (
    FaultCampaign,
    MessageFaultSpec,
    TopoEvent,
    load_campaign,
    run_campaign,
    trace_signature,
)
from repro.chaos.runner import build_campaign_deployment, campaign_params
from repro.harness.build import build_p4update_network
from repro.harness.scenarios import single_flow_scenario
from repro.p4.packet import reset_packet_ids
from repro.topo import fig1_topology


def acceptance_campaign(seed=42):
    """The issue's acceptance scenario: a mid-update link failure plus
    a switch crash/restart plus 20% UNM drop."""
    return FaultCampaign(
        name="acceptance",
        topology="fig1",
        seed=seed,
        horizon_ms=30_000.0,
        update_at_ms=10.0,
        reliable_control=True,
        unm_timeout_ms=200.0,
        controller_update_timeout_ms=2_000.0,
        events=(
            TopoEvent(time_ms=12.0, kind="link_down", node_a="v4", node_b="v2"),
            TopoEvent(time_ms=40.0, kind="switch_crash", node_a="v5"),
            TopoEvent(time_ms=400.0, kind="switch_restart", node_a="v5"),
        ),
        message_faults=(
            MessageFaultSpec(plane="data", drop_prob=0.2, scope="unm"),
        ),
    )


# -- declaration / JSON ------------------------------------------------------


def test_campaign_json_round_trip():
    campaign = acceptance_campaign()
    restored = load_campaign(json.loads(campaign.to_json()))
    assert restored == campaign


def test_unknown_event_kind_rejected():
    with pytest.raises(ValueError):
        TopoEvent(time_ms=0.0, kind="meteor_strike", node_a="v0")


def test_link_event_needs_both_endpoints():
    with pytest.raises(ValueError):
        TopoEvent(time_ms=0.0, kind="link_down", node_a="v0")


def test_corruptor_must_be_registered():
    with pytest.raises(ValueError):
        MessageFaultSpec(corrupt_prob=0.5, corruptor="gamma_rays")


def test_unknown_topology_rejected_by_runner():
    campaign = FaultCampaign(name="x", topology="moebius")
    with pytest.raises(ValueError):
        build_campaign_deployment(campaign)


# -- the acceptance criterion ------------------------------------------------


def test_acceptance_scenario_completes_consistently_and_deterministically():
    campaign = acceptance_campaign()
    first = run_campaign(campaign)
    second = run_campaign(campaign)
    assert first.completed, "every flow must complete or park"
    assert first.consistent, first.violations[:3]
    assert first.fault_counts["data"]["dropped"] > 0, "the 20% UNM drop must bite"
    assert first.trace_signature == second.trace_signature
    assert first.to_results() == second.to_results()


def test_different_seeds_diverge():
    a = run_campaign(acceptance_campaign(seed=1))
    b = run_campaign(acceptance_campaign(seed=2))
    assert a.trace_signature != b.trace_signature


def test_parked_flow_reported_in_results():
    campaign = FaultCampaign(
        name="parked",
        topology="fig1",
        seed=0,
        horizon_ms=10_000.0,
        events=(
            # Cut every edge into v7: no alternate path can exist.
            TopoEvent(time_ms=5.0, kind="link_down", node_a="v2", node_b="v7"),
            TopoEvent(time_ms=5.0, kind="link_down", node_a="v6", node_b="v7"),
        ),
    )
    result = run_campaign(campaign)
    assert result.flows_parked == 1
    assert result.completed
    assert result.consistent, result.violations[:3]
    (report,) = result.parked_reports
    assert report["reason"] == "no alternate path"


# -- zero-overhead contract --------------------------------------------------


def test_empty_campaign_equals_plain_harness_run():
    """With every chaos feature disabled the runner must produce the
    exact trace a hand-built deployment produces."""
    campaign = FaultCampaign(
        name="plain", topology="fig1", seed=3, horizon_ms=20_000.0
    )
    via_runner = run_campaign(campaign)

    reset_packet_ids()
    topo = fig1_topology()
    deployment = build_p4update_network(
        topo,
        params=campaign_params(campaign),
        rng=np.random.default_rng(campaign.seed),
    )
    scenario = single_flow_scenario(
        topo, rng=np.random.default_rng([campaign.seed, 0x5CE2])
    )
    for flow in scenario.flows:
        deployment.install_flow(flow)

    def trigger():
        for flow in scenario.flows:
            deployment.controller.update_flow(flow.flow_id, list(flow.new_path))

    deployment.network.engine.schedule_at(campaign.update_at_ms, trigger)
    deployment.run(until=campaign.horizon_ms)

    assert not deployment.network.chaos_enabled
    assert via_runner.trace_signature == trace_signature(deployment.network.trace)


def test_armed_chaos_without_events_changes_nothing():
    """enable_chaos() only arms bookkeeping; with no failures scheduled
    the trace must be bit-identical to an unarmed run."""
    campaign = FaultCampaign(
        name="armed", topology="fig1", seed=3, horizon_ms=20_000.0
    )

    def run(armed):
        deployment, scenario, _ = build_campaign_deployment(campaign)
        if armed:
            deployment.network.enable_chaos()

        def trigger():
            for flow in scenario.flows:
                deployment.controller.update_flow(flow.flow_id, list(flow.new_path))

        deployment.network.engine.schedule_at(campaign.update_at_ms, trigger)
        deployment.run(until=campaign.horizon_ms)
        return trace_signature(deployment.network.trace)

    assert run(armed=False) == run(armed=True)


# -- manifest ----------------------------------------------------------------


def test_manifest_emission(tmp_path):
    campaign = FaultCampaign(
        name="manifested", topology="fig1", seed=0, horizon_ms=20_000.0
    )
    result = run_campaign(campaign, emit_manifest=True, out_dir=str(tmp_path))
    path = tmp_path / "BENCH_chaos_manifested.json"
    assert path.exists()
    payload = json.loads(path.read_text())
    assert payload["results"]["trace_signature"] == result.trace_signature
    assert payload["results"]["consistent"] is True
    assert payload["params"]["name"] == "manifested"
