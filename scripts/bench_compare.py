#!/usr/bin/env python
"""Compare two ``BENCH_<name>.json`` run manifests (or directories of
them) and fail on regressions beyond a tolerance.

Usage::

    python scripts/bench_compare.py BASELINE CURRENT [--tolerance 0.10]

``BASELINE`` and ``CURRENT`` are either two manifest files or two
directories scanned for ``BENCH_*.json``.  Numeric leaves of each
manifest's ``results`` tree are compared pairwise; a value that grew
by more than ``--tolerance`` (relative) counts as a regression — every
number a manifest records (update times, preparation times, operation
counts, ratios, loss counts) is a cost, so "bigger" is "worse".  Use
``--both-directions`` to also fail on improvements beyond tolerance
(useful to force baseline refreshes when results shift), and
``--ignore`` to exclude volatile keys (wall-clock seconds on shared
CI, say) with fnmatch patterns against the dotted result path.

Exit status: 0 when no regressions, 1 on regressions, 2 on usage or
I/O errors.  Intended as an informational (``continue-on-error``) CI
step until baselines are curated.
"""

from __future__ import annotations

import argparse
import fnmatch
import glob
import json
import os
import sys
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True)
class Delta:
    """One numeric leaf that differs between baseline and current."""

    manifest: str
    key: str            # dotted path inside results
    baseline: float
    current: float

    @property
    def relative(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current != 0 else 0.0
        return (self.current - self.baseline) / abs(self.baseline)

    def row(self) -> str:
        rel = self.relative
        arrow = "worse" if rel > 0 else "better"
        return (
            f"{self.manifest}:{self.key}: {self.baseline:g} -> "
            f"{self.current:g} ({rel:+.1%} {arrow})"
        )


def numeric_leaves(tree: object, prefix: str = "") -> Iterator[tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf."""
    if isinstance(tree, bool):
        return
    if isinstance(tree, (int, float)):
        yield prefix, float(tree)
    elif isinstance(tree, dict):
        for key in sorted(tree):
            child = f"{prefix}.{key}" if prefix else str(key)
            yield from numeric_leaves(tree[key], child)
    elif isinstance(tree, (list, tuple)):
        for i, item in enumerate(tree):
            yield from numeric_leaves(item, f"{prefix}[{i}]")


def load_results(path: str) -> dict[str, float]:
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "results" not in doc:
        raise ValueError(f"{path}: not a run manifest (no 'results')")
    return dict(numeric_leaves(doc["results"]))


def manifest_set(path: str) -> dict[str, str]:
    """Manifest name -> file path, for a file or a directory."""
    if os.path.isdir(path):
        return {
            os.path.basename(p): p
            for p in sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
        }
    return {os.path.basename(path): path}


def compare(
    baseline: str,
    current: str,
    tolerance: float,
    ignore: Optional[list[str]] = None,
    both_directions: bool = False,
) -> tuple[list[Delta], list[str]]:
    """Returns (regressions, notes).  Raises on I/O or format errors."""
    ignore = ignore or []
    base_set = manifest_set(baseline)
    cur_set = manifest_set(current)

    regressions: list[Delta] = []
    notes: list[str] = []

    for name in sorted(base_set.keys() - cur_set.keys()):
        notes.append(f"{name}: present in baseline only (skipped)")
    for name in sorted(cur_set.keys() - base_set.keys()):
        notes.append(f"{name}: new manifest, no baseline (skipped)")

    for name in sorted(base_set.keys() & cur_set.keys()):
        base_values = load_results(base_set[name])
        cur_values = load_results(cur_set[name])
        for key in sorted(base_values.keys() - cur_values.keys()):
            notes.append(f"{name}:{key}: dropped from current results")
        for key in sorted(cur_values.keys() - base_values.keys()):
            notes.append(f"{name}:{key}: new result, no baseline")
        compared = 0
        for key in sorted(base_values.keys() & cur_values.keys()):
            if any(fnmatch.fnmatch(key, pattern) for pattern in ignore):
                continue
            compared += 1
            delta = Delta(name, key, base_values[key], cur_values[key])
            rel = delta.relative
            if rel > tolerance or (both_directions and rel < -tolerance):
                regressions.append(delta)
        notes.append(f"{name}: compared {compared} value(s)")
    return regressions, notes


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_*.json manifests (or directories)."
    )
    parser.add_argument("baseline", help="baseline manifest file or directory")
    parser.add_argument("current", help="current manifest file or directory")
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="relative growth allowed before a value counts as a "
        "regression (default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="PATTERN",
        help="skip result keys matching this fnmatch pattern, e.g. "
        "'*_s' for wall-clock seconds (repeatable)",
    )
    parser.add_argument(
        "--both-directions", action="store_true",
        help="also fail on improvements beyond tolerance",
    )
    args = parser.parse_args(argv)

    try:
        regressions, notes = compare(
            args.baseline, args.current, args.tolerance,
            ignore=args.ignore, both_directions=args.both_directions,
        )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for note in notes:
        print(note)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.tolerance:.0%} tolerance:")
        for delta in regressions:
            print(f"  {delta.row()}")
        return 1
    print(f"\nno regressions beyond {args.tolerance:.0%} tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
