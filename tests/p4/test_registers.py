"""Unit tests for register arrays."""

import pytest

from repro.p4.registers import RegisterArray, RegisterFile


def test_initial_value():
    array = RegisterArray("r", 4, bits=8, initial=7)
    assert array.snapshot() == [7, 7, 7, 7]


def test_read_write_roundtrip():
    array = RegisterArray("r", 4)
    array.write(2, 99)
    assert array.read(2) == 99
    assert array.read(0) == 0


def test_width_masking():
    array = RegisterArray("r", 1, bits=4)
    array.write(0, 0x1F)
    assert array.read(0) == 0xF


def test_bounds_checked():
    array = RegisterArray("r", 2)
    with pytest.raises(IndexError):
        array.read(2)
    with pytest.raises(IndexError):
        array.write(-1, 0)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        RegisterArray("r", 0)
    with pytest.raises(ValueError):
        RegisterArray("r", 1, bits=0)


def test_access_counters():
    array = RegisterArray("r", 2)
    array.write(0, 1)
    array.read(0)
    array.read(1)
    assert array.writes == 1 and array.reads == 2


def test_reset():
    array = RegisterArray("r", 3)
    array.write(1, 5)
    array.reset()
    assert array.snapshot() == [0, 0, 0]


def test_register_file_define_and_lookup():
    regs = RegisterFile()
    regs.define("a", 4)
    regs.define("b", 2)
    assert "a" in regs and "c" not in regs
    assert regs.names() == ["a", "b"]
    assert regs["a"].size == 4


def test_register_file_duplicate_rejected():
    regs = RegisterFile()
    regs.define("a", 4)
    with pytest.raises(ValueError):
        regs.define("a", 4)


def test_register_file_missing_lookup_raises():
    with pytest.raises(KeyError):
        RegisterFile()["ghost"]
