"""Seeded generators and mutation strategies for fuzz cases.

A :class:`FuzzCase` is one self-contained, JSON-serialisable input to
the platform's oracles (:mod:`repro.fuzz.oracles`).  Four case kinds
cover the surfaces the paper's invariants protect:

* ``plan`` — a batch of update plans for the static verifier and the
  interference analyzer (PR 2 / PR 7 oracles).  The
  :mod:`repro.analysis.advgen` injectors are reused as one generation
  strategy among several; a second strategy synthesises well-formed
  plans and then applies structural mutations (dropped installs,
  skewed distances, version rewinds, dependency cycles).
* ``chaos`` — a :class:`~repro.chaos.campaign.FaultCampaign` schedule
  over a real topology: link/switch/controller events plus
  probabilistic message faults and protocol-recovery knobs.
* ``serve`` — a :class:`~repro.serve.spec.ServeSpec` workload with
  randomised admission, orchestration and capacity knobs.
* ``divergence`` — one seeded scenario run under two systems
  (SL vs DL, or P4Update vs ez-Segway) whose results must agree.
* ``ops`` — a :class:`~repro.ops.spec.SessionSpec` operations session:
  background serve churn overlaid with a randomised timeline of
  drain/undrain/migrate/rebalance operations (PR 9 oracles: the live
  checker plus the move state machine's no-stranded-flows property).

Everything is deterministic in ``(seed, index)``: every draw comes
from ``numpy.random.default_rng([seed, index, lane, _FUZZ_STREAM])``
with a stream tag disjoint from the advgen/scenario/serve/fault
streams.  Mutations (`splice`, `knob-perturb`, `fault-insert`,
`plan-crossover`) evolve retained corpus cases without ever touching
hidden global state, so campaigns replay bit-identically.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.analysis.advgen import (
    CONFLICT_KINDS,
    AdversarialCase,
    generate_conflict_cases,
    generate_disjoint_pairs,
    plan_from_paths,
)
from repro.analysis.plan import plan_to_dict
from repro.chaos.campaign import CORRUPTORS

#: RNG stream tag, disjoint from every other subsystem stream
#: (advgen 0xADF6, scenario 0x5CE2, serve 0x5EF1/0x5EA2, faults 0xFA017).
_FUZZ_STREAM = 0xF422

#: Case kinds the generator knows how to build.
FUZZ_KINDS = ("plan", "chaos", "serve", "divergence", "ops")

#: Generation strategies for ``plan`` cases.
PLAN_STRATEGIES = ("advgen-conflict", "advgen-disjoint", "random-mutated")

#: Mutation strategies applied to retained corpus cases.
MUTATIONS = ("splice", "knob-perturb", "fault-insert", "plan-crossover")

_CHAOS_TOPOLOGIES = ("fig1", "fig2", "b4")
_SERVE_TOPOLOGIES = ("fig1", "b4")
_OPS_TOPOLOGIES = ("fig1", "b4")
_DIVERGENCE_TOPOLOGIES = ("fig1", "b4", "internet2")
_SYSTEM_PAIRS = (
    ("p4update-sl", "p4update-dl"),
    ("p4update", "ezsegway"),
)


@dataclass(frozen=True)
class FuzzCase:
    """One generated input: a kind tag plus a JSON-safe payload."""

    kind: str
    name: str
    seed: int
    payload: dict = field(repr=False)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "seed": self.seed,
            "payload": copy.deepcopy(self.payload),
        }


def case_from_dict(data: dict) -> FuzzCase:
    """Inverse of :meth:`FuzzCase.to_dict` (validates the kind)."""
    kind = str(data["kind"])
    if kind not in FUZZ_KINDS:
        raise ValueError(f"unknown fuzz case kind {kind!r}; known: {FUZZ_KINDS}")
    return FuzzCase(
        kind=kind,
        name=str(data.get("name", kind)),
        seed=int(data.get("seed", 0)),
        payload=copy.deepcopy(dict(data["payload"])),
    )


def canonical_payload(payload: dict) -> str:
    """Canonical JSON of a payload — the size/identity basis."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def case_size(case: FuzzCase) -> int:
    """Shrink-ordering size: length of the canonical payload JSON."""
    return len(canonical_payload(case.payload))


def case_rng(seed: int, index: int, lane: int = 0) -> np.random.Generator:
    """The deterministic per-case generator stream."""
    return np.random.default_rng([seed, index, lane, _FUZZ_STREAM])


# -- topology material -------------------------------------------------------

_TOPOLOGY_CACHE: dict[str, tuple[tuple[str, ...], tuple[tuple[str, str], ...]]] = {}


def topology_material(name: str) -> tuple[tuple[str, ...], tuple[tuple[str, str], ...]]:
    """Sorted ``(nodes, edges)`` of a named topology (cached)."""
    cached = _TOPOLOGY_CACHE.get(name)
    if cached is None:
        from repro.chaos.runner import TOPOLOGIES

        topo = TOPOLOGIES[name]()
        nodes = tuple(sorted(str(n) for n in topo.graph.nodes()))
        edges = tuple(
            sorted((str(a), str(b)) if str(a) < str(b) else (str(b), str(a))
                   for a, b in topo.graph.edges())
        )
        cached = (nodes, edges)
        _TOPOLOGY_CACHE[name] = cached
    return cached


def _pick(rng: np.random.Generator, options: Sequence[Any]) -> Any:
    return options[int(rng.integers(0, len(options)))]


def _seed32(rng: np.random.Generator) -> int:
    return int(rng.integers(0, 2**31 - 1))


# -- plan cases --------------------------------------------------------------


def _payload_from_adversarial(case: AdversarialCase, strategy: str) -> dict:
    return {
        "strategy": strategy,
        "expect_kind": case.expect_kind,
        "plans": [plan_to_dict(plan) for plan in case.plans],
        "capacities": {
            f"{a}|{b}": float(cap)
            for (a, b), cap in sorted(case.capacities.items())
        },
        "congestion_aware": bool(case.congestion_aware),
        "policies": case.policies.to_dict(),
    }


#: Structural plan mutations (applied to the serialised plan doc so
#: the result can encode states no controller would emit).
PLAN_MUTATION_OPS = (
    "drop-install",
    "dup-install",
    "skew-distance",
    "rewind-version",
    "drop-notify",
    "cycle-dependency",
)


def mutate_plan_doc(doc: dict, rng: np.random.Generator) -> dict:
    """Apply one structural mutation to a serialised plan document."""
    doc = copy.deepcopy(doc)
    op = _pick(rng, PLAN_MUTATION_OPS)
    installs = [dict(i) for i in doc.get("installs", [])]
    if op == "drop-install" and len(installs) > 1:
        del installs[int(rng.integers(0, len(installs)))]
    elif op == "dup-install" and installs:
        installs.append(dict(installs[int(rng.integers(0, len(installs)))]))
    elif op == "skew-distance" and installs:
        i = int(rng.integers(0, len(installs)))
        installs[i]["distance"] = int(installs[i]["distance"]) + int(rng.integers(1, 4))
    elif op == "rewind-version":
        doc["version"] = int(doc.get("prior_version", 0))
    elif op == "drop-notify":
        edges = [list(e) for e in doc.get("notify_edges", [])]
        if edges:
            del edges[int(rng.integers(0, len(edges)))]
            doc["notify_edges"] = edges
    elif op == "cycle-dependency":
        nodes = [str(i["node"]) for i in installs]
        if len(nodes) >= 2:
            a, b = nodes[0], nodes[1]
            deps = [list(d) for d in doc.get("dependencies", [])]
            deps.extend([[a, b], [b, a]])
            doc["dependencies"] = deps
    doc["installs"] = installs
    return doc


def _random_plan_doc(rng: np.random.Generator, flow_id: int) -> dict:
    """A well-formed random reroute plan over fresh synthetic nodes."""
    pool = [f"n{int(j):02d}" for j in rng.permutation(26)]
    old_mids = int(rng.integers(1, 4))
    new_mids = int(rng.integers(1, 4))
    ingress, egress = pool[0], pool[1]
    old_path = [ingress] + pool[2:2 + old_mids] + [egress]
    new_path = [ingress] + pool[2 + old_mids:2 + old_mids + new_mids] + [egress]
    plan = plan_from_paths(
        flow_id,
        old_path,
        new_path,
        flow_size=round(float(rng.uniform(0.5, 1.5)), 2),
    )
    return plan_to_dict(plan)


def gen_plan_case(rng: np.random.Generator) -> dict:
    strategy = _pick(rng, PLAN_STRATEGIES)
    if strategy == "advgen-conflict":
        kind = _pick(rng, CONFLICT_KINDS)
        adv = generate_conflict_cases(_seed32(rng), count=1, kinds=[kind])[0]
        return _payload_from_adversarial(adv, strategy)
    if strategy == "advgen-disjoint":
        adv = generate_disjoint_pairs(_seed32(rng), count=1)[0]
        return _payload_from_adversarial(adv, strategy)
    # random-mutated: one or two well-formed plans, then 1..3 mutations.
    plans = [_random_plan_doc(rng, flow_id=_seed32(rng))]
    if rng.random() < 0.5:
        plans.append(_random_plan_doc(rng, flow_id=_seed32(rng)))
    for _ in range(int(rng.integers(1, 4))):
        i = int(rng.integers(0, len(plans)))
        plans[i] = mutate_plan_doc(plans[i], rng)
    return {
        "strategy": strategy,
        "expect_kind": None,  # ground truth lost once mutated
        "plans": plans,
        "capacities": {},
        "congestion_aware": True,
        "policies": {
            "same_flow": bool(rng.random() < 0.5),
            "shared_switch": False,
            "max_in_flight": 0,
            "extra_order": [],
        },
    }


# -- chaos cases -------------------------------------------------------------


def _random_topo_events(
    rng: np.random.Generator, topology: str, horizon_ms: float
) -> list[dict]:
    nodes, edges = topology_material(topology)
    events: list[dict] = []
    for _ in range(int(rng.integers(0, 3))):
        time_ms = round(float(rng.uniform(5.0, min(400.0, horizon_ms / 4.0))), 1)
        family = int(rng.integers(0, 3))
        if family == 0 and edges:
            a, b = _pick(rng, edges)
            events.append({"time_ms": time_ms, "kind": "link_down",
                           "node_a": a, "node_b": b})
            if rng.random() < 0.5:
                events.append({"time_ms": round(time_ms + float(rng.uniform(20.0, 200.0)), 1),
                               "kind": "link_up", "node_a": a, "node_b": b})
        elif family == 1 and nodes:
            node = _pick(rng, nodes)
            events.append({"time_ms": time_ms, "kind": "switch_crash",
                           "node_a": node})
            if rng.random() < 0.5:
                events.append({"time_ms": round(time_ms + float(rng.uniform(20.0, 200.0)), 1),
                               "kind": "switch_restart", "node_a": node})
        else:
            events.append({"time_ms": time_ms, "kind": "controller_down"})
            events.append({"time_ms": round(time_ms + float(rng.uniform(20.0, 200.0)), 1),
                           "kind": "controller_up"})
    events.sort(key=lambda e: (float(e["time_ms"]), str(e["kind"])))
    return events


def _random_message_faults(rng: np.random.Generator) -> list[dict]:
    faults: list[dict] = []
    for _ in range(int(rng.integers(0, 3))):
        plane = "data" if rng.random() < 0.7 else "control"
        scopes = ("all", "unm", "probe", "cleanup") if plane == "data" else ("all", "uim", "ufm")
        spec: dict[str, Any] = {
            "plane": plane,
            "scope": _pick(rng, scopes),
            "drop_prob": round(float(rng.uniform(0.0, 0.9)), 2),
            "delay_prob": round(float(rng.uniform(0.0, 0.5)), 2),
            "delay_ms": round(float(rng.uniform(1.0, 50.0)), 1),
            "duplicate_prob": round(float(rng.uniform(0.0, 0.3)), 2),
        }
        if plane == "data" and rng.random() < 0.3:
            spec["corrupt_prob"] = round(float(rng.uniform(0.05, 0.5)), 2)
            spec["corruptor"] = _pick(rng, tuple(sorted(CORRUPTORS)))
        faults.append(spec)
    return faults


def gen_chaos_case(rng: np.random.Generator) -> dict:
    topology = _pick(rng, _CHAOS_TOPOLOGIES)
    horizon_ms = 30000.0
    campaign: dict[str, Any] = {
        "name": f"fuzz-{_seed32(rng)}",
        "topology": topology,
        "scenario": "single" if rng.random() < 0.8 else "multi",
        "seed": _seed32(rng),
        "horizon_ms": horizon_ms,
        "update_at_ms": 10.0,
        "update_type": "auto",
        "events": _random_topo_events(rng, topology, horizon_ms),
        "message_faults": _random_message_faults(rng),
        "reliable_control": bool(rng.random() < 0.5),
        "unm_timeout_ms": float(_pick(rng, (0.0, 200.0))),
        "controller_update_timeout_ms": float(_pick(rng, (0.0, 2000.0))),
        "crash_preserves_state": bool(rng.random() < 0.5),
    }
    return {"campaign": campaign}


# -- serve cases -------------------------------------------------------------


def gen_serve_case(rng: np.random.Generator) -> dict:
    topology = _pick(rng, _SERVE_TOPOLOGIES)
    congestion_aware = bool(rng.random() < 0.5)
    link_capacity = 0.0
    if not congestion_aware and rng.random() < 0.7:
        # Tight uniform capacity: transient overcommit really overloads
        # links, which the live checker reports (ServeSpec docstring).
        link_capacity = round(float(rng.uniform(1.0, 4.0)), 2)
    events: list[dict] = []
    if rng.random() < 0.4:
        _, edges = topology_material(topology)
        if edges:
            a, b = _pick(rng, edges)
            down = round(float(rng.uniform(50.0, 2000.0)), 1)
            events.append({"time_ms": down, "kind": "link_down",
                           "node_a": a, "node_b": b})
            events.append({"time_ms": round(down + float(rng.uniform(100.0, 2000.0)), 1),
                           "kind": "link_up", "node_a": a, "node_b": b})
    serve: dict[str, Any] = {
        "name": f"fuzz-{_seed32(rng)}",
        "topology": topology,
        "seed": _seed32(rng),
        "mode": "open",
        "flows": int(rng.integers(2, 8)),
        "requests": int(rng.integers(4, 24)),
        "arrival_rate_per_s": round(float(rng.uniform(20.0, 400.0)), 1),
        "mean_flow_size": round(float(rng.uniform(0.5, 2.0)), 2),
        "queue_depth": int(rng.integers(2, 16)),
        "shed_policy": _pick(rng, ("reject", "park")),
        "conflict_policy": _pick(rng, ("serialize", "merge")),
        "max_in_flight": int(rng.integers(0, 5)),
        "static_interference": _pick(rng, ("off", "warn", "serialize", "reject")),
        "congestion_aware": congestion_aware,
        "link_capacity": link_capacity,
        "horizon_ms": 60000.0,
        "events": events,
    }
    return {"serve": serve}


# -- ops cases ---------------------------------------------------------------


def gen_ops_case(rng: np.random.Generator) -> dict:
    topology = _pick(rng, _OPS_TOPOLOGIES)
    nodes, edges = topology_material(topology)
    horizon_ms = 20000.0
    congestion_aware = bool(rng.random() < 0.5)
    link_capacity = 0.0
    if not congestion_aware and rng.random() < 0.7:
        # Tight uniform capacity: rolling moves transiting hot links
        # really overload them, which the live checker reports.
        link_capacity = round(float(rng.uniform(1.0, 4.0)), 2)
    serve: dict[str, Any] = {
        "name": f"fuzz-{_seed32(rng)}",
        "topology": topology,
        "seed": _seed32(rng),
        "mode": "open",
        "flows": int(rng.integers(3, 8)),
        "requests": int(rng.integers(6, 20)),
        "arrival_rate_per_s": round(float(rng.uniform(20.0, 200.0)), 1),
        "congestion_aware": congestion_aware,
        "link_capacity": link_capacity,
        "horizon_ms": horizon_ms,
        "events": [],
    }
    if rng.random() < 0.5:
        # The §11 controller watchdog: updates stuck on a failed link
        # re-trigger instead of hanging until the horizon.
        serve["params"] = {"controller_update_timeout_ms": 500.0}
    if rng.random() < 0.4 and edges:
        a, b = _pick(rng, edges)
        down = round(float(rng.uniform(500.0, horizon_ms / 3.0)), 1)
        serve["events"] = [
            {"time_ms": down, "kind": "link_down", "node_a": a, "node_b": b},
            {"time_ms": round(down + float(rng.uniform(500.0, 5000.0)), 1),
             "kind": "link_up", "node_a": a, "node_b": b},
        ]
    tenants = int(rng.integers(2, 5))
    timeline: list[dict] = []
    for _ in range(int(rng.integers(1, 4))):
        at_ms = round(float(rng.uniform(500.0, horizon_ms * 0.6)), 1)
        op = _pick(rng, ("drain_switch", "migrate_tenant", "rebalance"))
        if op == "drain_switch":
            switch = _pick(rng, nodes)
            timeline.append({"at_ms": at_ms, "op": "drain_switch",
                             "switch": switch})
            if rng.random() < 0.7:
                timeline.append(
                    {"at_ms": round(at_ms + float(rng.uniform(1000.0, 6000.0)), 1),
                     "op": "undrain_switch", "switch": switch}
                )
        elif op == "migrate_tenant":
            entry: dict[str, Any] = {
                "at_ms": at_ms,
                "op": "migrate_tenant",
                "tenant": int(rng.integers(0, tenants)),
            }
            if rng.random() < 0.3:
                entry["avoid"] = [_pick(rng, nodes)]
            timeline.append(entry)
        else:
            timeline.append({"at_ms": at_ms, "op": "rebalance",
                             "max_moves": int(rng.integers(1, 5))})
    timeline.sort(key=lambda e: (float(e["at_ms"]), str(e["op"])))
    ops: dict[str, Any] = {
        "name": f"fuzz-{_seed32(rng)}",
        "serve": serve,
        "tenants": tenants,
        "timeline": timeline,
        # Checkpoint ticks are scheduled even without a sink, so this
        # knob exercises the event-sequence-parity path too.
        "checkpoint_every_ms": float(_pick(rng, (0.0, 5000.0))),
    }
    return {"ops": ops}


# -- divergence cases --------------------------------------------------------


def gen_divergence_case(rng: np.random.Generator) -> dict:
    return {
        "topology": _pick(rng, _DIVERGENCE_TOPOLOGIES),
        "scenario": "single" if rng.random() < 0.5 else "multi",
        "seed": _seed32(rng),
        "systems": list(_pick(rng, _SYSTEM_PAIRS)),
        "congestion_aware": bool(rng.random() < 0.8),
        "params": {"max_sim_time_ms": 60000.0},
    }


_GENERATORS = {
    "plan": gen_plan_case,
    "chaos": gen_chaos_case,
    "serve": gen_serve_case,
    "divergence": gen_divergence_case,
    "ops": gen_ops_case,
}


def generate_case(
    seed: int, index: int, kinds: Sequence[str] = FUZZ_KINDS
) -> FuzzCase:
    """Fresh case ``index`` of a campaign seeded with ``seed``.

    The kind cycles through ``kinds`` so every enabled surface gets a
    fixed share of the budget; everything else is drawn from the
    per-case stream.
    """
    if not kinds:
        raise ValueError("generate_case needs at least one kind")
    unknown = sorted(set(kinds) - set(FUZZ_KINDS))
    if unknown:
        raise ValueError(f"unknown fuzz kinds {unknown}; known: {FUZZ_KINDS}")
    kind = kinds[index % len(kinds)]
    rng = case_rng(seed, index)
    payload = _GENERATORS[kind](rng)
    return FuzzCase(kind=kind, name=f"{kind}[{index}]", seed=seed, payload=payload)


# -- mutations ---------------------------------------------------------------


def _splice_chaos(base: dict, donor: dict, rng: np.random.Generator) -> dict:
    out = copy.deepcopy(base)
    events = list(out["campaign"].get("events", []))
    events.extend(copy.deepcopy(donor["campaign"].get("events", [])))
    events.sort(key=lambda e: (float(e["time_ms"]), str(e["kind"])))
    out["campaign"]["events"] = events[:4]
    faults = list(out["campaign"].get("message_faults", []))
    faults.extend(copy.deepcopy(donor["campaign"].get("message_faults", [])))
    out["campaign"]["message_faults"] = faults[:3]
    return out


def _splice_serve(base: dict, donor: dict, rng: np.random.Generator) -> dict:
    out = copy.deepcopy(base)
    events = list(out["serve"].get("events", []))
    events.extend(copy.deepcopy(donor["serve"].get("events", [])))
    events.sort(key=lambda e: (float(e["time_ms"]), str(e["kind"])))
    out["serve"]["events"] = events[:4]
    return out


def _perturb_chaos(base: dict, rng: np.random.Generator) -> dict:
    out = copy.deepcopy(base)
    campaign = out["campaign"]
    knob = _pick(rng, ("horizon", "reliable", "unm_timeout", "seed", "preserve"))
    if knob == "horizon":
        campaign["horizon_ms"] = float(campaign["horizon_ms"]) * float(_pick(rng, (0.5, 2.0)))
    elif knob == "reliable":
        campaign["reliable_control"] = not bool(campaign.get("reliable_control"))
    elif knob == "unm_timeout":
        current = float(campaign.get("unm_timeout_ms", 0.0))
        campaign["unm_timeout_ms"] = 200.0 if current == 0.0 else 0.0
    elif knob == "seed":
        campaign["seed"] = _seed32(rng)
    else:
        campaign["crash_preserves_state"] = not bool(
            campaign.get("crash_preserves_state")
        )
    return out


def _perturb_serve(base: dict, rng: np.random.Generator) -> dict:
    out = copy.deepcopy(base)
    serve = out["serve"]
    knob = _pick(rng, ("requests", "rate", "queue", "capacity", "policy", "seed"))
    if knob == "requests":
        serve["requests"] = max(1, min(48, int(serve["requests"]) * 2))
    elif knob == "rate":
        serve["arrival_rate_per_s"] = round(
            float(serve["arrival_rate_per_s"]) * float(_pick(rng, (0.5, 2.0))), 1
        )
    elif knob == "queue":
        serve["queue_depth"] = max(1, int(serve["queue_depth"]) // 2)
    elif knob == "capacity":
        serve["congestion_aware"] = not bool(serve.get("congestion_aware", True))
        if not serve["congestion_aware"] and not float(serve.get("link_capacity", 0.0)):
            serve["link_capacity"] = round(float(rng.uniform(1.0, 4.0)), 2)
    elif knob == "policy":
        serve["conflict_policy"] = _pick(rng, ("serialize", "merge"))
        serve["static_interference"] = _pick(rng, ("off", "warn", "serialize", "reject"))
    else:
        serve["seed"] = _seed32(rng)
    return out


def _perturb_plan(base: dict, rng: np.random.Generator) -> dict:
    out = copy.deepcopy(base)
    plans = out.get("plans", [])
    if plans and rng.random() < 0.7:
        i = int(rng.integers(0, len(plans)))
        plans[i] = mutate_plan_doc(plans[i], rng)
    else:
        policies = dict(out.get("policies", {}))
        policies["same_flow"] = not bool(policies.get("same_flow"))
        out["policies"] = policies
    out["expect_kind"] = None  # mutation invalidates the advgen ground truth
    return out


def _perturb_ops(base: dict, rng: np.random.Generator) -> dict:
    out = copy.deepcopy(base)
    ops = out["ops"]
    serve = ops["serve"]
    knob = _pick(rng, ("requests", "rate", "checkpoint", "watchdog", "seed"))
    if knob == "requests":
        serve["requests"] = max(1, min(48, int(serve["requests"]) * 2))
    elif knob == "rate":
        serve["arrival_rate_per_s"] = round(
            float(serve["arrival_rate_per_s"]) * float(_pick(rng, (0.5, 2.0))), 1
        )
    elif knob == "checkpoint":
        current = float(ops.get("checkpoint_every_ms", 0.0))
        ops["checkpoint_every_ms"] = 5000.0 if current == 0.0 else 0.0
    elif knob == "watchdog":
        params = dict(serve.get("params", {}))
        current = float(params.get("controller_update_timeout_ms", 0.0))
        params["controller_update_timeout_ms"] = (
            500.0 if current == 0.0 else 0.0
        )
        serve["params"] = params
    else:
        serve["seed"] = _seed32(rng)
    return out


def _perturb_divergence(base: dict, rng: np.random.Generator) -> dict:
    out = copy.deepcopy(base)
    knob = _pick(rng, ("seed", "pair", "congestion"))
    if knob == "seed":
        out["seed"] = _seed32(rng)
    elif knob == "pair":
        out["systems"] = list(_pick(rng, _SYSTEM_PAIRS))
    else:
        out["congestion_aware"] = not bool(out.get("congestion_aware", True))
    return out


def _fault_insert(base: dict, rng: np.random.Generator) -> dict:
    out = copy.deepcopy(base)
    if "campaign" in out:
        campaign = out["campaign"]
        extra = _random_topo_events(rng, str(campaign["topology"]),
                                    float(campaign["horizon_ms"]))
        if not extra:
            faults = list(campaign.get("message_faults", []))
            faults.extend(_random_message_faults(rng))
            campaign["message_faults"] = faults[:3]
        else:
            events = list(campaign.get("events", [])) + extra
            events.sort(key=lambda e: (float(e["time_ms"]), str(e["kind"])))
            campaign["events"] = events[:4]
    elif "serve" in out or "ops" in out:
        serve = out["serve"] if "serve" in out else out["ops"]["serve"]
        _, edges = topology_material(str(serve["topology"]))
        if edges:
            a, b = _pick(rng, edges)
            down = round(float(rng.uniform(50.0, 2000.0)), 1)
            events = list(serve.get("events", []))
            events.append({"time_ms": down, "kind": "link_down",
                           "node_a": a, "node_b": b})
            events.sort(key=lambda e: (float(e["time_ms"]), str(e["kind"])))
            serve["events"] = events[:4]
    return out


def mutate_case(
    base: FuzzCase,
    donor: Optional[FuzzCase],
    rng: np.random.Generator,
    index: int,
) -> FuzzCase:
    """One mutation step over a retained corpus case.

    ``donor`` feeds the cross-case strategies (splice, plan crossover)
    and must share ``base.kind``; pass None to restrict to the unary
    strategies.  Deterministic in the supplied ``rng`` state.
    """
    same_kind_donor = donor if donor is not None and donor.kind == base.kind else None
    ops: list[str] = ["knob-perturb"]
    if base.kind in ("chaos", "serve", "ops"):
        ops.append("fault-insert")
        if base.kind != "ops" and same_kind_donor is not None:
            ops.append("splice")
    if base.kind == "plan" and same_kind_donor is not None:
        ops.append("plan-crossover")
    op = _pick(rng, tuple(ops))

    payload: dict
    if op == "splice":
        assert same_kind_donor is not None
        if base.kind == "chaos":
            payload = _splice_chaos(base.payload, same_kind_donor.payload, rng)
        else:
            payload = _splice_serve(base.payload, same_kind_donor.payload, rng)
    elif op == "fault-insert":
        payload = _fault_insert(base.payload, rng)
    elif op == "plan-crossover":
        assert same_kind_donor is not None
        payload = copy.deepcopy(base.payload)
        donor_plans = same_kind_donor.payload.get("plans", [])
        if donor_plans:
            plans = list(payload.get("plans", []))
            plans.append(copy.deepcopy(donor_plans[-1]))
            payload["plans"] = plans[:3]
            payload["expect_kind"] = None
    else:  # knob-perturb
        perturb = {
            "chaos": _perturb_chaos,
            "serve": _perturb_serve,
            "plan": _perturb_plan,
            "divergence": _perturb_divergence,
            "ops": _perturb_ops,
        }[base.kind]
        payload = perturb(base.payload, rng)

    return FuzzCase(
        kind=base.kind,
        name=f"{base.kind}~{op}[{index}]",
        seed=base.seed,
        payload=payload,
    )
