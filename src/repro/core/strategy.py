"""Single- vs dual-layer selection (paper §7.5).

The deployment rule the paper proposes and evaluates:

1. updates that install new forwarding rules on relatively few nodes
   and contain only *forward* segments are handled by SL-P4Update;
2. all other updates are handled by DL-P4Update.

§9.1 makes "relatively few" concrete: "choosing the single-layer
approach when we have only forward segments with at most five nodes to
be updated".
"""

from __future__ import annotations

from typing import Sequence

from repro.core.messages import UpdateType
from repro.core.segmentation import compute_segments, nodes_to_update

SL_NODE_THRESHOLD = 5


def choose_update_type(
    old_path: Sequence[str],
    new_path: Sequence[str],
    threshold: int = SL_NODE_THRESHOLD,
) -> UpdateType:
    """Pick SL or DL for one flow update per the §7.5/§9.1 rule."""
    segments = compute_segments(old_path, new_path)
    only_forward = all(segment.forward for segment in segments)
    changed = nodes_to_update(old_path, new_path)
    if only_forward and len(changed) <= threshold:
        return UpdateType.SINGLE
    return UpdateType.DUAL
