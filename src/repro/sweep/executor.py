"""Fleet execution: shards across a process pool, crash-isolated,
resumable, observable.

Execution contract (asserted by ``tests/sweep/``):

* ``--workers 1`` runs every shard inline through the very same
  :func:`repro.sweep.worker.run_shard_payload` body the pool uses, so
  serial and parallel fleets produce byte-identical shard documents;
* a worker exception (or a hard worker-process death, which surfaces
  as :class:`~concurrent.futures.process.BrokenProcessPool`) costs one
  *attempt* for the affected shards, never the fleet: shards retry
  with bounded, seeded exponential backoff and exhaust into a
  structured ``ShardFailure`` record while every completed shard is
  kept;
* every completed shard is persisted to
  ``<cache_dir>/<spec_hash>/shard_<id>.json`` the moment it finishes
  (atomic rename), so an interrupted sweep resumes with ``--resume``
  and re-runs only the missing shards;
* progress (completed / failed / remaining, ETA from completed-shard
  durations) is pushed through ``repro.obs`` counters, an optional
  callback, and an atomically-updated ``status.json`` that
  ``repro sweep status`` reads from another process.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.sweep.spec import Shard, SweepSpec
from repro.sweep.worker import failure_record, run_shard_payload, worker_init

#: Default on-disk shard-result cache location.
DEFAULT_CACHE_DIR = ".sweep_cache"


@dataclass
class SweepProgress:
    """A point-in-time fleet snapshot (what the heartbeat reports)."""

    total: int
    completed: int = 0
    failed: int = 0
    cached: int = 0
    durations_s: list[float] = field(default_factory=list)
    started_at: float = 0.0

    @property
    def remaining(self) -> int:
        return self.total - self.completed - self.failed

    def eta_s(self, workers: int) -> Optional[float]:
        """Remaining work / throughput, from completed-shard durations."""
        if not self.durations_s or self.remaining == 0:
            return None
        mean = sum(self.durations_s) / len(self.durations_s)
        return mean * self.remaining / max(1, workers)


@dataclass
class SweepRun:
    """Everything one fleet execution produced."""

    spec: SweepSpec
    shard_docs: list[dict]          # completed shard documents, by index
    failures: list[dict]            # ShardFailure records
    shards_total: int
    cached_shards: int              # satisfied from the resume cache
    workers: int
    wall_s: float

    @property
    def ok(self) -> bool:
        return not self.failures and len(self.shard_docs) == self.shards_total

    def signature(self) -> str:
        from repro.sweep.merge import results_signature

        return results_signature(self.shard_docs)


def cache_root(spec: SweepSpec, cache_dir: Optional[str] = None) -> str:
    """``<cache_dir>/<spec_hash>/`` — one directory per spec version."""
    base = cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR
    return os.path.join(base, spec.spec_hash())


def shard_cache_path(root: str, shard_id: str) -> str:
    return os.path.join(root, f"shard_{shard_id}.json")


def load_cached_shard(root: str, shard: Shard, spec_hash: str) -> Optional[dict]:
    """A previously completed shard document, or None when absent,
    unreadable, or written for a different shard/spec."""
    path = shard_cache_path(root, shard.shard_id)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(doc, dict):
        return None
    if doc.get("spec_hash") != spec_hash or doc.get("shard_id") != shard.shard_id:
        return None
    if "results" not in doc or "index" not in doc:
        return None
    return doc


def _atomic_write_json(path: str, doc: dict) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True, allow_nan=False)
        handle.write("\n")
    os.replace(tmp, path)


def write_status(
    root: str, spec: SweepSpec, progress: SweepProgress, workers: int,
    state: str,
) -> None:
    eta = progress.eta_s(workers)
    _atomic_write_json(
        os.path.join(root, "status.json"),
        {
            "name": spec.name,
            "spec_hash": spec.spec_hash(),
            "state": state,
            "shards_total": progress.total,
            "completed": progress.completed,
            "failed": progress.failed,
            "remaining": progress.remaining,
            "cached": progress.cached,
            "workers": workers,
            "eta_s": eta,
            "elapsed_s": (
                time.perf_counter() - progress.started_at  # repro: ignore[wall-clock] status heartbeat
                if progress.started_at else 0.0
            ),
            "updated_unix": time.time(),  # repro: ignore[wall-clock] status heartbeat
        },
    )


def read_status(root: str) -> Optional[dict]:
    try:
        with open(os.path.join(root, "status.json"), encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    retries: int = 2,
    backoff_base_s: float = 0.05,
    obs: Optional[Any] = None,
    progress: Optional[Callable[[SweepProgress, str], None]] = None,
    profile: bool = False,
    inject: Optional[dict] = None,
) -> SweepRun:
    """Execute (or resume) a sweep and return the collected fleet.

    ``inject`` is a test-only fault hook forwarded to the workers (see
    :func:`repro.sweep.worker._maybe_inject`); it is deliberately not
    part of the spec so it never changes the spec hash."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    started = time.perf_counter()  # repro: ignore[wall-clock] fleet wall-time bookkeeping
    shards = spec.expand()
    spec_digest = spec.spec_hash()
    root = cache_root(spec, cache_dir)
    os.makedirs(root, exist_ok=True)

    docs: dict[int, dict] = {}
    state = SweepProgress(total=len(shards), started_at=started)
    pending: list[Shard] = []
    for shard in shards:
        cached = load_cached_shard(root, shard, spec_digest) if resume else None
        if cached is not None:
            docs[shard.index] = cached
            state.completed += 1
            state.cached += 1
        else:
            pending.append(shard)

    def notify(event: str) -> None:
        if obs is not None and getattr(obs, "enabled", False):
            obs.metrics.gauge("sweep_shards_completed").set(state.completed)
            obs.metrics.gauge("sweep_shards_failed").set(state.failed)
            obs.metrics.gauge("sweep_shards_remaining").set(state.remaining)
            obs.count("sweep_progress_events", event=event)
        write_status(root, spec, state, workers, event)
        if progress is not None:
            progress(state, event)

    def payload_for(shard: Shard) -> dict:
        payload = dict(shard.payload)
        if profile:
            payload["profile"] = True
        if inject is not None:
            payload["_inject"] = inject
        return payload

    def on_success(shard: Shard, doc: dict) -> None:
        doc = dict(doc, spec_hash=spec_digest)
        _atomic_write_json(shard_cache_path(root, shard.shard_id), doc)
        docs[shard.index] = doc
        state.completed += 1
        state.durations_s.append(
            float(doc.get("wall", {}).get("duration_s", 0.0))
        )
        notify("shard_completed")

    failures: list[dict] = []

    def on_exhausted(shard: Shard, attempts: int, exc: BaseException) -> None:
        failures.append(
            failure_record(shard.shard_id, shard.index, attempts, exc)
        )
        state.failed += 1
        notify("shard_failed")

    notify("started")
    if workers == 1:
        _run_serial(
            pending, payload_for, on_success, on_exhausted,
            retries, backoff_base_s, spec_digest,
        )
    else:
        _run_pool(
            pending, payload_for, on_success, on_exhausted,
            workers, retries, backoff_base_s, spec_digest,
        )
    notify("finished")

    ordered = [docs[i] for i in sorted(docs)]
    return SweepRun(
        spec=spec,
        shard_docs=ordered,
        failures=sorted(failures, key=lambda f: int(f["index"])),
        shards_total=len(shards),
        cached_shards=state.cached,
        workers=workers,
        wall_s=time.perf_counter() - started,  # repro: ignore[wall-clock] fleet wall-time bookkeeping
    )


def _backoff_s(
    spec_digest: str, shard_id: str, attempt: int, base_s: float
) -> float:
    """Bounded, seeded backoff: exponential in the attempt number with
    deterministic per-(spec, shard, attempt) jitter."""
    if base_s <= 0:
        return 0.0
    seed_material = int(spec_digest[:8], 16)
    rng = np.random.default_rng([seed_material, hash_stable(shard_id), attempt])
    jitter = float(rng.uniform(0.0, base_s))
    return min(base_s * (2.0 ** (attempt - 1)) + jitter, 5.0)


def hash_stable(text: str) -> int:
    """Process-stable string hash (``hash()`` is salted)."""
    import hashlib

    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:4], "big"
    )


def _run_serial(
    pending: list[Shard],
    payload_for: Callable[[Shard], dict],
    on_success: Callable[[Shard, dict], None],
    on_exhausted: Callable[[Shard, int, BaseException], None],
    retries: int,
    backoff_base_s: float,
    spec_digest: str,
) -> None:
    for shard in pending:
        attempt = 0
        while True:
            attempt += 1
            try:
                doc = run_shard_payload(payload_for(shard))
            except Exception as exc:  # noqa: B902 - shard isolation boundary
                if attempt > retries:
                    on_exhausted(shard, attempt, exc)
                    break
                time.sleep(  # repro: ignore[blocking-in-service] retry backoff
                    _backoff_s(spec_digest, shard.shard_id, attempt,
                               backoff_base_s)
                )
            else:
                on_success(shard, doc)
                break


def _run_pool(
    pending: list[Shard],
    payload_for: Callable[[Shard], dict],
    on_success: Callable[[Shard, dict], None],
    on_exhausted: Callable[[Shard, int, BaseException], None],
    workers: int,
    retries: int,
    backoff_base_s: float,
    spec_digest: str,
) -> None:
    """Wave-based pool execution.

    Each wave submits every still-pending shard to a fresh pool.  A
    future that raises counts one attempt against its shard; a hard
    pool crash (``BrokenProcessPool``) fails every in-flight future of
    that wave the same way — completed shards are already persisted,
    and the next wave rebuilds the pool, so one poisoned shard can at
    worst cost its co-flyers ``retries`` extra attempts, never their
    results."""
    attempts: dict[int, int] = {}
    wave = list(pending)
    round_no = 0
    while wave:
        round_no += 1
        retry_next: list[Shard] = []
        pool = ProcessPoolExecutor(max_workers=workers, initializer=worker_init)
        try:
            futures = {
                pool.submit(run_shard_payload, payload_for(shard)): shard
                for shard in wave
            }
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in sorted(
                    done, key=lambda f: futures[f].index
                ):
                    shard = futures[future]
                    try:
                        doc = future.result()
                    # BrokenProcessPool (a worker died hard) is an
                    # Exception subclass; named for the reader only.
                    except Exception as exc:
                        attempts[shard.index] = attempts.get(shard.index, 0) + 1
                        if attempts[shard.index] > retries:
                            on_exhausted(shard, attempts[shard.index], exc)
                        else:
                            retry_next.append(shard)
                    else:
                        on_success(shard, doc)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        wave = sorted(retry_next, key=lambda s: s.index)
        if wave:
            time.sleep(  # repro: ignore[blocking-in-service] retry backoff
                _backoff_s(spec_digest, wave[0].shard_id, round_no,
                           backoff_base_s)
            )
