"""The global-state audit behind ``repro.sim.reset_global_state``.

The sweep's per-process determinism rests on one claim: the only
module-level mutable counter in ``src/repro`` is the packet-id stream
in ``repro.p4.packet`` (everything else — metric registries, engine
event counters, baseline sequence numbers — is instance state, rebuilt
per deployment).  Since the ops checkpointing work that stream is a
plain int with reset *and* snapshot hooks: ``itertools.count``
iterators can be neither observed nor pickled, so the audit now bans
them outright — a counter must be a readable value registered with
both ``repro.sim.register_global_reset`` and
``repro.sim.snapshot.register_global_snapshot``."""

import glob
import os
import re

from repro.p4.packet import Packet
from repro.sim.reset import (
    register_global_reset,
    registered_resets,
    reset_global_state,
)

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))),
    "src", "repro",
)

#: Module-level statements that create mutable cross-run state.
_COUNTER_PATTERN = re.compile(
    r"^[A-Za-z_][A-Za-z0-9_]*\s*=\s*(?:itertools\.)?count\(", re.MULTILINE
)


def test_no_module_level_count_iterators():
    offenders = {}
    for path in glob.glob(os.path.join(SRC, "**", "*.py"), recursive=True):
        hits = _COUNTER_PATTERN.findall(open(path, encoding="utf-8").read())
        if hits:
            offenders[os.path.relpath(path, SRC)] = hits
    assert not offenders, (
        "module-level itertools.count found — checkpointable counters "
        "must be plain values with reset + snapshot hooks (see "
        f"repro.p4.packet._next_packet_id for the shape): {offenders}"
    )


def test_default_registry_covers_packet_ids():
    assert "p4.packet_ids" in registered_resets()


def test_reset_restarts_packet_numbering():
    reset_global_state()
    first = Packet().packet_id
    Packet()
    reset_global_state()
    again = Packet().packet_id
    assert again == first == 1


def test_register_is_idempotent_per_name_and_hooks_run():
    calls = []
    register_global_reset("test.probe", lambda: calls.append("a"))
    # Re-registering the same name replaces, not duplicates.
    register_global_reset("test.probe", lambda: calls.append("b"))
    try:
        assert registered_resets().count("test.probe") == 1
        reset_global_state()
        assert calls == ["b"]
    finally:
        # Leave the global registry as we found it.
        from repro.sim import reset as reset_module

        reset_module._RESET_HOOKS[:] = [
            (name, hook) for name, hook in reset_module._RESET_HOOKS
            if name != "test.probe"
        ]
