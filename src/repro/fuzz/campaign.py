"""The ``FuzzCampaign`` runner, sharded through the sweep executor.

A campaign is described by a :class:`FuzzSpec` (one JSON document:
seed, case budget, shard count, enabled kinds).  The budget is split
deterministically across shards; each shard runs
:func:`run_fuzz_shard` — generate or mutate, classify, retain on new
coverage — through the PR 4 fleet machinery (``repro fuzz run
--workers/--resume``), so fixed ``(seed, budget)`` campaigns produce
byte-identical ``BENCH_fuzz_*`` manifests no matter how many workers
ran them or how many resume rounds it took.

Crash containment: generator and oracle exceptions become structured
:class:`CrashRecord` documents (input seed + stage + traceback tail —
the same idiom as the sweep's ``ShardFailure``) and the campaign
continues; a campaign only aborts if the fleet itself does.

After the fleet merges, findings are deduplicated by failure key and
auto-shrunk (:mod:`repro.fuzz.shrink`) into corpus-ready documents.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Callable, Optional

from repro.fuzz.corpus import corpus_doc
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.gen import (
    FUZZ_KINDS,
    FuzzCase,
    case_from_dict,
    case_rng,
    generate_case,
    mutate_case,
)
from repro.fuzz.oracles import OUTCOMES, classify, failure_key, verdict_from_dict


class FuzzSpecError(ValueError):
    """Raised for malformed fuzz campaign specifications."""


@dataclass(frozen=True)
class FuzzSpec:
    """A validated fuzz campaign description."""

    name: str
    seed: int = 0
    budget: int = 32            # total cases across every shard
    shards: int = 1
    kinds: tuple[str, ...] = FUZZ_KINDS
    mutation_prob: float = 0.5  # chance a case mutates the corpus
    shrink: bool = True
    max_shrunk: int = 16        # findings to shrink per campaign
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise FuzzSpecError("fuzz spec needs a non-empty 'name'")
        if self.budget < 1:
            raise FuzzSpecError("fuzz spec needs budget >= 1")
        if self.shards < 1:
            raise FuzzSpecError("fuzz spec needs shards >= 1")
        if self.shards > self.budget:
            raise FuzzSpecError("fuzz spec needs shards <= budget")
        if not self.kinds:
            raise FuzzSpecError("fuzz spec has an empty kinds axis")
        unknown = sorted(set(self.kinds) - set(FUZZ_KINDS))
        if unknown:
            raise FuzzSpecError(
                f"unknown fuzz kinds {unknown}; known: {FUZZ_KINDS}"
            )
        if not 0.0 <= self.mutation_prob <= 1.0:
            raise FuzzSpecError("mutation_prob must be in [0, 1]")
        if self.max_shrunk < 0:
            raise FuzzSpecError("max_shrunk must be >= 0")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "budget": self.budget,
            "shards": self.shards,
            "kinds": list(self.kinds),
            "mutation_prob": self.mutation_prob,
            "shrink": self.shrink,
            "max_shrunk": self.max_shrunk,
            "description": self.description,
        }


def load_fuzz_spec(data: dict) -> FuzzSpec:
    if not isinstance(data, dict):
        raise FuzzSpecError(
            f"fuzz spec must be an object, got {type(data).__name__}"
        )
    payload = dict(data)
    known = {f.name for f in dataclass_fields(FuzzSpec)}
    unknown = set(payload) - known
    if unknown:
        raise FuzzSpecError(f"unknown fuzz spec field(s) {sorted(unknown)}")
    if "kinds" in payload:
        payload["kinds"] = tuple(str(k) for k in payload["kinds"])
    try:
        return FuzzSpec(**payload)
    except TypeError as exc:
        raise FuzzSpecError(str(exc)) from None


def load_fuzz_spec_file(path: str) -> FuzzSpec:
    import json

    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise FuzzSpecError(f"{path}: invalid JSON: {exc}") from None
    return load_fuzz_spec(data)


def split_budget(budget: int, shards: int) -> list[int]:
    """Deterministic budget split: remainder goes to the early shards."""
    base, extra = divmod(budget, shards)
    return [base + (1 if index < extra else 0) for index in range(shards)]


# -- crash containment -------------------------------------------------------


@dataclass(frozen=True)
class CrashRecord:
    """One contained generator/oracle exception (the ``ShardFailure``
    idiom applied to individual fuzz cases)."""

    seed: int
    case_index: int
    stage: str                  # generate | oracle
    error_type: str
    message: str
    traceback_tail: str
    kind: str = ""              # case kind, when known

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "case_index": self.case_index,
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
            "traceback_tail": self.traceback_tail,
            "kind": self.kind,
        }


def crash_record(
    seed: int, case_index: int, stage: str, exc: BaseException, kind: str = ""
) -> CrashRecord:
    tb = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return CrashRecord(
        seed=seed,
        case_index=case_index,
        stage=stage,
        error_type=type(exc).__name__,
        message=str(exc),
        traceback_tail=tb[-2000:],
        kind=kind,
    )


# -- the per-shard campaign body ---------------------------------------------


def run_fuzz_shard(
    fuzz: dict, seed: int, shard_index: int, budget: int
) -> dict:
    """One shard's slice of a campaign: ``budget`` cases from the
    shard's derived seed.  JSON-safe, deterministic results only."""
    spec = load_fuzz_spec(fuzz)
    coverage = CoverageMap()
    corpus: list[FuzzCase] = []
    findings: list[dict] = []
    crashes: list[dict] = []
    outcomes: dict[str, int] = {outcome: 0 for outcome in OUTCOMES}

    for index in range(budget):
        # Lane 1 is the campaign-driver stream (mutate-or-generate
        # choice, corpus picks); lane 0 belongs to generate_case.
        driver = case_rng(seed, index, lane=1)
        try:
            if corpus and float(driver.random()) < spec.mutation_prob:
                base = corpus[int(driver.integers(0, len(corpus)))]
                donor = corpus[int(driver.integers(0, len(corpus)))]
                case = mutate_case(base, donor, driver, index)
            else:
                case = generate_case(seed, index, spec.kinds)
        except Exception as exc:
            crashes.append(crash_record(seed, index, "generate", exc).to_dict())
            outcomes["crash"] += 1
            continue

        verdict = classify(case)  # oracle crashes contained inside
        outcomes[verdict.outcome] += 1
        if coverage.observe(verdict.coverage):
            corpus.append(case)
        if verdict.outcome != "pass":
            findings.append(
                {
                    "key": list(failure_key(case.kind, verdict)),
                    "case": case.to_dict(),
                    "verdict": verdict.to_dict(),
                    "shard_index": shard_index,
                    "case_index": index,
                }
            )
            if verdict.outcome == "crash":
                crashes.append(
                    CrashRecord(
                        seed=seed,
                        case_index=index,
                        stage="oracle",
                        error_type=verdict.kinds[0] if verdict.kinds else "Exception",
                        message=str(verdict.detail.get("message", "")),
                        traceback_tail=str(verdict.detail.get("traceback_tail", "")),
                        kind=case.kind,
                    ).to_dict()
                )

    return {
        "fuzz": spec.name,
        "shard_index": shard_index,
        "budget": budget,
        "outcomes": outcomes,
        "coverage": coverage.keys(),
        "corpus_retained": len(corpus),
        "findings": findings,
        "crashes": crashes,
    }


# -- the fleet-level campaign ------------------------------------------------


@dataclass
class FuzzCampaignResult:
    """Everything one campaign produced, post-merge."""

    spec: FuzzSpec
    spec_hash: str
    signature: str
    shards_total: int
    shards_failed: int
    shard_failures: list[dict]
    outcomes: dict[str, int]
    coverage: list[str]
    findings: list[dict]        # deduped by key, sorted by key
    shrunk: list[dict]          # corpus-ready documents
    crashes: list[dict]
    cases: int = 0

    @property
    def ok(self) -> bool:
        return not self.shards_failed

    def finding_keys(self) -> list[tuple[str, ...]]:
        return [tuple(str(k) for k in f["key"]) for f in self.findings]

    def to_results(self) -> dict:
        return {
            "spec_hash": self.spec_hash,
            "signature": self.signature,
            "shards_total": self.shards_total,
            "shards_failed": self.shards_failed,
            "failures": self.shard_failures,
            "cases": self.cases,
            "outcomes": dict(sorted(self.outcomes.items())),
            "coverage_count": len(self.coverage),
            "coverage": list(self.coverage),
            "findings": self.findings,
            "shrunk": self.shrunk,
            "crashes": self.crashes,
        }


ProgressFn = Callable[[Any, str], None]


def run_fuzz_campaign(
    spec: FuzzSpec,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
    shrink_findings: Optional[bool] = None,
) -> FuzzCampaignResult:
    """Run (or resume) one campaign through the sweep executor."""
    from repro.sweep.executor import run_sweep
    from repro.sweep.merge import results_signature
    from repro.sweep.spec import SweepSpec

    sweep_spec = SweepSpec(
        name=spec.name,
        kind="fuzz",
        seed=spec.seed,
        runs=spec.shards,
        fuzz=spec.to_dict(),
    )
    run = run_sweep(
        sweep_spec,
        workers=workers,
        cache_dir=cache_dir,
        resume=resume,
        progress=progress,
    )
    ordered = sorted(run.shard_docs, key=lambda d: int(d["index"]))

    outcomes: dict[str, int] = {outcome: 0 for outcome in OUTCOMES}
    coverage = CoverageMap()
    crashes: list[dict] = []
    raw_findings: list[dict] = []
    cases = 0
    for doc in ordered:
        results = doc["results"]
        cases += int(results.get("budget", 0))
        for outcome, count in (results.get("outcomes") or {}).items():
            outcomes[outcome] = outcomes.get(outcome, 0) + int(count)
        coverage.observe(results.get("coverage") or [])
        crashes.extend(results.get("crashes") or [])
        raw_findings.extend(results.get("findings") or [])

    # Dedupe by failure key: first occurrence in (shard, case) order
    # wins; the final list is sorted by key so it is independent of
    # shard completion order.
    raw_findings.sort(
        key=lambda f: (int(f.get("shard_index", 0)), int(f.get("case_index", 0)))
    )
    by_key: dict[tuple[str, ...], dict] = {}
    for finding in raw_findings:
        key = tuple(str(k) for k in finding["key"])
        if key not in by_key:
            by_key[key] = finding
    findings = [by_key[key] for key in sorted(by_key)]

    do_shrink = spec.shrink if shrink_findings is None else shrink_findings
    shrunk: list[dict] = []
    if do_shrink:
        for finding in findings[: spec.max_shrunk]:
            shrunk.append(shrink_finding(spec, finding))

    return FuzzCampaignResult(
        spec=spec,
        spec_hash=sweep_spec.spec_hash(),
        signature=results_signature(ordered),
        shards_total=run.shards_total,
        shards_failed=len(run.failures),
        shard_failures=list(run.failures),
        outcomes=outcomes,
        coverage=coverage.keys(),
        findings=findings,
        shrunk=shrunk,
        crashes=crashes,
        cases=cases,
    )


def shrink_finding(spec: FuzzSpec, finding: dict) -> dict:
    """Shrink one merged finding into a corpus-ready document."""
    from repro.fuzz.shrink import shrink_case

    case = case_from_dict(finding["case"])
    minimal = shrink_case(case)
    verdict = (
        classify(minimal)
        if minimal is not case
        else verdict_from_dict(finding["verdict"])
    )
    doc = corpus_doc(
        minimal,
        verdict,
        found_by={
            "fuzz": spec.name,
            "seed": spec.seed,
            "shard_index": int(finding.get("shard_index", 0)),
            "case_index": int(finding.get("case_index", 0)),
            "original_name": str(finding["case"].get("name", "")),
        },
        description=(
            f"auto-shrunk from campaign {spec.name!r} "
            f"(seed {spec.seed}, budget {spec.budget})"
        ),
    )
    return doc


def write_fuzz_manifest(
    result: FuzzCampaignResult, out_dir: Optional[str] = None
) -> str:
    """Write ``BENCH_fuzz_<name>.json`` and return its path.

    Everything under ``results`` is deterministic for a fixed
    ``(seed, budget)``, so ``bench_compare --exact`` across worker
    counts is a hard byte-identity gate.
    """
    from repro.obs.manifest import write_manifest

    return write_manifest(
        f"fuzz_{result.spec.name}",
        params=result.spec.to_dict(),
        results=result.to_results(),
        seed=result.spec.seed,
        out_dir=out_dir,
        merge=False,
    )
