"""The ``fuzz`` CLI subcommand: run / replay / shrink.

* ``fuzz run [spec.json]`` — execute a campaign through the sweep
  fleet (``--workers``, ``--resume``), write ``BENCH_fuzz_<name>.json``
  and print the deterministic signature.  With ``--corpus DIR`` the
  merged findings are compared against the committed corpus;
  ``--fail-on-new`` turns a previously unseen failure key into exit 1
  (the CI gate), ``--emit-corpus`` writes auto-shrunk repros for the
  new keys into the corpus directory.
* ``fuzz replay <case.json>`` — re-run one corpus case verbatim.
  Exit 1 when the recorded failure still **reproduces**, 0 when it no
  longer does, so a repro doubles as a bisection probe.
* ``fuzz shrink <case.json>`` — re-shrink a corpus case (useful after
  oracle changes made further reduction possible).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fuzz.campaign import FuzzSpec


def cmd_fuzz(args: argparse.Namespace) -> int:
    handler = {
        "run": _cmd_run,
        "replay": _cmd_replay,
        "shrink": _cmd_shrink,
    }[args.fuzz_command]
    return handler(args)


def _build_spec(args: argparse.Namespace) -> Optional["FuzzSpec"]:
    from repro.fuzz.campaign import (
        FuzzSpecError,
        load_fuzz_spec,
        load_fuzz_spec_file,
    )

    try:
        if args.spec:
            spec = load_fuzz_spec_file(args.spec)
            overrides = {}
            if args.seed is not None:
                overrides["seed"] = args.seed
            if args.budget is not None:
                overrides["budget"] = args.budget
            if args.shards is not None:
                overrides["shards"] = args.shards
            if overrides:
                spec = load_fuzz_spec(dict(spec.to_dict(), **overrides))
            return spec
        return load_fuzz_spec(
            {
                "name": args.name,
                "seed": args.seed if args.seed is not None else 0,
                "budget": args.budget if args.budget is not None else 32,
                "shards": args.shards if args.shards is not None else 1,
                **({"kinds": args.kinds.split(",")} if args.kinds else {}),
            }
        )
    except (OSError, FuzzSpecError) as exc:
        print(f"error: cannot build fuzz spec: {exc}", file=sys.stderr)
        return None


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.fuzz.campaign import run_fuzz_campaign, write_fuzz_manifest
    from repro.fuzz.corpus import (
        expected_key,
        finding_name,
        known_keys,
        write_corpus_case,
    )

    spec = _build_spec(args)
    if spec is None:
        return 1
    if args.emit_corpus and args.no_shrink:
        print(
            "error: --emit-corpus needs shrinking; drop --no-shrink",
            file=sys.stderr,
        )
        return 2
    print(
        f"fuzz {spec.name!r}: budget {spec.budget} across {spec.shards} "
        f"shard(s), seed {spec.seed}, {args.workers} worker(s)"
        + (", resuming" if args.resume else "")
    )

    result = run_fuzz_campaign(
        spec,
        workers=args.workers,
        cache_dir=args.cache_dir,
        resume=args.resume,
        shrink_findings=False if args.no_shrink else None,
    )
    path = write_fuzz_manifest(result, out_dir=args.out_dir)
    print(f"wrote {path}")
    print(f"signature {result.signature}")
    print(
        f"cases {result.cases}  outcomes "
        + " ".join(f"{k}={v}" for k, v in sorted(result.outcomes.items()))
    )
    print(f"coverage {len(result.coverage)} key(s)")
    for failure in result.shard_failures:
        print(
            f"SHARD FAILURE {failure['shard_id']}: "
            f"{failure['error_type']}: {failure['message']}"
        )
    for crash in result.crashes:
        print(
            f"contained crash: shard seed {crash['seed']} "
            f"case {crash['case_index']} [{crash['stage']}] "
            f"{crash['error_type']}: {crash['message']}"
        )

    keys = result.finding_keys()
    known = known_keys(args.corpus) if args.corpus else set()
    new_keys = [key for key in keys if key not in known]
    for finding in result.findings:
        key = tuple(str(k) for k in finding["key"])
        marker = "NEW" if key in set(new_keys) else "known"
        print(f"finding [{marker}] {'/'.join(key)}")
    if not keys:
        print("no findings")

    emitted = 0
    if args.emit_corpus:
        if not args.corpus:
            print("error: --emit-corpus requires --corpus", file=sys.stderr)
            return 2
        for doc in result.shrunk:
            key = expected_key(doc)
            if key in known:
                continue
            case_path = os.path.join(args.corpus, f"{finding_name(key)}.json")
            write_corpus_case(case_path, doc)
            print(f"emitted {case_path}")
            emitted += 1

    if args.json:
        print(json.dumps(result.to_results(), indent=2, sort_keys=True))

    if not result.ok:
        return 1
    if args.fail_on_new and new_keys:
        print(f"FAILED: {len(new_keys)} new finding key(s) not in corpus")
        return 1
    print("OK")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.fuzz.corpus import replay_file

    try:
        reproduced, verdict, doc = replay_file(args.case)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    expect = doc["expect"]
    print(f"case {doc.get('name', args.case)!r} ({doc['kind']})")
    print(
        f"expected {expect['outcome']}/{expect['oracle']} "
        f"kinds={','.join(expect['kinds']) or '-'}"
    )
    print(
        f"observed {verdict.outcome}/{verdict.oracle} "
        f"kinds={','.join(verdict.kinds) or '-'}"
    )
    if args.json:
        print(json.dumps(verdict.to_dict(), indent=2, sort_keys=True))
    if reproduced:
        print("REPRODUCED")
        return 1
    print("fixed (no longer reproduces)")
    return 0


def _cmd_shrink(args: argparse.Namespace) -> int:
    from repro.fuzz.corpus import (
        case_from_doc,
        corpus_doc,
        load_corpus_file,
        write_corpus_case,
    )
    from repro.fuzz.oracles import classify
    from repro.fuzz.shrink import shrink_case, shrink_measure

    try:
        doc = load_corpus_file(args.case)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    case = case_from_doc(doc)
    before = shrink_measure(case.payload)
    minimal = shrink_case(case)
    after = shrink_measure(minimal.payload)
    print(f"measure {before} -> {after}")
    if minimal is case:
        print("already minimal (or case passes)")
        return 0
    out = corpus_doc(
        minimal,
        classify(minimal),
        found_by=doc.get("found_by"),
        description=doc.get("description", ""),
    )
    target = args.out or args.case
    write_corpus_case(target, out)
    print(f"wrote {target}")
    return 0


def add_fuzz_parser(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "fuzz", help="coverage-guided scenario fuzzing with shrinking"
    )
    fuzz_sub = parser.add_subparsers(dest="fuzz_command", required=True)

    prun = fuzz_sub.add_parser(
        "run", help="execute a fuzz campaign through the sweep fleet"
    )
    prun.add_argument(
        "spec", nargs="?", default=None,
        help="path to a fuzz spec JSON file (omit to use flags)",
    )
    prun.add_argument("--name", default="adhoc", help="campaign name")
    prun.add_argument("--seed", type=int, default=None, help="campaign seed")
    prun.add_argument(
        "--budget", type=int, default=None, help="total cases across shards"
    )
    prun.add_argument("--shards", type=int, default=None, help="shard count")
    prun.add_argument(
        "--kinds", default=None,
        help="comma-separated case kinds (plan,chaos,serve,divergence,ops)",
    )
    prun.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial in-process execution, default)",
    )
    prun.add_argument(
        "--cache-dir", default=None,
        help="shard-result cache root (default .sweep_cache)",
    )
    prun.add_argument(
        "--resume", action="store_true",
        help="reuse completed shards from the on-disk cache",
    )
    prun.add_argument(
        "--no-shrink", action="store_true",
        help="skip automatic shrinking of merged findings",
    )
    prun.add_argument(
        "--out-dir", default=None,
        help="directory for BENCH_fuzz_<name>.json (default: repo root "
             "or $REPRO_BENCH_DIR)",
    )
    prun.add_argument(
        "--corpus", default=None,
        help="committed corpus directory to compare findings against",
    )
    prun.add_argument(
        "--fail-on-new", action="store_true",
        help="exit 1 when a finding key is not in the corpus (CI gate)",
    )
    prun.add_argument(
        "--emit-corpus", action="store_true",
        help="write shrunk repros for new finding keys into --corpus",
    )
    prun.add_argument(
        "--json", action="store_true", help="also print the full results JSON"
    )

    preplay = fuzz_sub.add_parser(
        "replay",
        help="re-run one corpus case (exit 1 = reproduced, 0 = fixed)",
    )
    preplay.add_argument("case", help="path to a corpus case JSON file")
    preplay.add_argument(
        "--json", action="store_true", help="also print the verdict JSON"
    )

    pshrink = fuzz_sub.add_parser(
        "shrink", help="re-shrink a corpus case in place (or to --out)"
    )
    pshrink.add_argument("case", help="path to a corpus case JSON file")
    pshrink.add_argument(
        "--out", default=None,
        help="write the shrunk case here instead of overwriting",
    )
