"""SARIF 2.1.0 export for the static-analysis toolchain.

Every ``repro analyze`` subcommand can emit its findings as a SARIF
log (``--format sarif``), the interchange format CI code-scanning
UIs ingest.  One run per invocation; each distinct rule id becomes a
``reportingDescriptor`` so viewers can group/filter by rule.

The output is deliberately minimal and fully deterministic: no
timestamps, no absolute paths, no tool version beyond the repo's own
version string — the same findings always serialize to the same
bytes (asserted by ``tests/analysis/test_sarif.py``).
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.findings import Finding
from repro.version import __version__

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def findings_to_sarif(
    findings: Sequence[Finding], tool_name: str = "repro-analyze"
) -> dict:
    """Project findings into one SARIF run (a plain JSON-safe dict)."""
    rules = sorted({f.rule for f in findings})
    rule_index = {rule: i for i, rule in enumerate(rules)}
    results = []
    for finding in sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule)
    ):
        region: dict = {"startLine": max(1, finding.line)}
        if finding.col:
            region["startColumn"] = finding.col
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": "error",
                "message": {"text": finding.message},
                "suppressions": (
                    [{"kind": "inSource"}] if finding.suppressed else []
                ),
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": region,
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": __version__,
                        "informationUri": (
                            "https://example.invalid/p4update-repro"
                        ),
                        "rules": [
                            {
                                "id": rule,
                                "name": rule,
                                "shortDescription": {"text": rule},
                            }
                            for rule in rules
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def sarif_dumps(
    findings: Sequence[Finding], tool_name: str = "repro-analyze"
) -> str:
    """Canonical SARIF text (stable key order, trailing newline)."""
    return (
        json.dumps(
            findings_to_sarif(findings, tool_name=tool_name),
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
