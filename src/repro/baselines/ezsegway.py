"""ez-Segway baseline (Nguyen et al., SOSR'17) — as re-implemented by
the P4Update authors for their evaluation (§9.1).

Control plane: for each flow update, the controller splits the path
difference into segments and classifies them *in_loop* / *not_in_loop*
(our backward/forward classification).  It encodes, per switch, the
new rule, the segment membership, the update order within the segment
(driven from the segment egress) and the inter-segment dependency.
All role messages are pushed at once.

Data plane: each segment updates sequentially from its egress gateway
upstream via GoodToMove messages.  not_in_loop segments start as soon
as their egress gateway holds its role message; in_loop segments start
only after the dependent downstream segment completed (the shared
gateway flipped).  There is **no verification**: a switch applies
whatever role message it received once its GoodToMove arrives — which
is exactly why the Fig. 2 out-of-order scenario loops.

Congestion freedom uses the centralized dependency graph with static
priorities (§9.1): the controller pre-computes, per directed link, the
order in which flow moves may claim capacity; switches respect both
the remaining capacity and that static order.  Computing this graph is
the Fig. 8b control-plane cost.

Consecutive updates of the same flow are serialized by the controller
(it waits for the completion notification before pushing the next
update) — the behaviour §4.2 contrasts with P4Update's fast-forward.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Optional

import networkx as nx
import numpy as np

from repro.consistency.state import ForwardingState
from repro.core.labeling import distance_labels
from repro.core.segmentation import Segment, compute_segments
from repro.params import SimParams
from repro.sim.node import Node
from repro.sim.trace import KIND_RULE_CHANGE, KIND_UPDATE_DONE
from repro.topo.graph import Topology
from repro.traffic.flows import Flow

LOCAL_DELIVER = "__local__"


# -- messages ------------------------------------------------------------------


@dataclass(frozen=True)
class RoleMessage:
    """Controller -> switch: one switch's part of one flow update."""

    target: str
    flow_id: int
    update_id: int
    new_next_hop: Optional[str]       # None = deliver locally (egress)
    segment_index: int
    upstream_in_segment: Optional[str]  # neighbour to notify after updating
    is_segment_egress: bool
    is_segment_ingress: bool
    is_flow_ingress: bool
    in_loop: bool
    depends_on_flip: bool             # in_loop: wait for own flip in seg k+1
    flow_size: float = 0.0
    # Static congestion priority: smaller = may claim capacity earlier.
    move_rank: int = 0

    def describe(self) -> str:
        kind = "in_loop" if self.in_loop else "not_in_loop"
        return f"Role(to={self.target} flow={self.flow_id} seg={self.segment_index} {kind})"


@dataclass(frozen=True)
class GoodToMove:
    """Data-plane notification: downstream is ready, you may update."""

    flow_id: int
    update_id: int
    segment_index: int

    def describe(self) -> str:
        return f"GTM(flow={self.flow_id} seg={self.segment_index})"


@dataclass(frozen=True)
class CleanupMsg:
    """Old-link cleanup after a flip (same §11 mechanism as P4Update,
    applied to the baseline for a fair capacity model)."""

    flow_id: int
    update_id: int

    def describe(self) -> str:
        return f"Cleanup(flow={self.flow_id} u={self.update_id})"


@dataclass(frozen=True)
class DoneNotification:
    """Switch -> controller: one segment's ingress gateway flipped.

    The update is complete when every segment reported."""

    flow_id: int
    update_id: int
    segment_index: int
    reporter: str

    def describe(self) -> str:
        return f"Done(flow={self.flow_id} u={self.update_id} seg={self.segment_index})"


# -- control-plane preparation ---------------------------------------------------


@dataclass(frozen=True)
class EzPreparedUpdate:
    flow_id: int
    update_id: int
    segments: tuple[Segment, ...]
    roles: tuple[RoleMessage, ...]


def _ez_classify_in_loop(old_path: list[str], segment: Segment) -> bool:
    """ez-Segway's in_loop detection: explicit cycle search on the
    mixed forwarding graph (old rules with the segment's ingress
    gateway flipped onto the new sub-path).

    This is deliberately the graph-analytic way ez-Segway's control
    plane works — it is what makes its preparation more expensive than
    P4Update's distance labeling (Fig. 8a).
    """
    ingress_gw = segment.ingress_gateway
    mixed_next: dict[str, str] = {}
    for a, b in zip(old_path, old_path[1:]):
        if a != ingress_gw:
            mixed_next[a] = b
    for a, b in zip(segment.nodes, segment.nodes[1:]):
        mixed_next[a] = b
    # Follow the mixed forwarding state from the flipped gateway.
    seen: set[str] = set()
    node = ingress_gw
    while node in mixed_next:
        if node in seen:
            return True
        seen.add(node)
        node = mixed_next[node]
    return node in seen


def _flip_conflict(old_path: list[str], first: Segment, second: Segment) -> bool:
    """Does flipping ``first``'s gateway loop while ``second`` is still
    on the old rules — but not once ``second`` has flipped too?

    ez-Segway's planner evaluates segment *pairs* this way to build
    the execution dependencies.
    """
    if not _ez_classify_in_loop(old_path, first):
        return False
    flipped_gateways = {first.ingress_gateway, second.ingress_gateway}
    mixed_next: dict[str, str] = {}
    for a, b in zip(old_path, old_path[1:]):
        if a not in flipped_gateways:
            mixed_next[a] = b
    for segment in (first, second):
        for a, b in zip(segment.nodes, segment.nodes[1:]):
            mixed_next[a] = b
    node, seen = first.ingress_gateway, set()
    while node in mixed_next:
        if node in seen:
            return False          # still loops with both: not resolved by j
        seen.add(node)
        node = mixed_next[node]
    return True                    # j's flip resolves i's loop: i depends on j


def _segment_dependencies(old_path: list[str], segments: list[Segment]) -> dict[int, bool]:
    """Which segments must wait for a downstream segment (in_loop).

    Performs the pairwise dependency analysis of ez-Segway's control
    plane: every in_loop segment is checked against every other
    segment to find which flips resolve its loop — an O(k^2) pass of
    mixed-graph cycle searches (the Fig. 8a cost P4Update's distance
    labeling avoids).
    """
    dependencies: dict[int, bool] = {}
    for i, segment in enumerate(segments):
        in_loop = _ez_classify_in_loop(old_path, segment)
        if in_loop:
            # Find the resolving segments (the runtime only needs the
            # fact that the dependency exists; execution waits on the
            # shared gateway's own flip).
            _resolvers = [
                j for j, other in enumerate(segments)
                if j != i and _flip_conflict(old_path, segment, other)
            ]
        dependencies[i] = in_loop
    return dependencies


def _encode_segment_order(
    segments: list[Segment], dependencies: dict[int, bool]
) -> dict[str, dict]:
    """Per-node segment role info (the 'update order encoded into the
    egress of each segment')."""
    roles: dict[str, dict] = {}
    for index, segment in enumerate(segments):
        order = list(reversed(segment.nodes))       # egress-first order
        for position, node in enumerate(order):
            upstream = order[position + 1] if position + 1 < len(order) else None
            roles.setdefault(node, {})[index] = {
                "upstream": upstream,
                "position": position,
                "is_segment_egress": node == segment.egress_gateway,
                "is_segment_ingress": node == segment.ingress_gateway,
                "in_loop": dependencies[index],
            }
    return roles


def congestion_dependency_graph(
    flows: list[Flow],
    capacities: dict[frozenset, float],
) -> dict[tuple[int, tuple[str, str]], int]:
    """The centralized inter-flow dependency computation (Fig. 8b cost).

    Builds the full move-dependency graph: one vertex per (flow, new
    directed link) move; an edge A -> B when move A needs capacity that
    only frees once move B vacated the link.  Static priorities (move
    ranks) come from a topological order of the graph's condensation —
    cycles (deadlock potential) get rank by strongly-connected
    component order, mirroring how ez-Segway breaks ties with its
    third priority class.
    """
    moves: dict[tuple[int, tuple[str, str]], int] = {}
    graph = nx.DiGraph()
    occupants: dict[tuple[str, str], list[Flow]] = {}
    for flow in flows:
        for edge in flow.old_edges():
            occupants.setdefault(edge, []).append(flow)
    # Current load per directed link.
    load: dict[tuple[str, str], float] = {
        edge: sum(f.size for f in fs) for edge, fs in occupants.items()
    }

    for flow in flows:
        for edge in flow.new_edges():
            if edge in flow.old_edges():
                continue
            move = (flow.flow_id, edge)
            graph.add_node(move)
            capacity = capacities.get(frozenset(edge), float("inf"))
            remaining = capacity - load.get(edge, 0.0)
            if remaining >= flow.size:
                continue
            # Needs somebody to vacate: depend on every occupant that
            # moves away from this link.
            for occupant in occupants.get(edge, []):
                if occupant.flow_id == flow.flow_id:
                    continue
                for their_edge in occupant.new_edges():
                    if their_edge == edge:
                        continue
                    graph.add_edge(move, (occupant.flow_id, their_edge))

    # Ranks: reverse topological order over the condensation, so that
    # moves others depend on get smaller ranks (move first).
    condensation = nx.condensation(graph)
    order = list(nx.topological_sort(condensation))
    rank_of_scc = {scc: len(order) - i for i, scc in enumerate(order)}
    for node, scc in condensation.graph["mapping"].items():
        moves[node] = rank_of_scc[scc]
    return moves


def prepare_ez_update(
    flow: Flow,
    old_path: list[str],
    new_path: list[str],
    update_id: int,
    move_ranks: Optional[dict] = None,
) -> EzPreparedUpdate:
    """Full control-plane preparation for one flow update.

    Only *non-trivial* segments (containing at least one rule change
    w.r.t. the controller's believed old path) produce role messages —
    switches whose rules do not change receive nothing, which is why
    the §4.1 out-of-order scenario loops: v2's pending (b) change is
    not re-sent by (c).
    """
    all_segments = compute_segments(old_path, new_path)
    _ = distance_labels(new_path)                  # ez also labels paths
    old_next = {a: b for a, b in zip(old_path, old_path[1:])}
    new_next = {a: b for a, b in zip(new_path, new_path[1:])}
    # The control plane analyses EVERY segment (it cannot know which
    # are trivial before classifying them — this full-path pass is the
    # Fig. 8a preparation cost)...
    all_dependencies = _segment_dependencies(old_path, all_segments)
    all_roles = _encode_segment_order(all_segments, all_dependencies)
    # ...but only non-trivial segments produce role messages.  A
    # segment owns exactly its interior installs and its ingress
    # gateway's flip (the egress gateway's own rule belongs to the
    # next segment downstream).
    active_indices = [
        i for i, seg in enumerate(all_segments)
        if seg.interior
        or old_next.get(seg.ingress_gateway) != new_next.get(seg.ingress_gateway)
    ]
    index_map = {old_i: new_i for new_i, old_i in enumerate(active_indices)}
    segments = [all_segments[i] for i in active_indices]
    dependencies = {
        index_map[i]: all_dependencies[i] for i in active_indices
    }
    node_roles = {
        node: {
            index_map[i]: info
            for i, info in per_node.items()
            if i in index_map
        }
        for node, per_node in all_roles.items()
    }

    next_hop = {a: b for a, b in zip(new_path, new_path[1:])}
    roles: list[RoleMessage] = []
    for node in new_path:
        for segment_index, info in sorted(node_roles.get(node, {}).items()):
            # Skip duplicate role for shared gateways: emit the role of
            # the segment in which the node actually updates (a shared
            # gateway flips in the downstream segment, where it is the
            # segment ingress).
            if info["is_segment_egress"] and segment_index + 1 < len(segments):
                # This node's flip belongs to segment_index (as its
                # ingress) handled in another iteration; here it only
                # drives the chain.
                pass
            move_rank = 0
            if move_ranks is not None and node in next_hop:
                move_rank = move_ranks.get(
                    (flow.flow_id, (node, next_hop[node])), 0
                )
            # An in_loop segment waits for its egress gateway's own
            # flip (in the downstream segment).  When that gateway's
            # rule does not change, the dependency is trivially
            # satisfied and the chain may start immediately.
            gateway_flips = old_next.get(node) != new_next.get(node)
            roles.append(
                RoleMessage(
                    target=node,
                    flow_id=flow.flow_id,
                    update_id=update_id,
                    new_next_hop=next_hop.get(node),
                    segment_index=segment_index,
                    upstream_in_segment=info["upstream"],
                    is_segment_egress=info["is_segment_egress"],
                    is_segment_ingress=info["is_segment_ingress"],
                    is_flow_ingress=node == new_path[0],
                    in_loop=info["in_loop"],
                    depends_on_flip=(
                        info["is_segment_egress"]
                        and dependencies[segment_index]
                        and gateway_flips
                    ),
                    flow_size=flow.size,
                    move_rank=move_rank,
                )
            )
    return EzPreparedUpdate(
        flow_id=flow.flow_id,
        update_id=update_id,
        segments=tuple(segments),
        roles=tuple(roles),
    )


# -- data plane ----------------------------------------------------------------------


class EzSegwaySwitch(Node):
    """One ez-Segway switch (OpenFlow switch + local controller)."""

    def __init__(
        self,
        name: str,
        params: Optional[SimParams] = None,
        rng: Optional[np.random.Generator] = None,
        forwarding_state: Optional[ForwardingState] = None,
    ) -> None:
        super().__init__(name)
        self.params = params if params is not None else SimParams()
        self.rng = rng if rng is not None else self.params.rng()
        self.forwarding_state = forwarding_state
        # (flow_id, update_id, segment_index) -> RoleMessage
        self.roles: dict[tuple[int, int, int], RoleMessage] = {}
        # Applied next hops: flow_id -> node name (or LOCAL_DELIVER).
        self.rules: dict[int, str] = {}
        # Flipped flags: (flow_id, update_id) -> True once this node
        # applied its new rule for that update.
        self.flipped: dict[tuple[int, int], bool] = {}
        # GTMs that arrived before the role message.
        self._pending_gtm: list[GoodToMove] = []
        # Congestion: per-next-hop reserved capacity (directed).
        self.congestion_aware = False
        self.link_capacity: dict[str, float] = {}
        self.link_reserved: dict[str, float] = {}
        self.flow_sizes: dict[int, float] = {}
        # moves already performed on each link (for static rank order).
        self._moved_ranks: dict[str, set[int]] = {}
        self._expected_ranks: dict[str, list[int]] = {}
        self._deferred: list[tuple[RoleMessage, GoodToMove]] = []
        # Single processing pipeline, like the P4 switches: messages
        # serialise through the local controller/switch.
        self._busy_until = 0.0
        # Deferral count after which the static move order is relaxed
        # (deadlock breaking; the capacity check always remains).
        self.static_order_patience = 200
        # Admitted-but-not-yet-flipped moves: flow -> next hop whose
        # capacity is already reserved (atomic-move semantics: both
        # the old and the new link are held during the transition).
        self._in_transit: dict[int, str] = {}

    # -- wiring -------------------------------------------------------------

    def set_link(self, neighbor: str, capacity: float) -> None:
        self.link_capacity[neighbor] = capacity
        self.link_reserved.setdefault(neighbor, 0.0)

    def install_initial(self, flow_id: int, next_hop: Optional[str], size: float) -> None:
        hop = next_hop if next_hop is not None else LOCAL_DELIVER
        self.rules[flow_id] = hop
        self.flow_sizes[flow_id] = size
        if hop != LOCAL_DELIVER:
            self.link_reserved[hop] = self.link_reserved.get(hop, 0.0) + size
        if self.forwarding_state is not None and hop != LOCAL_DELIVER:
            self.forwarding_state.set_rule(flow_id, self.name, hop)

    def expect_ranks(self, neighbor: str, ranks: list[int]) -> None:
        """Static move order for one outgoing link (congestion mode)."""
        self._expected_ranks[neighbor] = sorted(ranks)

    # -- control plane ---------------------------------------------------------

    def handle_control(self, message: Any, sender: str) -> None:
        if not isinstance(message, RoleMessage):
            return
        key = (message.flow_id, message.update_id, message.segment_index)
        self.roles[key] = message
        self.flow_sizes.setdefault(message.flow_id, message.flow_size)
        if message.is_segment_egress and not message.depends_on_flip:
            # not_in_loop segment: drive the chain immediately.
            self._drive_chain(message)
        # Replay any GTM that raced ahead of this role message.
        self._replay_pending()

    def _drive_chain(self, role: RoleMessage) -> None:
        """Send GoodToMove to the upstream neighbour in the segment."""
        if role.upstream_in_segment is None:
            return
        gtm = GoodToMove(
            flow_id=role.flow_id,
            update_id=role.update_id,
            segment_index=role.segment_index,
        )
        port = self.network.port_towards(self.name, role.upstream_in_segment)
        delay = self.params.pipeline_delay.sample(self.rng)
        self.engine.schedule(delay, self.send, port, gtm)

    # -- data plane --------------------------------------------------------------

    def _enqueue(self, handler, *args) -> None:
        """Serialise message processing through the one pipeline."""
        service = self.params.pipeline_delay.sample(self.rng)
        start = max(self.engine.now, self._busy_until)
        finish = start + service
        self._busy_until = finish
        self.engine.schedule(finish - self.engine.now, handler, *args)

    def handle_message(self, message: Any, in_port: int) -> None:
        if isinstance(message, GoodToMove):
            self._enqueue(self._handle_gtm, message)
        elif isinstance(message, CleanupMsg):
            self._enqueue(self._handle_cleanup, message)
        elif hasattr(message, "has_valid") and message.has_valid("probe"):
            self._enqueue(self._forward_probe, message)

    def _handle_cleanup(self, msg: CleanupMsg) -> None:
        has_role = any(
            key[0] == msg.flow_id and key[1] >= msg.update_id
            for key in self.roles
        )
        if has_role:
            return  # part of the current configuration
        hop = self.rules.get(msg.flow_id)
        if hop is None or hop == LOCAL_DELIVER:
            # No rule to clean, or this is the flow egress — its
            # local-delivery rule is part of every configuration.
            return
        del self.rules[msg.flow_id]
        if self.congestion_aware:
            size = self.flow_sizes.get(msg.flow_id, 0.0)
            self.link_reserved[hop] = self.link_reserved.get(hop, 0.0) - size
        if self.forwarding_state is not None:
            self.forwarding_state.set_rule(msg.flow_id, self.name, None)
        self.network.trace.record(
            self.now, KIND_RULE_CHANGE, self.name,
            flow=msg.flow_id, next_hop=None, cleanup=True,
        )
        port = self.network.port_towards(self.name, hop)
        self.send(port, msg)

    def inject(self, packet: Any, in_port: int = 0) -> None:
        """Feed a locally generated probe packet into the switch."""
        self._enqueue(self._forward_probe, packet)

    def _forward_probe(self, packet: Any) -> None:
        from repro.sim.trace import (
            KIND_PACKET_DELIVERED,
            KIND_PACKET_LOST,
            KIND_PACKET_RECV,
        )

        flow_id = packet.header("probe")["flow_id"]
        seq = packet.header("probe")["seq"]
        self.network.trace.record(
            self.now, KIND_PACKET_RECV, self.name,
            flow=flow_id, seq=seq, ttl=packet.ttl,
        )
        hop = self.rules.get(flow_id)
        if hop is None:
            self.network.trace.record(
                self.now, KIND_PACKET_LOST, self.name,
                flow=flow_id, seq=seq, reason="blackhole",
            )
            return
        if hop == LOCAL_DELIVER:
            self.network.trace.record(
                self.now, KIND_PACKET_DELIVERED, self.name,
                flow=flow_id, seq=seq,
            )
            return
        if packet.ttl <= 1:
            self.network.trace.record(
                self.now, KIND_PACKET_LOST, self.name,
                flow=flow_id, seq=seq, reason="ttl",
            )
            return
        packet.ttl -= 1
        port = self.network.port_towards(self.name, hop)
        self.send(port, packet)

    def _handle_gtm(self, gtm: GoodToMove) -> None:
        role = self.roles.get((gtm.flow_id, gtm.update_id, gtm.segment_index))
        if role is None:
            # Role message not here yet: park the GTM (local controller
            # buffers it; no verification of its validity).
            self._pending_gtm.append(gtm)
            return
        self._apply_role(role, gtm)

    def _replay_pending(self) -> None:
        pending, self._pending_gtm = self._pending_gtm, []
        for gtm in pending:
            self._handle_gtm(gtm)

    def _apply_role(self, role: RoleMessage, gtm: GoodToMove, retries: int = 0) -> None:
        if self.flipped.get((role.flow_id, role.update_id)):
            # Already updated for this update (shared gateway): a GTM in
            # another segment just keeps the chain going.
            self._continue_chain(role)
            return
        # After many deferrals, relax the *static order* (ez-Segway's
        # deadlock-breaking third priority class) but never the
        # capacity check itself.
        ignore_ranks = retries >= self.static_order_patience
        if self.congestion_aware and not self._admit(role, ignore_ranks):
            if self.obs.enabled:
                self.obs.metrics.counter(
                    "scheduler_deferrals", node=self.name,
                ).inc()
            self._deferred.append((role, gtm, retries + 1))
            self.engine.schedule(
                self.params.resubmit_interval_ms, self._retry_deferred
            )
            return
        hop = role.new_next_hop if role.new_next_hop is not None else LOCAL_DELIVER
        if self.congestion_aware and hop != LOCAL_DELIVER and hop != self.rules.get(role.flow_id):
            # Reserve the new link at admission (atomic move): the old
            # link is released only once the flip completed.
            if self._in_transit.get(role.flow_id) != hop:
                size = self.flow_sizes.get(role.flow_id, role.flow_size)
                self.link_reserved[hop] = self.link_reserved.get(hop, 0.0) + size
                self._in_transit[role.flow_id] = hop
        if self.rules.get(role.flow_id) == hop:
            # No actual rule change: bookkeeping only.
            delay = self.params.pipeline_delay.sample(self.rng)
        else:
            delay = self.params.baseline_install_delay.sample(self.rng)
        self.engine.schedule(delay, self._complete_flip, role)

    def _retry_deferred(self) -> None:
        deferred, self._deferred = self._deferred, []
        for role, gtm, retries in deferred:
            self._apply_role(role, gtm, retries)

    def _admit(self, role: RoleMessage, ignore_ranks: bool = False) -> bool:
        """Static-priority capacity admission (§9.1 three-class scheme)."""
        hop = role.new_next_hop
        if hop is None:
            return True
        if self.rules.get(role.flow_id) == hop:
            return True
        capacity = self.link_capacity.get(hop, float("inf"))
        reserved = self.link_reserved.get(hop, 0.0)
        size = self.flow_sizes.get(role.flow_id, role.flow_size)
        if reserved + size > capacity + 1e-9:
            return False
        if ignore_ranks:
            return True
        # Respect the precomputed move order: every move with a smaller
        # rank destined to this link must already have happened.
        expected = self._expected_ranks.get(hop, [])
        done = self._moved_ranks.get(hop, set())
        for rank in expected:
            if rank >= role.move_rank:
                break
            if rank not in done:
                return False
        return True

    def _complete_flip(self, role: RoleMessage) -> None:
        if self.flipped.get((role.flow_id, role.update_id)):
            return
        hop = role.new_next_hop if role.new_next_hop is not None else LOCAL_DELIVER
        old_hop = self.rules.get(role.flow_id)
        if self.congestion_aware and hop != LOCAL_DELIVER and hop != old_hop:
            size = self.flow_sizes.get(role.flow_id, role.flow_size)
            # The new link was reserved at admission; now release old.
            if self._in_transit.pop(role.flow_id, None) is None:
                self.link_reserved[hop] = self.link_reserved.get(hop, 0.0) + size
            if old_hop and old_hop != LOCAL_DELIVER:
                self.link_reserved[old_hop] = self.link_reserved.get(old_hop, 0.0) - size
            self._moved_ranks.setdefault(hop, set()).add(role.move_rank)
        self.rules[role.flow_id] = hop
        self.flipped[(role.flow_id, role.update_id)] = True
        if self.obs.enabled:
            self.obs.metrics.counter("rule_installs", node=self.name).inc()
        if self.forwarding_state is not None and hop != LOCAL_DELIVER:
            self.forwarding_state.set_rule(role.flow_id, self.name, hop)
        self.network.trace.record(
            self.now, KIND_RULE_CHANGE, self.name,
            flow=role.flow_id, next_hop=None if hop == LOCAL_DELIVER else hop,
        )
        if (
            old_hop is not None
            and old_hop not in (LOCAL_DELIVER, hop)
        ):
            port = self.network.port_towards(self.name, old_hop)
            self.send(port, CleanupMsg(flow_id=role.flow_id, update_id=role.update_id))
        self._after_flip(role)

    def _after_flip(self, role: RoleMessage) -> None:
        if role.is_segment_ingress:
            # Segment complete: report it to the controller.
            self.send_control(
                DoneNotification(
                    flow_id=role.flow_id, update_id=role.update_id,
                    segment_index=role.segment_index, reporter=self.name,
                )
            )
        self._continue_chain(role)
        # If this node is also the egress gateway of an in_loop segment
        # waiting on this flip, start that segment now.
        for key, other in self.roles.items():
            if key[0] != role.flow_id or key[1] != role.update_id:
                continue
            if other.is_segment_egress and other.depends_on_flip:
                self._drive_chain(other)

    def _continue_chain(self, role: RoleMessage) -> None:
        if role.upstream_in_segment is not None:
            self._drive_chain(role)


class EzSegwayController(Node):
    """ez-Segway controller: pushes role messages, serializes updates."""

    def __init__(
        self,
        name: str,
        topology: Topology,
        params: Optional[SimParams] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name)
        self.topology = topology
        self.params = params if params is not None else SimParams()
        self.rng = rng if rng is not None else self.params.rng()
        self._update_ids = itertools.count(1)
        self.flows: dict[int, Flow] = {}
        self.current_paths: dict[int, list[str]] = {}
        self.update_sent_at: dict[tuple[int, int], float] = {}
        self.update_done_at: dict[tuple[int, int], float] = {}
        self.active_updates: dict[int, int] = {}      # flow -> update_id
        self._queued: dict[int, list] = {}            # serialized updates
        # (flow, update) -> number of segments expected / reported.
        self._expected_segments: dict[tuple[int, int], int] = {}
        self._done_segments: dict[tuple[int, int], set[int]] = {}

    def control_service_time(self) -> float:
        return self.params.controller_service.sample(self.rng)

    def control_queue_delay(self) -> float:
        util = self.params.controller_background_util
        if util <= 0:
            return 0.0
        mean_wait = util / (1.0 - util) * self.params.controller_service.value
        return float(self.rng.exponential(mean_wait))

    def register_flow(self, flow: Flow) -> None:
        self.flows[flow.flow_id] = flow
        self.current_paths[flow.flow_id] = list(flow.old_path or [])

    # -- update pushing -------------------------------------------------------------

    def update_flow(
        self,
        flow_id: int,
        new_path: list[str],
        move_ranks: Optional[dict] = None,
    ) -> int:
        """Prepare and push (or queue, if one is ongoing) an update."""
        if flow_id in self.active_updates:
            # ez-Segway waits for the ongoing update to finish (§4.2).
            self._queued.setdefault(flow_id, []).append((new_path, move_ranks))
            return -1
        return self._push(flow_id, new_path, move_ranks)

    def _push(self, flow_id: int, new_path: list[str], move_ranks) -> int:
        flow = self.flows[flow_id]
        old_path = self.current_paths[flow_id]
        update_id = next(self._update_ids)
        prepared = prepare_ez_update(
            flow, old_path, new_path, update_id, move_ranks
        )
        self.active_updates[flow_id] = update_id
        self.update_sent_at[(flow_id, update_id)] = self.now
        self.current_paths[flow_id] = list(new_path)
        self._expected_segments[(flow_id, update_id)] = len(prepared.segments)
        self._done_segments[(flow_id, update_id)] = set()
        for role in prepared.roles:
            self.send_control(role)
        return update_id

    # -- feedback ----------------------------------------------------------------------

    def handle_control(self, message: Any, sender: str) -> None:
        if not isinstance(message, DoneNotification):
            return
        key = (message.flow_id, message.update_id)
        if key in self.update_done_at:
            return
        done = self._done_segments.setdefault(key, set())
        done.add(message.segment_index)
        if len(done) < self._expected_segments.get(key, 1):
            return
        self.update_done_at[key] = self.now
        if self.active_updates.get(message.flow_id) == message.update_id:
            del self.active_updates[message.flow_id]
            self.network.trace.record(
                self.now, KIND_UPDATE_DONE, self.name,
                flow=message.flow_id, update=message.update_id,
            )
            queue = self._queued.get(message.flow_id)
            if queue:
                new_path, move_ranks = queue.pop(0)
                self._push(message.flow_id, new_path, move_ranks)

    # -- queries ------------------------------------------------------------------------

    def update_complete(self, flow_id: int) -> bool:
        return flow_id not in self.active_updates and not self._queued.get(flow_id)

    def all_updates_complete(self) -> bool:
        return not self.active_updates and not any(self._queued.values())

    def update_duration(self, flow_id: int, update_id: int) -> Optional[float]:
        sent = self.update_sent_at.get((flow_id, update_id))
        done = self.update_done_at.get((flow_id, update_id))
        if sent is None or done is None:
            return None
        return done - sent
