"""Topology Zoo loader (GraphML).

The paper evaluates on AttMpls and Chinanet "from the Topology
Zoo [48]".  This module loads any Topology Zoo ``.graphml`` file into a
:class:`~repro.topo.graph.Topology`, using the Zoo's ``Latitude`` /
``Longitude`` node attributes to derive link latencies.  Nodes without
coordinates inherit the mean coordinate of their neighbours (the Zoo
has occasional gaps); files without any coordinates fall back to a
constant latency.

A small embedded sample (a 4-node toy in Zoo format) supports offline
tests; real Zoo files from topology-zoo.org load the same way.
"""

from __future__ import annotations

import io
import xml.etree.ElementTree as ET
from typing import Optional, Union

from repro.topo.graph import Topology

GRAPHML_NS = "{http://graphml.graphdrawing.org/xmlns}"

SAMPLE_GRAPHML = """<?xml version='1.0' encoding='utf-8'?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key attr.name="label" attr.type="string" for="node" id="d0"/>
  <key attr.name="Latitude" attr.type="double" for="node" id="d1"/>
  <key attr.name="Longitude" attr.type="double" for="node" id="d2"/>
  <graph edgedefault="undirected">
    <node id="0"><data key="d0">Vienna</data>
      <data key="d1">48.21</data><data key="d2">16.37</data></node>
    <node id="1"><data key="d0">Munich</data>
      <data key="d1">48.14</data><data key="d2">11.58</data></node>
    <node id="2"><data key="d0">Zurich</data>
      <data key="d1">47.38</data><data key="d2">8.54</data></node>
    <node id="3"><data key="d0">Milan</data>
      <data key="d1">45.46</data><data key="d2">9.19</data></node>
    <edge source="0" target="1"/>
    <edge source="1" target="2"/>
    <edge source="2" target="3"/>
    <edge source="0" target="3"/>
  </graph>
</graphml>
"""


class ZooParseError(ValueError):
    """Raised when a GraphML document cannot be interpreted."""


def _key_map(root) -> dict[str, str]:
    """GraphML key id -> attribute name."""
    keys = {}
    for key in root.findall(f"{GRAPHML_NS}key"):
        name = key.get("attr.name")
        key_id = key.get("id")
        if name and key_id:
            keys[key_id] = name
    return keys


def _node_data(node, keys) -> dict[str, str]:
    data = {}
    for item in node.findall(f"{GRAPHML_NS}data"):
        name = keys.get(item.get("key", ""), item.get("key", ""))
        data[name] = (item.text or "").strip()
    return data


def load_graphml(
    source: Union[str, io.IOBase],
    name: Optional[str] = None,
    capacity: float = 100.0,
    fallback_latency_ms: float = 5.0,
) -> Topology:
    """Parse Topology Zoo GraphML into a Topology.

    ``source`` may be a path, an XML string, or a file-like object.
    Multi-edges collapse to one link; self-loops are dropped (both
    occur in Zoo data).  Disconnected files keep only the largest
    connected component (standard practice when using Zoo graphs).
    """
    if isinstance(source, str) and source.lstrip().startswith("<"):
        root = ET.fromstring(source)
    elif isinstance(source, str):
        root = ET.parse(source).getroot()
    else:
        root = ET.parse(source).getroot()

    graph = root.find(f"{GRAPHML_NS}graph")
    if graph is None:
        raise ZooParseError("no <graph> element")
    keys = _key_map(root)

    labels: dict[str, str] = {}
    coords: dict[str, tuple[float, float]] = {}
    for node in graph.findall(f"{GRAPHML_NS}node"):
        node_id = node.get("id")
        if node_id is None:
            raise ZooParseError("node without id")
        data = _node_data(node, keys)
        label = data.get("label") or f"node{node_id}"
        # Zoo labels repeat occasionally; disambiguate with the id.
        if label in labels.values():
            label = f"{label}_{node_id}"
        labels[node_id] = label
        try:
            coords[node_id] = (float(data["Latitude"]), float(data["Longitude"]))
        except (KeyError, ValueError):
            pass

    edges: set[frozenset] = set()
    for edge in graph.findall(f"{GRAPHML_NS}edge"):
        a, b = edge.get("source"), edge.get("target")
        if a is None or b is None:
            raise ZooParseError("edge without endpoints")
        if a == b:
            continue                        # self-loop
        if a not in labels or b not in labels:
            raise ZooParseError(f"edge references unknown node {a!r}/{b!r}")
        edges.add(frozenset((a, b)))

    # Fill missing coordinates from neighbours (common in Zoo files).
    adjacency: dict[str, list[str]] = {}
    for pair in edges:
        a, b = tuple(pair)
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, []).append(a)
    for node_id in labels:
        if node_id in coords:
            continue
        neighbour_coords = [
            coords[n] for n in adjacency.get(node_id, []) if n in coords
        ]
        if neighbour_coords:
            coords[node_id] = (
                sum(c[0] for c in neighbour_coords) / len(neighbour_coords),
                sum(c[1] for c in neighbour_coords) / len(neighbour_coords),
            )

    topo_name = name or graph.get("id") or "zoo"
    topo = Topology(
        topo_name,
        coordinates={
            labels[node_id]: coord for node_id, coord in coords.items()
        },
    )
    for label in labels.values():
        topo.add_node(label)
    for pair in sorted(edges, key=sorted):
        a, b = sorted(pair)
        la, lb = labels[a], labels[b]
        if la in topo.coordinates and lb in topo.coordinates:
            topo.add_edge(la, lb, capacity=capacity)
        else:
            topo.add_edge(la, lb, latency_ms=fallback_latency_ms, capacity=capacity)

    # Keep the largest connected component.
    import networkx as nx

    if topo.graph.number_of_nodes() and not nx.is_connected(topo.graph):
        largest = max(nx.connected_components(topo.graph), key=len)
        topo.graph.remove_nodes_from(set(topo.graph) - largest)
        topo.invalidate_path_cache()
    topo.validate()
    return topo


def sample_zoo_topology() -> Topology:
    """The embedded 4-node sample in Topology Zoo format."""
    return load_graphml(SAMPLE_GRAPHML, name="zoo-sample")
