"""Behavioural model of a P4 programmable data plane.

This package replaces BMv2.  It models the pieces of P4-16 that
P4Update's data-plane program uses (paper §2.1, §8):

* customisable **headers** extracted by a parser and re-emitted by a
  deparser (:mod:`repro.p4.packet`);
* **match-action tables** with exact/ternary/LPM matching
  (:mod:`repro.p4.tables`);
* **register arrays** for stateful processing, writable from both the
  control and the data plane (:mod:`repro.p4.registers`);
* per-packet **metadata**, the **clone** and **resubmit** primitives,
  and a CPU port (:mod:`repro.p4.pipeline`);
* a :class:`repro.p4.switch.P4Switch` simulation node that runs a
  pipeline with per-packet processing delay.
"""

from repro.p4.packet import Header, HeaderField, Packet
from repro.p4.registers import RegisterArray, RegisterFile
from repro.p4.tables import Table, TableEntry, MatchKind
from repro.p4.pipeline import Pipeline, PipelineContext, PipelineProgram
from repro.p4.switch import P4Switch, RuntimeAPI
from repro.p4.compile import export_json, export_program, load_skeleton

__all__ = [
    "Header",
    "HeaderField",
    "Packet",
    "RegisterArray",
    "RegisterFile",
    "Table",
    "TableEntry",
    "MatchKind",
    "Pipeline",
    "PipelineContext",
    "PipelineProgram",
    "P4Switch",
    "RuntimeAPI",
    "export_json",
    "export_program",
    "load_skeleton",
]
