"""The static inter-plan interference analyzer.

Covers the three layers: footprint extraction, the composed
happens-before order, and the conflict detectors — plus the
end-to-end contracts on the committed example specs (zero false
positives on the smoke workload, a pinned findings signature on the
conflicting workload, worker-count-independent batch signatures).
"""

import json
import os

from repro.analysis.advgen import plan_from_paths
from repro.analysis.interference import (
    BatchPolicies,
    analyze_serve_spec,
    batch_from_serve_spec,
    build_happens_before,
    detect_interference,
    footprint_from_paths,
    footprint_of,
    pair_conflicts,
    serialization_edges,
)
from repro.analysis.plan import plan_from_dict, plan_to_dict
from repro.serve.spec import load_serve_spec

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def load_example(name):
    with open(os.path.join(EXAMPLES, name)) as handle:
        return load_serve_spec(json.load(handle))


# -- footprints ---------------------------------------------------------------


def test_footprint_edge_partition():
    fp = footprint_from_paths(7, ("a", "b", "c"), ("a", "d", "c"), 1.5)
    assert fp.enter_edges == {("a", "d"), ("d", "c")}
    assert fp.leave_edges == {("a", "b"), ("b", "c")}
    assert fp.stay_edges == set()
    assert fp.touched_edges == {
        ("a", "b"), ("b", "c"), ("a", "d"), ("d", "c")
    }


def test_footprint_stay_edges_carry_no_delta():
    fp = footprint_from_paths(7, ("a", "b", "c"), ("a", "b", "d"), 2.0)
    assert fp.stay_edges == {("a", "b")}
    deltas = fp.capacity_deltas()
    assert ("a", "b") not in deltas
    assert deltas[("b", "d")] == 2.0
    assert deltas[("b", "c")] == -2.0


def test_footprint_of_plan_matches_paths():
    plan = plan_from_paths(9, ("a", "b", "c"), ("a", "d", "c"),
                           flow_size=1.25, version=4)
    fp = footprint_of(plan)
    assert fp.flow_id == 9
    assert fp.version == 4
    assert fp.flow_size == 1.25
    assert fp.switches == {"a", "d", "c"}
    assert fp.version_slots == (("a", 9), ("c", 9), ("d", 9))
    assert fp.old_edges == (("a", "b"), ("b", "c"))
    assert fp.new_edges == (("a", "d"), ("d", "c"))


def test_footprint_survives_plan_dict_round_trip():
    plan = plan_from_paths(9, ("a", "b", "c"), ("a", "d", "c"),
                           flow_size=1.25, version=4)
    clone = plan_from_dict(plan_to_dict(plan))
    assert footprint_of(clone) == footprint_of(plan)


# -- happens-before -----------------------------------------------------------


def pair(flow_a=1, flow_b=2):
    return [
        plan_from_paths(flow_a, ("a", "b", "c"), ("a", "d", "c")),
        plan_from_paths(flow_b, ("a", "b", "c"), ("a", "e", "c")),
    ]


def test_hb_default_policies_leave_pairs_unordered():
    hb = build_happens_before(pair(), BatchPolicies())
    assert list(hb.unordered_plan_pairs()) == [(0, 1)]


def test_hb_same_flow_orders_by_batch_position():
    hb = build_happens_before(pair(3, 3), BatchPolicies(same_flow=True))
    assert (0, 1) in hb.plan_before
    assert hb.ordered(0, 1)
    assert list(hb.unordered_plan_pairs()) == []


def test_hb_shared_switch_orders_overlapping_plans():
    hb = build_happens_before(
        pair(), BatchPolicies(shared_switch=True)
    )
    assert (0, 1) in hb.plan_before


def test_hb_max_in_flight_one_is_a_total_order():
    plans = pair() + [plan_from_paths(5, ("x", "y"), ("x", "z"))]
    hb = build_happens_before(plans, BatchPolicies(max_in_flight=1))
    assert hb.plan_before >= {(0, 1), (1, 2), (0, 2)}


def test_hb_extra_order_is_transitively_closed():
    plans = pair() + [plan_from_paths(5, ("x", "y"), ("x", "z"))]
    hb = build_happens_before(
        plans, BatchPolicies(extra_order=((0, 1), (1, 2)))
    )
    assert (0, 2) in hb.plan_before


def test_hb_intra_plan_install_order_follows_distances():
    plan = plan_from_paths(1, ("a", "b", "c"), ("a", "d", "c"))
    hb = build_happens_before([plan])
    install_a = next(
        op for op in hb.ops
        if op.node == "a" and op.action == "install"
    )
    install_c = next(
        op for op in hb.ops
        if op.node == "c" and op.action == "install"
    )
    # Egress ("c", distance 0) installs strictly before ingress "a".
    assert hb.op_ordered(install_c, install_a)


# -- detectors ----------------------------------------------------------------


def kinds_of(report):
    return {finding.kind for finding in report.findings}


def test_same_flow_unordered_pair_is_a_slot_race():
    report = detect_interference(pair(3, 3), BatchPolicies())
    assert "version-slot-race" in kinds_of(report)
    finding = next(
        f for f in report.findings if f.kind == "version-slot-race"
    )
    assert finding.plans == (0, 1)
    assert finding.counterexample
    assert finding.suggested_order == ((0, 1),)


def test_same_flow_serialization_silences_the_race():
    report = detect_interference(
        pair(3, 3), BatchPolicies(same_flow=True)
    )
    assert report.ok


def test_merged_relation_cycle_is_a_transient_loop():
    plans = [
        plan_from_paths(3, ("i", "v", "e"), ("i", "u", "v", "e")),
        plan_from_paths(3, ("i", "u", "v", "e"), ("i", "v", "u", "e")),
    ]
    report = detect_interference(plans, BatchPolicies())
    assert "transient-loop" in kinds_of(report)


def test_shared_new_path_switch_is_a_transient_blackhole():
    plans = [
        plan_from_paths(3, ("i1", "e1"), ("i1", "m", "e1"), version=2),
        plan_from_paths(3, ("i2", "e2"), ("i2", "m", "e2"), version=3),
    ]
    report = detect_interference(plans, BatchPolicies())
    assert "transient-blackhole" in kinds_of(report)


def overcommit_batch():
    return [
        plan_from_paths(1, ("u", "v", "x"), ("u", "y", "x"),
                        flow_size=1.0),
        plan_from_paths(2, ("p", "q", "v"), ("p", "u", "v"),
                        flow_size=1.0),
    ]


def test_transient_overcommit_flagged_without_scheduler():
    report = detect_interference(
        overcommit_batch(), BatchPolicies(same_flow=True),
        capacities={("u", "v"): 1.5}, congestion_aware=False,
    )
    assert kinds_of(report) == {"link-overcommit"}
    finding = report.findings[0]
    assert finding.subject == "edge(u->v)"
    assert finding.flows == (1, 2)


def test_steady_state_overcommit_is_not_a_finding():
    # Final load 2.0 on (u, v) exceeds capacity in *every*
    # serialization: not an interleaving hazard.
    plans = [
        plan_from_paths(1, ("u", "x"), ("u", "v"), flow_size=1.0),
        plan_from_paths(2, ("p", "q", "v"), ("p", "u", "v"),
                        flow_size=1.0),
    ]
    report = detect_interference(
        plans, BatchPolicies(same_flow=True),
        capacities={("u", "v"): 1.5}, congestion_aware=False,
    )
    assert report.ok


def test_congestion_scheduler_absorbs_the_transient():
    # Same geometry as the overcommit case, but §7.4 makes the
    # enterer wait for the leaver: no finding, and no deadlock since
    # the leaver does not wait on anyone.
    report = detect_interference(
        overcommit_batch(), BatchPolicies(same_flow=True),
        capacities={("u", "v"): 1.5}, congestion_aware=True,
    )
    assert report.ok


def test_mutual_waits_are_a_cross_plan_deadlock():
    plans = [
        plan_from_paths(1, ("u", "v"), ("x", "y"), flow_size=1.0),
        plan_from_paths(2, ("x", "y"), ("u", "v"), flow_size=1.0),
    ]
    report = detect_interference(
        plans, BatchPolicies(same_flow=True),
        capacities={("u", "v"): 1.5, ("x", "y"): 1.5},
        congestion_aware=True,
    )
    assert "cross-plan-deadlock" in kinds_of(report)
    finding = next(
        f for f in report.findings if f.kind == "cross-plan-deadlock"
    )
    assert finding.plans == (0, 1)
    assert finding.suggested_order


def test_serialization_edges_silence_the_batch():
    plans = pair(3, 3)
    edges = serialization_edges(plans, BatchPolicies())
    assert edges
    report = detect_interference(
        plans, BatchPolicies(extra_order=edges)
    )
    assert report.ok


# -- the gate-side pairwise check ---------------------------------------------


def test_pair_conflicts_same_flow():
    a = footprint_from_paths(5, ("a", "b"), ("a", "c"), 1.0)
    b = footprint_from_paths(5, ("a", "c"), ("a", "d"), 1.0)
    kinds = [c["kind"] for c in pair_conflicts(a, b)]
    assert kinds == ["version-slot-race"]


def test_pair_conflicts_transient_capacity():
    leaver = footprint_from_paths(1, ("u", "v", "x"), ("u", "y", "x"), 1.0)
    enterer = footprint_from_paths(2, ("p", "u"), ("p", "u", "v"), 1.0)
    conflicts = pair_conflicts(leaver, enterer, {("u", "v"): 1.5})
    assert [c["kind"] for c in conflicts] == ["link-overcommit"]
    assert conflicts[0]["worst_load"] == 2.0


def test_pair_conflicts_steady_state_excess_not_flagged():
    stay = footprint_from_paths(1, ("u", "v"), ("u", "v", "w"), 1.0)
    enterer = footprint_from_paths(2, ("p", "u"), ("p", "u", "v"), 1.0)
    assert pair_conflicts(stay, enterer, {("u", "v"): 1.5}) == []


def test_pair_conflicts_disjoint_footprints_clean():
    a = footprint_from_paths(1, ("a", "b"), ("a", "c"), 1.0)
    b = footprint_from_paths(2, ("x", "y"), ("x", "z"), 1.0)
    assert pair_conflicts(a, b, {("a", "c"): 1.1, ("x", "z"): 1.1}) == []


# -- committed example specs --------------------------------------------------


def test_serve_smoke_example_has_zero_findings():
    report = analyze_serve_spec(load_example("serve_smoke.json"))
    assert report.plan_count == 8
    assert report.findings == []


def test_serve_conflict_example_signature_pinned():
    with open(os.path.join(EXAMPLES, "serve_conflict.signature")) as fh:
        expected = fh.read().strip()
    spec = load_example("serve_conflict.json")
    first = analyze_serve_spec(spec)
    second = analyze_serve_spec(spec)
    assert kinds_of(first) == {"link-overcommit"}
    assert first.signature() == second.signature() == expected


def test_batch_from_serve_spec_respects_policies():
    spec = load_example("serve_smoke.json")
    plans, policies, capacities = batch_from_serve_spec(spec)
    assert len(plans) == spec.flows
    assert policies.same_flow
    assert policies.shared_switch == (spec.switch_conflict == "serialize")
    # Capacities cover both directions of every topology edge.
    for (a, b), cap in capacities.items():
        assert capacities[(b, a)] == cap


def test_interference_sweep_signature_worker_independent(tmp_path):
    from repro.sweep.executor import run_sweep
    from repro.sweep.merge import build_sweep_results
    from repro.sweep.spec import load_sweep_spec

    with open(os.path.join(EXAMPLES, "serve_conflict.json")) as fh:
        serve = json.load(fh)
    signatures = {}
    for workers in (1, 2):
        spec = load_sweep_spec({
            "name": "ifx",
            "kind": "interference",
            "serve": serve,
            "seeds": 2,
        })
        run = run_sweep(
            spec, workers=workers,
            cache_dir=str(tmp_path / f"cache{workers}"),
        )
        assert run.ok
        results = build_sweep_results(
            spec, run.shard_docs, run.failures, run.shards_total
        )
        signatures[workers] = results["signature"]
    assert signatures[1] == signatures[2]
