"""Reliable control delivery (§11, "Failures in the Update Process").

The paper assumes the controller can lose UIMs on an unreliable
control channel; P4Update's watchdogs eventually recover, but slowly
(a full re-trigger round-trip).  The :class:`ReliableControlSender`
adds transport-level reliability under the protocol: every
controller -> switch message is wrapped in a sequence-numbered
:class:`~repro.core.messages.Sequenced` envelope, acked by the
receiver, and retransmitted with seeded exponential backoff + jitter
until either the ack arrives or a bounded retry budget is exhausted —
at which point the failure is *escalated* to the controller's
recovery logic (the target switch is treated as unreachable).

Receiver-side dedup (see ``P4UpdateSwitch.handle_control``) makes
retransmissions and duplicate faults safe end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.core.messages import Sequenced
from repro.sim.engine import Event
from repro.sim.node import Node


@dataclass
class _Pending:
    """Book-keeping for one unacknowledged envelope."""

    envelope: Sequenced
    attempt: int = 1              # 1 = original transmission
    timer: Optional[Event] = None


class ReliableControlSender:
    """Ack-tracked, retransmitting control sender for the controller.

    ``send`` wraps the message and transmits it; a timer retransmits
    with exponential backoff until :meth:`ack` cancels it.  After
    ``max_retries`` retransmissions the ``on_exhausted`` callback
    fires with the original (inner) message.
    """

    def __init__(
        self,
        node: Node,
        rng: np.random.Generator,
        timeout_ms: float = 80.0,
        backoff: float = 2.0,
        jitter_ms: float = 5.0,
        max_retries: int = 6,
        on_exhausted: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.node = node
        self.rng = rng
        self.timeout_ms = timeout_ms
        self.backoff = backoff
        self.jitter_ms = jitter_ms
        self.max_retries = max_retries
        self.on_exhausted = on_exhausted
        self._next_seq = 1
        self._outstanding: dict[int, _Pending] = {}
        self.retransmissions = 0
        self.exhausted = 0

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)

    def send(self, message: Any) -> int:
        """Wrap ``message`` in an envelope and transmit reliably.

        ``message`` must carry a ``target`` attribute (UIM, TagFlip).
        Returns the assigned sequence number.
        """
        target = getattr(message, "target", None)
        if target is None:
            raise ValueError("reliable send requires a message with .target")
        seq = self._next_seq
        self._next_seq += 1
        self._outstanding[seq] = _Pending(
            envelope=Sequenced(seq=seq, target=target, inner=message)
        )
        self._transmit(seq)
        return seq

    def ack(self, seq: int) -> None:
        """An ack for ``seq`` arrived; stop retransmitting it."""
        pending = self._outstanding.pop(seq, None)
        if pending is None:
            return                # late/duplicate ack
        if pending.timer is not None:
            pending.timer.cancel()

    def cancel_target(self, target: str) -> None:
        """Abandon every outstanding send to ``target``.

        Used after escalation: once the controller treats the switch
        as failed, continuing to retransmit to it is pointless.
        """
        for seq in [
            s for s, p in self._outstanding.items() if p.envelope.target == target
        ]:
            self.ack(seq)

    def _transmit(self, seq: int) -> None:
        pending = self._outstanding.get(seq)
        if pending is None:
            return
        self.node.send_control(pending.envelope)
        timeout = self.timeout_ms * self.backoff ** (pending.attempt - 1)
        timeout += float(self.rng.uniform(0.0, self.jitter_ms))
        pending.timer = self.node.engine.schedule(timeout, self._on_timeout, seq)

    def _on_timeout(self, seq: int) -> None:
        pending = self._outstanding.get(seq)
        if pending is None:
            return
        if pending.attempt > self.max_retries:
            self._outstanding.pop(seq, None)
            self.exhausted += 1
            if self.node.obs.enabled:
                self.node.obs.metrics.counter(
                    "control_retry_exhausted", target=pending.envelope.target
                ).inc()
            if self.on_exhausted is not None:
                self.on_exhausted(pending.envelope.inner)
            return
        pending.attempt += 1
        self.retransmissions += 1
        if self.node.obs.enabled:
            self.node.obs.metrics.counter(
                "control_retransmissions", target=pending.envelope.target
            ).inc()
        causal = self.node.obs.causal
        if causal is not None:
            # The ack-less wait this timer just expired over belongs to
            # the in-flight request's retry_backoff segment.
            inner = pending.envelope.inner
            flow_id = getattr(inner, "flow_id", None)
            if flow_id is not None:
                causal.retry(
                    flow_id, self.node.engine.now, "retransmit",
                    self.node.name, target=pending.envelope.target,
                    attempt=pending.attempt,
                )
        self._transmit(seq)
