"""Automatic shrinking: delta-debug a failing case to a minimal repro.

Greedy, deterministic reduction: enumerate candidate simplifications
of the current payload in a fixed order (structural drops first —
plans, installs, notify edges, fault events, requests — then numeric
reductions toward documented floors), accept the first candidate that
still fails with the **same failure key** (same outcome, oracle and
violation kinds, see :func:`repro.fuzz.oracles.failure_key`) while
strictly decreasing the shrink measure, and repeat until no candidate
is accepted.

The measure is ``(canonical payload length, total numeric mass)``
compared lexicographically, so:

* **size is monotonically non-increasing** along the accepted-step
  trajectory (the property tests assert this);
* the loop terminates without an iteration cap — every accepted step
  strictly decreases a well-founded measure (a global evaluation
  budget still guards against pathological payloads);
* shrinking uses **no randomness at all**, so a fixed input shrinks
  to a byte-identical minimal case on every run.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.fuzz.gen import FuzzCase, canonical_payload
from repro.fuzz.oracles import OracleVerdict, classify, failure_key

#: Hard cap on oracle evaluations per shrink (safety net only; real
#: payloads terminate long before this).
MAX_EVALUATIONS = 2000

Classifier = Callable[[FuzzCase], OracleVerdict]


def numeric_mass(value: Any) -> float:
    """Sum of the magnitudes of every numeric leaf (bools excluded)."""
    if isinstance(value, bool):
        return 0.0
    if isinstance(value, (int, float)):
        return abs(float(value))
    if isinstance(value, dict):
        return sum(numeric_mass(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(numeric_mass(v) for v in value)
    return 0.0


def shrink_measure(payload: dict) -> tuple[int, float]:
    """The well-founded shrink ordering: size first, then magnitude."""
    return (len(canonical_payload(payload)), numeric_mass(payload))


def shrink_case(
    case: FuzzCase,
    classifier: Classifier = classify,
    on_step: Optional[Callable[[FuzzCase, OracleVerdict], None]] = None,
    max_evaluations: int = MAX_EVALUATIONS,
) -> FuzzCase:
    """Minimise ``case`` while preserving its failure key.

    Returns the (possibly unchanged) minimal case.  A case whose
    original classification is ``pass`` is returned untouched.
    ``on_step`` observes every accepted intermediate (for the
    monotonicity property tests).
    """
    original = classifier(case)
    if original.outcome == "pass":
        return case
    target = failure_key(case.kind, original)

    current = case
    current_measure = shrink_measure(case.payload)
    evaluations = 0
    while evaluations < max_evaluations:
        accepted = False
        for payload in _candidates(current.kind, current.payload):
            measure = shrink_measure(payload)
            if measure >= current_measure:
                continue
            candidate = FuzzCase(
                kind=current.kind,
                name=current.name,
                seed=current.seed,
                payload=payload,
            )
            evaluations += 1
            verdict = classifier(candidate)
            if failure_key(candidate.kind, verdict) != target:
                if evaluations >= max_evaluations:
                    break
                continue
            current = candidate
            current_measure = measure
            if on_step is not None:
                on_step(current, verdict)
            accepted = True
            break
        if not accepted:
            break
    return current


# -- candidate enumeration ---------------------------------------------------


def _clone(payload: dict) -> dict:
    import copy

    return copy.deepcopy(payload)


def _candidates(kind: str, payload: dict) -> Iterator[dict]:
    if kind == "plan":
        yield from _plan_candidates(payload)
    elif kind == "chaos":
        yield from _chaos_candidates(payload)
    elif kind == "serve":
        yield from _serve_candidates(payload)
    elif kind == "ops":
        yield from _ops_candidates(payload)
    else:
        yield from _divergence_candidates(payload)


def _drop_index(payload: dict, path: list[Any], index: int) -> dict:
    out = _clone(payload)
    node: Any = out
    for step in path:
        node = node[step]
    del node[index]
    return out


def _set_value(payload: dict, path: list[Any], key: str, value: Any) -> dict:
    out = _clone(payload)
    node: Any = out
    for step in path:
        node = node[step]
    node[key] = value
    return out


def _list_drops(payload: dict, path: list[Any], minimum: int = 0) -> Iterator[dict]:
    node: Any = payload
    for step in path:
        node = node.get(step) if isinstance(node, dict) else node[step]
        if node is None:
            return
    if not isinstance(node, list) or len(node) <= minimum:
        return
    # Last-first keeps earlier indices valid in the reader's mind when
    # diffing successive shrink steps.
    for index in range(len(node) - 1, -1, -1):
        yield _drop_index(payload, path, index)


def _halve(
    payload: dict, path: list[Any], key: str, floor: float, integer: bool = False
) -> Iterator[dict]:
    node: Any = payload
    for step in path:
        node = node.get(step) if isinstance(node, dict) else node[step]
        if node is None:
            return
    value = node.get(key)
    if value is None:
        return
    current = float(value)
    if current <= floor:
        return
    halved = max(floor, current / 2.0)
    shrunk: Any = int(halved) if integer else round(halved, 1)
    yield _set_value(payload, path, key, shrunk)


def _plan_candidates(payload: dict) -> Iterator[dict]:
    plans = payload.get("plans", [])
    if len(plans) > 1:
        yield from _list_drops(payload, ["plans"], minimum=1)
    for i in range(len(plans)):
        yield from _list_drops(payload, ["plans", i, "installs"], minimum=1)
        yield from _list_drops(payload, ["plans", i, "notify_edges"])
        yield from _list_drops(payload, ["plans", i, "dependencies"])
        yield from _list_drops(payload, ["plans", i, "old_path"])
        yield from _list_drops(payload, ["plans", i, "new_path"])
        if float(plans[i].get("flow_size", 0.0)) not in (0.0, 1.0):
            yield _set_value(payload, ["plans", i], "flow_size", 1.0)
    for key in sorted(payload.get("capacities", {})):
        out = _clone(payload)
        del out["capacities"][key]
        yield out


def _chaos_candidates(payload: dict) -> Iterator[dict]:
    campaign = payload.get("campaign", {})
    yield from _list_drops(payload, ["campaign", "events"])
    yield from _list_drops(payload, ["campaign", "message_faults"])
    update_at = float(campaign.get("update_at_ms", 10.0))
    yield from _halve(
        payload, ["campaign"], "horizon_ms", floor=max(1000.0, 2.0 * update_at)
    )
    if int(campaign.get("seed", 0)) != 0:
        yield _set_value(payload, ["campaign"], "seed", 0)
    for key in ("unm_timeout_ms", "controller_update_timeout_ms"):
        if float(campaign.get(key, 0.0)) != 0.0:
            yield _set_value(payload, ["campaign"], key, 0.0)


def _serve_candidates(payload: dict) -> Iterator[dict]:
    serve = payload.get("serve", {})
    yield from _list_drops(payload, ["serve", "events"])
    yield from _halve(payload, ["serve"], "requests", floor=1.0, integer=True)
    yield from _halve(payload, ["serve"], "flows", floor=1.0, integer=True)
    yield from _halve(payload, ["serve"], "queue_depth", floor=1.0, integer=True)
    yield from _halve(payload, ["serve"], "horizon_ms", floor=5000.0)
    if int(serve.get("max_in_flight", 0)) != 0:
        yield _set_value(payload, ["serve"], "max_in_flight", 0)
    if float(serve.get("mean_flow_size", 1.0)) != 1.0:
        yield _set_value(payload, ["serve"], "mean_flow_size", 1.0)
    if str(serve.get("static_interference", "off")) != "off":
        yield _set_value(payload, ["serve"], "static_interference", "off")
    if int(serve.get("seed", 0)) != 0:
        yield _set_value(payload, ["serve"], "seed", 0)


def _ops_candidates(payload: dict) -> Iterator[dict]:
    ops = payload.get("ops", {})
    serve = ops.get("serve", {})
    yield from _list_drops(payload, ["ops", "timeline"])
    yield from _list_drops(payload, ["ops", "serve", "events"])
    yield from _halve(payload, ["ops", "serve"], "requests", floor=1.0,
                      integer=True)
    yield from _halve(payload, ["ops", "serve"], "flows", floor=1.0,
                      integer=True)
    yield from _halve(payload, ["ops", "serve"], "horizon_ms", floor=5000.0)
    if float(ops.get("checkpoint_every_ms", 0.0)) != 0.0:
        yield _set_value(payload, ["ops"], "checkpoint_every_ms", 0.0)
    params = serve.get("params", {})
    if float(params.get("controller_update_timeout_ms", 0.0)) != 0.0:
        yield _set_value(
            payload, ["ops", "serve", "params"],
            "controller_update_timeout_ms", 0.0,
        )
    if int(serve.get("seed", 0)) != 0:
        yield _set_value(payload, ["ops", "serve"], "seed", 0)


def _divergence_candidates(payload: dict) -> Iterator[dict]:
    if int(payload.get("seed", 0)) != 0:
        yield _set_value(payload, [], "seed", 0)
    yield from _halve(payload, ["params"], "max_sim_time_ms", floor=10000.0)
