#!/usr/bin/env python
"""Compare two ``BENCH_<name>.json`` run manifests (or directories of
them) and fail on regressions beyond a tolerance.

Usage::

    python scripts/bench_compare.py BASELINE CURRENT [--tolerance 0.10]

``BASELINE`` and ``CURRENT`` are either two manifest files or two
directories scanned for ``BENCH_*.json``.  Numeric leaves of each
manifest's ``results`` tree are compared pairwise; a value that grew
by more than its tolerance (relative) counts as a regression — every
number a manifest records (update times, preparation times, operation
counts, ratios, loss counts) is a cost, so "bigger" is "worse".

Tolerances are per metric:

* ``--rule 'PATTERN=TOL'`` assigns a relative tolerance to every key
  whose dotted path matches the fnmatch ``PATTERN`` (first matching
  rule wins); use this for wall-clock-derived fields that jitter on
  shared CI runners, e.g. ``--rule '*_s=0.50'``.
* ``--exact PATTERN`` marks matching keys as deterministic: numeric
  values must be equal in **both** directions, and string leaves
  (trace signatures, spec hashes) matching the pattern are compared
  verbatim — any drift fails the gate.
* ``--tolerance`` is the default for keys no rule matches.

``--both-directions`` extends every rule (not just ``--exact``) to
also fail on improvements beyond tolerance — useful to force baseline
refreshes when results shift; ``--ignore`` excludes keys entirely.

Exit status: 0 when no regressions, 1 on regressions or exact-field
drift, 2 on usage or I/O errors.  Runs as a hard CI gate.
"""

from __future__ import annotations

import argparse
import fnmatch
import glob
import json
import os
import sys
from dataclasses import dataclass
from typing import Iterator, Optional, Union


@dataclass(frozen=True)
class Delta:
    """One leaf that differs between baseline and current."""

    manifest: str
    key: str            # dotted path inside results
    baseline: Union[float, str]
    current: Union[float, str]

    @property
    def relative(self) -> Optional[float]:
        if isinstance(self.baseline, str) or isinstance(self.current, str):
            return None
        if self.baseline == 0:
            return float("inf") if self.current != 0 else 0.0
        return (self.current - self.baseline) / abs(self.baseline)

    def row(self) -> str:
        rel = self.relative
        if rel is None:
            return (
                f"{self.manifest}:{self.key}: exact field changed: "
                f"{self.baseline!r} -> {self.current!r}"
            )
        arrow = "worse" if rel > 0 else "better"
        return (
            f"{self.manifest}:{self.key}: {self.baseline:g} -> "
            f"{self.current:g} ({rel:+.1%} {arrow})"
        )


def numeric_leaves(tree: object, prefix: str = "") -> Iterator[tuple[str, float]]:
    """Yield ``(dotted.path, value)`` for every numeric leaf."""
    if isinstance(tree, bool):
        return
    if isinstance(tree, (int, float)):
        yield prefix, float(tree)
    elif isinstance(tree, dict):
        for key in sorted(tree):
            child = f"{prefix}.{key}" if prefix else str(key)
            yield from numeric_leaves(tree[key], child)
    elif isinstance(tree, (list, tuple)):
        for i, item in enumerate(tree):
            yield from numeric_leaves(item, f"{prefix}[{i}]")


def string_leaves(tree: object, prefix: str = "") -> Iterator[tuple[str, str]]:
    """Yield ``(dotted.path, value)`` for every string leaf."""
    if isinstance(tree, str):
        yield prefix, tree
    elif isinstance(tree, dict):
        for key in sorted(tree):
            child = f"{prefix}.{key}" if prefix else str(key)
            yield from string_leaves(tree[key], child)
    elif isinstance(tree, (list, tuple)):
        for i, item in enumerate(tree):
            yield from string_leaves(item, f"{prefix}[{i}]")


def load_results(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "results" not in doc:
        raise ValueError(f"{path}: not a run manifest (no 'results')")
    return doc["results"]


def manifest_set(path: str) -> dict[str, str]:
    """Manifest name -> file path, for a file or a directory."""
    if os.path.isdir(path):
        return {
            os.path.basename(p): p
            for p in sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
        }
    return {os.path.basename(path): path}


def parse_rule(text: str) -> tuple[str, float]:
    """``'PATTERN=TOL'`` -> ``(pattern, tolerance)``."""
    pattern, sep, tol = text.rpartition("=")
    if not sep or not pattern:
        raise ValueError(f"rule {text!r} is not of the form PATTERN=TOL")
    try:
        value = float(tol)
    except ValueError:
        raise ValueError(f"rule {text!r}: tolerance {tol!r} is not a number")
    if value < 0:
        raise ValueError(f"rule {text!r}: tolerance must be >= 0")
    return pattern, value


def compare(
    baseline: str,
    current: str,
    tolerance: float,
    ignore: Optional[list[str]] = None,
    rules: Optional[list[tuple[str, float]]] = None,
    exact: Optional[list[str]] = None,
    both_directions: bool = False,
) -> tuple[list[Delta], list[str]]:
    """Returns (regressions, notes).  Raises on I/O or format errors."""
    ignore = ignore or []
    rules = rules or []
    exact = exact or []
    base_set = manifest_set(baseline)
    cur_set = manifest_set(current)

    def skipped(key: str) -> bool:
        return any(fnmatch.fnmatch(key, pattern) for pattern in ignore)

    def is_exact(key: str) -> bool:
        return any(fnmatch.fnmatch(key, pattern) for pattern in exact)

    def tolerance_for(key: str) -> float:
        for pattern, tol in rules:
            if fnmatch.fnmatch(key, pattern):
                return tol
        return tolerance

    regressions: list[Delta] = []
    notes: list[str] = []

    for name in sorted(base_set.keys() - cur_set.keys()):
        notes.append(f"{name}: present in baseline only (skipped)")
    for name in sorted(cur_set.keys() - base_set.keys()):
        notes.append(f"{name}: new manifest, no baseline (skipped)")

    for name in sorted(base_set.keys() & cur_set.keys()):
        base_tree = load_results(base_set[name])
        cur_tree = load_results(cur_set[name])
        base_values = dict(numeric_leaves(base_tree))
        cur_values = dict(numeric_leaves(cur_tree))
        for key in sorted(base_values.keys() - cur_values.keys()):
            notes.append(f"{name}:{key}: dropped from current results")
        for key in sorted(cur_values.keys() - base_values.keys()):
            notes.append(f"{name}:{key}: new result, no baseline")
        compared = 0
        for key in sorted(base_values.keys() & cur_values.keys()):
            if skipped(key):
                continue
            compared += 1
            delta = Delta(name, key, base_values[key], cur_values[key])
            rel = delta.relative
            assert rel is not None
            if is_exact(key):
                if rel != 0:
                    regressions.append(delta)
                continue
            tol = tolerance_for(key)
            if rel > tol or (both_directions and rel < -tol):
                regressions.append(delta)
        # Deterministic string leaves (trace signatures, hashes):
        # compared verbatim when an --exact pattern selects them.
        base_strings = dict(string_leaves(base_tree))
        cur_strings = dict(string_leaves(cur_tree))
        for key in sorted(base_strings.keys() & cur_strings.keys()):
            if skipped(key) or not is_exact(key):
                continue
            compared += 1
            if base_strings[key] != cur_strings[key]:
                regressions.append(
                    Delta(name, key, base_strings[key], cur_strings[key])
                )
        notes.append(f"{name}: compared {compared} value(s)")
    return regressions, notes


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_*.json manifests (or directories)."
    )
    parser.add_argument("baseline", help="baseline manifest file or directory")
    parser.add_argument("current", help="current manifest file or directory")
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="default relative growth allowed before a value counts as "
        "a regression (default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--rule", action="append", default=[], metavar="PATTERN=TOL",
        help="per-metric tolerance for keys matching the fnmatch "
        "pattern, e.g. '*_s=0.50' for wall-clock seconds (repeatable; "
        "first match wins)",
    )
    parser.add_argument(
        "--exact", action="append", default=[], metavar="PATTERN",
        help="keys matching this pattern are deterministic: numeric "
        "values must match exactly in both directions, string leaves "
        "(signatures, hashes) verbatim (repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", default=[], metavar="PATTERN",
        help="skip result keys matching this fnmatch pattern entirely "
        "(repeatable)",
    )
    parser.add_argument(
        "--both-directions", action="store_true",
        help="also fail on improvements beyond tolerance",
    )
    args = parser.parse_args(argv)

    try:
        rules = [parse_rule(text) for text in args.rule]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        regressions, notes = compare(
            args.baseline, args.current, args.tolerance,
            ignore=args.ignore, rules=rules, exact=args.exact,
            both_directions=args.both_directions,
        )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for note in notes:
        print(note)
    if regressions:
        print(f"\n{len(regressions)} regression(s):")
        for delta in regressions:
            print(f"  {delta.row()}")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
