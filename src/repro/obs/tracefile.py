"""Trace serialization: JSONL export/import, filtering, summaries.

One :class:`~repro.sim.trace.TraceEvent` per line::

    {"time": 12.5, "kind": "msg_send", "node": "v3", "detail": {...}}

Export → import round-trips losslessly for JSON-representable details
(tuples inside details are normalised to lists *before* export, so the
re-imported events compare equal).  The helpers underneath power the
``p4update-repro obs`` CLI subcommand.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable, Iterator, Optional, Union

from repro.sim.trace import Trace, TraceEvent

PathOrFile = Union[str, "os.PathLike[str]", IO[str]]


def _jsonify(value):
    """Normalise a detail value into its JSON-stable form."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def event_to_dict(event: TraceEvent) -> dict:
    return {
        "time": event.time,
        "kind": event.kind,
        "node": event.node,
        "detail": _jsonify(event.detail),
    }


def event_from_dict(doc: dict) -> TraceEvent:
    return TraceEvent(
        time=float(doc["time"]),
        kind=doc["kind"],
        node=doc["node"],
        detail=doc.get("detail") or {},
    )


def _open(path_or_file: PathOrFile, mode: str):
    if hasattr(path_or_file, "write") or hasattr(path_or_file, "read"):
        return path_or_file, False
    path = os.fspath(path_or_file)
    if path.endswith(".gz"):
        import gzip

        return gzip.open(path, mode + "t", encoding="utf-8"), True
    return open(path, mode, encoding="utf-8"), True


def export_trace_jsonl(
    trace_or_events: Union[Trace, Iterable[TraceEvent]],
    path_or_file: PathOrFile,
) -> int:
    """Write one JSON object per event; returns the event count."""
    handle, owned = _open(path_or_file, "w")
    count = 0
    try:
        for event in trace_or_events:
            handle.write(json.dumps(event_to_dict(event), sort_keys=True))
            handle.write("\n")
            count += 1
    finally:
        if owned:
            handle.close()
    return count


def iter_trace_jsonl(path_or_file: PathOrFile) -> Iterator[TraceEvent]:
    handle, owned = _open(path_or_file, "r")
    try:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield event_from_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"bad trace line {lineno}: {exc}") from exc
    finally:
        if owned:
            handle.close()


def import_trace_jsonl(path_or_file: PathOrFile) -> Trace:
    """Rebuild a :class:`Trace` (with its per-kind index) from JSONL."""
    trace = Trace()
    for event in iter_trace_jsonl(path_or_file):
        trace.record(event.time, event.kind, event.node, **event.detail)
    return trace


def iter_filter_events(
    events: Iterable[TraceEvent],
    kinds: Optional[Iterable[str]] = None,
    nodes: Optional[Iterable[str]] = None,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> Iterator[TraceEvent]:
    """Lazily yield the events matching every given criterion.

    Streaming counterpart of :func:`filter_events`: composes with
    :func:`iter_trace_jsonl` so the CLI filters arbitrarily large
    traces without materializing them.
    """
    kind_set = set(kinds) if kinds else None
    node_set = set(nodes) if nodes else None
    for event in events:
        if kind_set is not None and event.kind not in kind_set:
            continue
        if node_set is not None and event.node not in node_set:
            continue
        if t0 is not None and event.time < t0:
            continue
        if t1 is not None and event.time > t1:
            continue
        yield event


def filter_events(
    events: Iterable[TraceEvent],
    kinds: Optional[Iterable[str]] = None,
    nodes: Optional[Iterable[str]] = None,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> list[TraceEvent]:
    """Subset of ``events`` matching every given criterion."""
    return list(iter_filter_events(events, kinds, nodes, t0, t1))


def summarize_events(events: Iterable[TraceEvent]) -> dict:
    """Aggregate view of a trace: totals, per-kind and per-node counts,
    time range — the ``obs summary`` CLI output."""
    by_kind: dict[str, int] = {}
    by_node: dict[str, int] = {}
    first = None
    last = None
    total = 0
    for event in events:
        total += 1
        by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        by_node[event.node] = by_node.get(event.node, 0) + 1
        if first is None or event.time < first:
            first = event.time
        if last is None or event.time > last:
            last = event.time
    return {
        "events": total,
        "t_first_ms": first,
        "t_last_ms": last,
        "span_ms": (last - first) if total else None,
        "by_kind": dict(sorted(by_kind.items(), key=lambda kv: -kv[1])),
        "by_node": dict(sorted(by_node.items(), key=lambda kv: -kv[1])),
    }
