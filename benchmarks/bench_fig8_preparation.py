"""Figure 8 — §9.3 control plane preparation time.

Measures real wall-clock computation time of the control-plane
preparation for 1000 updates on B4, Internet2, AttMpls and Chinanet,
and reports the ratio DL-P4Update / ez-Segway:

* Fig. 8a — without congestion freedom: distance labeling +
  segmentation (P4Update) vs segmentation + in_loop classification +
  order encoding (ez-Segway).  Paper ratio: 0.68-0.73.
* Fig. 8b — with congestion freedom: P4Update adds nothing (the
  dependency resolution lives in the data plane); ez-Segway must also
  build the centralized inter-flow dependency graph with static
  priorities.  Paper ratio: 0.002-0.02 (50x-500x).

Wall-clock times are printed and recorded in the manifest for the
figure itself, but the pass/fail assertions use a deterministic proxy:
the number of Python function calls each preparation executes
(counted via ``sys.setprofile``).  Call counts are identical across
runs and machines, so CI cannot flake on a loaded host, while the
ratios they produce sit in the same bands as the wall-clock ones.
"""

import sys
import time

import numpy as np
from benchutils import emit_manifest, print_header

from repro.baselines.ezsegway import congestion_dependency_graph, prepare_ez_update
from repro.core.messages import UpdateType
from repro.harness.build import build_p4update_network
from repro.harness.scenarios import multi_flow_scenario
from repro.params import SimParams
from repro.topo import (
    attmpls_topology,
    b4_topology,
    chinanet_topology,
    internet2_topology,
)

TOPOLOGIES = [
    ("B4 (12, 19)", b4_topology),
    ("Internet2 (16, 26)", internet2_topology),
    ("AttMpls (25, 56)", attmpls_topology),
    ("Chinanet (38, 62)", chinanet_topology),
]

UPDATES = 1000
#: Updates per operation-count measurement: call counts scale linearly
#: in the update count, so a smaller sample keeps the assertion cheap.
COUNT_UPDATES = 50


def count_calls(fn) -> int:
    """Python function calls executed by ``fn()`` — a deterministic
    operation count (same code + same inputs -> same number)."""
    calls = 0

    def tracer(frame, event, arg):
        nonlocal calls
        if event == "call":
            calls += 1

    previous = sys.getprofile()
    sys.setprofile(tracer)
    try:
        fn()
    finally:
        sys.setprofile(previous)
    return calls


def _prep_workload(topo_factory):
    """A deployment plus flows to prepare updates for."""
    topo = topo_factory()
    scenario = multi_flow_scenario(topo, np.random.default_rng(0))
    deployment = build_p4update_network(topo, params=SimParams(seed=0))
    for flow in scenario.flows:
        deployment.install_flow(flow)
    # Warm the controller's NIB port cache (not part of per-update cost).
    first = scenario.flows[0]
    deployment.controller.prepare_update(
        first.flow_id, list(first.new_path), UpdateType.DUAL
    )
    return topo, scenario, deployment


def _best_of(fn, repeats: int = 3) -> float:
    """Best-of-N wall time: robust against transient CPU contention."""
    return min(fn() for _ in range(repeats))


def _time_p4update(deployment, flows, updates=UPDATES) -> float:
    def once() -> float:
        start = time.perf_counter()
        for i in range(updates):
            flow = flows[i % len(flows)]
            deployment.controller.prepare_update(
                flow.flow_id, list(flow.new_path), UpdateType.DUAL,
                congestion_aware=False,
            )
        return time.perf_counter() - start

    return _best_of(once)


def _time_ez(flows, updates=UPDATES) -> float:
    def once() -> float:
        start = time.perf_counter()
        for i in range(updates):
            flow = flows[i % len(flows)]
            prepare_ez_update(
                flow, list(flow.old_path), list(flow.new_path), update_id=i + 1
            )
        return time.perf_counter() - start

    return _best_of(once)


def _time_ez_congestion(topo, flows, updates=UPDATES) -> float:
    capacities = {frozenset((e.a, e.b)): e.capacity for e in topo.edges}
    rounds = 20
    start = time.perf_counter()
    for _ in range(rounds):
        congestion_dependency_graph(flows, capacities)
    per_recompute = (time.perf_counter() - start) / rounds
    # One dependency-graph recomputation per update (the graph must
    # reflect the current flow placement when each update is issued).
    return per_recompute * updates + _time_ez(flows, updates)


def count_operations(topo, deployment, flows, updates=COUNT_UPDATES):
    """Deterministic operation counts for the three preparations."""

    def p4() -> None:
        for i in range(updates):
            flow = flows[i % len(flows)]
            deployment.controller.prepare_update(
                flow.flow_id, list(flow.new_path), UpdateType.DUAL,
                congestion_aware=False,
            )

    def ez() -> None:
        for i in range(updates):
            flow = flows[i % len(flows)]
            prepare_ez_update(
                flow, list(flow.old_path), list(flow.new_path), update_id=i + 1
            )

    capacities = {frozenset((e.a, e.b)): e.capacity for e in topo.edges}

    def ez_congestion() -> None:
        # One dependency-graph recomputation per update, plus the
        # plain ez-Segway preparation itself.
        for _ in range(updates):
            congestion_dependency_graph(flows, capacities)
        ez()

    return count_calls(p4), count_calls(ez), count_calls(ez_congestion)


def collect_ratios(obs=None):
    from repro.obs import NULL_OBS

    obs = obs if obs is not None else NULL_OBS
    rows = []
    for label, topo_factory in TOPOLOGIES:
        with obs.spans.span("preparation_workload", topology=label):
            topo, scenario, deployment = _prep_workload(topo_factory)
            flows = scenario.flows
            with obs.spans.span("time_p4update"):
                t_p4 = _time_p4update(deployment, flows)
            with obs.spans.span("time_ezsegway"):
                t_ez = _time_ez(flows)
            with obs.spans.span("time_ezsegway_congestion"):
                t_ez_cong = _time_ez_congestion(topo, flows)
            with obs.spans.span("count_operations"):
                ops = count_operations(topo, deployment, flows)
        if obs.enabled:
            per_update_us = 1e6 / UPDATES
            obs.metrics.histogram(
                "prep_time_us", system="p4update"
            ).observe(t_p4 * per_update_us)
            obs.metrics.histogram(
                "prep_time_us", system="ezsegway"
            ).observe(t_ez * per_update_us)
            obs.metrics.histogram(
                "prep_time_us", system="ezsegway-congestion"
            ).observe(t_ez_cong * per_update_us)
        rows.append((label, t_p4, t_ez, t_ez_cong, ops))
    return rows


def test_fig8_preparation_ratio(benchmark):
    from repro.obs import make_obs

    obs = make_obs()
    rows = benchmark.pedantic(collect_ratios, args=(obs,), rounds=1, iterations=1)

    print_header("Fig. 8a — preparation time ratio DL-P4Update / ez-Segway "
                 f"(no congestion freedom, {UPDATES} updates)")
    for label, t_p4, t_ez, _, _ in rows:
        print(f"{label:22s} p4={t_p4*1e3:8.1f} ms  ez={t_ez*1e3:8.1f} ms  "
              f"ratio={t_p4/t_ez:5.2f}   (paper: 0.68-0.73)")

    print_header("Fig. 8b — with congestion freedom")
    for label, t_p4, _, t_ez_cong, _ in rows:
        print(f"{label:22s} p4={t_p4*1e3:8.1f} ms  ez={t_ez_cong*1e3:8.1f} ms  "
              f"ratio={t_p4/t_ez_cong:7.4f}   (paper: 0.002-0.02)")

    print_header(f"deterministic operation counts ({COUNT_UPDATES} updates)")
    for label, _, _, _, (c_p4, c_ez, c_cong) in rows:
        print(f"{label:22s} p4={c_p4:8d} ez={c_ez:8d} ez+cong={c_cong:9d}  "
              f"ratio_a={c_p4/c_ez:5.2f}  ratio_b={c_p4/c_cong:7.4f}")

    # Assertions run on the operation counts, not the wall clock:
    # identical across runs and hosts, so a loaded CI machine cannot
    # flip the verdict.  The counted ratios sit in the same bands.
    for label, _, _, _, (c_p4, c_ez, c_cong) in rows:
        ratio_a = c_p4 / c_ez
        ratio_b = c_p4 / c_cong
        assert ratio_a < 1.0, (
            f"{label}: P4Update prep must be cheaper ({ratio_a:.2f})"
        )
        assert ratio_b < 0.2, (
            f"{label}: congestion freedom must collapse the ratio ({ratio_b:.4f})"
        )

    emit_manifest(
        "fig8_preparation",
        params={
            "updates": UPDATES,
            "count_updates": COUNT_UPDATES,
            "topologies": [label for label, _ in TOPOLOGIES],
        },
        results={
            label: {
                "p4update_s": t_p4,
                "ezsegway_s": t_ez,
                "ezsegway_congestion_s": t_ez_cong,
                "ratio_a": t_p4 / t_ez,
                "ratio_b": t_p4 / t_ez_cong,
                "p4update_ops": c_p4,
                "ezsegway_ops": c_ez,
                "ezsegway_congestion_ops": c_cong,
                "op_ratio_a": c_p4 / c_ez,
                "op_ratio_b": c_p4 / c_cong,
            }
            for label, t_p4, t_ez, t_ez_cong, (c_p4, c_ez, c_cong) in rows
        },
        seed=0,
        obs=obs,
    )
