"""Unit tests for the Topology Zoo GraphML loader."""

import io

import pytest

from repro.topo.zoo import (
    SAMPLE_GRAPHML,
    ZooParseError,
    load_graphml,
    sample_zoo_topology,
)


def test_sample_loads():
    topo = sample_zoo_topology()
    assert topo.num_nodes() == 4
    assert topo.num_edges() == 4
    assert set(topo.nodes) == {"Vienna", "Munich", "Zurich", "Milan"}


def test_sample_latencies_are_geographic():
    topo = sample_zoo_topology()
    # Vienna-Munich is ~350 km -> ~1.8 ms at 200 km/ms.
    assert 1.0 < topo.latency("Vienna", "Munich") < 3.0


def test_load_from_file(tmp_path):
    path = tmp_path / "net.graphml"
    path.write_text(SAMPLE_GRAPHML)
    topo = load_graphml(str(path), name="fromfile")
    assert topo.name == "fromfile"
    assert topo.num_nodes() == 4


def test_load_from_filelike():
    topo = load_graphml(io.StringIO(SAMPLE_GRAPHML))
    assert topo.num_nodes() == 4


def test_self_loops_and_multiedges_collapsed():
    doc = SAMPLE_GRAPHML.replace(
        '<edge source="0" target="3"/>',
        '<edge source="0" target="3"/>'
        '<edge source="3" target="0"/>'
        '<edge source="2" target="2"/>',
    )
    topo = load_graphml(doc)
    assert topo.num_edges() == 4        # duplicate + self-loop dropped


def test_missing_coordinates_fall_back_to_neighbours():
    doc = SAMPLE_GRAPHML.replace(
        '<node id="3"><data key="d0">Milan</data>\n'
        '      <data key="d1">45.46</data><data key="d2">9.19</data></node>',
        '<node id="3"><data key="d0">Milan</data></node>',
    )
    topo = load_graphml(doc)
    assert "Milan" in topo.coordinates
    assert topo.latency("Zurich", "Milan") > 0


def test_duplicate_labels_disambiguated():
    doc = SAMPLE_GRAPHML.replace(">Munich<", ">Vienna<", 1)
    topo = load_graphml(doc)
    assert topo.num_nodes() == 4
    assert len(set(topo.nodes)) == 4


def test_no_graph_element_rejected():
    with pytest.raises(ZooParseError):
        load_graphml(
            "<graphml xmlns='http://graphml.graphdrawing.org/xmlns'></graphml>"
        )


def test_edge_to_unknown_node_rejected():
    doc = SAMPLE_GRAPHML.replace(
        '<edge source="0" target="1"/>', '<edge source="0" target="99"/>'
    )
    with pytest.raises(ZooParseError):
        load_graphml(doc)


def test_disconnected_keeps_largest_component():
    doc = SAMPLE_GRAPHML.replace(
        "</graph>",
        '<node id="9"><data key="d0">Island</data>'
        '<data key="d1">0.0</data><data key="d2">0.0</data></node>'
        '<node id="10"><data key="d0">Rock</data>'
        '<data key="d1">1.0</data><data key="d2">1.0</data></node>'
        '<edge source="9" target="10"/></graph>',
    )
    topo = load_graphml(doc)
    assert topo.num_nodes() == 4
    assert "Island" not in topo.nodes


def test_zoo_topology_usable_in_experiment():
    """A loaded Zoo topology drives a full P4Update run."""
    from repro.consistency import LiveChecker
    from repro.core.messages import UpdateType
    from repro.harness.build import build_p4update_network
    from repro.params import SimParams
    from repro.traffic.flows import Flow

    topo = sample_zoo_topology()
    dep = build_p4update_network(topo, params=SimParams(seed=0))
    checker = LiveChecker(dep.forwarding_state, dep.network.trace)
    flow = Flow.between(
        "Vienna", "Zurich", size=1.0, old_path=["Vienna", "Munich", "Zurich"]
    )
    dep.install_flow(flow)
    dep.controller.update_flow(
        flow.flow_id, ["Vienna", "Milan", "Zurich"], UpdateType.SINGLE
    )
    dep.run()
    assert dep.controller.update_complete(flow.flow_id)
    assert checker.ok
