"""Destination-based routing updates (paper §11).

In destination-based routing all traffic towards one destination
shares per-node rules: the routing state is an **in-tree** rooted at
the destination.  The paper notes P4Update "can also be adapted to
different routing paradigms ... basic distance labeling can be used".

The adaptation mirrors SL-P4Update on the tree:

* the controller labels every tree node with its hop distance to the
  destination and pushes one UIM per node, listing the ports of the
  node's *children* in the new tree;
* the destination (root) applies directly and sends an UNM to each
  child; every node verifies the UNM against its UIM (Alg. 1 applies
  unchanged: the parent's distance must be exactly one smaller), then
  installs and notifies its own children — the chain *branches*;
* leaves report completion via UFMs; the update is complete when all
  leaves reported.

Blackhole/loop freedom follows from the same argument as Theorem 1:
a node only points at its new parent after the parent's entire path to
the root is installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.labeling import VersionAllocator
from repro.core.messages import UFM, UIM, UpdateType
from repro.core.registers import LOCAL_DELIVER_PORT
from repro.traffic.flows import flow_hash

if TYPE_CHECKING:  # import cycle: controller owns the tree manager
    from repro.core.controller import P4UpdateController
    from repro.harness.build import P4UpdateDeployment


class TreeError(ValueError):
    """Raised for malformed destination trees."""


def tree_id_for(destination: str) -> int:
    """Stable identifier for a destination's shared routing state."""
    return flow_hash("*tree*", destination)


def validate_tree(destination: str, parent_of: dict[str, str]) -> dict[str, int]:
    """Check that ``parent_of`` is an in-tree rooted at ``destination``
    and return each node's hop distance to the root.

    Raises :class:`TreeError` on cycles, unreachable nodes, or a parent
    that is not itself part of the tree.
    """
    if destination in parent_of:
        raise TreeError(f"destination {destination!r} cannot have a parent")
    distances: dict[str, int] = {destination: 0}

    def resolve(node: str, trail: tuple) -> int:
        if node in distances:
            return distances[node]
        if node in trail:
            raise TreeError(f"cycle through {node!r}")
        parent = parent_of.get(node)
        if parent is None:
            raise TreeError(f"{node!r} does not reach {destination!r}")
        distance = resolve(parent, trail + (node,)) + 1
        distances[node] = distance
        return distance

    for node in parent_of:
        resolve(node, ())
    return distances


def children_of(parent_of: dict[str, str]) -> dict[str, list[str]]:
    """Invert a parent map (children sorted for determinism)."""
    children: dict[str, list[str]] = {}
    for child, parent in parent_of.items():
        children.setdefault(parent, []).append(child)
    for child_list in children.values():
        child_list.sort()
    return children


def leaves_of(destination: str, parent_of: dict[str, str]) -> list[str]:
    """Nodes with no children (the tree's traffic sources)."""
    parents = set(parent_of.values())
    return sorted(node for node in parent_of if node not in parents)


@dataclass
class TreeRecord:
    """Controller bookkeeping for one destination tree."""

    destination: str
    tree_id: int
    parent_of: dict[str, str]
    size: float
    version: int
    pending_parent_of: Optional[dict[str, str]] = None
    pending_version: Optional[int] = None
    pending_leaves: set = field(default_factory=set)
    update_sent_at: Optional[float] = None
    update_done_at: Optional[float] = None


class DestinationTreeManager:
    """Controller-side driver for §11 destination-tree updates.

    Plugs into a :class:`~repro.core.controller.P4UpdateController`:

        manager = DestinationTreeManager(controller)
        manager.install_tree("dst", parent_map, size=1.0, deployment=dep)
        manager.update_tree("dst", new_parent_map)
    """

    def __init__(self, controller: "P4UpdateController") -> None:
        self.controller = controller
        self.trees: dict[str, TreeRecord] = {}
        self.versions = VersionAllocator()
        controller.tree_manager = self

    # -- bootstrap -----------------------------------------------------------

    def install_tree(self, destination: str, parent_of: dict[str, str],
                     size: float, deployment: "P4UpdateDeployment") -> TreeRecord:
        """Deploy the initial tree directly (version 1)."""
        distances = validate_tree(destination, parent_of)
        tree_id = tree_id_for(destination)
        record = TreeRecord(
            destination=destination,
            tree_id=tree_id,
            parent_of=dict(parent_of),
            size=size,
            version=self.versions.next_version(tree_id),
        )
        self.trees[destination] = record
        deployment.forwarding_state.register_tree(
            tree_id, leaves_of(destination, parent_of), destination, size
        )
        network = deployment.network
        for node, parent in parent_of.items():
            port = network.port_towards(node, parent)
            deployment.switches[node].install_initial_flow(
                tree_id, distances[node], port, size
            )
        deployment.switches[destination].install_initial_flow(
            tree_id, 0, LOCAL_DELIVER_PORT, size
        )
        return record

    # -- updates ------------------------------------------------------------------

    def update_tree(self, destination: str, new_parent_of: dict[str, str]) -> int:
        """Prepare and push a new in-tree; returns the version number."""
        record = self.trees[destination]
        distances = validate_tree(destination, new_parent_of)
        children = children_of(new_parent_of)
        leaves = leaves_of(destination, new_parent_of)
        version = self.versions.next_version(record.tree_id)
        controller = self.controller
        network = controller.network

        uims = []
        all_nodes = [destination] + sorted(new_parent_of)
        for node in all_nodes:
            is_root = node == destination
            parent = new_parent_of.get(node)
            child_ports = tuple(
                network.port_towards(node, child)
                for child in children.get(node, [])
            )
            uims.append(
                UIM(
                    target=node,
                    flow_id=record.tree_id,
                    version=version,
                    new_distance=distances[node],
                    egress_port=(
                        LOCAL_DELIVER_PORT if is_root
                        else network.port_towards(node, parent)
                    ),
                    flow_size=record.size,
                    update_type=UpdateType.SINGLE,
                    child_port=None,
                    child_ports=child_ports,
                    is_flow_egress=is_root,
                    is_ingress=node in leaves,
                )
            )
        record.pending_parent_of = dict(new_parent_of)
        record.pending_version = version
        record.pending_leaves = set(leaves)
        record.update_sent_at = controller.now
        for uim in uims:
            controller.send_control(uim)
        return version

    # -- feedback (called by the controller on tree UFMs) -----------------------------

    def handle_ufm(self, ufm: UFM) -> bool:
        """Returns True when the UFM belonged to a tree update."""
        for record in self.trees.values():
            if record.tree_id != ufm.flow_id:
                continue
            if ufm.status != "success" or ufm.version != record.pending_version:
                return True
            record.pending_leaves.discard(ufm.reporter)
            if not record.pending_leaves:
                record.version = ufm.version
                record.parent_of = dict(record.pending_parent_of or {})
                record.pending_parent_of = None
                record.pending_version = None
                record.update_done_at = self.controller.now
            return True
        return False

    def update_complete(self, destination: str) -> bool:
        record = self.trees[destination]
        return record.pending_version is None

    def update_duration(self, destination: str) -> Optional[float]:
        record = self.trees[destination]
        if record.update_sent_at is None or record.update_done_at is None:
            return None
        return record.update_done_at - record.update_sent_at
